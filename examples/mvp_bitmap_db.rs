//! FastBit-style bitmap-index query acceleration on the MVP (the
//! paper's database use case [17]), plus k-mer filtering and BFS — the
//! three workloads of Section III.B — each checked against a scalar
//! reference.
//!
//! Run with: `cargo run --release --example mvp_bitmap_db`

use memcim::prelude::*;
use memcim_automata::dna;
use memcim_mvp::workloads::{bfs::Graph, bitmap::BitmapTable, kmer::ShiftedBaseIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let mut rng = SmallRng::seed_from_u64(7);

    // --- Bitmap-index selection ---------------------------------------
    let records = 16_384;
    let col_region: Vec<u8> = (0..records).map(|_| rng.gen_range(0..16)).collect();
    let col_status: Vec<u8> = (0..records).map(|_| rng.gen_range(0..8)).collect();
    let table = BitmapTable::new(col_region, col_status, 16)?;
    let mut mvp = MvpSimulator::new(32, records);
    // SELECT * WHERE region IN (1, 4, 9) AND status IN (0, 3)
    let fast = table.query_mvp(&mut mvp, &[1, 4, 9], &[0, 3])?;
    let slow = table.query_reference(&[1, 4, 9], &[0, 3]);
    assert_eq!(fast, slow);
    println!(
        "bitmap query over {records} records: {} hits; MVP cost: {} scouting ops, {}",
        fast.count_ones(),
        mvp.ledger().scouting_ops(),
        mvp.ledger().energy()
    );

    // The same query on a banked substrate: 64 parallel subarrays, one
    // BatchRequest — bit-identical answer, wall clock of one bank cycle.
    let mut banked = MvpSimulator::banked(32, 64, records / 64);
    let batch = BatchRequest::new().with_program(table.query_plan(&[1, 4, 9], &[0, 3]));
    let report = banked.run_batch(&batch)?;
    assert_eq!(report.outputs[0][0], slow);
    println!(
        "same query on 64 banks: {} scouting ops across banks, busy {} (vs {} monolithic)",
        report.ledger.scouting_ops(),
        report.ledger.busy_time(),
        mvp.ledger().busy_time()
    );

    // --- k-mer filtering ------------------------------------------------
    let mut genome = dna::random_genome(&mut rng, 8_192);
    dna::plant(&mut genome, b"ACGTACGT", &[512, 4_096, 8_000]);
    let index = ShiftedBaseIndex::build(&genome, 8)?;
    let mut mvp_k = MvpSimulator::new(16, index.positions());
    let kmer = b"ACGTACGT";
    let fast_k = index.find_mvp(&mut mvp_k, kmer)?;
    let slow_k = index.find_reference(kmer)?;
    assert_eq!(fast_k, slow_k);
    println!(
        "k-mer {} over {} positions: {} hits in ONE in-memory 8-way AND",
        String::from_utf8_lossy(kmer),
        index.positions(),
        fast_k.count_ones()
    );

    // --- BFS frontier expansion -----------------------------------------
    let n = 512;
    let mut g = Graph::new(n)?;
    for _ in 0..n * 8 {
        g.add_edge(rng.gen_range(0..n), rng.gen_range(0..n))?;
    }
    let mut mvp_g = MvpSimulator::new(16, n);
    let fast_levels = g.bfs_mvp(&mut mvp_g, 0, 8)?;
    let slow_levels = g.bfs_reference(0);
    assert_eq!(fast_levels, slow_levels);
    let reached = fast_levels.iter().filter(|&&l| l != usize::MAX).count();
    let depth = fast_levels.iter().filter(|&&l| l != usize::MAX).max().copied().unwrap_or(0);
    println!(
        "BFS over {n} vertices: {reached} reached, depth {depth}; frontier ORs ran in memory ({} scouting ops)",
        mvp_g.ledger().scouting_ops()
    );

    // --- Architecture context (Fig. 4 reference point) -------------------
    let c = evaluate(&SystemConfig::paper_defaults(), MissRates::new(0.2, 0.2));
    println!(
        "\nFig. 4 context at 20 %/20 % miss rates: ηPE gain {:.1}×, ηE gain {:.1}×, ηPA gain {:.2}×",
        c.eta_pe_gain(),
        c.eta_e_gain(),
        c.eta_pa_gain()
    );
    Ok(())
}
