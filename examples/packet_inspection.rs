//! Mini deep-packet inspection (the paper's network-security use case
//! [22]): a synthetic Snort-flavoured rule set scanned over synthetic
//! traffic, with per-rule attribution and an AP sizing report.
//!
//! Run with: `cargo run --release --example packet_inspection`

use memcim::prelude::*;
use memcim_ap::RoutingKind;
use memcim_automata::rules;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let mut rng = SmallRng::seed_from_u64(1337);

    // Rule set + traffic with planted true positives.
    let rule_texts = rules::synthetic_rules(&mut rng, 32);
    let refs: Vec<&str> = rule_texts.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs)?;
    let traffic = rules::synthetic_traffic(&mut rng, set.patterns(), 1 << 16, 96);
    println!("rule set: {} rules, traffic: {} bytes", refs.len(), traffic.len());

    // Map onto the RRAM-AP with the Cache-Automaton routing fabric.
    let (homog, _) = set.to_homogeneous();
    let homog = homog.with_start_kind(StartKind::AllInput);
    let kind = RoutingKind::cache_automaton();
    let ap = match AutomataProcessor::compile(&homog, ApBackend::rram(), kind) {
        Ok(ap) => ap,
        Err(_) => AutomataProcessor::compile(&homog, ApBackend::rram(), RoutingKind::Dense)?,
    };
    let resources = ap.routing_resources();
    println!("\nAP sizing:");
    println!("  STEs (homogeneous states): {}", ap.state_count());
    println!(
        "  routing: {} blocks, {} switch bits, {} global wires",
        resources.blocks, resources.config_bits, resources.global_wires
    );
    println!(
        "  area {}, cycle {}, throughput {:.2} Gsym/s",
        ap.costs().area,
        ap.costs().cycle_latency,
        ap.costs().throughput() / 1.0e9
    );
    let config = ap.configuration_cost();
    println!("  one-time configuration: {} / {}", config.latency, config.energy);

    // Scan and attribute.
    let mut accel = memcim::RegexAccelerator::rram(&refs)?;
    let outcome = accel.scan(&traffic);
    let mut per_rule: HashMap<usize, usize> = HashMap::new();
    for &(_, pat) in &outcome.matches {
        *per_rule.entry(pat).or_insert(0) += 1;
    }
    let mut hits: Vec<(usize, usize)> = per_rule.into_iter().collect();
    hits.sort();
    println!("\n{} report events across {} rules:", outcome.matches.len(), hits.len());
    for (rule, count) in hits.iter().take(10) {
        println!("  rule {rule:>2} ({}): {count} events", rule_texts[*rule]);
    }
    if hits.len() > 10 {
        println!("  … and {} more rules with hits", hits.len() - 10);
    }
    println!(
        "\nscan cost: latency {}, energy {}, {} per symbol",
        outcome.report.latency,
        outcome.report.energy,
        outcome.report.energy_per_symbol()
    );

    // Cross-check against the software scanner.
    let software = set.scan(&traffic);
    assert_eq!(software.len(), outcome.matches.len(), "hardware/software parity");
    println!("software cross-check: {} events ✓", software.len());
    Ok(())
}
