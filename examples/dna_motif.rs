//! DNA motif search on the RRAM automata processor (the paper's
//! computational-biology use case [23]) — with a software NFA
//! cross-check and a three-backend cost comparison.
//!
//! Run with: `cargo run --release --example dna_motif`

use memcim::prelude::*;
use memcim_automata::dna;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let mut rng = SmallRng::seed_from_u64(42);

    // A synthetic genome with planted motifs (the data substitution
    // documented in DESIGN.md).
    let mut genome = dna::random_genome(&mut rng, 50_000);
    let motifs = ["ACGTRYN", "TTAGGGN", "GATTACA"];
    let plant_sites = [1_000usize, 10_000, 25_000, 49_000];
    dna::plant(&mut genome, b"ACGTACG", &plant_sites); // matches ACGTRYN
    dna::plant(&mut genome, b"GATTACA", &[5_000, 30_000]);

    // Compile the IUPAC motifs to regexes and onto the AP.
    let patterns: Vec<String> = motifs.iter().map(|m| dna::motif_to_regex(m)).collect();
    let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs)?;
    println!(
        "compiled {} motifs into a {}-state union NFA ({} transitions)",
        motifs.len(),
        set.nfa().state_count(),
        set.nfa().transition_count()
    );

    // Software reference scan.
    let reference = set.scan(&genome);
    println!("software NFA scan: {} match events", reference.len());

    // The same rule set on each hardware backend.
    for backend in [ApBackend::rram(), ApBackend::sram(), ApBackend::sdram()] {
        let name = backend.name;
        let mut accel = memcim::RegexAccelerator::on_backend(&refs, backend)?;
        let outcome = accel.scan(&genome);
        assert_eq!(outcome.matches.len(), reference.len(), "hardware and software must agree");
        println!(
            "{name}: {} STEs, {} events, latency {}, energy {} ({} per symbol)",
            accel.state_count(),
            outcome.matches.len(),
            outcome.report.latency,
            outcome.report.energy,
            outcome.report.energy_per_symbol(),
        );
    }

    // Confirm every planted GATTACA site is found (motif ends 6 bytes in).
    let gattaca = patterns.iter().position(|p| p == "GATTACA").expect("present");
    let mut accel = memcim::RegexAccelerator::rram(&refs)?;
    let outcome = accel.scan(&genome);
    for &site in &[5_000usize, 30_000] {
        assert!(
            outcome.matches.contains(&(site + 6, gattaca)),
            "planted GATTACA at {site} must be reported"
        );
    }
    println!("all planted motif sites verified ✓");
    Ok(())
}
