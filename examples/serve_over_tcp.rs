//! The network front door end to end: a `NetServer` on a real loopback
//! socket, tenants authenticating with tokens and speaking the framed
//! wire protocol — bitmap queries, a streaming AP session, usage and
//! stats verbs — plus the admission path refusing an over-quota tenant
//! and a rate-limited one with typed error frames *before* the queue.
//!
//! Run with: `cargo run --release --example serve_over_tcp`

use memcim::serve::net::{ClientError, ErrorCode, NetClient, NetConfig, NetServer, TenantPolicy};
use memcim::serve::{ServeConfig, Service};
use memcim_bits::BitVec;
use memcim_mvp::Instruction;
use std::sync::Arc;

const ALICE: u64 = 1;
const BOB: u64 = 2;
const MALLORY: u64 = 3;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let config = ServeConfig::default().with_workers(2).with_mvp_geometry(16, 8, 128);
    let width = config.mvp_width();
    let service = Arc::new(Service::try_start(config)?);

    // Provision three tenants: Alice unconstrained, Bob with a lifetime
    // quota of 4 jobs, Mallory with a 2-job burst that never refills.
    let server = NetServer::start(
        Arc::clone(&service),
        NetConfig::default()
            .with_tenant(ALICE, TenantPolicy::new("alice-token"))
            .with_tenant(BOB, TenantPolicy::new("bob-token").with_quota(4))
            .with_tenant(MALLORY, TenantPolicy::new("mallory-token").with_rate(2, 0.0)),
    )?;
    let addr = server.local_addr();
    println!("serving on {addr}\n");

    // --- Alice: the full happy path over TCP ---------------------------
    let mut alice = NetClient::connect(addr)?;
    alice.hello(ALICE, "alice-token")?;
    let result = alice.submit_mvp(&[vec![
        Instruction::Store { row: 0, data: BitVec::from_indices(width, &[1, 5, 9]) },
        Instruction::Store { row: 1, data: BitVec::from_indices(width, &[5, 9, 13]) },
        Instruction::And { srcs: vec![0, 1], dst: 2 },
        Instruction::Read { row: 2 },
    ]])?;
    let hits: Vec<usize> = result.outputs[0][0].ones().collect();
    println!("alice: bitmap intersection -> rows {hits:?}, {} burst energy", result.energy);

    let session = alice.ap_open(&["GET /[a-z]+", "EVIL[a-z]*"])?;
    for chunk in [&b"GET /inde"[..], b"x then EV", b"ILpayload"] {
        alice.ap_feed(session, chunk)?;
    }
    let run = alice.ap_finish(session)?;
    alice.ap_close(session)?;
    println!("alice: {} rule events over {} streamed bytes", run.matches.len(), run.symbols);
    let bill = alice.usage()?;
    println!(
        "alice: billed {} MVP + {} AP jobs, {} total energy\n",
        bill.mvp_jobs,
        bill.ap_jobs,
        bill.mvp_energy + bill.ap_energy
    );

    // --- Bob: the fifth job crosses his lifetime quota -----------------
    let mut bob = NetClient::connect(addr)?;
    bob.hello(BOB, "bob-token")?;
    let program = || vec![vec![Instruction::Store { row: 0, data: BitVec::new(width) }]];
    for _ in 0..4 {
        bob.submit_mvp(&program())?;
    }
    match bob.submit_mvp(&program()) {
        Err(ClientError::Server { code: ErrorCode::QuotaExceeded, message }) => {
            println!("bob: refused before the queue -- {message}");
        }
        other => panic!("expected a quota refusal, got {other:?}"),
    }

    // --- Mallory: two-job burst, then the bucket is dry ----------------
    let mut mallory = NetClient::connect(addr)?;
    mallory.hello(MALLORY, "mallory-token")?;
    for _ in 0..2 {
        mallory.submit_mvp(&program())?;
    }
    match mallory.submit_mvp(&program()) {
        Err(ClientError::Server { code: ErrorCode::RateLimited, message }) => {
            println!("mallory: refused before the queue -- {message}");
        }
        other => panic!("expected a rate refusal, got {other:?}"),
    }

    // --- Service-wide health, over the wire ----------------------------
    let stats = alice.stats()?;
    println!(
        "\nstats: {} workers, {}/{} engines live, queue {}/{}, {} open sessions",
        stats.workers,
        stats.live_engines,
        stats.live_engines + stats.retired_engines,
        stats.queue_depth,
        stats.queue_capacity,
        stats.sessions
    );
    for row in &stats.tenants {
        println!("  tenant {}: {} jobs, {}", row.tenant, row.jobs, row.energy);
    }

    server.shutdown();
    Arc::try_unwrap(service).expect("server released its handle").shutdown();
    Ok(())
}
