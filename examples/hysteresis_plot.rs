//! Emits CSV I–V loops for the Fig. 1b reproduction: three frequencies
//! × three window functions plus the ideal Chua memristor.
//!
//! Run with: `cargo run --release --example hysteresis_plot`
//! Output: `hysteresis_<model>_<freq>.csv` files in the working
//! directory (`time,voltage,current,state` columns, ready for gnuplot or
//! matplotlib).

use memcim::prelude::*;
use memcim_device::window::Window;

fn main() -> Result<(), std::io::Error> {
    let amplitude = Volts::new(1.0);
    let mut written = Vec::new();

    // Linear ion drift at 1×, 2×, 10× its characteristic frequency, for
    // each window function.
    for (wname, window) in [
        ("rect", Window::Rectangular),
        ("joglekar", Window::Joglekar { p: 2 }),
        ("biolek", Window::Biolek { p: 2 }),
    ] {
        let base = LinearIonDrift::hp_default().with_window(window);
        let f0 = base.characteristic_frequency(amplitude);
        for mult in [1.0, 2.0, 10.0] {
            let mut device = base.clone();
            let trace = HysteresisSweep::new(amplitude, Hertz::new(f0.as_hertz() * mult))
                .with_cycles(3)
                .run(&mut device);
            let name = format!("hysteresis_drift_{wname}_{mult}f0.csv");
            std::fs::write(&name, trace.to_csv())?;
            written.push((name, trace.lobe_area()));
        }
    }

    // Ideal Chua memristor.
    for freq in [0.5, 1.0, 5.0] {
        let mut device = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
        let trace =
            HysteresisSweep::new(amplitude, Hertz::new(freq)).with_cycles(3).run(&mut device);
        let name = format!("hysteresis_chua_{freq}hz.csv");
        std::fs::write(&name, trace.to_csv())?;
        written.push((name, trace.lobe_area()));
    }

    println!("wrote {} traces:", written.len());
    for (name, area) in &written {
        println!("  {name}  (lobe area {area:.3e} V·A)");
    }
    println!("\nplot hint: v-vs-i of the last 2000 rows shows the settled pinched loop");
    Ok(())
}
