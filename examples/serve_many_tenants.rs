//! The serving layer end to end: eight tenants sharing one pool of
//! banked engines — bitmap-index queries on the MVP side, streaming
//! pattern matching on the AP side — with per-tenant energy/latency
//! billing printed at the end.
//!
//! Run with: `cargo run --release --example serve_many_tenants`

use memcim::serve::{Job, ServeConfig, Service};
use memcim_bits::BitVec;
use memcim_mvp::Instruction;

const TENANTS: u64 = 8;
const QUERIES_PER_TENANT: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let config = ServeConfig::default().with_workers(4).with_mvp_geometry(16, 8, 128);
    let width = config.mvp_width();
    println!(
        "service: {} workers, queue depth {}, MVP {}x{} ({} banks)",
        config.workers, config.queue_depth, config.mvp_rows, width, config.mvp_banks
    );
    let service = Service::start(config);

    std::thread::scope(|scope| {
        for tenant in 0..TENANTS {
            let service = &service;
            scope.spawn(move || {
                // Every tenant fires a burst of bitmap intersections…
                let tickets: Vec<_> = (0..QUERIES_PER_TENANT)
                    .map(|i| {
                        let salt = tenant as usize * 131 + i * 17;
                        let lhs: Vec<usize> = (0..12).map(|j| (salt + j * 83) % width).collect();
                        let rhs: Vec<usize> = (0..12).map(|j| (salt + j * 59) % width).collect();
                        service
                            .submit(
                                tenant,
                                Job::MvpProgram(vec![
                                    Instruction::Store {
                                        row: 0,
                                        data: BitVec::from_indices(width, &lhs),
                                    },
                                    Instruction::Store {
                                        row: 1,
                                        data: BitVec::from_indices(width, &rhs),
                                    },
                                    Instruction::And { srcs: vec![0, 1], dst: 2 },
                                    Instruction::Read { row: 2 },
                                ]),
                            )
                            .expect("service is running")
                    })
                    .collect();
                let hits: usize = tickets
                    .into_iter()
                    .map(|t| {
                        let out = t.wait().expect("query runs").into_mvp().expect("mvp");
                        out.outputs[0][0].count_ones()
                    })
                    .sum();

                // …and odd tenants additionally stream a rule scan.
                if tenant % 2 == 1 {
                    let session = service
                        .open_session(tenant, &["GET /[a-z]+", "EVIL[a-z]*"])
                        .expect("rules compile");
                    for chunk in [&b"GET /inde"[..], b"x then EV", b"ILpayload"] {
                        service
                            .submit(tenant, Job::ApFeed { session, chunk: chunk.to_vec() })
                            .expect("running")
                            .wait()
                            .expect("feed runs");
                    }
                    let run = service
                        .submit(tenant, Job::ApFinish { session })
                        .expect("running")
                        .wait()
                        .expect("finish runs")
                        .into_ap_finish()
                        .expect("finish");
                    println!(
                        "tenant {tenant}: {hits:4} bitmap hits, {} rule events over {} bytes",
                        run.matches.len(),
                        run.symbols
                    );
                } else {
                    println!("tenant {tenant}: {hits:4} bitmap hits");
                }
            });
        }
    });

    println!("\nper-tenant bill (accounting settled before each ticket resolved):");
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>12}",
        "tenant", "jobs", "energy", "engine time", "scout ops"
    );
    for (tenant, usage) in service.shutdown() {
        println!(
            "{tenant:>6} {:>6} {:>14} {:>14} {:>12}",
            usage.jobs(),
            format!("{}", usage.total_energy()),
            format!("{}", usage.total_busy()),
            usage.mvp.scouting_ops(),
        );
    }
    Ok(())
}
