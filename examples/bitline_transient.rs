//! Emits the Fig. 9 bit-line discharge waveforms as CSV straight from
//! the transient solver: RRAM vs SRAM, stored-1 vs stored-0.
//!
//! Run with: `cargo run --release --example bitline_transient`
//! Output: `bitline_<tech>_<bit>.csv` (`time,bl,wl` columns).

use memcim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for tech in [CellTechnology::rram_1t1r(), CellTechnology::sram_8t()] {
        for stored_one in [true, false] {
            let circuit = BitlineCircuit::lumped(tech.clone(), 256).with_stored_bit(stored_one);
            let (report, trace) = circuit.run_with_trace()?;
            let name = format!(
                "bitline_{}_{}.csv",
                tech.name.to_lowercase().replace('-', "_"),
                if stored_one { "one" } else { "zero" }
            );
            std::fs::write(&name, trace.to_csv(&["bl", "wl"])?)?;
            match report.discharge_time {
                Some(t) => println!(
                    "{name}: discharges in {t} after WL enable; cycle energy {}",
                    report.cycle_energy
                ),
                None => println!(
                    "{name}: line stays high (reads 0); BL after evaluate = {}",
                    report.bitline_after_evaluate
                ),
            }
        }
    }
    println!("\npaper targets: RRAM 104 ps / 2.09 fJ, SRAM 161 ps / 5.16 fJ (HSPICE, 32 nm PTM)");
    println!("see EXPERIMENTS.md for the paper-vs-measured discussion");
    Ok(())
}
