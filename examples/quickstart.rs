//! Quick start: the two accelerators of the paper in ~50 lines.
//!
//! 1. Bulk bitwise compute *inside* a memristive crossbar (MVP,
//!    Section III).
//! 2. Regex scanning on the RRAM automata processor (RRAM-AP,
//!    Section IV).
//!
//! Run with: `cargo run --release --example quickstart`

use memcim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // --- 1. Memristive Vector Processor -------------------------------
    let mut mvp = MvpSimulator::new(8, 256);
    let program = vec![
        Instruction::Store { row: 0, data: BitVec::from_indices(256, &[1, 2, 3, 100]) },
        Instruction::Store { row: 1, data: BitVec::from_indices(256, &[2, 3, 4, 200]) },
        // One scouting cycle computes the whole 256-bit AND in memory.
        Instruction::And { srcs: vec![0, 1], dst: 2 },
        Instruction::Read { row: 2 },
    ];
    let outputs = mvp.run_program(&program)?;
    println!("MVP: AND of two 256-bit rows = bits {:?}", outputs[0].ones().collect::<Vec<_>>());
    println!(
        "     cost: {} scouting op(s), {} programmed bits, {} total energy",
        mvp.ledger().scouting_ops(),
        mvp.ledger().bits_programmed(),
        mvp.ledger().energy()
    );

    // --- 2. RRAM Automata Processor ------------------------------------
    let mut accel = RegexAccelerator::rram(&["GET /[a-z]+", "EVIL[a-z]*\\.exe"])?;
    let outcome = accel.scan(b"GET /index ... EVILpayload.exe ...");
    println!(
        "\nRRAM-AP: {} STEs mapped, matched patterns {:?}",
        accel.state_count(),
        outcome.matched_patterns()
    );
    for &(pos, pat) in &outcome.matches {
        println!("     pattern {pat} completed at byte {pos}");
    }
    println!(
        "     cost: {} symbols, latency {}, energy {}",
        outcome.symbols, outcome.report.latency, outcome.report.energy
    );

    // --- Bonus: the Fig. 9 kernel this is all built on -----------------
    let report = BitlineCircuit::lumped(CellTechnology::rram_1t1r(), 256).run()?;
    println!(
        "\nFig. 9 kernel: 256-cell RRAM bit line discharges in {} (paper: 104 ps)",
        report.discharge_time.expect("stored 1 discharges")
    );
    Ok(())
}
