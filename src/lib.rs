//! Meta-package for the `memcim` workspace.
//!
//! This crate exists only to host the repository-level `examples/` and
//! `tests/` directories. All functionality lives in the workspace crates;
//! start with the [`memcim`] umbrella crate.
