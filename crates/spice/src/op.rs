//! DC operating-point analysis.
//!
//! Solves the circuit's steady state at `t = 0⁺` with capacitors open
//! (their branch current is zero in DC) and all sources at their
//! initial value. Used to pre-bias circuits before a transient and to
//! sanity-check netlists (a floating node surfaces here, not three
//! nanoseconds into a transient).

use crate::circuit::{Circuit, ElementKind};
use crate::linalg::Matrix;
use crate::mosfet::{evaluate_nmos, MosfetKind, GMIN};
use crate::SpiceError;
use memcim_units::Volts;
use std::collections::HashMap;

/// The result of a DC operating-point solve: node voltages by name.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    voltages: HashMap<String, f64>,
}

impl OperatingPoint {
    /// The solved voltage of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSignal`] for an unknown node name
    /// (ground is always known and zero).
    pub fn voltage(&self, node: &str) -> Result<Volts, SpiceError> {
        if node == "0" {
            return Ok(Volts::ZERO);
        }
        self.voltages
            .get(node)
            .map(|&v| Volts::new(v))
            .ok_or_else(|| SpiceError::UnknownSignal { name: node.to_string() })
    }

    /// Iterates `(node name, voltage)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Volts)> {
        self.voltages.iter().map(|(k, &v)| (k.as_str(), Volts::new(v)))
    }
}

/// Computes the DC operating point of a circuit at `t = 0`.
///
/// Capacitors are treated as open circuits (a tiny `GMIN` keeps nodes
/// that *only* connect through capacitors from floating); memristors and
/// MOSFETs are solved by damped Newton iteration exactly as in the
/// transient engine.
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] for genuinely floating
/// subcircuits and [`SpiceError::NonConvergence`] if Newton stalls.
///
/// # Examples
///
/// ```
/// use memcim_spice::{operating_point, Circuit, Waveform};
/// use memcim_units::{Ohms, Volts};
///
/// # fn main() -> Result<(), memcim_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("vin");
/// let out = ckt.node("out");
/// ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::dc(Volts::new(1.0)))?;
/// ckt.add_resistor("R1", vin, out, Ohms::from_kilohms(1.0))?;
/// ckt.add_resistor("R2", out, Circuit::GROUND, Ohms::from_kilohms(1.0))?;
/// let op = operating_point(&ckt)?;
/// assert!((op.voltage("out")?.as_volts() - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn operating_point(ckt: &Circuit) -> Result<OperatingPoint, SpiceError> {
    let n = ckt.node_count() - 1;
    let m = ckt.vsource_count();
    let dim = n + m;
    let mut branch_of = HashMap::new();
    {
        let mut next = 0usize;
        for (ei, e) in ckt.elements.iter().enumerate() {
            if matches!(e.kind, ElementKind::VSource { .. }) {
                branch_of.insert(ei, n + next);
                next += 1;
            }
        }
    }
    let mut x = vec![0.0; dim];
    for (&node, &v) in &ckt.initial_conditions {
        if node != 0 {
            x[node - 1] = v;
        }
    }
    let volt = |x: &[f64], node: usize| if node == 0 { 0.0 } else { x[node - 1] };

    let mut a_mat = Matrix::zeros(dim);
    let mut rhs = vec![0.0; dim];
    let max_newton = 200;
    let mut residual = f64::INFINITY;
    for _ in 0..max_newton {
        a_mat.clear();
        rhs.fill(0.0);
        for (ei, e) in ckt.elements.iter().enumerate() {
            match &e.kind {
                ElementKind::Resistor { a, b, g } => stamp(&mut a_mat, *a, *b, *g),
                ElementKind::Switch { a, b, g_on, g_off, control, threshold } => {
                    let g = if control.evaluate(0.0) > *threshold { *g_on } else { *g_off };
                    stamp(&mut a_mat, *a, *b, g);
                }
                ElementKind::Capacitor { a, b, .. } => {
                    // DC-open; GMIN keeps capacitor-only nodes solvable.
                    stamp(&mut a_mat, *a, *b, GMIN);
                }
                ElementKind::VSource { a, b, w } => {
                    let br = branch_of[&ei];
                    if *a != 0 {
                        a_mat.add(a - 1, br, 1.0);
                        a_mat.add(br, a - 1, 1.0);
                    }
                    if *b != 0 {
                        a_mat.add(b - 1, br, -1.0);
                        a_mat.add(br, b - 1, -1.0);
                    }
                    rhs[br] = w.evaluate(0.0);
                }
                ElementKind::ISource { a, b, w } => {
                    let i = w.evaluate(0.0);
                    if *a != 0 {
                        rhs[a - 1] -= i;
                    }
                    if *b != 0 {
                        rhs[b - 1] += i;
                    }
                }
                ElementKind::Memristor { a, b, device } => {
                    let v0 = volt(&x, *a) - volt(&x, *b);
                    let i0 = device.current(Volts::new(v0)).as_amps();
                    let g = device.conductance(Volts::new(v0)).as_siemens().max(GMIN);
                    let ieq = i0 - g * v0;
                    stamp(&mut a_mat, *a, *b, g);
                    if *a != 0 {
                        rhs[a - 1] -= ieq;
                    }
                    if *b != 0 {
                        rhs[b - 1] += ieq;
                    }
                }
                ElementKind::Mosfet { d, g, s, params, kind } => {
                    stamp_mosfet_dc(&mut a_mat, &mut rhs, &x, *d, *g, *s, params, *kind);
                }
            }
        }
        let mut x_new = rhs.clone();
        if a_mat.solve_in_place(&mut x_new, crate::linalg::SolverKind::Auto).is_none() {
            return Err(SpiceError::SingularMatrix { time: 0.0 });
        }
        residual = x_new.iter().zip(&x).take(n).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        if residual < 1.0e-9 {
            x = x_new;
            let voltages =
                ckt.nodes().map(|(name, node)| (name.to_string(), x[node.0 - 1])).collect();
            return Ok(OperatingPoint { voltages });
        }
        for k in 0..dim {
            let delta = x_new[k] - x[k];
            x[k] += if k < n { delta.clamp(-0.5, 0.5) } else { delta };
        }
    }
    Err(SpiceError::NonConvergence { time: 0.0, residual })
}

fn stamp(a_mat: &mut Matrix, a: usize, b: usize, g: f64) {
    if a != 0 {
        a_mat.add(a - 1, a - 1, g);
    }
    if b != 0 {
        a_mat.add(b - 1, b - 1, g);
    }
    if a != 0 && b != 0 {
        a_mat.add(a - 1, b - 1, -g);
        a_mat.add(b - 1, a - 1, -g);
    }
}

#[allow(clippy::too_many_arguments)]
fn stamp_mosfet_dc(
    a_mat: &mut Matrix,
    rhs: &mut [f64],
    x: &[f64],
    d: usize,
    g: usize,
    s: usize,
    params: &crate::mosfet::MosfetParams,
    kind: MosfetKind,
) {
    let volt = |node: usize| if node == 0 { 0.0 } else { x[node - 1] };
    let (vd, vg, vs) = (volt(d), volt(g), volt(s));
    let (out, in_, i0, di_dd, di_dg, di_ds) = match kind {
        MosfetKind::Nmos => {
            let op = evaluate_nmos(params, vg - vs, vd - vs);
            (d, s, op.ids, op.gds, op.gm, -op.gm - op.gds)
        }
        MosfetKind::Pmos => {
            let op = evaluate_nmos(params, vs - vg, vs - vd);
            (s, d, op.ids, -op.gds, -op.gm, op.gm + op.gds)
        }
    };
    let ieq = i0 - di_dd * vd - di_dg * vg - di_ds * vs;
    let mut stamp_row = |node: usize, sign: f64| {
        if node == 0 {
            return;
        }
        let r = node - 1;
        if d != 0 {
            a_mat.add(r, d - 1, sign * di_dd);
        }
        if g != 0 {
            a_mat.add(r, g - 1, sign * di_dg);
        }
        if s != 0 {
            a_mat.add(r, s - 1, sign * di_ds);
        }
        rhs[r] -= sign * ieq;
    };
    stamp_row(out, 1.0);
    stamp_row(in_, -1.0);
    stamp(a_mat, d, s, GMIN);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetParams;
    use crate::waveform::Waveform;
    use memcim_device::{BehavioralSwitch, SwitchParams};
    use memcim_units::{Farads, Ohms};

    const GND: crate::circuit::Node = Circuit::GROUND;

    #[test]
    fn divider_operating_point() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, GND, Waveform::dc(Volts::new(3.0))).expect("v");
        ckt.add_resistor("R1", vin, out, Ohms::from_kilohms(2.0)).expect("r1");
        ckt.add_resistor("R2", out, GND, Ohms::from_kilohms(1.0)).expect("r2");
        let op = operating_point(&ckt).expect("solves");
        assert!((op.voltage("out").expect("out").as_volts() - 1.0).abs() < 1e-9);
        assert_eq!(op.voltage("0").expect("ground"), Volts::ZERO);
    }

    #[test]
    fn capacitors_are_dc_open() {
        // Series R–C from a source: no DC current, the cap node floats
        // to the source voltage through R.
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.add_vsource("V1", vin, GND, Waveform::dc(Volts::new(1.0))).expect("v");
        ckt.add_resistor("R1", vin, mid, Ohms::from_kilohms(10.0)).expect("r");
        ckt.add_capacitor("C1", mid, GND, Farads::from_picofarads(1.0)).expect("c");
        let op = operating_point(&ckt).expect("solves");
        assert!((op.voltage("mid").expect("mid").as_volts() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nmos_pulldown_bias_point() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("gate");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, GND, Waveform::dc(Volts::new(1.0))).expect("vdd");
        ckt.add_vsource("VG", gate, GND, Waveform::dc(Volts::new(1.0))).expect("vg");
        ckt.add_resistor("RL", vdd, out, Ohms::from_kilohms(100.0)).expect("rl");
        ckt.add_nmos("M1", out, gate, GND, MosfetParams::ptm32_access_nmos()).expect("m1");
        let op = operating_point(&ckt).expect("solves");
        // Strong pulldown against a 100 kΩ load: out near ground.
        let v_out = op.voltage("out").expect("out").as_volts();
        assert!(v_out < 0.06, "out = {v_out}");
    }

    #[test]
    fn memristor_divider_dc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, GND, Waveform::dc(Volts::new(0.4))).expect("v");
        ckt.add_resistor("R1", vin, out, Ohms::from_kilohms(1.0)).expect("r");
        let mut cell = BehavioralSwitch::new(SwitchParams::paper_fig9());
        cell.program(true).expect("on");
        ckt.add_memristor("X1", out, GND, Box::new(cell)).expect("x");
        let op = operating_point(&ckt).expect("solves");
        assert!((op.voltage("out").expect("out").as_volts() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn unknown_node_query_errors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("R", a, GND, Ohms::new(1.0)).expect("r");
        ckt.add_vsource("V", a, GND, Waveform::dc(Volts::new(1.0))).expect("v");
        let op = operating_point(&ckt).expect("solves");
        assert!(matches!(op.voltage("zz"), Err(SpiceError::UnknownSignal { .. })));
        assert_eq!(op.iter().count(), 1);
    }

    #[test]
    fn truly_floating_subcircuit_is_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor("R", a, b, Ohms::new(1.0)).expect("r");
        assert!(matches!(operating_point(&ckt), Err(SpiceError::SingularMatrix { .. })));
    }
}
