//! Error type for circuit construction and analysis.

use core::fmt;

/// Errors produced by circuit construction and transient analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// An element referenced a node that does not exist in the circuit.
    UnknownNode {
        /// The invalid node index.
        index: usize,
    },
    /// An element name was registered twice.
    DuplicateElement {
        /// The repeated element name.
        name: String,
    },
    /// An element parameter was out of its valid domain.
    InvalidValue {
        /// Element name.
        element: String,
        /// Human-readable constraint, e.g. `"resistance must be > 0"`.
        constraint: &'static str,
    },
    /// The MNA matrix became numerically singular (typically a floating
    /// node or a loop of ideal voltage sources).
    SingularMatrix {
        /// Simulation time at which factorization failed.
        time: f64,
    },
    /// Newton iteration failed to converge within the iteration budget.
    NonConvergence {
        /// Simulation time of the failing step.
        time: f64,
        /// Residual voltage change at the final iteration.
        residual: f64,
    },
    /// A trace query referenced an unknown signal name.
    UnknownSignal {
        /// The requested signal.
        name: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::UnknownNode { index } => {
                write!(f, "unknown node index {index}")
            }
            SpiceError::DuplicateElement { name } => {
                write!(f, "duplicate element name {name:?}")
            }
            SpiceError::InvalidValue { element, constraint } => {
                write!(f, "invalid value for element {element:?}: {constraint}")
            }
            SpiceError::SingularMatrix { time } => {
                write!(f, "singular MNA matrix at t = {time:.3e} s (floating node or source loop?)")
            }
            SpiceError::NonConvergence { time, residual } => {
                write!(f, "newton iteration did not converge at t = {time:.3e} s (residual {residual:.3e} V)")
            }
            SpiceError::UnknownSignal { name } => {
                write!(f, "unknown signal {name:?}")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SpiceError::NonConvergence { time: 1.0e-9, residual: 0.5 };
        let s = e.to_string();
        assert!(s.contains("converge"));
        assert!(s.contains("1.000e-9"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<SpiceError>();
    }
}
