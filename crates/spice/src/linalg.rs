//! Dense linear algebra: LU factorization with partial pivoting.
//!
//! The MNA systems in this workspace are small (tens of unknowns for the
//! lumped bit-line circuits, a few hundred for the explicit-cell
//! validation runs), so a dense solver with O(n³) factorization is the
//! right tool — no sparse machinery, no external dependency.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self { n, data: vec![0.0; n * n] }
    }

    /// Dimension of the (square) matrix.
    #[cfg(test)]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    /// Solves `A·x = b` in place via LU with partial pivoting,
    /// destroying the matrix. Returns `None` if the matrix is singular
    /// to working precision.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Option<()> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_mag = self.get(col, col).abs();
            for r in (col + 1)..n {
                let mag = self.get(r, col).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1.0e-300 {
                return None;
            }
            if pivot_row != col {
                for c in 0..n {
                    self.data.swap(pivot_row * n + c, col * n + c);
                }
                b.swap(pivot_row, col);
            }
            let pivot = self.get(col, col);
            for r in (col + 1)..n {
                let factor = self.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                // Row update: rows are contiguous, let the optimizer
                // vectorize the inner loop.
                let (head, tail) = self.data.split_at_mut(r * n);
                let src = &head[col * n..col * n + n];
                let dst = &mut tail[..n];
                for c in (col + 1)..n {
                    dst[c] -= factor * src[c];
                }
                dst[col] = 0.0;
                b[r] -= factor * b[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = b[col];
            for (c, &bc) in b.iter().enumerate().take(n).skip(col + 1) {
                acc -= self.get(col, c) * bc;
            }
            b[col] = acc / self.get(col, col);
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(entries: &[&[f64]], rhs: &[f64]) -> Option<Vec<f64>> {
        let n = rhs.len();
        let mut m = Matrix::zeros(n);
        for (r, row) in entries.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                m.add(r, c, v);
            }
        }
        let mut b = rhs.to_vec();
        m.solve_in_place(&mut b).map(|()| b)
    }

    #[test]
    fn identity_returns_rhs() {
        let x = solve(&[&[1.0, 0.0], &[0.0, 1.0]], &[3.0, 4.0]).expect("nonsingular");
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_3x3() {
        let x =
            solve(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]], &[8.0, -11.0, -3.0])
                .expect("nonsingular");
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let x = solve(&[&[0.0, 1.0], &[1.0, 0.0]], &[5.0, 7.0]).expect("needs pivot");
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        assert!(solve(&[&[1.0, 2.0], &[2.0, 4.0]], &[1.0, 2.0]).is_none());
        assert!(solve(&[&[0.0, 0.0], &[0.0, 0.0]], &[0.0, 0.0]).is_none());
    }

    #[test]
    fn clear_preserves_dimension() {
        let mut m = Matrix::zeros(3);
        m.add(1, 1, 5.0);
        m.clear();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn random_system_residual_is_small() {
        // Deterministic pseudo-random fill: xorshift.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let n = 40;
        let mut m = Matrix::zeros(n);
        let mut a = vec![vec![0.0; n]; n];
        for (r, row) in a.iter_mut().enumerate() {
            for (c, item) in row.iter_mut().enumerate() {
                *item = next() + if r == c { 2.0 } else { 0.0 };
                m.add(r, c, *item);
            }
        }
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut x = rhs.clone();
        m.solve_in_place(&mut x).expect("diagonally dominant");
        for r in 0..n {
            let mut acc = 0.0;
            for c in 0..n {
                acc += a[r][c] * x[c];
            }
            assert!((acc - rhs[r]).abs() < 1e-9, "row {r} residual");
        }
    }
}
