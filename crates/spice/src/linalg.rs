//! Dense linear algebra: LU factorization with partial pivoting, plus a
//! Thomas-algorithm fast path for tridiagonal systems.
//!
//! The MNA systems in this workspace are small (tens of unknowns for the
//! lumped bit-line circuits, a few hundred for the explicit-cell
//! validation runs), so a dense solver with O(n³) factorization is the
//! right tool — no sparse machinery, no external dependency. The RC
//! ladders of the Fig. 9 bit-line circuits, however, assemble to purely
//! tridiagonal matrices; those are detected with an O(n²) band scan and
//! solved in O(n) by the Thomas algorithm, falling back to dense LU
//! whenever the structure or a pivot does not cooperate.

/// Which factorization the in-place solve is allowed to use
/// (selected per [`Transient`](crate::Transient) via
/// [`Transient::with_solver`](crate::Transient::with_solver)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Try the tridiagonal Thomas fast path, fall back to dense LU.
    #[default]
    Auto,
    /// Always dense LU with partial pivoting (the validation reference).
    DenseLu,
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone)]
pub(crate) struct Matrix {
    n: usize,
    data: Vec<f64>,
    /// Reusable working storage for the Thomas fast path (eliminated
    /// diagonal + rhs), retained across solves so the
    /// Newton-per-timestep call pattern stays allocation-free. Not part
    /// of the matrix's value (excluded from equality).
    scratch: Vec<f64>,
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.data == other.data
    }
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self { n, data: vec![0.0; n * n], scratch: Vec::new() }
    }

    /// Dimension of the (square) matrix.
    #[cfg(test)]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    /// The singularity threshold for a matrix whose largest entry has
    /// magnitude `max_abs`: pivots below `max_abs · 1e-14` mean the
    /// system is rank-deficient *relative to its own scale*. The old
    /// absolute `1e-300` cutoff let badly-scaled MNA systems (every
    /// entry tiny, but numerically dependent rows) slip through and
    /// produce garbage voltages; a relative threshold detects them while
    /// still tolerating the ~15 decades of legitimate conductance spread
    /// (GMIN vs on-state) in one matrix.
    fn pivot_threshold(max_abs: f64) -> f64 {
        max_abs * 1.0e-14
    }

    /// Largest absolute entry (the matrix's natural scale).
    fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Solves `A·x = b` in place, destroying the matrix. Returns `None`
    /// if the matrix is singular to working precision (relative to its
    /// own largest entry).
    ///
    /// With [`SolverKind::Auto`] a *diagonally dominant* tridiagonal
    /// matrix takes the O(n) Thomas fast path; everything else (and any
    /// fast-path system whose elimination still hits a bad pivot) goes
    /// through dense LU with partial pivoting. Dominance gates the fast
    /// path because unpivoted elimination is only backward-stable in
    /// that regime — a tridiagonal system with a weak diagonal would
    /// pass the pivot threshold yet amplify rounding error by its
    /// multiplier growth, silently losing digits the pivoted dense
    /// factorization keeps.
    pub fn solve_in_place(&mut self, b: &mut [f64], kind: SolverKind) -> Option<()> {
        if kind == SolverKind::Auto
            && self.is_dominant_tridiagonal()
            && self.solve_thomas(b).is_some()
        {
            return Some(());
        }
        self.solve_dense_lu(b)
    }

    /// `true` when every nonzero sits on the main, sub- or
    /// super-diagonal **and** each row's diagonal weakly dominates its
    /// neighbours (`|a_ii| ≥ |a_i,i−1| + |a_i,i+1|`). MNA conductance
    /// stamps of RC ladders always satisfy both. O(n²) scan with early
    /// exit — negligible next to the O(n³) factorization it may replace.
    fn is_dominant_tridiagonal(&self) -> bool {
        let n = self.n;
        for r in 0..n {
            for c in 0..n {
                if r.abs_diff(c) > 1 && self.data[r * n + c] != 0.0 {
                    return false;
                }
            }
            let mut off = 0.0;
            if r > 0 {
                off += self.get(r, r - 1).abs();
            }
            if r + 1 < n {
                off += self.get(r, r + 1).abs();
            }
            if self.get(r, r).abs() < off {
                return false;
            }
        }
        true
    }

    /// Thomas algorithm on the three diagonals. Works on the reusable
    /// `scratch` buffer (one resize on first use, then allocation-free
    /// across the Newton-per-timestep call pattern), so on failure (a
    /// pivot below the relative threshold — possible without pivoting
    /// even for solvable systems) neither the matrix nor `b` has been
    /// touched and the caller can fall back to dense LU.
    fn solve_thomas(&mut self, b: &mut [f64]) -> Option<()> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        if n == 0 {
            return Some(());
        }
        let tol = Self::pivot_threshold(self.max_abs());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(2 * n, 0.0);
        let (diag, rhs) = scratch.split_at_mut(n);
        for (i, d) in diag.iter_mut().enumerate() {
            *d = self.get(i, i);
        }
        rhs.copy_from_slice(b);
        let solved = (|| {
            // Forward elimination of the subdiagonal.
            for i in 1..n {
                let pivot = diag[i - 1];
                if pivot.abs() < tol || tol == 0.0 {
                    return false;
                }
                let factor = self.get(i, i - 1) / pivot;
                diag[i] -= factor * self.get(i - 1, i);
                rhs[i] -= factor * rhs[i - 1];
            }
            if diag[n - 1].abs() < tol || tol == 0.0 {
                return false;
            }
            // Back substitution.
            rhs[n - 1] /= diag[n - 1];
            for i in (0..n - 1).rev() {
                rhs[i] = (rhs[i] - self.get(i, i + 1) * rhs[i + 1]) / diag[i];
            }
            true
        })();
        if solved {
            b.copy_from_slice(rhs);
        }
        self.scratch = scratch;
        solved.then_some(())
    }

    /// Dense LU with partial pivoting (destroys the matrix).
    fn solve_dense_lu(&mut self, b: &mut [f64]) -> Option<()> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        let tol = Self::pivot_threshold(self.max_abs());
        if tol == 0.0 {
            // All-zero matrix: singular for n > 0, trivially solved
            // otherwise.
            return if n == 0 { Some(()) } else { None };
        }
        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_mag = self.get(col, col).abs();
            for r in (col + 1)..n {
                let mag = self.get(r, col).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < tol {
                return None;
            }
            if pivot_row != col {
                for c in 0..n {
                    self.data.swap(pivot_row * n + c, col * n + c);
                }
                b.swap(pivot_row, col);
            }
            let pivot = self.get(col, col);
            for r in (col + 1)..n {
                let factor = self.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                // Row update: rows are contiguous, let the optimizer
                // vectorize the inner loop.
                let (head, tail) = self.data.split_at_mut(r * n);
                let src = &head[col * n..col * n + n];
                let dst = &mut tail[..n];
                for c in (col + 1)..n {
                    dst[c] -= factor * src[c];
                }
                dst[col] = 0.0;
                b[r] -= factor * b[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = b[col];
            for (c, &bc) in b.iter().enumerate().take(n).skip(col + 1) {
                acc -= self.get(col, c) * bc;
            }
            b[col] = acc / self.get(col, col);
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_of(entries: &[&[f64]]) -> Matrix {
        let mut m = Matrix::zeros(entries.len());
        for (r, row) in entries.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                m.add(r, c, v);
            }
        }
        m
    }

    fn solve(entries: &[&[f64]], rhs: &[f64]) -> Option<Vec<f64>> {
        let mut m = matrix_of(entries);
        let mut b = rhs.to_vec();
        m.solve_in_place(&mut b, SolverKind::Auto).map(|()| b)
    }

    #[test]
    fn identity_returns_rhs() {
        let x = solve(&[&[1.0, 0.0], &[0.0, 1.0]], &[3.0, 4.0]).expect("nonsingular");
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_3x3() {
        let x =
            solve(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]], &[8.0, -11.0, -3.0])
                .expect("nonsingular");
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let x = solve(&[&[0.0, 1.0], &[1.0, 0.0]], &[5.0, 7.0]).expect("needs pivot");
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        assert!(solve(&[&[1.0, 2.0], &[2.0, 4.0]], &[1.0, 2.0]).is_none());
        assert!(solve(&[&[0.0, 0.0], &[0.0, 0.0]], &[0.0, 0.0]).is_none());
    }

    #[test]
    fn clear_preserves_dimension() {
        let mut m = Matrix::zeros(3);
        m.add(1, 1, 5.0);
        m.clear();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn random_system_residual_is_small() {
        // Deterministic pseudo-random fill: xorshift.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let n = 40;
        let mut m = Matrix::zeros(n);
        let mut a = vec![vec![0.0; n]; n];
        for (r, row) in a.iter_mut().enumerate() {
            for (c, item) in row.iter_mut().enumerate() {
                *item = next() + if r == c { 2.0 } else { 0.0 };
                m.add(r, c, *item);
            }
        }
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut x = rhs.clone();
        m.solve_in_place(&mut x, SolverKind::Auto).expect("diagonally dominant");
        for r in 0..n {
            let mut acc = 0.0;
            for c in 0..n {
                acc += a[r][c] * x[c];
            }
            assert!((acc - rhs[r]).abs() < 1e-9, "row {r} residual");
        }
    }

    #[test]
    fn badly_scaled_singular_system_is_detected() {
        // Rows numerically dependent, every entry ~1e-200: the old
        // absolute 1e-300 pivot cutoff accepted the ~1e-216 post-
        // elimination pivot and returned garbage; the relative threshold
        // (scale · 1e-14 = 1e-214) rejects it. A non-tridiagonal third
        // column forces the dense path.
        let tiny = 1.0e-200;
        assert!(solve(
            &[
                &[tiny, tiny, tiny],
                &[tiny, tiny * (1.0 + 2.0 * f64::EPSILON), tiny],
                &[tiny, tiny, tiny],
            ],
            &[tiny, tiny, tiny],
        )
        .is_none());
        // The same scale with genuinely independent rows still solves.
        let x = solve(&[&[tiny, 0.0], &[0.0, tiny]], &[2.0 * tiny, 3.0 * tiny])
            .expect("well-conditioned despite the scale");
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn fast_path_detection_checks_structure_and_dominance() {
        assert!(matrix_of(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]])
            .is_dominant_tridiagonal());
        // A bit beyond the band disqualifies.
        assert!(!matrix_of(&[&[2.0, 0.0, 0.5], &[0.0, 2.0, 0.0], &[0.0, 0.0, 2.0]])
            .is_dominant_tridiagonal());
        // Tridiagonal but weak-diagonal disqualifies too.
        assert!(!matrix_of(&[&[1.0, 2.0, 0.0], &[2.0, 5.0, 2.0], &[0.0, 2.0, 5.0]])
            .is_dominant_tridiagonal());
        assert!(matrix_of(&[&[1.0]]).is_dominant_tridiagonal());
    }

    #[test]
    fn weakly_dominant_tridiagonal_avoids_unstable_thomas_elimination() {
        // Tiny diagonal, unit off-diagonals: every unpivoted pivot would
        // pass the relative threshold, but elimination multipliers of
        // ~1e8 would amplify rounding error by ~8 digits. The dominance
        // gate must route this to pivoted dense LU, so Auto and DenseLu
        // agree to full precision.
        let eps = 1.0e-8;
        let m = [&[eps, 1.0, 0.0][..], &[1.0, eps, 1.0], &[0.0, 1.0, eps]];
        assert!(!matrix_of(&m).is_dominant_tridiagonal());
        let rhs = [1.0, 2.0, 3.0];
        let mut auto_x = rhs;
        matrix_of(&m).solve_in_place(&mut auto_x, SolverKind::Auto).expect("auto");
        let mut dense_x = rhs;
        matrix_of(&m).solve_in_place(&mut dense_x, SolverKind::DenseLu).expect("dense");
        assert_eq!(auto_x, dense_x, "Auto must take the pivoted path here");
        // And the solution actually satisfies the system.
        for r in 0..3 {
            let acc: f64 = (0..3).map(|c| m[r][c] * auto_x[c]).sum();
            assert!((acc - rhs[r]).abs() < 1e-12, "row {r}");
        }
    }

    #[test]
    fn thomas_agrees_with_dense_lu_on_rc_ladder_systems() {
        // Backward-Euler MNA assembly of an RC ladder (the Fig. 9
        // bit-line structure): symmetric tridiagonal, diagonally
        // dominant. Both factorizations must agree to LU residual
        // accuracy — the cross-check behind the fig9_calibration
        // solver-agreement test.
        let mut state = 0xC0FF_EE00_DEAD_BEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in [1usize, 2, 3, 17, 40] {
            let mut m = Matrix::zeros(n);
            // Series conductances g_i plus shunt C/h terms on the diagonal.
            for i in 0..n {
                m.add(i, i, 1.0e-3 * (0.5 + next()));
                if i + 1 < n {
                    let g = 1.0e-3 * (0.5 + next());
                    m.add(i, i, g);
                    m.add(i + 1, i + 1, g);
                    m.add(i, i + 1, -g);
                    m.add(i + 1, i, -g);
                }
            }
            let rhs: Vec<f64> = (0..n).map(|_| next() - 0.5).collect();
            assert!(m.is_dominant_tridiagonal(), "n = {n}");

            let mut thomas = rhs.clone();
            m.clone().solve_in_place(&mut thomas, SolverKind::Auto).expect("thomas");
            let mut dense = rhs.clone();
            m.clone().solve_in_place(&mut dense, SolverKind::DenseLu).expect("dense");
            for i in 0..n {
                let scale = dense[i].abs().max(1.0);
                assert!(
                    (thomas[i] - dense[i]).abs() < 1e-10 * scale,
                    "n = {n}, x[{i}]: thomas {} vs dense {}",
                    thomas[i],
                    dense[i]
                );
            }
        }
    }

    #[test]
    fn thomas_bad_pivot_falls_back_to_dense_pivoting() {
        // Tridiagonal with a zero leading pivot: the dominance gate
        // already excludes it from the fast path, and even a direct
        // Thomas call bails on the pivot — either way the automatic
        // path solves it via the row-swapping dense factorization.
        let m = [&[0.0, 1.0, 0.0][..], &[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]];
        assert!(!matrix_of(&m).is_dominant_tridiagonal());
        assert!(matrix_of(&m).solve_thomas(&mut [5.0, 7.0, 1.0]).is_none());
        let x = solve(&m, &[5.0, 7.0, 1.0]).expect("dense fallback");
        // x = [1, 5, -4]... check: row0: x1 = 5 ✓; row1: x0 + x2 = 7;
        // row2: x1 + x2 = 1 ⇒ x2 = -4, x0 = 11.
        assert!((x[0] - 11.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
        assert!((x[2] + 4.0).abs() < 1e-12, "{x:?}");
    }
}
