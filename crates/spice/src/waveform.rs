//! Time-dependent source waveforms (the SPICE `DC`/`PULSE`/`SIN`/`PWL` set).

use memcim_units::{Hertz, Seconds, Volts};

/// A source waveform `v(t)` (also used for current sources, in amperes).
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse train.
    Pulse {
        /// Initial (low) value.
        low: f64,
        /// Pulsed (high) value.
        high: f64,
        /// Delay before the first rising edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width at the high value, seconds.
        width: f64,
        /// Repetition period, seconds (`f64::INFINITY` for a single pulse).
        period: f64,
    },
    /// Sinusoid `offset + amplitude·sin(2πf·(t − delay))` (zero before the
    /// delay).
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency, hertz.
        frequency: f64,
        /// Start delay, seconds.
        delay: f64,
    },
    /// Piecewise-linear interpolation through `(time, value)` points;
    /// clamps to the first/last value outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// A constant voltage.
    pub fn dc(v: Volts) -> Self {
        Waveform::Dc(v.as_volts())
    }

    /// A single step from `low` to `high` at time `at` with the given
    /// rise time.
    pub fn step(low: Volts, high: Volts, at: Seconds, rise: Seconds) -> Self {
        Waveform::Pulse {
            low: low.as_volts(),
            high: high.as_volts(),
            delay: at.as_seconds(),
            rise: rise.as_seconds().max(1.0e-15),
            fall: rise.as_seconds().max(1.0e-15),
            width: f64::INFINITY,
            period: f64::INFINITY,
        }
    }

    /// A single pulse: rises at `at`, stays at `high` for `width`,
    /// then returns to `low`.
    pub fn pulse(low: Volts, high: Volts, at: Seconds, width: Seconds, edge: Seconds) -> Self {
        Waveform::Pulse {
            low: low.as_volts(),
            high: high.as_volts(),
            delay: at.as_seconds(),
            rise: edge.as_seconds().max(1.0e-15),
            fall: edge.as_seconds().max(1.0e-15),
            width: width.as_seconds(),
            period: f64::INFINITY,
        }
    }

    /// A sinusoid with the given offset, amplitude and frequency.
    pub fn sine(offset: Volts, amplitude: Volts, frequency: Hertz) -> Self {
        Waveform::Sine {
            offset: offset.as_volts(),
            amplitude: amplitude.as_volts(),
            frequency: frequency.as_hertz(),
            delay: 0.0,
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    pub fn evaluate(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { low, high, delay, rise, fall, width, period } => {
                if t < *delay {
                    return *low;
                }
                let cycle_t = if period.is_finite() && *period > 0.0 {
                    (t - delay) % period
                } else {
                    t - delay
                };
                if cycle_t < *rise {
                    low + (high - low) * cycle_t / rise
                } else if cycle_t < rise + width {
                    *high
                } else if cycle_t < rise + width + fall {
                    high - (high - low) * (cycle_t - rise - width) / fall
                } else {
                    *low
                }
            }
            Waveform::Sine { offset, amplitude, frequency, delay } => {
                if t < *delay {
                    *offset
                } else {
                    offset
                        + amplitude * (2.0 * core::f64::consts::PI * frequency * (t - delay)).sin()
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(Volts::new(0.4));
        assert_eq!(w.evaluate(0.0), 0.4);
        assert_eq!(w.evaluate(1.0), 0.4);
    }

    #[test]
    fn step_rises_once_and_holds() {
        let w = Waveform::step(
            Volts::ZERO,
            Volts::new(1.0),
            Seconds::from_nanoseconds(1.0),
            Seconds::from_picoseconds(10.0),
        );
        assert_eq!(w.evaluate(0.5e-9), 0.0);
        assert!((w.evaluate(1.005e-9) - 0.5).abs() < 1e-9); // mid-edge
        assert_eq!(w.evaluate(2.0e-9), 1.0);
        assert_eq!(w.evaluate(1.0), 1.0);
    }

    #[test]
    fn pulse_returns_to_low() {
        let w = Waveform::pulse(
            Volts::ZERO,
            Volts::new(1.0),
            Seconds::from_nanoseconds(1.0),
            Seconds::from_nanoseconds(2.0),
            Seconds::from_picoseconds(1.0),
        );
        assert_eq!(w.evaluate(0.0), 0.0);
        assert_eq!(w.evaluate(2.0e-9), 1.0);
        assert_eq!(w.evaluate(4.0e-9), 0.0);
    }

    #[test]
    fn periodic_pulse_repeats() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 0.5e-9,
            period: 1.0e-9,
        };
        assert_eq!(w.evaluate(0.25e-9), 1.0);
        assert_eq!(w.evaluate(0.75e-9), 0.0);
        assert_eq!(w.evaluate(1.25e-9), 1.0);
        assert_eq!(w.evaluate(7.75e-9), 0.0);
    }

    #[test]
    fn sine_starts_at_offset_after_delay() {
        let w = Waveform::Sine { offset: 0.5, amplitude: 1.0, frequency: 1.0e9, delay: 1.0e-9 };
        assert_eq!(w.evaluate(0.0), 0.5);
        assert!((w.evaluate(1.25e-9) - 1.5).abs() < 1e-9); // quarter period
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 1.0), (3.0, -1.0)]);
        assert_eq!(w.evaluate(0.0), 0.0);
        assert_eq!(w.evaluate(1.5), 0.5);
        assert_eq!(w.evaluate(2.5), 0.0);
        assert_eq!(w.evaluate(10.0), -1.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        assert_eq!(Waveform::Pwl(vec![]).evaluate(1.0), 0.0);
    }
}
