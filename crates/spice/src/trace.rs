//! Recorded transient results and `.measure`-style queries.

use crate::SpiceError;
use memcim_units::{Joules, Seconds, Volts};
use std::collections::HashMap;

/// Crossing direction for [`Trace::cross_time`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Signal crosses the level going upward.
    Rising,
    /// Signal crosses the level going downward.
    Falling,
    /// Either direction.
    Any,
}

/// A recorded transient: time axis, node-voltage and source-current
/// signals, and per-element energy totals.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) time: Vec<f64>,
    pub(crate) signals: HashMap<String, Vec<f64>>,
    /// Energy dissipated per element name, joules.
    pub(crate) dissipated: HashMap<String, f64>,
    /// Energy delivered per source name, joules.
    pub(crate) delivered: HashMap<String, f64>,
}

impl Trace {
    /// The time axis, seconds.
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// A node-voltage signal by node name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSignal`] if no such node was recorded.
    pub fn voltage(&self, node: &str) -> Result<&[f64], SpiceError> {
        self.signal(node)
    }

    /// A voltage-source branch-current signal (`I(name)` convention:
    /// positive current flows into the source's positive terminal).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSignal`] if no such source exists.
    pub fn current(&self, source: &str) -> Result<&[f64], SpiceError> {
        self.signal(&format!("I({source})"))
    }

    fn signal(&self, name: &str) -> Result<&[f64], SpiceError> {
        self.signals
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| SpiceError::UnknownSignal { name: name.to_string() })
    }

    /// First time after `after` at which `signal` crosses `level` in the
    /// given direction, linearly interpolated. `None` if it never does.
    pub fn cross_time(
        &self,
        signal: &str,
        level: Volts,
        edge: Edge,
        after: Seconds,
    ) -> Option<Seconds> {
        let xs = self.signals.get(signal)?;
        let lv = level.as_volts();
        let t0 = after.as_seconds();
        for k in 1..xs.len() {
            if self.time[k] < t0 {
                continue;
            }
            let (a, b) = (xs[k - 1], xs[k]);
            let crossed = match edge {
                Edge::Rising => a < lv && b >= lv,
                Edge::Falling => a > lv && b <= lv,
                Edge::Any => (a < lv && b >= lv) || (a > lv && b <= lv),
            };
            if crossed {
                let frac = if (b - a).abs() < f64::MIN_POSITIVE { 0.0 } else { (lv - a) / (b - a) };
                let t = self.time[k - 1] + frac * (self.time[k] - self.time[k - 1]);
                return Some(Seconds::new(t));
            }
        }
        None
    }

    /// Signal value at time `t`, linearly interpolated (clamped to the
    /// record's ends).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSignal`] for an unrecorded signal.
    pub fn value_at(&self, signal: &str, t: Seconds) -> Result<f64, SpiceError> {
        let xs = self.signal(signal)?;
        let ts = t.as_seconds();
        if xs.is_empty() {
            return Ok(0.0);
        }
        if ts <= self.time[0] {
            return Ok(xs[0]);
        }
        if ts >= *self.time.last().expect("nonempty") {
            return Ok(*xs.last().expect("nonempty"));
        }
        let k = self.time.partition_point(|&x| x < ts).max(1);
        let (t0, t1) = (self.time[k - 1], self.time[k]);
        let frac = if t1 > t0 { (ts - t0) / (t1 - t0) } else { 0.0 };
        Ok(xs[k - 1] + frac * (xs[k] - xs[k - 1]))
    }

    /// The final recorded value of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSignal`] for an unrecorded signal.
    pub fn final_value(&self, signal: &str) -> Result<f64, SpiceError> {
        Ok(*self.signal(signal)?.last().unwrap_or(&0.0))
    }

    /// Minimum and maximum of a signal over the record.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSignal`] for an unrecorded signal.
    pub fn extrema(&self, signal: &str) -> Result<(f64, f64), SpiceError> {
        let xs = self.signal(signal)?;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Ok((lo, hi))
    }

    /// Total energy dissipated in the named element over the transient.
    /// Zero for elements that were never stamped with a dissipation model
    /// (capacitors, sources).
    pub fn dissipated_energy(&self, element: &str) -> Joules {
        Joules::new(self.dissipated.get(element).copied().unwrap_or(0.0))
    }

    /// Total energy dissipated across all elements.
    pub fn total_dissipated_energy(&self) -> Joules {
        Joules::new(self.dissipated.values().sum())
    }

    /// Net energy delivered by the named source (positive = the source
    /// injected energy into the circuit).
    pub fn delivered_energy(&self, source: &str) -> Joules {
        Joules::new(self.delivered.get(source).copied().unwrap_or(0.0))
    }

    /// Net energy delivered by all sources.
    pub fn total_delivered_energy(&self) -> Joules {
        Joules::new(self.delivered.values().sum())
    }

    /// Renders selected signals as CSV with a `time` column.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSignal`] if any requested signal is
    /// missing.
    pub fn to_csv(&self, signals: &[&str]) -> Result<String, SpiceError> {
        let cols: Vec<&[f64]> = signals.iter().map(|s| self.signal(s)).collect::<Result<_, _>>()?;
        let mut out = String::from("time");
        for s in signals {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (k, &t) in self.time.iter().enumerate() {
            out.push_str(&format!("{t:.6e}"));
            for col in &cols {
                out.push_str(&format!(",{:.6e}", col[k]));
            }
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> Trace {
        // v(t) = t over [0, 1] in 11 points, plus a falling signal 1 − t.
        let time: Vec<f64> = (0..11).map(|k| k as f64 / 10.0).collect();
        let up = time.clone();
        let down: Vec<f64> = time.iter().map(|t| 1.0 - t).collect();
        let mut signals = HashMap::new();
        signals.insert("up".to_string(), up);
        signals.insert("down".to_string(), down);
        Trace { time, signals, dissipated: HashMap::new(), delivered: HashMap::new() }
    }

    #[test]
    fn cross_time_interpolates() {
        let tr = ramp_trace();
        let t =
            tr.cross_time("up", Volts::new(0.55), Edge::Rising, Seconds::ZERO).expect("crosses");
        assert!((t.as_seconds() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn cross_time_respects_direction_and_after() {
        let tr = ramp_trace();
        assert!(tr.cross_time("up", Volts::new(0.5), Edge::Falling, Seconds::ZERO).is_none());
        assert!(tr.cross_time("down", Volts::new(0.5), Edge::Falling, Seconds::ZERO).is_some());
        assert!(tr.cross_time("up", Volts::new(0.5), Edge::Rising, Seconds::new(0.6)).is_none());
    }

    #[test]
    fn value_at_clamps_and_interpolates() {
        let tr = ramp_trace();
        assert_eq!(tr.value_at("up", Seconds::new(-1.0)).expect("clamp"), 0.0);
        assert_eq!(tr.value_at("up", Seconds::new(2.0)).expect("clamp"), 1.0);
        let mid = tr.value_at("up", Seconds::new(0.425)).expect("interp");
        assert!((mid - 0.425).abs() < 1e-12);
    }

    #[test]
    fn unknown_signal_is_an_error() {
        let tr = ramp_trace();
        assert!(matches!(tr.voltage("nope"), Err(SpiceError::UnknownSignal { .. })));
    }

    #[test]
    fn extrema_cover_the_record() {
        let tr = ramp_trace();
        assert_eq!(tr.extrema("down").expect("known"), (0.0, 1.0));
    }

    #[test]
    fn csv_renders_all_rows() {
        let tr = ramp_trace();
        let csv = tr.to_csv(&["up", "down"]).expect("known signals");
        assert!(csv.starts_with("time,up,down\n"));
        assert_eq!(csv.lines().count(), 12);
    }
}
