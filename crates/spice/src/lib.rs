//! A compact SPICE-class transient circuit simulator.
//!
//! The paper's Fig. 9 evaluates the RRAM automata-processor kernel with an
//! HSPICE transient simulation of a 256-cell bit-line discharge (32 nm PTM
//! transistors + the ASU RRAM compact model). This crate is the
//! from-scratch substitute: a modified-nodal-analysis (MNA) engine with
//!
//! * linear elements — [resistors](Circuit::add_resistor),
//!   [capacitors](Circuit::add_capacitor) (with initial conditions),
//!   independent [voltage](Circuit::add_vsource) and
//!   [current](Circuit::add_isource) sources driven by [`Waveform`]s, and
//!   time-controlled ideal [switches](Circuit::add_switch);
//! * nonlinear elements — level-1 (Shichman–Hodges) NMOS/PMOS
//!   transistors with channel-length modulation and lumped terminal
//!   capacitances, and any [`MemristiveDevice`] from `memcim-device`
//!   as a two-terminal [memristor element](Circuit::add_memristor);
//! * analyses — Newton–Raphson per timestep with voltage-step damping,
//!   backward-Euler or trapezoidal integration ([`Integration`]),
//!   per-element energy accounting, and `.measure`-style queries on the
//!   recorded [`Trace`] (threshold crossings, extrema, final values).
//!
//! The solver is validated against closed-form RC responses (see the
//! `transient` tests) and is the calibration source for the analytical
//! bit-line model in `memcim-crossbar`.
//!
//! # Examples
//!
//! An RC discharge measured at its 1/e point:
//!
//! ```
//! use memcim_spice::{Circuit, Edge, Integration, Transient, Waveform};
//! use memcim_units::{Farads, Ohms, Seconds, Volts};
//!
//! # fn main() -> Result<(), memcim_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! ckt.add_resistor("R1", a, Circuit::GROUND, Ohms::from_kilohms(1.0))?;
//! ckt.add_capacitor_with_ic("C1", a, Circuit::GROUND,
//!     Farads::from_picofarads(1.0), Volts::new(1.0))?;
//! let trace = Transient::new(Seconds::from_nanoseconds(5.0), Seconds::from_picoseconds(1.0))
//!     .with_integration(Integration::Trapezoidal)
//!     .run(&mut ckt)?;
//! let t = trace.cross_time("a", Volts::new(1.0 / std::f64::consts::E), Edge::Falling, Seconds::ZERO)
//!     .expect("must cross 1/e");
//! assert!((t.as_nanoseconds() - 1.0).abs() < 0.01); // τ = RC = 1 ns
//! # Ok(())
//! # }
//! ```

mod circuit;
mod error;
mod linalg;
mod mosfet;
mod op;
mod trace;
mod transient;
mod waveform;

pub use circuit::{Circuit, Node};
pub use error::SpiceError;
pub use linalg::SolverKind;
pub use mosfet::{MosfetKind, MosfetParams};
pub use op::{operating_point, OperatingPoint};
pub use trace::{Edge, Trace};
pub use transient::{Integration, Transient};
pub use waveform::Waveform;

pub use memcim_device::MemristiveDevice;
