//! Netlist construction: nodes and elements.

use crate::mosfet::{MosfetKind, MosfetParams};
use crate::waveform::Waveform;
use crate::SpiceError;
use memcim_device::MemristiveDevice;
use memcim_units::{Farads, Ohms, Volts};
use std::collections::{HashMap, HashSet};

/// A circuit node handle.
///
/// Obtain nodes from [`Circuit::node`]; the ground reference is
/// [`Circuit::GROUND`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(pub(crate) usize);

/// An element of the netlist.
#[derive(Debug)]
pub(crate) struct Element {
    pub name: String,
    pub kind: ElementKind,
}

pub(crate) enum ElementKind {
    Resistor {
        a: usize,
        b: usize,
        g: f64,
    },
    Capacitor {
        a: usize,
        b: usize,
        c: f64,
    },
    VSource {
        a: usize,
        b: usize,
        w: Waveform,
    },
    ISource {
        a: usize,
        b: usize,
        w: Waveform,
    },
    /// Ideal switch: conducts `g_on` while `control(t) > threshold`,
    /// `g_off` otherwise.
    Switch {
        a: usize,
        b: usize,
        g_on: f64,
        g_off: f64,
        control: Waveform,
        threshold: f64,
    },
    Memristor {
        a: usize,
        b: usize,
        device: Box<dyn MemristiveDevice + Send>,
    },
    Mosfet {
        d: usize,
        g: usize,
        s: usize,
        params: MosfetParams,
        kind: MosfetKind,
    },
}

impl std::fmt::Debug for ElementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElementKind::Resistor { a, b, g } => {
                write!(f, "Resistor({a}-{b}, g={g})")
            }
            ElementKind::Capacitor { a, b, c } => write!(f, "Capacitor({a}-{b}, c={c})"),
            ElementKind::VSource { a, b, .. } => write!(f, "VSource({a}-{b})"),
            ElementKind::ISource { a, b, .. } => write!(f, "ISource({a}-{b})"),
            ElementKind::Switch { a, b, .. } => write!(f, "Switch({a}-{b})"),
            ElementKind::Memristor { a, b, .. } => write!(f, "Memristor({a}-{b})"),
            ElementKind::Mosfet { d, g, s, kind, .. } => {
                write!(f, "Mosfet({kind:?}, d={d} g={g} s={s})")
            }
        }
    }
}

/// A circuit under construction: interned named nodes plus a list of
/// elements.
///
/// # Examples
///
/// ```
/// use memcim_spice::{Circuit, Waveform};
/// use memcim_units::{Ohms, Volts};
///
/// # fn main() -> Result<(), memcim_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vdd = ckt.node("vdd");
/// let out = ckt.node("out");
/// ckt.add_vsource("V1", vdd, Circuit::GROUND, Waveform::dc(Volts::new(1.0)))?;
/// ckt.add_resistor("R1", vdd, out, Ohms::from_kilohms(1.0))?;
/// ckt.add_resistor("R2", out, Circuit::GROUND, Ohms::from_kilohms(1.0))?;
/// assert_eq!(ckt.node_count(), 3); // ground + 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, usize>,
    pub(crate) elements: Vec<Element>,
    element_names: HashSet<String>,
    /// Node-index → initial voltage at `t = 0`.
    pub(crate) initial_conditions: HashMap<usize, f64>,
}

impl Circuit {
    /// The ground (reference) node.
    pub const GROUND: Node = Node(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Self {
            node_names: vec!["0".to_string()],
            name_to_node: HashMap::new(),
            elements: Vec::new(),
            element_names: HashSet::new(),
            initial_conditions: HashMap::new(),
        };
        c.name_to_node.insert("0".to_string(), 0);
        c
    }

    /// Returns the node with the given name, creating it if needed.
    /// The name `"0"` is the ground node.
    pub fn node(&mut self, name: &str) -> Node {
        if let Some(&idx) = self.name_to_node.get(name) {
            return Node(idx);
        }
        let idx = self.node_names.len();
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), idx);
        Node(idx)
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// The name of a node.
    pub fn node_name(&self, node: Node) -> &str {
        &self.node_names[node.0]
    }

    /// Iterates over `(name, Node)` pairs, excluding ground.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, Node)> + '_ {
        self.node_names.iter().enumerate().skip(1).map(|(i, n)| (n.as_str(), Node(i)))
    }

    /// Sets a node's initial voltage for transient analysis.
    pub fn set_initial_voltage(&mut self, node: Node, v: Volts) {
        if node.0 != 0 {
            self.initial_conditions.insert(node.0, v.as_volts());
        }
    }

    fn check_name(&mut self, name: &str) -> Result<(), SpiceError> {
        if !self.element_names.insert(name.to_string()) {
            return Err(SpiceError::DuplicateElement { name: name.to_string() });
        }
        Ok(())
    }

    fn check_node(&self, n: Node) -> Result<usize, SpiceError> {
        if n.0 >= self.node_names.len() {
            return Err(SpiceError::UnknownNode { index: n.0 });
        }
        Ok(n.0)
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] for a non-positive resistance,
    /// [`SpiceError::DuplicateElement`] for a reused name.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        r: Ohms,
    ) -> Result<(), SpiceError> {
        if r.as_ohms().partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SpiceError::InvalidValue {
                element: name.to_string(),
                constraint: "resistance must be > 0",
            });
        }
        let (a, b) = (self.check_node(a)?, self.check_node(b)?);
        self.check_name(name)?;
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::Resistor { a, b, g: 1.0 / r.as_ohms() },
        });
        Ok(())
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] for a non-positive capacitance,
    /// [`SpiceError::DuplicateElement`] for a reused name.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        c: Farads,
    ) -> Result<(), SpiceError> {
        if c.as_farads().partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SpiceError::InvalidValue {
                element: name.to_string(),
                constraint: "capacitance must be > 0",
            });
        }
        let (a, b) = (self.check_node(a)?, self.check_node(b)?);
        self.check_name(name)?;
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::Capacitor { a, b, c: c.as_farads() },
        });
        Ok(())
    }

    /// Adds a capacitor with an initial voltage `v(a) − v(b) = ic` at
    /// `t = 0` (the IC is applied to node `a`, referenced to `b`'s IC or
    /// ground).
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::add_capacitor`].
    pub fn add_capacitor_with_ic(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        c: Farads,
        ic: Volts,
    ) -> Result<(), SpiceError> {
        self.add_capacitor(name, a, b, c)?;
        let base = self.initial_conditions.get(&b.0).copied().unwrap_or(0.0);
        if a.0 != 0 {
            self.initial_conditions.insert(a.0, base + ic.as_volts());
        }
        Ok(())
    }

    /// Adds an independent voltage source with `a` as the positive
    /// terminal.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::DuplicateElement`] for a reused name.
    pub fn add_vsource(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        w: Waveform,
    ) -> Result<(), SpiceError> {
        let (a, b) = (self.check_node(a)?, self.check_node(b)?);
        self.check_name(name)?;
        self.elements
            .push(Element { name: name.to_string(), kind: ElementKind::VSource { a, b, w } });
        Ok(())
    }

    /// Adds an independent current source pushing conventional current
    /// from `a` to `b` through the source (i.e. out of `a`, into `b`).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::DuplicateElement`] for a reused name.
    pub fn add_isource(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        w: Waveform,
    ) -> Result<(), SpiceError> {
        let (a, b) = (self.check_node(a)?, self.check_node(b)?);
        self.check_name(name)?;
        self.elements
            .push(Element { name: name.to_string(), kind: ElementKind::ISource { a, b, w } });
        Ok(())
    }

    /// Adds an ideal time-controlled switch: `r_on` while
    /// `control(t) > threshold`, `r_off` otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] if either resistance is
    /// non-positive.
    #[allow(clippy::too_many_arguments)]
    pub fn add_switch(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        r_on: Ohms,
        r_off: Ohms,
        control: Waveform,
        threshold: Volts,
    ) -> Result<(), SpiceError> {
        if !(r_on.as_ohms() > 0.0 && r_off.as_ohms() > 0.0) {
            return Err(SpiceError::InvalidValue {
                element: name.to_string(),
                constraint: "switch resistances must be > 0",
            });
        }
        let (a, b) = (self.check_node(a)?, self.check_node(b)?);
        self.check_name(name)?;
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::Switch {
                a,
                b,
                g_on: 1.0 / r_on.as_ohms(),
                g_off: 1.0 / r_off.as_ohms(),
                control,
                threshold: threshold.as_volts(),
            },
        });
        Ok(())
    }

    /// Adds a memristive device between `a` (positive terminal) and `b`.
    /// The device's internal state advances with the transient.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::DuplicateElement`] for a reused name.
    pub fn add_memristor(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        device: Box<dyn MemristiveDevice + Send>,
    ) -> Result<(), SpiceError> {
        let (a, b) = (self.check_node(a)?, self.check_node(b)?);
        self.check_name(name)?;
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::Memristor { a, b, device },
        });
        Ok(())
    }

    /// Adds an N-channel MOSFET (drain, gate, source; bulk tied to
    /// ground). Terminal capacitances from the parameter set are expanded
    /// into internal capacitor elements named `{name}:cgs`, `{name}:cgd`,
    /// `{name}:cdb`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] for nonphysical parameters.
    pub fn add_nmos(
        &mut self,
        name: &str,
        d: Node,
        g: Node,
        s: Node,
        params: MosfetParams,
    ) -> Result<(), SpiceError> {
        self.add_mosfet(name, d, g, s, params, MosfetKind::Nmos)
    }

    /// Adds a P-channel MOSFET (drain, gate, source; bulk tied to the
    /// source). See [`Circuit::add_nmos`] for the capacitance expansion.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] for nonphysical parameters.
    pub fn add_pmos(
        &mut self,
        name: &str,
        d: Node,
        g: Node,
        s: Node,
        params: MosfetParams,
    ) -> Result<(), SpiceError> {
        self.add_mosfet(name, d, g, s, params, MosfetKind::Pmos)
    }

    fn add_mosfet(
        &mut self,
        name: &str,
        d: Node,
        g: Node,
        s: Node,
        params: MosfetParams,
        kind: MosfetKind,
    ) -> Result<(), SpiceError> {
        if let Err(constraint) = params.validate() {
            return Err(SpiceError::InvalidValue { element: name.to_string(), constraint });
        }
        let (d_i, g_i, s_i) = (self.check_node(d)?, self.check_node(g)?, self.check_node(s)?);
        self.check_name(name)?;
        self.elements.push(Element {
            name: name.to_string(),
            kind: ElementKind::Mosfet { d: d_i, g: g_i, s: s_i, params, kind },
        });
        // Expand terminal capacitances into explicit linear capacitors so
        // the integrator has a single capacitor code path.
        if params.c_gs > 0.0 {
            self.add_capacitor(&format!("{name}:cgs"), g, s, Farads::new(params.c_gs))?;
        }
        if params.c_gd > 0.0 {
            self.add_capacitor(&format!("{name}:cgd"), g, d, Farads::new(params.c_gd))?;
        }
        if params.c_db > 0.0 {
            self.add_capacitor(&format!("{name}:cdb"), d, Self::GROUND, Farads::new(params.c_db))?;
        }
        Ok(())
    }

    /// The normalized state of a memristor element, if `name` exists and
    /// is a memristor.
    pub fn memristor_state(&self, name: &str) -> Option<f64> {
        self.elements.iter().find(|e| e.name == name).and_then(|e| match &e.kind {
            ElementKind::Memristor { device, .. } => Some(device.normalized_state()),
            _ => None,
        })
    }

    /// Number of independent voltage sources (MNA branch unknowns).
    pub(crate) fn vsource_count(&self) -> usize {
        self.elements.iter().filter(|e| matches!(e.kind, ElementKind::VSource { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_device::{BehavioralSwitch, SwitchParams};

    #[test]
    fn node_interning_is_stable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(c.node("a"), a);
        assert_ne!(a, b);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.node("0"), Circuit::GROUND);
    }

    #[test]
    fn duplicate_element_names_are_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, Ohms::new(1.0)).expect("first");
        let err = c.add_resistor("R1", a, Circuit::GROUND, Ohms::new(2.0)).expect_err("dup");
        assert!(matches!(err, SpiceError::DuplicateElement { .. }));
    }

    #[test]
    fn nonpositive_values_are_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.add_resistor("R", a, Circuit::GROUND, Ohms::new(0.0)).is_err());
        assert!(c.add_capacitor("C", a, Circuit::GROUND, Farads::new(-1.0)).is_err());
    }

    #[test]
    fn mosfet_expands_terminal_capacitors() {
        let mut c = Circuit::new();
        let (d, g, s) = (c.node("d"), c.node("g"), c.node("s"));
        c.add_nmos("M1", d, g, s, MosfetParams::ptm32_access_nmos()).expect("add");
        // Core + three capacitors.
        assert_eq!(c.elements.len(), 4);
        assert!(c.elements.iter().any(|e| e.name == "M1:cdb"));
    }

    #[test]
    fn memristor_state_is_queryable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let mut dev = BehavioralSwitch::new(SwitchParams::paper_fig9());
        dev.program(true).expect("fresh device");
        c.add_memristor("X1", a, Circuit::GROUND, Box::new(dev)).expect("add");
        assert_eq!(c.memristor_state("X1"), Some(1.0));
        assert_eq!(c.memristor_state("nope"), None);
    }

    #[test]
    fn capacitor_ic_chains_through_reference_node() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_capacitor_with_ic("C1", b, Circuit::GROUND, Farads::new(1e-12), Volts::new(0.2))
            .expect("c1");
        c.add_capacitor_with_ic("C2", a, b, Farads::new(1e-12), Volts::new(0.3)).expect("c2");
        assert_eq!(c.initial_conditions[&b.0], 0.2);
        assert!((c.initial_conditions[&a.0] - 0.5).abs() < 1e-12);
    }
}
