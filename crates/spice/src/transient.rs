//! Transient analysis: Newton–Raphson per timestep over MNA.

use crate::circuit::{Circuit, ElementKind};
use crate::linalg::{Matrix, SolverKind};
use crate::mosfet::{evaluate_nmos, MosfetKind, GMIN};
use crate::trace::Trace;
use crate::SpiceError;
use memcim_units::{Seconds, Volts};
use std::collections::HashMap;

/// Numerical integration method for charge-storage elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// First-order, L-stable; the robust default.
    #[default]
    BackwardEuler,
    /// Second-order; preferred for accuracy measurements against
    /// closed-form responses (design decision D4).
    Trapezoidal,
}

/// A fixed-step transient analysis.
///
/// See the crate-level example for typical use. Node initial conditions
/// come from [`Circuit::set_initial_voltage`] /
/// [`Circuit::add_capacitor_with_ic`]; the state at `t = 0` is recorded
/// as-is (no DC operating point is computed — precharged-capacitor
/// circuits, the dominant use case here, start from their ICs exactly as
/// the paper's experiment does).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transient {
    t_stop: f64,
    dt: f64,
    integration: Integration,
    solver: SolverKind,
    max_newton: usize,
    abstol: f64,
    max_step_volts: f64,
}

impl Transient {
    /// Creates an analysis running to `t_stop` with fixed step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` or `dt` is not strictly positive, or if `dt`
    /// exceeds `t_stop`.
    pub fn new(t_stop: Seconds, dt: Seconds) -> Self {
        assert!(t_stop.as_seconds() > 0.0, "t_stop must be > 0");
        assert!(dt.as_seconds() > 0.0, "dt must be > 0");
        assert!(dt.as_seconds() <= t_stop.as_seconds(), "dt must not exceed t_stop");
        Self {
            t_stop: t_stop.as_seconds(),
            dt: dt.as_seconds(),
            integration: Integration::BackwardEuler,
            solver: SolverKind::default(),
            max_newton: 100,
            abstol: 1.0e-9,
            max_step_volts: 0.5,
        }
    }

    /// Selects the integration method.
    #[must_use]
    pub fn with_integration(mut self, integration: Integration) -> Self {
        self.integration = integration;
        self
    }

    /// Selects the linear solver policy ([`SolverKind::Auto`] by
    /// default). [`SolverKind::DenseLu`] disables the tridiagonal fast
    /// path — useful for cross-validating the two factorizations on the
    /// same netlist, as the Fig. 9 calibration test does.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the Newton iteration budget per timestep.
    #[must_use]
    pub fn with_max_newton(mut self, max_newton: usize) -> Self {
        self.max_newton = max_newton.max(2);
        self
    }

    /// Runs the analysis, advancing memristor states inside the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] for floating nodes or
    /// voltage-source loops and [`SpiceError::NonConvergence`] if Newton
    /// fails within its iteration budget.
    pub fn run(&self, ckt: &mut Circuit) -> Result<Trace, SpiceError> {
        let n_nodes = ckt.node_count(); // includes ground
        let n = n_nodes - 1;
        let m = ckt.vsource_count();
        let dim = n + m;
        let h = self.dt;

        // Row index for a node (ground has none).
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };

        // Assign branch indices to voltage sources in element order.
        let mut branch_of = HashMap::new();
        {
            let mut next = 0usize;
            for (ei, e) in ckt.elements.iter().enumerate() {
                if matches!(e.kind, ElementKind::VSource { .. }) {
                    branch_of.insert(ei, n + next);
                    next += 1;
                }
            }
        }

        // Solution vector: node voltages then branch currents.
        let mut x = vec![0.0; dim];
        for (&node, &v) in &ckt.initial_conditions {
            if let Some(r) = row(node) {
                x[r] = v;
            }
        }

        // Per-capacitor integration state (v across, current through).
        let mut cap_v: HashMap<usize, f64> = HashMap::new();
        let mut cap_i: HashMap<usize, f64> = HashMap::new();
        let volt_at = |x: &[f64], node: usize| -> f64 {
            if node == 0 {
                0.0
            } else {
                x[node - 1]
            }
        };
        for (ei, e) in ckt.elements.iter().enumerate() {
            if let ElementKind::Capacitor { a, b, .. } = e.kind {
                cap_v.insert(ei, volt_at(&x, a) - volt_at(&x, b));
                cap_i.insert(ei, 0.0);
            }
        }

        // Energy accounting.
        let mut prev_power = vec![0.0; ckt.elements.len()];
        let mut prev_delivered = vec![0.0; ckt.elements.len()];
        let mut dissipated: HashMap<String, f64> = HashMap::new();
        let mut delivered: HashMap<String, f64> = HashMap::new();

        // Trace setup.
        let mut trace = Trace::default();
        let node_list: Vec<(String, usize)> =
            ckt.nodes().map(|(name, node)| (name.to_string(), node.0)).collect();
        for (name, _) in &node_list {
            trace.signals.insert(name.clone(), Vec::new());
        }
        let vsrc_list: Vec<(String, usize)> = ckt
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, ElementKind::VSource { .. }))
            .map(|(ei, e)| (format!("I({})", e.name), branch_of[&ei]))
            .collect();
        for (name, _) in &vsrc_list {
            trace.signals.insert(name.clone(), Vec::new());
        }
        let record = |trace: &mut Trace, t: f64, x: &[f64]| {
            trace.time.push(t);
            for (name, node) in &node_list {
                trace.signals.get_mut(name).expect("registered").push(if *node == 0 {
                    0.0
                } else {
                    x[*node - 1]
                });
            }
            for (name, br) in &vsrc_list {
                trace.signals.get_mut(name).expect("registered").push(x[*br]);
            }
        };
        record(&mut trace, 0.0, &x);

        let mut a_mat = Matrix::zeros(dim);
        let mut rhs = vec![0.0; dim];
        let steps = (self.t_stop / h).round() as usize;

        for step in 1..=steps {
            let t = step as f64 * h;
            // The capacitor branch current at t = 0 is unknown (no DC
            // operating point is computed), so trapezoidal integration
            // would start from an inconsistent history and ring without
            // damping. Take the first step with backward Euler, which
            // needs no current history, then hand over.
            let integration = if step == 1 { Integration::BackwardEuler } else { self.integration };

            // Newton iteration at this timestep.
            let mut converged = false;
            let mut residual = f64::INFINITY;
            for _ in 0..self.max_newton {
                a_mat.clear();
                rhs.fill(0.0);

                for (ei, e) in ckt.elements.iter().enumerate() {
                    match &e.kind {
                        ElementKind::Resistor { a, b, g } => {
                            stamp_conductance(&mut a_mat, *a, *b, *g);
                        }
                        ElementKind::Switch { a, b, g_on, g_off, control, threshold } => {
                            let g = if control.evaluate(t) > *threshold { *g_on } else { *g_off };
                            stamp_conductance(&mut a_mat, *a, *b, g);
                        }
                        ElementKind::Capacitor { a, b, c } => {
                            let (geq, hist) = match integration {
                                Integration::BackwardEuler => {
                                    let geq = c / h;
                                    (geq, geq * cap_v[&ei])
                                }
                                Integration::Trapezoidal => {
                                    let geq = 2.0 * c / h;
                                    (geq, geq * cap_v[&ei] + cap_i[&ei])
                                }
                            };
                            stamp_conductance(&mut a_mat, *a, *b, geq);
                            if let Some(r) = row(*a) {
                                rhs[r] += hist;
                            }
                            if let Some(r) = row(*b) {
                                rhs[r] -= hist;
                            }
                        }
                        ElementKind::VSource { a, b, w } => {
                            let br = branch_of[&ei];
                            if let Some(r) = row(*a) {
                                a_mat.add(r, br, 1.0);
                                a_mat.add(br, r, 1.0);
                            }
                            if let Some(r) = row(*b) {
                                a_mat.add(r, br, -1.0);
                                a_mat.add(br, r, -1.0);
                            }
                            rhs[br] = w.evaluate(t);
                        }
                        ElementKind::ISource { a, b, w } => {
                            let i = w.evaluate(t);
                            if let Some(r) = row(*a) {
                                rhs[r] -= i;
                            }
                            if let Some(r) = row(*b) {
                                rhs[r] += i;
                            }
                        }
                        ElementKind::Memristor { a, b, device } => {
                            let v0 = volt_at(&x, *a) - volt_at(&x, *b);
                            let i0 = device.current(Volts::new(v0)).as_amps();
                            let g = device.conductance(Volts::new(v0)).as_siemens().max(GMIN);
                            let ieq = i0 - g * v0;
                            stamp_conductance(&mut a_mat, *a, *b, g);
                            if let Some(r) = row(*a) {
                                rhs[r] -= ieq;
                            }
                            if let Some(r) = row(*b) {
                                rhs[r] += ieq;
                            }
                        }
                        ElementKind::Mosfet { d, g, s, params, kind } => {
                            stamp_mosfet(&mut a_mat, &mut rhs, &x, *d, *g, *s, params, *kind);
                        }
                    }
                }

                let mut x_new = rhs.clone();
                if a_mat.solve_in_place(&mut x_new, self.solver).is_none() {
                    return Err(SpiceError::SingularMatrix { time: t });
                }

                residual = x_new
                    .iter()
                    .zip(&x)
                    .take(n)
                    .map(|(new, old)| (new - old).abs())
                    .fold(0.0, f64::max);

                if residual < self.abstol {
                    x = x_new;
                    converged = true;
                    break;
                }
                // Damped update: limit per-iteration node-voltage motion
                // so sinh-type device curves cannot fling Newton off.
                for k in 0..dim {
                    let delta = x_new[k] - x[k];
                    let limited = if k < n {
                        delta.clamp(-self.max_step_volts, self.max_step_volts)
                    } else {
                        delta
                    };
                    x[k] += limited;
                }
            }
            if !converged {
                return Err(SpiceError::NonConvergence { time: t, residual });
            }

            // Accept the step: advance storage elements and device states,
            // integrate energies.
            for (ei, e) in ckt.elements.iter_mut().enumerate() {
                let (power, deliv) = match &mut e.kind {
                    ElementKind::Resistor { a, b, g } => {
                        let v = volt_at(&x, *a) - volt_at(&x, *b);
                        (*g * v * v, 0.0)
                    }
                    ElementKind::Switch { a, b, g_on, g_off, control, threshold } => {
                        let g = if control.evaluate(t) > *threshold { *g_on } else { *g_off };
                        let v = volt_at(&x, *a) - volt_at(&x, *b);
                        (g * v * v, 0.0)
                    }
                    ElementKind::Capacitor { a, b, c } => {
                        let v_now = volt_at(&x, *a) - volt_at(&x, *b);
                        let v_old = cap_v[&ei];
                        let i_now = match integration {
                            Integration::BackwardEuler => *c / h * (v_now - v_old),
                            Integration::Trapezoidal => 2.0 * *c / h * (v_now - v_old) - cap_i[&ei],
                        };
                        cap_v.insert(ei, v_now);
                        cap_i.insert(ei, i_now);
                        (0.0, 0.0)
                    }
                    ElementKind::VSource { w, .. } => {
                        let i_br = x[branch_of[&ei]];
                        let v = w.evaluate(t);
                        (0.0, -v * i_br)
                    }
                    ElementKind::ISource { a, b, w } => {
                        let i = w.evaluate(t);
                        let v = volt_at(&x, *a) - volt_at(&x, *b);
                        // Pushing current a→b against v(a,b): delivers −v·i.
                        (0.0, -v * i)
                    }
                    ElementKind::Memristor { a, b, device } => {
                        let v = volt_at(&x, *a) - volt_at(&x, *b);
                        let p = v * device.current(Volts::new(v)).as_amps();
                        device.step(Volts::new(v), Seconds::new(h));
                        (p, 0.0)
                    }
                    ElementKind::Mosfet { d, g, s, params, kind } => {
                        let (vgs, vds) = match kind {
                            MosfetKind::Nmos => (
                                volt_at(&x, *g) - volt_at(&x, *s),
                                volt_at(&x, *d) - volt_at(&x, *s),
                            ),
                            MosfetKind::Pmos => (
                                volt_at(&x, *s) - volt_at(&x, *g),
                                volt_at(&x, *s) - volt_at(&x, *d),
                            ),
                        };
                        let op = evaluate_nmos(params, vgs, vds);
                        (op.ids.abs() * vds.abs(), 0.0)
                    }
                };
                // Trapezoidal energy integration per element.
                let e_diss = 0.5 * (prev_power[ei] + power) * h;
                let e_del = 0.5 * (prev_delivered[ei] + deliv) * h;
                prev_power[ei] = power;
                prev_delivered[ei] = deliv;
                if e_diss != 0.0 || power != 0.0 {
                    *dissipated.entry(e.name.clone()).or_insert(0.0) += e_diss;
                }
                if e_del != 0.0 || deliv != 0.0 {
                    *delivered.entry(e.name.clone()).or_insert(0.0) += e_del;
                }
            }

            record(&mut trace, t, &x);
        }

        trace.dissipated = dissipated;
        trace.delivered = delivered;
        Ok(trace)
    }
}

/// Stamps a two-terminal conductance into the MNA matrix.
fn stamp_conductance(a_mat: &mut Matrix, a: usize, b: usize, g: f64) {
    if a != 0 {
        a_mat.add(a - 1, a - 1, g);
    }
    if b != 0 {
        a_mat.add(b - 1, b - 1, g);
    }
    if a != 0 && b != 0 {
        a_mat.add(a - 1, b - 1, -g);
        a_mat.add(b - 1, a - 1, -g);
    }
}

/// Stamps a linearized MOSFET. The channel current is expressed as a
/// function of the three terminal voltages; `out` is the terminal the
/// current leaves, `in_` the terminal it enters.
#[allow(clippy::too_many_arguments)]
fn stamp_mosfet(
    a_mat: &mut Matrix,
    rhs: &mut [f64],
    x: &[f64],
    d: usize,
    g: usize,
    s: usize,
    params: &crate::mosfet::MosfetParams,
    kind: MosfetKind,
) {
    let volt = |node: usize| -> f64 {
        if node == 0 {
            0.0
        } else {
            x[node - 1]
        }
    };
    let (vd, vg, vs) = (volt(d), volt(g), volt(s));

    // Express the channel current I leaving `out`, with partial
    // derivatives w.r.t. (vd, vg, vs).
    let (out, in_, i0, di_dd, di_dg, di_ds) = match kind {
        MosfetKind::Nmos => {
            let op = evaluate_nmos(params, vg - vs, vd - vs);
            // I = Ids(vgs, vds): ∂/∂vd = gds, ∂/∂vg = gm, ∂/∂vs = −gm−gds.
            (d, s, op.ids, op.gds, op.gm, -op.gm - op.gds)
        }
        MosfetKind::Pmos => {
            let op = evaluate_nmos(params, vs - vg, vs - vd);
            // I flows source→drain: I = Ids'(vsg, vsd):
            // ∂/∂vs = gm' + gds', ∂/∂vg = −gm', ∂/∂vd = −gds'.
            (s, d, op.ids, -op.gds, -op.gm, op.gm + op.gds)
        }
    };

    let ieq = i0 - di_dd * vd - di_dg * vg - di_ds * vs;
    let mut stamp_row = |node: usize, sign: f64| {
        if node == 0 {
            return;
        }
        let r = node - 1;
        if d != 0 {
            a_mat.add(r, d - 1, sign * di_dd);
        }
        if g != 0 {
            a_mat.add(r, g - 1, sign * di_dg);
        }
        if s != 0 {
            a_mat.add(r, s - 1, sign * di_ds);
        }
        rhs[r] -= sign * ieq;
    };
    stamp_row(out, 1.0);
    stamp_row(in_, -1.0);

    // GMIN drain–source keeps cutoff devices from floating their nodes.
    stamp_conductance(a_mat, d, s, GMIN);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::mosfet::MosfetParams;
    use crate::trace::Edge;
    use crate::waveform::Waveform;
    use memcim_device::{
        BehavioralSwitch, MemristiveDevice, StanfordAsu, StanfordParams, SwitchParams,
    };
    use memcim_units::{Farads, Ohms};

    const GND: crate::circuit::Node = Circuit::GROUND;

    #[test]
    fn resistive_divider_solves_exactly() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, GND, Waveform::dc(Volts::new(1.0))).expect("v1");
        ckt.add_resistor("R1", vin, out, Ohms::from_kilohms(1.0)).expect("r1");
        ckt.add_resistor("R2", out, GND, Ohms::from_kilohms(3.0)).expect("r2");
        let tr = Transient::new(Seconds::from_nanoseconds(1.0), Seconds::from_picoseconds(100.0))
            .run(&mut ckt)
            .expect("run");
        assert!((tr.final_value("out").expect("out") - 0.75).abs() < 1e-9);
        // Branch current: 1 V across 4 kΩ = 0.25 mA, flowing into the
        // source's + terminal with negative sign.
        assert!((tr.final_value("I(V1)").expect("cur") + 0.25e-3).abs() < 1e-9);
    }

    #[test]
    fn rc_discharge_matches_closed_form() {
        // τ = 1 kΩ · 1 pF = 1 ns; v(t) = exp(−t/τ).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("R", a, GND, Ohms::from_kilohms(1.0)).expect("r");
        ckt.add_capacitor_with_ic("C", a, GND, Farads::from_picofarads(1.0), Volts::new(1.0))
            .expect("c");
        let tr = Transient::new(Seconds::from_nanoseconds(3.0), Seconds::from_picoseconds(1.0))
            .with_integration(Integration::Trapezoidal)
            .run(&mut ckt)
            .expect("run");
        for (frac, t_ns) in [(0.5_f64, std::f64::consts::LN_2), (1.0 / std::f64::consts::E, 1.0)] {
            let t = tr
                .cross_time("a", Volts::new(frac), Edge::Falling, Seconds::ZERO)
                .expect("crossing");
            assert!(
                (t.as_nanoseconds() - t_ns).abs() < 0.005,
                "level {frac}: t = {} ns",
                t.as_nanoseconds()
            );
        }
    }

    #[test]
    fn backward_euler_is_less_accurate_but_stable() {
        // Design decision D4: measure the integrator error directly.
        let run = |integration: Integration, dt_ps: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            ckt.add_resistor("R", a, GND, Ohms::from_kilohms(1.0)).expect("r");
            ckt.add_capacitor_with_ic("C", a, GND, Farads::from_picofarads(1.0), Volts::new(1.0))
                .expect("c");
            let tr =
                Transient::new(Seconds::from_nanoseconds(1.0), Seconds::from_picoseconds(dt_ps))
                    .with_integration(integration)
                    .run(&mut ckt)
                    .expect("run");
            let v = tr.final_value("a").expect("a");
            (v - (-1.0_f64).exp()).abs()
        };
        let be = run(Integration::BackwardEuler, 10.0);
        let trap = run(Integration::Trapezoidal, 10.0);
        assert!(trap < be / 10.0, "trap err {trap} vs BE err {be}");
        // BE halves its error roughly linearly with dt (first order).
        let be_fine = run(Integration::BackwardEuler, 5.0);
        let ratio = be / be_fine;
        assert!((1.6..2.6).contains(&ratio), "BE order ratio = {ratio}");
    }

    #[test]
    fn rc_charge_through_step_source() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource(
            "V1",
            vin,
            GND,
            Waveform::step(
                Volts::ZERO,
                Volts::new(1.0),
                Seconds::from_nanoseconds(1.0),
                Seconds::from_picoseconds(1.0),
            ),
        )
        .expect("v1");
        ckt.add_resistor("R", vin, out, Ohms::from_kilohms(1.0)).expect("r");
        ckt.add_capacitor("C", out, GND, Farads::from_picofarads(1.0)).expect("c");
        let tr = Transient::new(Seconds::from_nanoseconds(6.0), Seconds::from_picoseconds(2.0))
            .with_integration(Integration::Trapezoidal)
            .run(&mut ckt)
            .expect("run");
        // 63.2 % at t = delay + τ.
        let v_at_tau = tr.value_at("out", Seconds::from_nanoseconds(2.0)).expect("v");
        assert!((v_at_tau - 0.632).abs() < 0.01, "v(τ) = {v_at_tau}");
        // Energy balance: source delivers C·V² = 1 pJ; half is stored,
        // half dissipated in the resistor.
        let e_r = tr.dissipated_energy("R").as_joules();
        assert!((e_r - 0.5e-12).abs() < 0.02e-12, "E_R = {e_r}");
        let e_src = tr.delivered_energy("V1").as_joules();
        assert!((e_src - 1.0e-12).abs() < 0.04e-12, "E_src = {e_src}");
    }

    #[test]
    fn floating_node_reports_singular_matrix() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        // `b` floats: only one resistor terminal touches it... and nothing
        // else. Actually wire a–b resistor and leave both unconnected to
        // any source or ground: the whole subcircuit floats.
        ckt.add_resistor("R", a, b, Ohms::new(1.0)).expect("r");
        let err = Transient::new(Seconds::from_nanoseconds(1.0), Seconds::from_picoseconds(100.0))
            .run(&mut ckt)
            .expect_err("floating");
        assert!(matches!(err, SpiceError::SingularMatrix { .. }));
    }

    #[test]
    fn nmos_inverter_switches() {
        // NMOS pulldown with resistor load: gate high → out low.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("gate");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, GND, Waveform::dc(Volts::new(1.0))).expect("vdd");
        ckt.add_vsource(
            "VG",
            gate,
            GND,
            Waveform::step(
                Volts::ZERO,
                Volts::new(1.0),
                Seconds::from_nanoseconds(1.0),
                Seconds::from_picoseconds(10.0),
            ),
        )
        .expect("vg");
        ckt.add_resistor("RL", vdd, out, Ohms::from_kilohms(100.0)).expect("rl");
        ckt.add_nmos("M1", out, gate, GND, MosfetParams::ptm32_access_nmos()).expect("m1");
        let tr = Transient::new(Seconds::from_nanoseconds(4.0), Seconds::from_picoseconds(2.0))
            .run(&mut ckt)
            .expect("run");
        // Before the edge the pulldown is off: out ≈ VDD.
        assert!(tr.value_at("out", Seconds::from_nanoseconds(0.9)).expect("v") > 0.95);
        // Well after the edge: out pulled to ≈ R_on/(R_on+RL) · VDD ≈ 32 mV.
        let v_low = tr.final_value("out").expect("v");
        assert!(v_low < 0.06, "v_low = {v_low}");
    }

    #[test]
    fn pmos_pullup_mirrors_nmos() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("gate");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, GND, Waveform::dc(Volts::new(1.0))).expect("vdd");
        // Gate low → PMOS on.
        ckt.add_vsource("VG", gate, GND, Waveform::dc(Volts::ZERO)).expect("vg");
        ckt.add_pmos("M1", out, gate, vdd, MosfetParams::ptm32_access_nmos()).expect("m1");
        ckt.add_resistor("RL", out, GND, Ohms::from_kilohms(100.0)).expect("rl");
        let tr = Transient::new(Seconds::from_nanoseconds(3.0), Seconds::from_picoseconds(2.0))
            .run(&mut ckt)
            .expect("run");
        let v = tr.final_value("out").expect("v");
        assert!(v > 0.94, "pull-up failed: out = {v}");
    }

    #[test]
    fn switch_connects_and_disconnects() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, GND, Waveform::dc(Volts::new(1.0))).expect("v1");
        ckt.add_switch(
            "S1",
            vin,
            out,
            Ohms::new(1.0),
            Ohms::from_megohms(1.0e6),
            Waveform::pulse(
                Volts::ZERO,
                Volts::new(1.0),
                Seconds::from_nanoseconds(1.0),
                Seconds::from_nanoseconds(1.0),
                Seconds::from_picoseconds(1.0),
            ),
            Volts::new(0.5),
        )
        .expect("s1");
        ckt.add_resistor("RL", out, GND, Ohms::from_kilohms(1.0)).expect("rl");
        let tr = Transient::new(Seconds::from_nanoseconds(4.0), Seconds::from_picoseconds(5.0))
            .run(&mut ckt)
            .expect("run");
        assert!(tr.value_at("out", Seconds::from_nanoseconds(0.5)).expect("v") < 0.01);
        assert!(tr.value_at("out", Seconds::from_nanoseconds(1.5)).expect("v") > 0.99);
        assert!(tr.value_at("out", Seconds::from_nanoseconds(3.5)).expect("v") < 0.01);
    }

    #[test]
    fn memristor_behaves_as_programmed_resistor_below_threshold() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, GND, Waveform::dc(Volts::new(0.4))).expect("v1");
        ckt.add_resistor("R1", vin, out, Ohms::from_kilohms(1.0)).expect("r1");
        let mut cell = BehavioralSwitch::new(SwitchParams::paper_fig9());
        cell.program(true).expect("program");
        ckt.add_memristor("X1", out, GND, Box::new(cell)).expect("x1");
        let tr = Transient::new(Seconds::from_nanoseconds(2.0), Seconds::from_picoseconds(10.0))
            .run(&mut ckt)
            .expect("run");
        // 1 kΩ / (1 kΩ + 1 kΩ) divider.
        assert!((tr.final_value("out").expect("v") - 0.2).abs() < 1e-6);
        // Read is non-destructive.
        assert_eq!(ckt.memristor_state("X1"), Some(1.0));
    }

    #[test]
    fn stanford_cell_sets_during_transient() {
        // Drive a full SET through the nonlinear sinh device inside the
        // solver: Newton must converge with damping.
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource(
            "V1",
            vin,
            GND,
            Waveform::step(
                Volts::ZERO,
                Volts::new(2.0),
                Seconds::from_nanoseconds(1.0),
                Seconds::from_picoseconds(100.0),
            ),
        )
        .expect("v1");
        ckt.add_resistor("R1", vin, out, Ohms::from_kilohms(10.0)).expect("r1");
        let mut cell = StanfordAsu::new(StanfordParams::default());
        cell.set_normalized_state(0.0);
        ckt.add_memristor("X1", out, GND, Box::new(cell)).expect("x1");
        let tr = Transient::new(Seconds::from_nanoseconds(80.0), Seconds::from_picoseconds(20.0))
            .run(&mut ckt)
            .expect("newton must converge");
        let final_state = ckt.memristor_state("X1").expect("memristor");
        assert!(final_state > 0.9, "state = {final_state}");
        // After SET the 1 kΩ-class device forms a divider with 10 kΩ:
        // out collapses towards ~0.2 V.
        assert!(tr.final_value("out").expect("v") < 0.5);
    }

    #[test]
    fn energy_conservation_on_rc_cycle() {
        // Charge then discharge a capacitor through resistors: all energy
        // delivered by the source ends up dissipated (cap returns to 0 V).
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource(
            "V1",
            vin,
            GND,
            Waveform::pulse(
                Volts::ZERO,
                Volts::new(1.0),
                Seconds::from_nanoseconds(1.0),
                Seconds::from_nanoseconds(20.0),
                Seconds::from_picoseconds(10.0),
            ),
        )
        .expect("v1");
        ckt.add_resistor("R1", vin, out, Ohms::from_kilohms(1.0)).expect("r1");
        ckt.add_capacitor("C1", out, GND, Farads::from_picofarads(1.0)).expect("c1");
        let tr = Transient::new(Seconds::from_nanoseconds(50.0), Seconds::from_picoseconds(10.0))
            .with_integration(Integration::Trapezoidal)
            .run(&mut ckt)
            .expect("run");
        assert!(tr.final_value("out").expect("v").abs() < 1e-3);
        let delivered = tr.total_delivered_energy().as_joules();
        let dissipated = tr.total_dissipated_energy().as_joules();
        assert!(
            (delivered - dissipated).abs() < 0.03 * delivered.abs().max(1e-15),
            "delivered {delivered} vs dissipated {dissipated}"
        );
    }
}
