//! Level-1 (Shichman–Hodges) MOSFET model with 32 nm-class parameters.

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosfetKind {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Level-1 MOSFET parameters.
///
/// The defaults are calibrated to 32 nm PTM-class behaviour for the
/// bit-line experiments of the paper's Fig. 9: a minimum-size NMOS access
/// transistor presents ≈3.3 kΩ of on-resistance at `Vgs = 1.0 V` in deep
/// triode, which together with the 1 kΩ RRAM ON resistance and the lumped
/// bit-line capacitance reproduces the ≈100 ps discharge class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Threshold voltage magnitude, volts.
    pub vth: f64,
    /// Transconductance factor `β = µ·Cox·W/L`, A/V².
    pub beta: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Lumped gate–source capacitance, farads.
    pub c_gs: f64,
    /// Lumped gate–drain capacitance, farads.
    pub c_gd: f64,
    /// Drain–bulk junction capacitance (to ground), farads.
    pub c_db: f64,
}

impl MosfetParams {
    /// A 32 nm-class minimum-width access NMOS (the 1T1R cell transistor):
    /// `Ron ≈ 1/(β·(Vgs−Vth)) ≈ 3.3 kΩ` at `Vgs = 1 V`.
    pub fn ptm32_access_nmos() -> Self {
        Self {
            vth: 0.5,
            beta: 6.1e-4,
            lambda: 0.05,
            c_gs: 30.0e-18,
            c_gd: 20.0e-18,
            c_db: 45.0e-18,
        }
    }

    /// A wider read-port NMOS as used in the 8T SRAM cell of the Cache
    /// Automaton comparison (≈2.5× the access device): lower on-resistance
    /// per transistor but proportionally larger parasitic capacitance.
    pub fn ptm32_readport_nmos() -> Self {
        Self {
            vth: 0.5,
            beta: 1.5e-3,
            lambda: 0.05,
            c_gs: 75.0e-18,
            c_gd: 50.0e-18,
            c_db: 112.0e-18,
        }
    }

    /// On-resistance estimate in deep triode at the given gate overdrive.
    pub fn triode_resistance(&self, vgs: f64) -> f64 {
        let vov = (vgs - self.vth).max(1.0e-12);
        1.0 / (self.beta * vov)
    }

    pub(crate) fn validate(&self) -> Result<(), &'static str> {
        if self.beta <= 0.0 {
            return Err("beta must be > 0");
        }
        if self.vth <= 0.0 {
            return Err("vth magnitude must be > 0");
        }
        if self.lambda < 0.0 {
            return Err("lambda must be >= 0");
        }
        if self.c_gs < 0.0 || self.c_gd < 0.0 || self.c_db < 0.0 {
            return Err("capacitances must be >= 0");
        }
        Ok(())
    }
}

/// Operating-point evaluation result: drain current and the two
/// small-signal derivatives needed for the Newton stamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MosfetOp {
    /// Drain current (positive = conventional current drain→source for
    /// NMOS with `vds ≥ 0`), amperes.
    pub ids: f64,
    /// `∂Ids/∂Vgs`.
    pub gm: f64,
    /// `∂Ids/∂Vds`.
    pub gds: f64,
}

/// Minimum conductance added drain–source for convergence.
pub(crate) const GMIN: f64 = 1.0e-12;

/// Evaluates the level-1 equations for an NMOS-referred device
/// (`vgs`, `vds` already polarity-corrected by the caller).
///
/// Handles `vds < 0` by source/drain symmetry.
pub(crate) fn evaluate_nmos(params: &MosfetParams, vgs: f64, vds: f64) -> MosfetOp {
    if vds < 0.0 {
        // Swap drain and source: the device conducts symmetrically.
        // With roles swapped: vgs' = vgs − vds, vds' = −vds.
        let sw = evaluate_nmos(params, vgs - vds, -vds);
        // Map derivatives back: Ids = −Ids'(vgs − vds, −vds).
        // ∂/∂vgs = −gm'; ∂/∂vds = −(−gm' − gds')·(−1)... derive carefully:
        // I(vgs, vds) = −I'(vgs − vds, −vds)
        // ∂I/∂vgs = −gm'
        // ∂I/∂vds = −(gm'·(−1) + gds'·(−1)) = gm' + gds'
        return MosfetOp { ids: -sw.ids, gm: -sw.gm, gds: sw.gm + sw.gds };
    }
    let vov = vgs - params.vth;
    if vov <= 0.0 {
        // Cutoff: leakage handled by GMIN stamped separately.
        return MosfetOp { ids: 0.0, gm: 0.0, gds: 0.0 };
    }
    let clm = 1.0 + params.lambda * vds;
    if vds < vov {
        // Triode.
        let core = vov * vds - 0.5 * vds * vds;
        MosfetOp {
            ids: params.beta * core * clm,
            gm: params.beta * vds * clm,
            gds: params.beta * ((vov - vds) * clm + core * params.lambda),
        }
    } else {
        // Saturation.
        let half = 0.5 * params.beta * vov * vov;
        MosfetOp { ids: half * clm, gm: params.beta * vov * clm, gds: half * params.lambda }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> MosfetParams {
        MosfetParams::ptm32_access_nmos()
    }

    #[test]
    fn cutoff_carries_no_current() {
        let op = evaluate_nmos(&p(), 0.3, 0.5);
        assert_eq!(op.ids, 0.0);
        assert_eq!(op.gm, 0.0);
    }

    #[test]
    fn triode_resistance_matches_target() {
        // Deep triode at Vgs = 1.0 V: R ≈ 1/(β·0.5) ≈ 3.28 kΩ.
        let r = p().triode_resistance(1.0);
        assert!((r - 3278.0).abs() / 3278.0 < 0.01, "r = {r}");
        // Small-signal check from the model itself.
        let op = evaluate_nmos(&p(), 1.0, 0.001);
        let r_model = 0.001 / op.ids;
        assert!((r_model - r).abs() / r < 0.05, "model r = {r_model}");
    }

    #[test]
    fn saturation_current_is_quadratic_in_overdrive() {
        let i1 = evaluate_nmos(&p(), 0.7, 1.0).ids;
        let i2 = evaluate_nmos(&p(), 0.9, 1.0).ids;
        // (0.4/0.2)² = 4, modulated slightly by lambda.
        assert!((i2 / i1 - 4.0).abs() < 0.1, "ratio = {}", i2 / i1);
    }

    #[test]
    fn current_is_continuous_at_the_triode_saturation_boundary() {
        let vgs = 0.9;
        let vds_edge = vgs - p().vth; // 0.4
        let below = evaluate_nmos(&p(), vgs, vds_edge - 1e-9);
        let above = evaluate_nmos(&p(), vgs, vds_edge + 1e-9);
        assert!((below.ids - above.ids).abs() < 1e-9 * below.ids.max(1e-12));
        assert!((below.gm - above.gm).abs() / below.gm < 1e-6);
    }

    #[test]
    fn gm_and_gds_match_finite_differences() {
        let h = 1e-7;
        for (vgs, vds) in [(0.8, 0.1), (0.9, 0.6), (1.0, 0.05), (0.7, 0.3)] {
            let op = evaluate_nmos(&p(), vgs, vds);
            let fd_gm = (evaluate_nmos(&p(), vgs + h, vds).ids
                - evaluate_nmos(&p(), vgs - h, vds).ids)
                / (2.0 * h);
            let fd_gds = (evaluate_nmos(&p(), vgs, vds + h).ids
                - evaluate_nmos(&p(), vgs, vds - h).ids)
                / (2.0 * h);
            assert!((op.gm - fd_gm).abs() < 1e-4 * fd_gm.abs().max(1e-9), "gm at {vgs},{vds}");
            assert!((op.gds - fd_gds).abs() < 1e-4 * fd_gds.abs().max(1e-9), "gds at {vgs},{vds}");
        }
    }

    #[test]
    fn reverse_vds_is_antisymmetric_for_symmetric_bias() {
        // With vgs measured gate-to-(lower terminal), a symmetric device:
        // I(vgs, −vds) relates to the swapped evaluation. Check current
        // direction flips and finite-difference derivatives agree.
        let op = evaluate_nmos(&p(), 1.0, -0.2);
        assert!(op.ids < 0.0);
        let h = 1e-7;
        let fd_gds = (evaluate_nmos(&p(), 1.0, -0.2 + h).ids
            - evaluate_nmos(&p(), 1.0, -0.2 - h).ids)
            / (2.0 * h);
        assert!((op.gds - fd_gds).abs() < 1e-4 * fd_gds.abs(), "gds = {}, fd = {fd_gds}", op.gds);
        let fd_gm = (evaluate_nmos(&p(), 1.0 + h, -0.2).ids
            - evaluate_nmos(&p(), 1.0 - h, -0.2).ids)
            / (2.0 * h);
        assert!(
            (op.gm - fd_gm).abs() < 1e-4 * fd_gm.abs().max(1e-9),
            "gm = {}, fd = {fd_gm}",
            op.gm
        );
    }

    #[test]
    fn readport_device_is_stronger_than_access_device() {
        let access = MosfetParams::ptm32_access_nmos();
        let port = MosfetParams::ptm32_readport_nmos();
        assert!(port.triode_resistance(1.0) < access.triode_resistance(1.0) / 2.0);
        // ...but carries proportionally more parasitic capacitance.
        assert!(port.c_db > 2.0 * access.c_db);
    }

    #[test]
    fn validation_rejects_nonphysical_parameters() {
        let mut bad = p();
        bad.beta = -1.0;
        assert!(bad.validate().is_err());
        let mut bad2 = p();
        bad2.c_gs = -1.0e-18;
        assert!(bad2.validate().is_err());
        assert!(p().validate().is_ok());
    }
}
