//! Homogeneous automata and their matrix projection (paper Fig. 5b/6).

use crate::{Nfa, StateId, SymbolClass};
use memcim_bits::{BitMatrix, BitVec};

/// How a state participates in automaton start-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartKind {
    /// Not a start state.
    #[default]
    None,
    /// Enabled only for the first input symbol (anchored matching — the
    /// paper's `q₀` semantics).
    StartOfInput,
    /// Re-enabled at every input symbol (unanchored scanning, as in the
    /// Micron AP's "all-input" STEs).
    AllInput,
}

/// One homogeneous state: reachable only on its own symbol class.
#[derive(Debug, Clone, PartialEq)]
struct HState {
    class: SymbolClass,
    accept: bool,
    start: StartKind,
    /// The NFA state this h-state was split from.
    origin: StateId,
}

/// The result of running a [`HomogeneousAutomaton`] over an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomogeneousRun {
    /// Anchored acceptance: was an accept state active after the *final*
    /// symbol (or, for empty input, does the automaton accept ε)?
    pub accepted: bool,
    /// Every position at which an accept state was active (AP report
    /// events).
    pub accept_positions: Vec<usize>,
}

/// A homogeneous finite automaton: every state is entered only by
/// transitions on that state's own symbol class (paper Fig. 5b), which is
/// exactly the property that lets automata processors implement states as
/// STE columns.
///
/// # Examples
///
/// ```
/// use memcim_automata::{HomogeneousAutomaton, Regex};
///
/// # fn main() -> Result<(), memcim_automata::AutomataError> {
/// let nfa = Regex::parse("a(b|c)*d")?.compile();
/// let homog = HomogeneousAutomaton::from_nfa(&nfa);
/// assert_eq!(homog.run(b"abcbd").accepted, nfa.accepts(b"abcbd"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HomogeneousAutomaton {
    states: Vec<HState>,
    /// Adjacency: `edges[p]` lists successor h-states of `p`.
    edges: Vec<Vec<usize>>,
    accepts_empty: bool,
}

impl HomogeneousAutomaton {
    /// Converts any ε-free NFA into an equivalent homogeneous automaton
    /// by splitting each state per distinct incoming symbol class
    /// (the paper: *"Any NFA can be translated into its equivalent
    /// homogeneous automaton"*).
    pub fn from_nfa(nfa: &Nfa) -> Self {
        // Collect, per NFA state, its distinct incoming classes.
        let mut incoming: Vec<Vec<SymbolClass>> = vec![Vec::new(); nfa.state_count()];
        for p in 0..nfa.state_count() {
            for &(class, q) in nfa.transitions(p) {
                if !incoming[q].contains(&class) {
                    incoming[q].push(class);
                }
            }
        }
        // An h-state per (state, incoming class). States never entered
        // (no incoming edges and not start targets) are dropped.
        let mut id_of: Vec<Vec<(SymbolClass, usize)>> = vec![Vec::new(); nfa.state_count()];
        let mut states = Vec::new();
        for q in 0..nfa.state_count() {
            for &class in &incoming[q] {
                id_of[q].push((class, states.len()));
                states.push(HState {
                    class,
                    accept: nfa.is_accept(q),
                    start: StartKind::None,
                    origin: q,
                });
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
        for p in 0..nfa.state_count() {
            for &(class, q) in nfa.transitions(p) {
                let &(_, hq) =
                    id_of[q].iter().find(|(c, _)| *c == class).expect("incoming class registered");
                for &(_, hp) in &id_of[p] {
                    if !edges[hp].contains(&hq) {
                        edges[hp].push(hq);
                    }
                }
            }
        }
        // Start flags: targets of edges leaving NFA start states.
        let mut out = Self { states, edges, accepts_empty: nfa.accepts_empty() };
        for &s in nfa.starts() {
            for &(class, q) in nfa.transitions(s) {
                let &(_, hq) =
                    id_of[q].iter().find(|(c, _)| *c == class).expect("incoming class registered");
                out.states[hq].start = StartKind::StartOfInput;
            }
        }
        out
    }

    /// Number of states (STEs required on an AP).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions (routing-matrix population).
    pub fn transition_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The symbol class of a state.
    pub fn class(&self, state: usize) -> &SymbolClass {
        &self.states[state].class
    }

    /// The NFA state a homogeneous state was split from.
    pub fn origin(&self, state: usize) -> StateId {
        self.states[state].origin
    }

    /// Whether a state accepts.
    pub fn is_accept(&self, state: usize) -> bool {
        self.states[state].accept
    }

    /// The start participation of a state.
    pub fn start_kind(&self, state: usize) -> StartKind {
        self.states[state].start
    }

    /// Successors of a state.
    pub fn successors(&self, state: usize) -> &[usize] {
        &self.edges[state]
    }

    /// Whether the empty input is accepted.
    pub fn accepts_empty(&self) -> bool {
        self.accepts_empty
    }

    /// Rewrites every start state to the given kind — switch to
    /// [`StartKind::AllInput`] for unanchored scanning.
    #[must_use]
    pub fn with_start_kind(mut self, kind: StartKind) -> Self {
        for s in &mut self.states {
            if s.start != StartKind::None {
                s.start = kind;
            }
        }
        self
    }

    /// Returns a copy that only reports through the accept states the
    /// predicate keeps (keyed by state index; non-accept states are
    /// unaffected). DPI deployments toggle rules off far more often
    /// than they recompile, so specializing a compiled corpus is a
    /// flag-clearing pass — and [`strip`](Self::strip) then removes the
    /// states that served only the disabled rules. Map a pattern-level
    /// enable set through the owner map of
    /// [`PatternSet::to_homogeneous`](crate::PatternSet::to_homogeneous)
    /// to obtain the predicate. ε-acceptance is left unchanged (empty
    /// input attribution is a pattern-set concern).
    #[must_use]
    pub fn retain_accepts(mut self, keep: impl Fn(usize) -> bool) -> Self {
        for (i, s) in self.states.iter_mut().enumerate() {
            if s.accept && !keep(i) {
                s.accept = false;
            }
        }
        self
    }

    /// Removes states that cannot affect any run: states unreachable
    /// from every start state (forward reachability over the edge
    /// relation) and states from which no accept state can be reached
    /// (backward liveness). Each removed state is one STE column and
    /// one routing-matrix row/column an AP no longer has to provision.
    ///
    /// Returns the stripped automaton plus an old-state → new-state
    /// remap (`None` for removed states) so owner maps keyed by state
    /// index — e.g. a [`PatternSet`](crate::PatternSet)'s accepting-state
    /// attribution — can follow the renumbering. The stripped automaton
    /// is run-equivalent: identical acceptance and accept positions on
    /// every input (property-tested below).
    pub fn strip(&self) -> (Self, Vec<Option<usize>>) {
        let n = self.states.len();
        // Forward: states some input can activate.
        let mut reachable = vec![false; n];
        let mut stack: Vec<usize> =
            (0..n).filter(|&s| self.states[s].start != StartKind::None).collect();
        for &s in &stack {
            reachable[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &q in &self.edges[s] {
                if !reachable[q] {
                    reachable[q] = true;
                    stack.push(q);
                }
            }
        }
        // Backward: states that can still reach a report.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for p in 0..n {
            for &q in &self.edges[p] {
                preds[q].push(p);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&s| self.states[s].accept).collect();
        for &s in &stack {
            live[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &preds[s] {
                if !live[p] {
                    live[p] = true;
                    stack.push(p);
                }
            }
        }
        // Rebuild the kept subgraph with compacted indices.
        let mut remap = vec![None; n];
        let mut states = Vec::new();
        for s in 0..n {
            if reachable[s] && live[s] {
                remap[s] = Some(states.len());
                states.push(self.states[s].clone());
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
        for p in 0..n {
            if let Some(np) = remap[p] {
                edges[np] = self.edges[p].iter().filter_map(|&q| remap[q]).collect();
            }
        }
        (Self { states, edges, accepts_empty: self.accepts_empty }, remap)
    }

    /// Projects the automaton onto the paper's Fig. 6 matrices.
    pub fn to_matrices(&self) -> ApMatrices {
        let n = self.states.len();
        let mut v = BitMatrix::new(256, n);
        let mut r = BitMatrix::new(n, n);
        let mut start_of_input = BitVec::new(n);
        let mut all_input = BitVec::new(n);
        let mut accept = BitVec::new(n);
        for (i, s) in self.states.iter().enumerate() {
            for byte in s.class.iter() {
                v.set(byte as usize, i, true);
            }
            match s.start {
                StartKind::None => {}
                StartKind::StartOfInput => start_of_input.set(i, true),
                StartKind::AllInput => all_input.set(i, true),
            }
            if s.accept {
                accept.set(i, true);
            }
        }
        for (p, succ) in self.edges.iter().enumerate() {
            for &q in succ {
                r.set(p, q, true);
            }
        }
        ApMatrices { v, r, start_of_input, all_input, accept, accepts_empty: self.accepts_empty }
    }

    /// Runs the automaton bit-parallel (the software reference for the
    /// hardware AP engine).
    pub fn run(&self, input: &[u8]) -> HomogeneousRun {
        self.to_matrices().run(input)
    }
}

/// The paper's Fig. 6 data structures: STE matrix `V` (2^W × N), routing
/// matrix `R` (N × N), start and accept vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApMatrices {
    /// STE configuration: `v[symbol][state]` = state matches symbol
    /// (Equation (1)).
    pub v: BitMatrix,
    /// Routing matrix: `r[p][q]` = q reachable from p (Equation (2)).
    pub r: BitMatrix,
    /// States enabled at the first symbol only.
    pub start_of_input: BitVec,
    /// States re-enabled at every symbol.
    pub all_input: BitVec,
    /// Accept vector `c` (Equation (4)).
    pub accept: BitVec,
    /// ε acceptance (empty input).
    pub accepts_empty: bool,
}

impl ApMatrices {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accept.len()
    }

    /// Executes Equations (1)–(4) over an input sequence.
    pub fn run(&self, input: &[u8]) -> HomogeneousRun {
        let n = self.state_count();
        let mut active = BitVec::new(n);
        let mut accept_positions = Vec::new();
        let mut last_accepting = false;
        for (pos, &byte) in input.iter().enumerate() {
            // Equation (1): symbol vector from the one-hot input row.
            let s = self.v.row(byte as usize);
            // Equation (2): follow vector, plus start enables.
            let mut f = self.r.vector_product(&active);
            if pos == 0 {
                f.or_assign(&self.start_of_input);
            }
            f.or_assign(&self.all_input);
            // Equation (3): next active vector.
            f.and_assign(s);
            active = f;
            // Equation (4): report.
            last_accepting = active.intersects(&self.accept);
            if last_accepting {
                accept_positions.push(pos);
            }
        }
        let accepted = if input.is_empty() { self.accepts_empty } else { last_accepting };
        HomogeneousRun { accepted, accept_positions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regex;

    /// The paper's Fig. 5a NFA (with the S1 self-loop drawn in the
    /// figure).
    fn paper_nfa() -> Nfa {
        let mut nfa = Nfa::new();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        let s3 = nfa.add_state();
        nfa.add_start(s1);
        nfa.set_accept(s3, true);
        nfa.add_transition(s1, SymbolClass::from_bytes(b"abc"), s1);
        nfa.add_transition(s1, SymbolClass::of(b'c'), s2);
        nfa.add_transition(s1, SymbolClass::of(b'b'), s3);
        nfa.add_transition(s2, SymbolClass::of(b'b'), s3);
        nfa
    }

    #[test]
    fn fig5_conversion_produces_three_homogeneous_states() {
        let h = HomogeneousAutomaton::from_nfa(&paper_nfa());
        assert_eq!(h.state_count(), 3);
        // Classes per Fig. 5b: S1 carries {a,b,c}, one state carries {c}
        // (old S2) and one carries {b} (old S3).
        let classes: Vec<usize> = (0..3).map(|i| h.class(i).len()).collect();
        assert!(classes.contains(&3));
        assert!(classes.iter().filter(|&&l| l == 1).count() == 2);
        // All three are start targets (S1 has edges to each on the first
        // symbol).
        assert!((0..3).all(|i| h.start_kind(i) == StartKind::StartOfInput));
    }

    #[test]
    fn fig5_language_is_preserved() {
        let nfa = paper_nfa();
        let h = HomogeneousAutomaton::from_nfa(&nfa);
        for input in [&b"b"[..], b"ab", b"cb", b"acb", b"aaab", b"a", b"ba", b"", b"cc"] {
            assert_eq!(h.run(input).accepted, nfa.accepts(input), "input {input:?}");
        }
    }

    #[test]
    fn section_iv_b_worked_example_vectors() {
        // The paper's trace: a = [1 0 0] (only S1), input symbol `b` ⇒
        // s = [1 0 1], f = [0 1 1], next a = [0 0 1], A = 1.
        // Built verbatim from the printed V, R and c matrices.
        let mut v = BitMatrix::new(256, 3);
        for b in [b'a', b'b', b'c'] {
            v.set(b as usize, 0, true); // V1 = {a,b,c}
        }
        v.set(b'c' as usize, 1, true); // V2 = {c}
        v.set(b'b' as usize, 2, true); // V3 = {b}
        let mut r = BitMatrix::new(3, 3);
        r.set(0, 1, true);
        r.set(0, 2, true);
        r.set(1, 2, true);
        let a = BitVec::from_indices(3, &[0]);
        let s = v.row(b'b' as usize);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 2], "s = [1 0 1]");
        let f = r.vector_product(&a);
        assert_eq!(f.ones().collect::<Vec<_>>(), vec![1, 2], "f = [0 1 1]");
        let next = f.and(s);
        assert_eq!(next.ones().collect::<Vec<_>>(), vec![2], "a = [0 0 1]");
        let c = BitVec::from_indices(3, &[2]);
        assert!(next.intersects(&c), "A = 1");
    }

    #[test]
    fn conversion_splits_states_with_heterogeneous_incoming_classes() {
        // q reached on 'x' from p1 and on 'y' from p2 must split in two.
        let mut nfa = Nfa::new();
        let p1 = nfa.add_state();
        let p2 = nfa.add_state();
        let q = nfa.add_state();
        nfa.add_start(p1);
        nfa.add_start(p2);
        nfa.set_accept(q, true);
        nfa.add_transition(p1, SymbolClass::of(b'x'), q);
        nfa.add_transition(p2, SymbolClass::of(b'y'), q);
        let h = HomogeneousAutomaton::from_nfa(&nfa);
        // p1/p2 have no incoming edges ⇒ dropped; q splits into two.
        assert_eq!(h.state_count(), 2);
        assert!(h.run(b"x").accepted);
        assert!(h.run(b"y").accepted);
        assert!(!h.run(b"z").accepted);
        assert!((0..2).all(|i| h.origin(i) == q));
    }

    #[test]
    fn all_input_start_scans_unanchored() {
        let nfa = Regex::parse("ab").expect("parses").compile();
        let anchored = HomogeneousAutomaton::from_nfa(&nfa);
        let scanning = anchored.clone().with_start_kind(StartKind::AllInput);
        // Anchored: "xab" does not match from position 0.
        assert!(!anchored.run(b"xab").accepted);
        // Scanning: the match ending at position 2 is reported.
        let run = scanning.run(b"xabxxab");
        assert_eq!(run.accept_positions, vec![2, 6]);
    }

    #[test]
    fn matrices_shape_matches_the_model() {
        let nfa = Regex::parse("a(b|c)d").expect("parses").compile();
        let h = HomogeneousAutomaton::from_nfa(&nfa);
        let m = h.to_matrices();
        assert_eq!(m.v.rows(), 256);
        assert_eq!(m.v.cols(), h.state_count());
        assert_eq!(m.r.rows(), h.state_count());
        assert_eq!(m.r.cols(), h.state_count());
        assert_eq!(m.r.count_ones(), h.transition_count());
    }

    #[test]
    fn strip_is_identity_on_a_fully_live_automaton() {
        let h = HomogeneousAutomaton::from_nfa(&paper_nfa());
        let (stripped, remap) = h.strip();
        assert_eq!(stripped, h);
        assert_eq!(remap, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn strip_removes_dead_branches_and_stays_run_equivalent() {
        // A reachable z-loop that can never accept: dead weight on an AP.
        let mut nfa = Nfa::new();
        let s0 = nfa.add_state();
        let ok = nfa.add_state();
        let trap = nfa.add_state();
        nfa.add_start(s0);
        nfa.set_accept(ok, true);
        nfa.add_transition(s0, SymbolClass::of(b'a'), ok);
        nfa.add_transition(s0, SymbolClass::of(b'z'), trap);
        nfa.add_transition(trap, SymbolClass::of(b'z'), trap);
        let h = HomogeneousAutomaton::from_nfa(&nfa);
        let (stripped, remap) = h.strip();
        assert!(stripped.state_count() < h.state_count(), "the trap is removed");
        assert!(stripped.transition_count() < h.transition_count());
        // Kept states preserve class, accept and start flags.
        for (old, new) in remap.iter().enumerate() {
            if let Some(new) = *new {
                assert_eq!(h.class(old), stripped.class(new));
                assert_eq!(h.is_accept(old), stripped.is_accept(new));
                assert_eq!(h.start_kind(old), stripped.start_kind(new));
            }
        }
        for input in [&b""[..], b"a", b"z", b"zz", b"za", b"az"] {
            assert_eq!(stripped.run(input), h.run(input), "input {input:?}");
        }
    }

    #[test]
    fn retain_accepts_then_strip_drops_a_disabled_branch() {
        // Two patterns sharing a head; disabling one leaves its tail
        // dead, and strip removes it.
        let nfa = Regex::parse("(ax+|by+)").expect("parses").compile();
        let h = HomogeneousAutomaton::from_nfa(&nfa);
        // Keep only accepts reached on 'x' (the a-branch).
        let specialized = h.clone().retain_accepts(|s| h.class(s).contains(b'x'));
        let (stripped, _remap) = specialized.clone().strip();
        assert!(stripped.state_count() < h.state_count(), "the y-tail is dead weight");
        assert!(stripped.run(b"axx").accepted);
        assert!(!stripped.run(b"byy").accepted, "disabled branch no longer reports");
        for input in [&b"ax"[..], b"byy", b"a", b"", b"xy"] {
            assert_eq!(stripped.run(input), specialized.run(input), "input {input:?}");
        }
    }

    #[test]
    fn strip_of_an_acceptless_automaton_is_empty_and_still_runs() {
        let mut nfa = Nfa::new();
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        nfa.add_start(s0);
        nfa.add_transition(s0, SymbolClass::of(b'a'), s1);
        let h = HomogeneousAutomaton::from_nfa(&nfa);
        let (stripped, remap) = h.strip();
        assert_eq!(stripped.state_count(), 0);
        assert!(remap.iter().all(Option::is_none));
        assert_eq!(stripped.run(b"aaa"), h.run(b"aaa"));
        assert_eq!(stripped.run(b""), h.run(b""));
    }

    #[test]
    fn empty_input_follows_epsilon_acceptance() {
        let star = Regex::parse("a*").expect("parses").compile();
        let h = HomogeneousAutomaton::from_nfa(&star);
        assert!(h.accepts_empty());
        assert!(h.run(b"").accepted);
        let plus = Regex::parse("a+").expect("parses").compile();
        let h2 = HomogeneousAutomaton::from_nfa(&plus);
        assert!(!h2.run(b"").accepted);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Regex;
    use proptest::prelude::*;

    /// Random patterns over a small alphabet with the constructors the
    /// parser supports.
    fn pattern_strategy() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            "[abc]".prop_map(|s| s),
            Just("a".to_string()),
            Just("b".to_string()),
            Just(".".to_string()),
        ];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
                inner.clone().prop_map(|a| format!("({a})*")),
                inner.prop_map(|a| format!("({a})+")),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        /// `strip()` never changes a run: acceptance and accept
        /// positions are identical before and after, for both anchored
        /// and all-input start semantics.
        #[test]
        fn strip_preserves_runs(
            pattern in pattern_strategy(),
            inputs in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'd', 0..12), 1..6),
        ) {
            let nfa = Regex::parse(&pattern).expect("generated pattern").compile();
            let anchored = HomogeneousAutomaton::from_nfa(&nfa);
            let scanning = anchored.clone().with_start_kind(StartKind::AllInput);
            for h in [anchored, scanning] {
                let (stripped, remap) = h.strip();
                prop_assert!(stripped.state_count() <= h.state_count());
                prop_assert_eq!(
                    remap.iter().filter(|r| r.is_some()).count(),
                    stripped.state_count()
                );
                for input in &inputs {
                    prop_assert_eq!(
                        stripped.run(input),
                        h.run(input),
                        "pattern {} input {:?}", pattern, input
                    );
                }
            }
        }

        /// Homogeneous conversion preserves the language (differential
        /// test against the set-based NFA interpreter).
        #[test]
        fn conversion_preserves_language(
            pattern in pattern_strategy(),
            inputs in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'd', 0..10), 1..8),
        ) {
            let nfa = Regex::parse(&pattern).expect("generated pattern").compile();
            let h = HomogeneousAutomaton::from_nfa(&nfa);
            for input in &inputs {
                prop_assert_eq!(
                    h.run(input).accepted,
                    nfa.accepts(input),
                    "pattern {} input {:?}", pattern, input
                );
            }
        }
    }
}
