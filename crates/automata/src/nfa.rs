//! Nondeterministic finite automata with symbol-class transitions.

use crate::SymbolClass;

/// Index of a state within an [`Nfa`].
pub type StateId = usize;

/// A match event: an accept state was active right after consuming the
/// symbol at `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchEvent {
    /// Index (into the input) of the symbol that completed the match.
    pub end: usize,
    /// The accepting state that fired.
    pub state: StateId,
}

#[derive(Debug, Clone, Default)]
struct State {
    transitions: Vec<(SymbolClass, StateId)>,
    accept: bool,
}

/// A nondeterministic finite automaton `(Q, Σ, δ, q₀, C)` over bytes,
/// with ε-free symbol-class transitions (Section IV.A of the paper).
///
/// The set-based interpreter here is the *reference semantics* that the
/// bit-parallel homogeneous simulator and the hardware AP model are
/// differentially tested against.
///
/// # Examples
///
/// The paper's Fig. 5a example:
///
/// ```
/// use memcim_automata::{Nfa, SymbolClass};
///
/// let mut nfa = Nfa::new();
/// let s1 = nfa.add_state();
/// let s2 = nfa.add_state();
/// let s3 = nfa.add_state();
/// nfa.add_start(s1);
/// nfa.set_accept(s3, true);
/// nfa.add_transition(s1, SymbolClass::from_bytes(b"abc"), s1);
/// nfa.add_transition(s1, SymbolClass::of(b'c'), s2);
/// nfa.add_transition(s1, SymbolClass::of(b'b'), s3);
/// nfa.add_transition(s2, SymbolClass::of(b'b'), s3);
/// assert!(nfa.accepts(b"ab"));
/// assert!(nfa.accepts(b"acb"));
/// assert!(!nfa.accepts(b"ac"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    states: Vec<State>,
    starts: Vec<StateId>,
}

impl Nfa {
    /// Creates an empty automaton (no states).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self) -> StateId {
        self.states.push(State::default());
        self.states.len() - 1
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Adds a transition `from --class--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either state id is out of range.
    pub fn add_transition(&mut self, from: StateId, class: SymbolClass, to: StateId) {
        assert!(to < self.states.len(), "target state {to} does not exist");
        self.states[from].transitions.push((class, to));
    }

    /// Marks a start state (`q₀` may be a set after ε-elimination).
    ///
    /// # Panics
    ///
    /// Panics if the state id is out of range.
    pub fn add_start(&mut self, state: StateId) {
        assert!(state < self.states.len(), "state {state} does not exist");
        if !self.starts.contains(&state) {
            self.starts.push(state);
        }
    }

    /// Marks or unmarks an accepting state.
    ///
    /// # Panics
    ///
    /// Panics if the state id is out of range.
    pub fn set_accept(&mut self, state: StateId, accept: bool) {
        self.states[state].accept = accept;
    }

    /// Whether a state accepts.
    pub fn is_accept(&self, state: StateId) -> bool {
        self.states[state].accept
    }

    /// The start states.
    pub fn starts(&self) -> &[StateId] {
        &self.starts
    }

    /// Iterates a state's outgoing transitions.
    pub fn transitions(&self, state: StateId) -> impl Iterator<Item = &(SymbolClass, StateId)> {
        self.states[state].transitions.iter()
    }

    /// Total transition count (for sizing reports).
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }

    /// `true` if the empty input is accepted (a start state accepts).
    pub fn accepts_empty(&self) -> bool {
        self.starts.iter().any(|&s| self.states[s].accept)
    }

    /// Anchored acceptance: does the automaton accept exactly `input`?
    pub fn accepts(&self, input: &[u8]) -> bool {
        if input.is_empty() {
            return self.accepts_empty();
        }
        let mut active = vec![false; self.states.len()];
        let mut frontier: Vec<StateId> = self.starts.clone();
        for &s in &frontier {
            active[s] = true;
        }
        for &byte in input {
            let mut next_active = vec![false; self.states.len()];
            let mut next_frontier = Vec::new();
            for &p in &frontier {
                for &(class, q) in &self.states[p].transitions {
                    if class.contains(byte) && !next_active[q] {
                        next_active[q] = true;
                        next_frontier.push(q);
                    }
                }
            }
            active = next_active;
            frontier = next_frontier;
            if frontier.is_empty() {
                return false;
            }
        }
        frontier.iter().any(|&s| active[s] && self.states[s].accept)
    }

    /// Unanchored scan: start states are re-seeded at every position, and
    /// every accept-state activation is reported (AP-style match events).
    pub fn scan(&self, input: &[u8]) -> Vec<MatchEvent> {
        let mut events = Vec::new();
        let mut active = vec![false; self.states.len()];
        let mut frontier: Vec<StateId> = Vec::new();
        for &s in &self.starts {
            if !active[s] {
                active[s] = true;
                frontier.push(s);
            }
        }
        for (pos, &byte) in input.iter().enumerate() {
            let mut next_active = vec![false; self.states.len()];
            let mut next_frontier = Vec::new();
            for &p in &frontier {
                for &(class, q) in &self.states[p].transitions {
                    if class.contains(byte) && !next_active[q] {
                        next_active[q] = true;
                        next_frontier.push(q);
                    }
                }
            }
            // Re-seed starts (unanchored semantics).
            for &s in &self.starts {
                if !next_active[s] {
                    next_active[s] = true;
                    next_frontier.push(s);
                }
            }
            for &q in &next_frontier {
                if self.states[q].accept {
                    events.push(MatchEvent { end: pos, state: q });
                }
            }
            active = next_active;
            frontier = next_frontier;
        }
        let _ = active;
        events
    }

    /// Builds the union of several automata, re-numbering states.
    /// Returns the union together with, per input machine, the mapping
    /// from its old state ids to new ids.
    pub fn union<'a, I>(machines: I) -> (Nfa, Vec<Vec<StateId>>)
    where
        I: IntoIterator<Item = &'a Nfa>,
    {
        let mut out = Nfa::new();
        let mut maps = Vec::new();
        for m in machines {
            let map: Vec<StateId> = (0..m.state_count()).map(|_| out.add_state()).collect();
            for (old, &new) in map.iter().enumerate() {
                out.states[new].accept = m.states[old].accept;
                for &(class, to) in &m.states[old].transitions {
                    out.add_transition(new, class, map[to]);
                }
            }
            for &s in &m.starts {
                out.add_start(map[s]);
            }
            maps.push(map);
        }
        (out, maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 5a NFA.
    fn paper_nfa() -> Nfa {
        let mut nfa = Nfa::new();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        let s3 = nfa.add_state();
        nfa.add_start(s1);
        nfa.set_accept(s3, true);
        nfa.add_transition(s1, SymbolClass::from_bytes(b"abc"), s1);
        nfa.add_transition(s1, SymbolClass::of(b'c'), s2);
        nfa.add_transition(s1, SymbolClass::of(b'b'), s3);
        nfa.add_transition(s2, SymbolClass::of(b'b'), s3);
        nfa
    }

    #[test]
    fn paper_example_acceptance() {
        let nfa = paper_nfa();
        assert!(nfa.accepts(b"b"));
        assert!(nfa.accepts(b"ab"));
        assert!(nfa.accepts(b"cb"));
        assert!(nfa.accepts(b"aacb"));
        assert!(!nfa.accepts(b"a"));
        assert!(!nfa.accepts(b"ba"));
        assert!(!nfa.accepts(b""));
    }

    #[test]
    fn dead_input_short_circuits() {
        let nfa = paper_nfa();
        assert!(!nfa.accepts(b"zzzzb"));
    }

    #[test]
    fn scan_reports_every_match_end() {
        let nfa = paper_nfa();
        // In "abcb": matches end wherever S3 activates. S3 activates after
        // any 'b' reachable from an active S1/S2.
        let ends: Vec<usize> = nfa.scan(b"abcb").iter().map(|e| e.end).collect();
        assert!(ends.contains(&1), "ab ends at 1");
        assert!(ends.contains(&3), "…cb ends at 3");
    }

    #[test]
    fn empty_input_matches_only_accepting_starts() {
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        nfa.add_start(s);
        assert!(!nfa.accepts(b""));
        nfa.set_accept(s, true);
        assert!(nfa.accepts(b""));
        assert!(nfa.accepts_empty());
    }

    #[test]
    fn union_preserves_both_languages() {
        let a = {
            let mut n = Nfa::new();
            let s0 = n.add_state();
            let s1 = n.add_state();
            n.add_start(s0);
            n.set_accept(s1, true);
            n.add_transition(s0, SymbolClass::of(b'x'), s1);
            n
        };
        let b = {
            let mut n = Nfa::new();
            let s0 = n.add_state();
            let s1 = n.add_state();
            n.add_start(s0);
            n.set_accept(s1, true);
            n.add_transition(s0, SymbolClass::of(b'y'), s1);
            n
        };
        let (u, maps) = Nfa::union([&a, &b]);
        assert!(u.accepts(b"x"));
        assert!(u.accepts(b"y"));
        assert!(!u.accepts(b"z"));
        assert_eq!(maps.len(), 2);
        assert_eq!(u.state_count(), 4);
        // Accept states are mapped per machine.
        assert!(u.is_accept(maps[0][1]));
        assert!(u.is_accept(maps[1][1]));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn transition_to_missing_state_panics() {
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        nfa.add_transition(s, SymbolClass::ANY, 5);
    }
}
