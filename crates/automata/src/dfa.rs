//! Deterministic finite automata: the classic software baseline.
//!
//! Automata processors exist because DFAs — the traditional
//! high-throughput matching technology in network security \[22\] —
//! explode in state count on rule sets that NFAs represent compactly.
//! This module provides the baseline: subset construction from any
//! [`Nfa`], Moore minimization, and a table-driven matcher, so benches
//! can put the AP's "one cycle per symbol regardless of active-set size"
//! claim next to the DFA's "one table lookup per symbol, exponential
//! memory" trade-off.

use crate::Nfa;
use std::collections::HashMap;

/// Marker for the absent (dead) transition.
const DEAD: u32 = u32::MAX;

/// A table-driven deterministic finite automaton over bytes.
///
/// # Examples
///
/// ```
/// use memcim_automata::{Dfa, Regex};
///
/// # fn main() -> Result<(), memcim_automata::AutomataError> {
/// let nfa = Regex::parse("(a|b)*abb")?.compile();
/// let dfa = Dfa::from_nfa(&nfa).minimize();
/// assert!(dfa.accepts(b"aababb"));
/// assert!(!dfa.accepts(b"aabab"));
/// assert_eq!(dfa.state_count(), 4); // the textbook minimal machine
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    /// Flattened `state × 256` transition table.
    table: Vec<u32>,
    accept: Vec<bool>,
    start: u32,
}

impl Dfa {
    /// Builds a DFA from an ε-free NFA by subset construction
    /// (anchored semantics, matching [`Nfa::accepts`]).
    ///
    /// # Panics
    ///
    /// Panics if the construction exceeds `2^20` subsets — the
    /// state-explosion guard (the phenomenon APs are built to avoid).
    pub fn from_nfa(nfa: &Nfa) -> Self {
        const LIMIT: usize = 1 << 20;
        let mut start: Vec<usize> = nfa.starts().to_vec();
        start.sort_unstable();
        start.dedup();
        let mut subset_id: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut table: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        subset_id.insert(start.clone(), 0);
        subsets.push(start);
        let mut next = 0usize;
        while next < subsets.len() {
            assert!(subsets.len() <= LIMIT, "subset construction exploded past 2^20 states");
            let current = subsets[next].clone();
            accept.push(current.iter().any(|&q| nfa.is_accept(q)));
            let row_base = table.len();
            table.resize(row_base + 256, DEAD);
            // Targets per byte.
            for byte in 0..=255u8 {
                let mut target: Vec<usize> = Vec::new();
                for &p in &current {
                    for &(class, q) in nfa.transitions(p) {
                        if class.contains(byte) {
                            target.push(q);
                        }
                    }
                }
                target.sort_unstable();
                target.dedup();
                if target.is_empty() {
                    continue;
                }
                let id = match subset_id.get(&target) {
                    Some(&id) => id,
                    None => {
                        let id = subsets.len() as u32;
                        subset_id.insert(target.clone(), id);
                        subsets.push(target);
                        id
                    }
                };
                table[row_base + byte as usize] = id;
            }
            next += 1;
        }
        Self { table, accept, start: 0 }
    }

    /// Number of states (dead state excluded — it is implicit).
    pub fn state_count(&self) -> usize {
        self.accept.len()
    }

    /// Anchored acceptance of exactly `input`.
    pub fn accepts(&self, input: &[u8]) -> bool {
        let mut state = self.start;
        for &byte in input {
            state = self.table[state as usize * 256 + byte as usize];
            if state == DEAD {
                return false;
            }
        }
        self.accept[state as usize]
    }

    /// Moore minimization: merges equivalence classes of states until the
    /// partition stabilizes. The result accepts the same language with
    /// the minimum number of live states.
    pub fn minimize(&self) -> Dfa {
        let n = self.state_count();
        // Class per state: start from accept/reject.
        let mut class: Vec<u32> = self.accept.iter().map(|&a| u32::from(a)).collect();
        loop {
            // Signature: (class, classes of 256 successors with DEAD kept
            // distinct).
            let mut sig_to_new: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut new_class = vec![0u32; n];
            for s in 0..n {
                let succ: Vec<u32> = (0..256)
                    .map(|b| {
                        let t = self.table[s * 256 + b];
                        if t == DEAD {
                            DEAD
                        } else {
                            class[t as usize]
                        }
                    })
                    .collect();
                let key = (class[s], succ);
                let next_id = sig_to_new.len() as u32;
                new_class[s] = *sig_to_new.entry(key).or_insert(next_id);
            }
            if new_class == class {
                break;
            }
            class = new_class;
        }
        // Rebuild with one representative per class.
        let class_count = class.iter().map(|&c| c + 1).max().unwrap_or(0) as usize;
        let mut table = vec![DEAD; class_count * 256];
        let mut accept = vec![false; class_count];
        for s in 0..n {
            let c = class[s] as usize;
            accept[c] = self.accept[s];
            for b in 0..256 {
                let t = self.table[s * 256 + b];
                if t != DEAD {
                    table[c * 256 + b] = class[t as usize];
                }
            }
        }
        Dfa { table, accept, start: class[self.start as usize] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regex;

    fn dfa(pattern: &str) -> Dfa {
        Dfa::from_nfa(&Regex::parse(pattern).expect("parses").compile())
    }

    #[test]
    fn subset_construction_matches_nfa() {
        let nfa = Regex::parse("a(b|c)+d?").expect("parses").compile();
        let d = Dfa::from_nfa(&nfa);
        for input in
            [&b"ab"[..], b"ac", b"abc", b"abcd", b"ad", b"a", b"abd", b"", b"abcbcbc", b"xbd"]
        {
            assert_eq!(d.accepts(input), nfa.accepts(input), "input {input:?}");
        }
    }

    #[test]
    fn textbook_minimal_machine() {
        // (a|b)*abb minimizes to exactly 4 live states (Aho–Sethi–Ullman
        // Fig. 3.36).
        let full = dfa("(a|b)*abb");
        let min = full.minimize();
        assert!(min.state_count() <= full.state_count());
        assert_eq!(min.state_count(), 4);
        for (input, expect) in [
            (&b"abb"[..], true),
            (b"aabb", true),
            (b"babb", true),
            (b"ab", false),
            (b"abba", false),
        ] {
            assert_eq!(min.accepts(input), expect, "{input:?}");
        }
    }

    #[test]
    fn minimization_preserves_language() {
        for pattern in ["a*b*c*", "(ab|ba)+", "x(y|z){2,3}", "[a-d]*e"] {
            let full = dfa(pattern);
            let min = full.minimize();
            assert!(min.state_count() <= full.state_count(), "{pattern}");
            for input in [
                &b""[..],
                b"a",
                b"ab",
                b"abc",
                b"ba",
                b"abba",
                b"xyz",
                b"xyy",
                b"xzzz",
                b"abcde",
                b"e",
                b"ae",
            ] {
                assert_eq!(min.accepts(input), full.accepts(input), "{pattern} on {input:?}");
            }
        }
    }

    #[test]
    fn empty_language_and_empty_string() {
        let d = dfa("");
        assert!(d.accepts(b""));
        assert!(!d.accepts(b"a"));
        let d2 = dfa("a");
        assert!(!d2.accepts(b""));
    }

    #[test]
    fn dead_transitions_short_circuit() {
        let d = dfa("abc");
        assert!(!d.accepts(b"abx"));
        assert!(!d.accepts(b"x"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Regex;
    use proptest::prelude::*;

    fn pattern_strategy() -> impl Strategy<Value = String> {
        let leaf =
            prop_oneof![Just("a".to_string()), Just("b".to_string()), Just("[ab]".to_string()),];
        leaf.prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
                inner.prop_map(|a| format!("({a})*")),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// DFA (raw and minimized) ≡ NFA on random patterns/inputs.
        #[test]
        fn dfa_equals_nfa(
            pattern in pattern_strategy(),
            inputs in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'c', 0..10), 1..6),
        ) {
            let nfa = Regex::parse(&pattern).expect("generated").compile();
            let d = Dfa::from_nfa(&nfa);
            let m = d.minimize();
            for input in &inputs {
                let expect = nfa.accepts(input);
                prop_assert_eq!(d.accepts(input), expect, "raw {} {:?}", pattern.clone(), input.clone());
                prop_assert_eq!(m.accepts(input), expect, "min {} {:?}", pattern.clone(), input.clone());
            }
            prop_assert!(m.state_count() <= d.state_count());
        }
    }
}
