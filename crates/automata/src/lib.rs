//! Finite automata toolkit: regexes, NFAs and homogeneous automata.
//!
//! This crate implements Section IV.A–B of the paper: the automata
//! formalism that automata processors execute.
//!
//! * [`SymbolClass`] — a set of input symbols (the paper's "symbol
//!   class"), represented as a 256-bit set over byte alphabets.
//! * [`Nfa`] — a nondeterministic finite automaton
//!   `(Q, Σ, δ, q₀, C)` with symbol-class transitions, a set-based
//!   reference interpreter and per-position match reporting.
//! * [`Regex`] — a regular-expression compiler (literals, classes,
//!   ranges, negation, `.`,`|`,`*`,`+`,`?`, grouping, bounded repeats
//!   `{m,n}`, escapes) producing an [`Nfa`] by Thompson construction
//!   followed by ε-elimination.
//! * [`HomogeneousAutomaton`] — the AP-implementable form (paper Fig. 5b):
//!   every state is reached only on its own symbol class. Conversion from
//!   any [`Nfa`] is provided (the paper: *"Any NFA can be translated into
//!   its equivalent homogeneous automaton"*), along with the matrix
//!   projection ([`ApMatrices`]) used by the generic AP model — the `V`,
//!   `R` and accept structures of the paper's Equations (1)–(4).
//! * [`PatternSet`] — multi-pattern compilation (union automaton with
//!   per-pattern accept tracking) plus workload generators for the
//!   paper's motivating applications (network rules, DNA motifs).
//!
//! # Examples
//!
//! ```
//! use memcim_automata::Regex;
//!
//! # fn main() -> Result<(), memcim_automata::AutomataError> {
//! let nfa = Regex::parse("ab(c|d)+")?.compile();
//! assert!(nfa.accepts(b"abcdc"));
//! assert!(!nfa.accepts(b"ab"));
//! // Homogeneous conversion preserves the language.
//! let homog = memcim_automata::HomogeneousAutomaton::from_nfa(&nfa);
//! assert!(homog.run(b"abcdc").accepted);
//! # Ok(())
//! # }
//! ```

mod dfa;
mod error;
mod homogeneous;
mod nfa;
mod patterns;
mod regex;
mod symbol;

pub use dfa::Dfa;
pub use error::AutomataError;
pub use homogeneous::{ApMatrices, HomogeneousAutomaton, HomogeneousRun, StartKind};
pub use nfa::{MatchEvent, Nfa, StateId};
pub use patterns::{dna, rules, PatternMatch, PatternSet};
pub use regex::Regex;
pub use symbol::SymbolClass;
