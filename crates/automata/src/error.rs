//! Error type for regex parsing and automaton construction.

use core::fmt;

/// Errors produced while parsing regular expressions or building
/// automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomataError {
    /// The regular expression failed to parse.
    ParseRegex {
        /// Byte offset of the failure in the pattern.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// A repetition bound was invalid (e.g. `{3,1}`).
    InvalidRepetition {
        /// Byte offset in the pattern.
        position: usize,
    },
    /// An empty pattern set was supplied where at least one is required.
    EmptyPatternSet,
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::ParseRegex { position, message } => {
                write!(f, "regex parse error at byte {position}: {message}")
            }
            AutomataError::InvalidRepetition { position } => {
                write!(f, "invalid repetition bounds at byte {position}")
            }
            AutomataError::EmptyPatternSet => write!(f, "pattern set must not be empty"),
        }
    }
}

impl std::error::Error for AutomataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_position() {
        let e = AutomataError::ParseRegex { position: 4, message: "unbalanced )".into() };
        assert!(e.to_string().contains("byte 4"));
        assert!(e.to_string().contains("unbalanced"));
    }
}
