//! Symbol classes: sets over the byte alphabet.

use core::fmt;

/// A set of input symbols over the byte alphabet `Σ = {0, …, 255}` —
/// the paper's *symbol class* (the labels inside homogeneous-automaton
/// states, and the per-STE column configuration of the AP model).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolClass {
    words: [u64; 4],
}

impl SymbolClass {
    /// The empty class.
    pub const EMPTY: Self = Self { words: [0; 4] };

    /// The full alphabet (the regex `.` with byte semantics).
    pub const ANY: Self = Self { words: [u64::MAX; 4] };

    /// A class containing a single symbol.
    pub fn of(byte: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert(byte);
        c
    }

    /// A class containing an inclusive byte range.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = Self::EMPTY;
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        for b in lo..=hi {
            c.insert(b);
        }
        c
    }

    /// A class from an explicit list of symbols.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut c = Self::EMPTY;
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// Inserts a symbol.
    pub fn insert(&mut self, byte: u8) {
        self.words[(byte >> 6) as usize] |= 1u64 << (byte & 63);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, byte: u8) -> bool {
        self.words[(byte >> 6) as usize] >> (byte & 63) & 1 == 1
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut w = self.words;
        for (a, b) in w.iter_mut().zip(&other.words) {
            *a |= b;
        }
        Self { words: w }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut w = self.words;
        for (a, b) in w.iter_mut().zip(&other.words) {
            *a &= b;
        }
        Self { words: w }
    }

    /// Set complement.
    #[must_use]
    pub fn complement(&self) -> Self {
        let mut w = self.words;
        for a in w.iter_mut() {
            *a = !*a;
        }
        Self { words: w }
    }

    /// Number of symbols in the class.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no symbol is in the class.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the member symbols in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..=255u8).filter(move |&b| self.contains(b))
    }
}

impl fmt::Debug for SymbolClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::ANY {
            return write!(f, "SymbolClass(*)");
        }
        write!(f, "SymbolClass{{")?;
        let mut first = true;
        let mut iter = self.iter().peekable();
        while let Some(b) = iter.next() {
            // Collapse runs for readability.
            let mut end = b;
            while iter.peek() == Some(&(end.wrapping_add(1))) && end < 255 {
                end = iter.next().expect("peeked");
            }
            if !first {
                write!(f, ",")?;
            }
            first = false;
            let show = |x: u8| -> String {
                if x.is_ascii_graphic() {
                    (x as char).to_string()
                } else {
                    format!("\\x{x:02x}")
                }
            };
            if end > b {
                write!(f, "{}-{}", show(b), show(end))?;
            } else {
                write!(f, "{}", show(b))?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_symbol_class() {
        let c = SymbolClass::of(b'b');
        assert!(c.contains(b'b'));
        assert!(!c.contains(b'a'));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn range_is_inclusive_and_order_insensitive() {
        let c = SymbolClass::range(b'a', b'c');
        let c2 = SymbolClass::range(b'c', b'a');
        assert_eq!(c, c2);
        assert_eq!(c.len(), 3);
        assert!(c.contains(b'a') && c.contains(b'b') && c.contains(b'c'));
        assert!(!c.contains(b'd'));
    }

    #[test]
    fn set_algebra() {
        let abc = SymbolClass::from_bytes(b"abc");
        let bcd = SymbolClass::from_bytes(b"bcd");
        assert_eq!(abc.union(&bcd).len(), 4);
        assert_eq!(abc.intersection(&bcd).len(), 2);
        assert_eq!(abc.complement().len(), 253);
        assert!(SymbolClass::ANY.complement().is_empty());
    }

    #[test]
    fn iter_ascends_and_round_trips() {
        let c = SymbolClass::from_bytes(b"zax");
        let got: Vec<u8> = c.iter().collect();
        assert_eq!(got, vec![b'a', b'x', b'z']);
        assert_eq!(SymbolClass::from_bytes(&got), c);
    }

    #[test]
    fn boundary_bytes_work() {
        let c = SymbolClass::from_bytes(&[0, 63, 64, 127, 128, 255]);
        for b in [0u8, 63, 64, 127, 128, 255] {
            assert!(c.contains(b), "byte {b}");
        }
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn debug_collapses_runs() {
        let c = SymbolClass::range(b'a', b'e');
        assert_eq!(format!("{c:?}"), "SymbolClass{a-e}");
    }
}
