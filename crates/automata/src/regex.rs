//! Regular-expression parsing and Thompson compilation to an ε-free NFA.

use crate::{AutomataError, Nfa, SymbolClass};

/// Maximum expansion of a bounded repetition `{m,n}`.
const MAX_REPEAT: u32 = 256;

/// A parsed regular expression, compilable to an [`Nfa`].
///
/// Supported syntax (byte semantics — `.` matches any byte):
/// literals, `.`, `|`, `*`, `+`, `?`, grouping `( … )`, bounded repeats
/// `{m}`, `{m,}`, `{m,n}`, classes `[a-z0-9]` / negated `[^…]`, and the
/// escapes `\d \w \s \D \W \S \n \r \t \0 \xHH` plus escaped
/// metacharacters.
///
/// # Examples
///
/// ```
/// use memcim_automata::Regex;
///
/// # fn main() -> Result<(), memcim_automata::AutomataError> {
/// let re = Regex::parse(r"GET /[a-z]+\.html")?;
/// assert!(re.compile().accepts(b"GET /index.html"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    ast: Ast,
    pattern: String,
}

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Empty,
    Class(SymbolClass),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
}

impl Regex {
    /// Parses a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::ParseRegex`] with the failing byte offset
    /// for malformed syntax, and [`AutomataError::InvalidRepetition`] for
    /// bounds like `{3,1}` or repeats beyond 256.
    pub fn parse(pattern: &str) -> Result<Self, AutomataError> {
        let mut p = Parser { bytes: pattern.as_bytes(), pos: 0 };
        let ast = p.alternation()?;
        if p.pos != p.bytes.len() {
            return Err(p.error("unexpected trailing input (unbalanced ')'?)"));
        }
        Ok(Self { ast, pattern: pattern.to_string() })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Compiles to an ε-free NFA (Thompson construction, then ε-closure
    /// elimination and unreachable-state pruning).
    pub fn compile(&self) -> Nfa {
        let mut g = Thompson::default();
        let frag = g.compile(&self.ast);
        g.into_nfa(frag)
    }

    /// Samples a random string matched by this pattern (used by workload
    /// generators to plant true positives in synthetic traffic).
    /// Star-quantified subexpressions repeat 0–3 times.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        fn walk<R: rand::Rng + ?Sized>(ast: &Ast, rng: &mut R, out: &mut Vec<u8>) {
            match ast {
                Ast::Empty => {}
                Ast::Class(c) => {
                    let k = rng.gen_range(0..c.len().max(1));
                    if let Some(b) = c.iter().nth(k) {
                        out.push(b);
                    }
                }
                Ast::Concat(parts) => {
                    for p in parts {
                        walk(p, rng, out);
                    }
                }
                Ast::Alt(branches) => {
                    let k = rng.gen_range(0..branches.len());
                    walk(&branches[k], rng, out);
                }
                Ast::Star(inner) => {
                    for _ in 0..rng.gen_range(0..=3) {
                        walk(inner, rng, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.ast, rng, &mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> AutomataError {
        AutomataError::ParseRegex { position: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn alternation(&mut self) -> Result<Ast, AutomataError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, AutomataError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, AutomataError> {
        let mut node = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    node = Ast::Star(Box::new(node));
                }
                Some(b'+') => {
                    self.pos += 1;
                    node = Ast::Concat(vec![node.clone(), Ast::Star(Box::new(node))]);
                }
                Some(b'?') => {
                    self.pos += 1;
                    node = Ast::Alt(vec![node, Ast::Empty]);
                }
                Some(b'{') => {
                    let open = self.pos;
                    self.pos += 1;
                    let (min, max) = self.bounds(open)?;
                    node = expand_repeat(node, min, max);
                }
                _ => break,
            }
        }
        Ok(node)
    }

    /// Parses `{m}`, `{m,}` or `{m,n}` after the opening brace.
    fn bounds(&mut self, open: usize) -> Result<(u32, Option<u32>), AutomataError> {
        let min = self.number(open)?;
        match self.bump() {
            Some(b'}') => Ok((min, Some(min))),
            Some(b',') => {
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok((min, None));
                }
                let max = self.number(open)?;
                if self.bump() != Some(b'}') {
                    return Err(self.error("expected '}' after repetition bounds"));
                }
                if max < min {
                    return Err(AutomataError::InvalidRepetition { position: open });
                }
                Ok((min, Some(max)))
            }
            _ => Err(self.error("expected '}' or ',' in repetition")),
        }
    }

    fn number(&mut self, open: usize) -> Result<u32, AutomataError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a number in repetition bounds"));
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        let n: u32 =
            text.parse().map_err(|_| AutomataError::InvalidRepetition { position: open })?;
        if n > MAX_REPEAT {
            return Err(AutomataError::InvalidRepetition { position: open });
        }
        Ok(n)
    }

    fn atom(&mut self) -> Result<Ast, AutomataError> {
        match self.bump() {
            None => Err(self.error("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.error("unbalanced '('"));
                }
                Ok(inner)
            }
            Some(b'[') => self.class().map(Ast::Class),
            Some(b'.') => Ok(Ast::Class(SymbolClass::ANY)),
            Some(b'\\') => self.escape().map(Ast::Class),
            Some(b @ (b'*' | b'+' | b'?' | b'{' | b')')) => {
                self.pos -= 1;
                Err(self.error(match b {
                    b')' => "unbalanced ')'",
                    _ => "quantifier with nothing to repeat",
                }))
            }
            Some(b) => Ok(Ast::Class(SymbolClass::of(b))),
        }
    }

    fn escape(&mut self) -> Result<SymbolClass, AutomataError> {
        match self.bump() {
            None => Err(self.error("dangling escape")),
            Some(b'd') => Ok(SymbolClass::range(b'0', b'9')),
            Some(b'D') => Ok(SymbolClass::range(b'0', b'9').complement()),
            Some(b'w') => Ok(word_class()),
            Some(b'W') => Ok(word_class().complement()),
            Some(b's') => Ok(SymbolClass::from_bytes(b" \t\n\r\x0b\x0c")),
            Some(b'S') => Ok(SymbolClass::from_bytes(b" \t\n\r\x0b\x0c").complement()),
            Some(b'n') => Ok(SymbolClass::of(b'\n')),
            Some(b'r') => Ok(SymbolClass::of(b'\r')),
            Some(b't') => Ok(SymbolClass::of(b'\t')),
            Some(b'0') => Ok(SymbolClass::of(0)),
            Some(b'x') => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                Ok(SymbolClass::of(hi * 16 + lo))
            }
            Some(b) => Ok(SymbolClass::of(b)),
        }
    }

    fn hex_digit(&mut self) -> Result<u8, AutomataError> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(self.error("expected a hex digit after \\x")),
        }
    }

    fn class(&mut self) -> Result<SymbolClass, AutomataError> {
        let negated = if self.peek() == Some(b'^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut class = SymbolClass::EMPTY;
        let mut first = true;
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated character class")),
                Some(b']') if !first => break,
                Some(b) => {
                    first = false;
                    let item = if b == b'\\' { self.escape()? } else { SymbolClass::of(b) };
                    // A range needs a single-symbol left side and '-' not
                    // followed by ']'.
                    if item.len() == 1
                        && self.peek() == Some(b'-')
                        && self.bytes.get(self.pos + 1).copied().is_some_and(|n| n != b']')
                    {
                        self.pos += 1; // consume '-'
                        let hi_byte = self.bump().expect("checked");
                        let hi = if hi_byte == b'\\' {
                            self.escape()?
                        } else {
                            SymbolClass::of(hi_byte)
                        };
                        if hi.len() != 1 {
                            return Err(self.error("range endpoint must be a single symbol"));
                        }
                        let lo_sym = item.iter().next().expect("single");
                        let hi_sym = hi.iter().next().expect("single");
                        if hi_sym < lo_sym {
                            return Err(self.error("reversed range in character class"));
                        }
                        class = class.union(&SymbolClass::range(lo_sym, hi_sym));
                    } else {
                        class = class.union(&item);
                    }
                }
            }
        }
        Ok(if negated { class.complement() } else { class })
    }
}

fn word_class() -> SymbolClass {
    SymbolClass::range(b'a', b'z')
        .union(&SymbolClass::range(b'A', b'Z'))
        .union(&SymbolClass::range(b'0', b'9'))
        .union(&SymbolClass::of(b'_'))
}

/// Expands `{m,n}` / `{m,}` at the AST level.
fn expand_repeat(node: Ast, min: u32, max: Option<u32>) -> Ast {
    let mut parts = Vec::new();
    for _ in 0..min {
        parts.push(node.clone());
    }
    match max {
        None => parts.push(Ast::Star(Box::new(node))),
        Some(max) => {
            for _ in min..max {
                parts.push(Ast::Alt(vec![node.clone(), Ast::Empty]));
            }
        }
    }
    match parts.len() {
        0 => Ast::Empty,
        1 => parts.pop().expect("one"),
        _ => Ast::Concat(parts),
    }
}

// ---------------------------------------------------------------------------
// Thompson construction and ε-elimination
// ---------------------------------------------------------------------------

#[derive(Default)]
struct TState {
    eps: Vec<usize>,
    trans: Vec<(SymbolClass, usize)>,
}

#[derive(Clone, Copy)]
struct Frag {
    start: usize,
    accept: usize,
}

#[derive(Default)]
struct Thompson {
    states: Vec<TState>,
}

impl Thompson {
    fn fresh(&mut self) -> usize {
        self.states.push(TState::default());
        self.states.len() - 1
    }

    fn compile(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty => {
                let s = self.fresh();
                let f = self.fresh();
                self.states[s].eps.push(f);
                Frag { start: s, accept: f }
            }
            Ast::Class(c) => {
                let s = self.fresh();
                let f = self.fresh();
                self.states[s].trans.push((*c, f));
                Frag { start: s, accept: f }
            }
            Ast::Concat(parts) => {
                let frags: Vec<Frag> = parts.iter().map(|p| self.compile(p)).collect();
                for w in frags.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    self.states[a.accept].eps.push(b.start);
                }
                Frag {
                    start: frags.first().expect("nonempty concat").start,
                    accept: frags.last().expect("nonempty concat").accept,
                }
            }
            Ast::Alt(branches) => {
                let s = self.fresh();
                let f = self.fresh();
                for b in branches {
                    let frag = self.compile(b);
                    self.states[s].eps.push(frag.start);
                    self.states[frag.accept].eps.push(f);
                }
                Frag { start: s, accept: f }
            }
            Ast::Star(inner) => {
                let s = self.fresh();
                let f = self.fresh();
                let frag = self.compile(inner);
                self.states[s].eps.push(frag.start);
                self.states[s].eps.push(f);
                self.states[frag.accept].eps.push(frag.start);
                self.states[frag.accept].eps.push(f);
                Frag { start: s, accept: f }
            }
        }
    }

    /// ε-closure of one state.
    fn closure(&self, state: usize) -> Vec<usize> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![state];
        let mut out = Vec::new();
        seen[state] = true;
        while let Some(p) = stack.pop() {
            out.push(p);
            for &q in &self.states[p].eps {
                if !seen[q] {
                    seen[q] = true;
                    stack.push(q);
                }
            }
        }
        out
    }

    /// Eliminates ε-transitions and prunes unreachable states.
    fn into_nfa(self, frag: Frag) -> Nfa {
        let n = self.states.len();
        // New transition sets and acceptance through closures.
        let mut trans: Vec<Vec<(SymbolClass, usize)>> = vec![Vec::new(); n];
        let mut accept = vec![false; n];
        for p in 0..n {
            for q in self.closure(p) {
                if q == frag.accept {
                    accept[p] = true;
                }
                for &(c, r) in &self.states[q].trans {
                    trans[p].push((c, r));
                }
            }
        }
        // Reachability from the start over symbol transitions.
        let mut reach = vec![false; n];
        let mut stack = vec![frag.start];
        reach[frag.start] = true;
        while let Some(p) = stack.pop() {
            for &(_, r) in &trans[p] {
                if !reach[r] {
                    reach[r] = true;
                    stack.push(r);
                }
            }
        }
        let mut map = vec![usize::MAX; n];
        let mut nfa = Nfa::new();
        for (p, &live) in reach.iter().enumerate() {
            if live {
                map[p] = nfa.add_state();
            }
        }
        for (p, &live) in reach.iter().enumerate() {
            if !live {
                continue;
            }
            nfa.set_accept(map[p], accept[p]);
            for &(c, r) in &trans[p] {
                if reach[r] {
                    nfa.add_transition(map[p], c, map[r]);
                }
            }
        }
        nfa.add_start(map[frag.start]);
        nfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accepts(pattern: &str, input: &[u8]) -> bool {
        Regex::parse(pattern).expect("pattern parses").compile().accepts(input)
    }

    #[test]
    fn literals_and_concat() {
        assert!(accepts("abc", b"abc"));
        assert!(!accepts("abc", b"ab"));
        assert!(!accepts("abc", b"abcd"));
    }

    #[test]
    fn alternation_and_grouping() {
        assert!(accepts("a(b|c)d", b"abd"));
        assert!(accepts("a(b|c)d", b"acd"));
        assert!(!accepts("a(b|c)d", b"ad"));
        assert!(accepts("ab|cd", b"cd"));
    }

    #[test]
    fn kleene_star_plus_opt() {
        assert!(accepts("ab*c", b"ac"));
        assert!(accepts("ab*c", b"abbbbc"));
        assert!(accepts("ab+c", b"abc"));
        assert!(!accepts("ab+c", b"ac"));
        assert!(accepts("ab?c", b"ac"));
        assert!(accepts("ab?c", b"abc"));
        assert!(!accepts("ab?c", b"abbc"));
    }

    #[test]
    fn bounded_repeats() {
        assert!(accepts("a{3}", b"aaa"));
        assert!(!accepts("a{3}", b"aa"));
        assert!(!accepts("a{3}", b"aaaa"));
        assert!(accepts("a{2,4}", b"aa"));
        assert!(accepts("a{2,4}", b"aaaa"));
        assert!(!accepts("a{2,4}", b"aaaaa"));
        assert!(accepts("a{2,}", b"aaaaaaa"));
        assert!(!accepts("a{2,}", b"a"));
    }

    #[test]
    fn classes_ranges_negation() {
        assert!(accepts("[a-c]+", b"abcba"));
        assert!(!accepts("[a-c]+", b"abd"));
        assert!(accepts("[^0-9]", b"x"));
        assert!(!accepts("[^0-9]", b"5"));
        assert!(accepts("[-a]", b"-")); // literal '-' at edge
        assert!(accepts("[a-]", b"-"));
    }

    #[test]
    fn escapes() {
        assert!(accepts(r"\d+", b"12345"));
        assert!(!accepts(r"\d+", b"12a45"));
        assert!(accepts(r"\w+", b"hello_World9"));
        assert!(accepts(r"\s", b" "));
        assert!(accepts(r"\x41", b"A"));
        assert!(accepts(r"a\.b", b"a.b"));
        assert!(!accepts(r"a\.b", b"axb"));
        assert!(accepts(r"\\", b"\\"));
    }

    #[test]
    fn dot_matches_any_byte() {
        assert!(accepts("a.c", b"a\nc"));
        assert!(accepts("a.c", &[b'a', 0xff, b'c']));
    }

    #[test]
    fn empty_pattern_matches_empty_input() {
        assert!(accepts("", b""));
        assert!(!accepts("", b"a"));
        assert!(accepts("a|", b""));
        assert!(accepts("a|", b"a"));
    }

    #[test]
    fn nested_quantifiers() {
        assert!(accepts("(ab)+", b"ababab"));
        assert!(!accepts("(ab)+", b"aba"));
        assert!(accepts("(a|b)*c", b"abbac"));
        assert!(accepts("((a|b)c)*", b"acbc"));
    }

    #[test]
    fn parse_errors_carry_positions() {
        for (pat, what) in [
            ("a(b", "unbalanced"),
            ("a)b", "unbalanced"),
            ("*a", "quantifier"),
            ("[abc", "unterminated"),
            (r"a\x4", "hex"),
            ("a{3,1}", ""),
            ("a{2,", ""),
        ] {
            let err = Regex::parse(pat).expect_err(pat);
            if !what.is_empty() {
                assert!(err.to_string().contains(what), "{pat}: {err}");
            }
        }
    }

    #[test]
    fn repeat_cap_is_enforced() {
        assert!(matches!(Regex::parse("a{999}"), Err(AutomataError::InvalidRepetition { .. })));
    }

    #[test]
    fn pattern_accessor_round_trips() {
        let re = Regex::parse("a[bc]+").expect("parses");
        assert_eq!(re.pattern(), "a[bc]+");
    }

    #[test]
    fn compiled_nfa_is_epsilon_free_and_pruned() {
        let nfa = Regex::parse("(a|b)*abb").expect("parses").compile();
        // All states must be reachable and carry symbol transitions only
        // (ε-freedom is structural — Nfa has no ε representation).
        assert!(nfa.state_count() < 30, "pruning keeps the machine small");
        assert!(nfa.accepts(b"abb"));
        assert!(nfa.accepts(b"aababb"));
        assert!(!nfa.accepts(b"ab"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A strategy for (pattern, reference matcher) pairs built
    /// structurally, so we can check the compiled NFA against a
    /// directly-interpreted oracle.
    #[derive(Debug, Clone)]
    enum Node {
        Lit(u8),
        Any,
        Concat(Box<Node>, Box<Node>),
        Alt(Box<Node>, Box<Node>),
        Star(Box<Node>),
    }

    impl Node {
        fn to_pattern(&self) -> String {
            match self {
                Node::Lit(b) => format!("{}", *b as char),
                Node::Any => ".".to_string(),
                Node::Concat(a, b) => format!("{}{}", a.to_pattern(), b.to_pattern()),
                Node::Alt(a, b) => format!("({}|{})", a.to_pattern(), b.to_pattern()),
                Node::Star(a) => format!("({})*", a.to_pattern()),
            }
        }

        /// Oracle: set of residual suffix positions after matching a
        /// prefix of `input[pos..]`.
        fn matches(&self, input: &[u8], pos: usize) -> Vec<usize> {
            match self {
                Node::Lit(b) => {
                    if input.get(pos) == Some(b) {
                        vec![pos + 1]
                    } else {
                        vec![]
                    }
                }
                Node::Any => {
                    if pos < input.len() {
                        vec![pos + 1]
                    } else {
                        vec![]
                    }
                }
                Node::Concat(a, b) => {
                    let mut out = Vec::new();
                    for mid in a.matches(input, pos) {
                        out.extend(b.matches(input, mid));
                    }
                    out.sort_unstable();
                    out.dedup();
                    out
                }
                Node::Alt(a, b) => {
                    let mut out = a.matches(input, pos);
                    out.extend(b.matches(input, pos));
                    out.sort_unstable();
                    out.dedup();
                    out
                }
                Node::Star(a) => {
                    let mut out = vec![pos];
                    let mut frontier = vec![pos];
                    while let Some(p) = frontier.pop() {
                        for q in a.matches(input, p) {
                            if q > p && !out.contains(&q) {
                                out.push(q);
                                frontier.push(q);
                            }
                        }
                    }
                    out.sort_unstable();
                    out
                }
            }
        }
    }

    fn node_strategy() -> impl Strategy<Value = Node> {
        let leaf = prop_oneof![(b'a'..=b'c').prop_map(Node::Lit), Just(Node::Any),];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Concat(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Alt(Box::new(a), Box::new(b))),
                inner.prop_map(|a| Node::Star(Box::new(a))),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        /// The compiled NFA agrees with a structural oracle on random
        /// patterns and inputs.
        #[test]
        fn nfa_matches_structural_oracle(
            node in node_strategy(),
            input in proptest::collection::vec(b'a'..=b'd', 0..12),
        ) {
            let pattern = node.to_pattern();
            let nfa = Regex::parse(&pattern).expect("generated pattern parses").compile();
            let expected = node.matches(&input, 0).contains(&input.len());
            prop_assert_eq!(nfa.accepts(&input), expected, "pattern {}", pattern);
        }
    }
}
