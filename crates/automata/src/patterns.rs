//! Multi-pattern sets and synthetic workload generators.
//!
//! The paper motivates automata processing with network security \[22\],
//! computational biology \[23\] and data mining \[24\]. Real rule sets and
//! genomes are licensing-gated, so this module generates *synthetic*
//! equivalents that exercise the same structures: unioned NFAs with high
//! fan-out, dense symbol classes, and inputs with planted true positives
//! (the substitution is documented in `DESIGN.md`).

use crate::{AutomataError, HomogeneousAutomaton, Nfa, Regex, StateId};
use rand::Rng;
use std::collections::HashMap;

/// A match attributed to a specific pattern of a [`PatternSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternMatch {
    /// Index of the pattern in the set.
    pub pattern: usize,
    /// Input index of the symbol that completed the match.
    pub end: usize,
}

/// A compiled multi-pattern automaton: the union NFA of all patterns,
/// scanned unanchored, with accept states attributed back to patterns.
///
/// # Examples
///
/// ```
/// use memcim_automata::PatternSet;
///
/// # fn main() -> Result<(), memcim_automata::AutomataError> {
/// let set = PatternSet::compile(&["GET [a-z]+", "POST"])?;
/// let matches = set.scan(b"xx GET abc POST yy");
/// assert!(matches.iter().any(|m| m.pattern == 0));
/// assert!(matches.iter().any(|m| m.pattern == 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PatternSet {
    patterns: Vec<Regex>,
    nfa: Nfa,
    pattern_of_state: HashMap<StateId, usize>,
}

impl PatternSet {
    /// Parses and compiles a set of patterns into one union automaton.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::EmptyPatternSet`] for an empty slice and
    /// propagates parse errors from individual patterns.
    pub fn compile(patterns: &[&str]) -> Result<Self, AutomataError> {
        if patterns.is_empty() {
            return Err(AutomataError::EmptyPatternSet);
        }
        let parsed: Vec<Regex> =
            patterns.iter().map(|p| Regex::parse(p)).collect::<Result<_, _>>()?;
        let compiled: Vec<Nfa> = parsed.iter().map(Regex::compile).collect();
        let (nfa, maps) = Nfa::union(compiled.iter());
        let mut pattern_of_state = HashMap::new();
        for (pat_idx, (machine, map)) in compiled.iter().zip(&maps).enumerate() {
            for (old, &new) in map.iter().enumerate() {
                if machine.is_accept(old) {
                    pattern_of_state.insert(new, pat_idx);
                }
            }
        }
        Ok(Self { patterns: parsed, nfa, pattern_of_state })
    }

    /// The parsed patterns.
    pub fn patterns(&self) -> &[Regex] {
        &self.patterns
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` if the set is empty (cannot happen via
    /// [`compile`](Self::compile)).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The union NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The pattern owning an accept state of the union NFA, if any.
    pub fn pattern_of_state(&self, state: StateId) -> Option<usize> {
        self.pattern_of_state.get(&state).copied()
    }

    /// Unanchored scan attributing every match event to its pattern.
    pub fn scan(&self, input: &[u8]) -> Vec<PatternMatch> {
        self.nfa
            .scan(input)
            .into_iter()
            .filter_map(|e| {
                self.pattern_of_state(e.state).map(|pattern| PatternMatch { pattern, end: e.end })
            })
            .collect()
    }

    /// Converts to the AP-implementable homogeneous form, returning the
    /// automaton plus the pattern owning each accepting homogeneous
    /// state.
    pub fn to_homogeneous(&self) -> (HomogeneousAutomaton, HashMap<usize, usize>) {
        let h = HomogeneousAutomaton::from_nfa(&self.nfa);
        let mut owner = HashMap::new();
        for hs in 0..h.state_count() {
            if h.is_accept(hs) {
                if let Some(p) = self.pattern_of_state(h.origin(hs)) {
                    owner.insert(hs, p);
                }
            }
        }
        (h, owner)
    }
}

/// Synthetic DNA workloads (the paper's computational-biology use case).
pub mod dna {
    use super::*;

    /// The nucleotide alphabet.
    pub const ALPHABET: [u8; 4] = [b'A', b'C', b'G', b'T'];

    /// Generates a uniform random genome of the given length.
    pub fn random_genome<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<u8> {
        (0..len).map(|_| ALPHABET[rng.gen_range(0..4usize)]).collect()
    }

    /// Overwrites the genome with `motif` at each given position.
    ///
    /// # Panics
    ///
    /// Panics if a plant would run past the end of the genome.
    pub fn plant(genome: &mut [u8], motif: &[u8], positions: &[usize]) {
        for &p in positions {
            assert!(p + motif.len() <= genome.len(), "plant at {p} overruns genome");
            genome[p..p + motif.len()].copy_from_slice(motif);
        }
    }

    /// Converts a motif with IUPAC wildcards (`N` = any base, `R` = A/G,
    /// `Y` = C/T) into a regex pattern string.
    pub fn motif_to_regex(motif: &str) -> String {
        motif
            .chars()
            .map(|c| match c {
                'N' => "[ACGT]".to_string(),
                'R' => "[AG]".to_string(),
                'Y' => "[CT]".to_string(),
                other => other.to_string(),
            })
            .collect()
    }

    /// Generates `count` random exact motifs of the given length.
    pub fn random_motifs<R: Rng + ?Sized>(rng: &mut R, count: usize, len: usize) -> Vec<String> {
        (0..count)
            .map(|_| (0..len).map(|_| ALPHABET[rng.gen_range(0..4usize)] as char).collect())
            .collect()
    }
}

/// Synthetic deep-packet-inspection rule sets (the paper's network
/// security use case).
pub mod rules {
    use super::*;

    /// Generates `count` Snort-flavoured rules: method/keyword heads,
    /// path or token bodies with classes and bounded repeats.
    pub fn synthetic_rules<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<String> {
        let heads = ["GET", "POST", "HEAD", "PUT", "EVIL", "ADMIN", "ROOT", "CMD"];
        let tails = ["exe", "php", "cgi", "dll", "sh", "bin"];
        (0..count)
            .map(|_| {
                let head = heads[rng.gen_range(0..heads.len())];
                let tail = tails[rng.gen_range(0..tails.len())];
                match rng.gen_range(0..4) {
                    0 => format!("{head} /[a-z]{{1,{}}}\\.{tail}", rng.gen_range(3..9)),
                    1 => format!("{head}(/[a-z0-9]+)+\\.{tail}"),
                    2 => format!("{head} .*\\.{tail}"),
                    _ => format!("({head}|{}) /[a-z]+", heads[rng.gen_range(0..heads.len())]),
                }
            })
            .collect()
    }

    /// Generates `len` bytes of mostly-random printable traffic with
    /// matches of the given patterns planted at random offsets
    /// (`plants` insertions).
    pub fn synthetic_traffic<R: Rng + ?Sized>(
        rng: &mut R,
        patterns: &[Regex],
        len: usize,
        plants: usize,
    ) -> Vec<u8> {
        let mut out: Vec<u8> = (0..len).map(|_| rng.gen_range(b' '..=b'~')).collect();
        for _ in 0..plants {
            if patterns.is_empty() {
                break;
            }
            let p = &patterns[rng.gen_range(0..patterns.len())];
            let sample = p.sample(rng);
            if sample.is_empty() || sample.len() >= out.len() {
                continue;
            }
            let at = rng.gen_range(0..out.len() - sample.len());
            out[at..at + sample.len()].copy_from_slice(&sample);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_set_attributes_matches() {
        let set = PatternSet::compile(&["abc", "ab", "bc"]).expect("compiles");
        let matches = set.scan(b"xabcx");
        let pats: Vec<usize> = matches.iter().map(|m| m.pattern).collect();
        assert!(pats.contains(&0), "abc matched");
        assert!(pats.contains(&1), "ab matched");
        assert!(pats.contains(&2), "bc matched");
        // End positions line up with the completing symbol.
        assert!(matches.contains(&PatternMatch { pattern: 0, end: 3 }));
        assert!(matches.contains(&PatternMatch { pattern: 1, end: 2 }));
    }

    #[test]
    fn empty_set_is_rejected() {
        assert!(matches!(PatternSet::compile(&[]), Err(AutomataError::EmptyPatternSet)));
    }

    #[test]
    fn homogeneous_projection_keeps_pattern_attribution() {
        let set = PatternSet::compile(&["ax", "bx"]).expect("compiles");
        let (h, owner) = set.to_homogeneous();
        assert!(!owner.is_empty());
        for (&state, &pat) in &owner {
            assert!(h.is_accept(state));
            assert!(pat < 2);
        }
        // Both patterns own at least one accepting state.
        let owned: std::collections::HashSet<usize> = owner.values().copied().collect();
        assert_eq!(owned.len(), 2);
    }

    #[test]
    fn disabling_rules_makes_their_states_strippable() {
        // The compiler emits trim machines, so the full corpus strips to
        // itself; disabling a rule subset leaves dead tails that strip
        // removes while staying run-equivalent on the subset machine.
        let mut rng = SmallRng::seed_from_u64(2018);
        let texts = rules::synthetic_rules(&mut rng, 16);
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let set = PatternSet::compile(&refs).expect("compiles");
        let (h, owner) = set.to_homogeneous();
        assert_eq!(h.clone().strip().0.state_count(), h.state_count(), "full corpus is trim");
        let subset = h.retain_accepts(|s| owner.get(&s).is_none_or(|&pattern| pattern % 2 == 0));
        let (stripped, _remap) = subset.clone().strip();
        assert!(
            stripped.state_count() < subset.state_count(),
            "disabled rules' exclusive states fall out"
        );
        let traffic = rules::synthetic_traffic(&mut rng, set.patterns(), 3000, 12);
        assert_eq!(stripped.run(&traffic), subset.run(&traffic));
    }

    #[test]
    fn genome_and_plant() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut g = dna::random_genome(&mut rng, 1000);
        assert_eq!(g.len(), 1000);
        assert!(g.iter().all(|b| dna::ALPHABET.contains(b)));
        dna::plant(&mut g, b"ACGTACGT", &[10, 500]);
        assert_eq!(&g[10..18], b"ACGTACGT");
        assert_eq!(&g[500..508], b"ACGTACGT");
    }

    #[test]
    fn motif_wildcards_expand() {
        assert_eq!(dna::motif_to_regex("ANR"), "A[ACGT][AG]");
        let re = Regex::parse(&dna::motif_to_regex("ANT")).expect("parses");
        let nfa = re.compile();
        assert!(nfa.accepts(b"ACT"));
        assert!(nfa.accepts(b"AGT"));
        assert!(!nfa.accepts(b"AC"));
    }

    #[test]
    fn synthetic_rules_all_parse_and_traffic_contains_plants() {
        let mut rng = SmallRng::seed_from_u64(7);
        let texts = rules::synthetic_rules(&mut rng, 25);
        assert_eq!(texts.len(), 25);
        let parsed: Vec<Regex> =
            texts.iter().map(|t| Regex::parse(t).expect("rule parses")).collect();
        let traffic = rules::synthetic_traffic(&mut rng, &parsed, 4096, 20);
        assert_eq!(traffic.len(), 4096);
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let set = PatternSet::compile(&refs).expect("set compiles");
        // With 20 plants, the scan must find something.
        assert!(!set.scan(&traffic).is_empty());
    }

    #[test]
    fn sampled_strings_match_their_pattern() {
        let mut rng = SmallRng::seed_from_u64(3);
        for text in ["a[bc]{2,4}d", "(GET|POST) /[a-z]+", "x+y?z*"] {
            let re = Regex::parse(text).expect("parses");
            let nfa = re.compile();
            for _ in 0..20 {
                let s = re.sample(&mut rng);
                assert!(nfa.accepts(&s), "{text} should accept {s:?}");
            }
        }
    }
}
