//! Property round-trip suite: random regexes → NFA → DFA (raw and
//! minimized) must agree with a structural reference matcher on random
//! byte inputs.
//!
//! The oracle interprets the generated AST directly over the input, with
//! no shared code with the Thompson construction, ε-elimination or the
//! subset construction it is checking. Cases are seeded and
//! deterministic (see the vendored proptest's `TestRng`), so any failure
//! reproduces bit-for-bit.

use memcim_automata::{Dfa, Regex};
use proptest::prelude::*;

/// Regex AST mirroring the constructors the generator emits.
#[derive(Debug, Clone)]
enum Node {
    /// One literal byte.
    Lit(u8),
    /// A character class over `a..=d`.
    Class(Vec<u8>),
    /// `.` — any byte.
    Any,
    Concat(Box<Node>, Box<Node>),
    Alt(Box<Node>, Box<Node>),
    Star(Box<Node>),
    Plus(Box<Node>),
    Opt(Box<Node>),
}

impl Node {
    fn to_pattern(&self) -> String {
        match self {
            Node::Lit(b) => (*b as char).to_string(),
            Node::Class(set) => {
                let mut s = String::from("[");
                for &b in set {
                    s.push(b as char);
                }
                s.push(']');
                s
            }
            Node::Any => ".".to_string(),
            Node::Concat(a, b) => format!("{}{}", a.to_pattern(), b.to_pattern()),
            Node::Alt(a, b) => format!("({}|{})", a.to_pattern(), b.to_pattern()),
            Node::Star(a) => format!("({})*", a.to_pattern()),
            Node::Plus(a) => format!("({})+", a.to_pattern()),
            Node::Opt(a) => format!("({})?", a.to_pattern()),
        }
    }

    /// Reference matcher: the set of positions reachable after consuming
    /// a prefix of `input[pos..]` against this node.
    fn residuals(&self, input: &[u8], pos: usize) -> Vec<usize> {
        match self {
            Node::Lit(b) => {
                if input.get(pos) == Some(b) {
                    vec![pos + 1]
                } else {
                    vec![]
                }
            }
            Node::Class(set) => {
                if input.get(pos).is_some_and(|b| set.contains(b)) {
                    vec![pos + 1]
                } else {
                    vec![]
                }
            }
            Node::Any => {
                if pos < input.len() {
                    vec![pos + 1]
                } else {
                    vec![]
                }
            }
            Node::Concat(a, b) => {
                let mut out: Vec<usize> = a
                    .residuals(input, pos)
                    .into_iter()
                    .flat_map(|mid| b.residuals(input, mid))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            Node::Alt(a, b) => {
                let mut out = a.residuals(input, pos);
                out.extend(b.residuals(input, pos));
                out.sort_unstable();
                out.dedup();
                out
            }
            Node::Star(a) => closure(a, input, vec![pos]),
            Node::Plus(a) => {
                let first: Vec<usize> = a.residuals(input, pos);
                closure(a, input, first)
            }
            Node::Opt(a) => {
                let mut out = vec![pos];
                out.extend(a.residuals(input, pos));
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    fn matches(&self, input: &[u8]) -> bool {
        self.residuals(input, 0).contains(&input.len())
    }
}

/// Fixpoint of `a` applied zero or more further times from `seeds`.
fn closure(a: &Node, input: &[u8], seeds: Vec<usize>) -> Vec<usize> {
    let mut out = seeds.clone();
    let mut frontier = seeds;
    while let Some(p) = frontier.pop() {
        for q in a.residuals(input, p) {
            if q > p && !out.contains(&q) {
                out.push(q);
                frontier.push(q);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        (b'a'..=b'd').prop_map(Node::Lit),
        Just(Node::Class(vec![b'a', b'b'])),
        Just(Node::Class(vec![b'b', b'c', b'd'])),
        Just(Node::Any),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Node::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Node::Star(Box::new(a))),
            inner.clone().prop_map(|a| Node::Plus(Box::new(a))),
            inner.prop_map(|a| Node::Opt(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Regex → NFA → DFA → minimized DFA all agree with the structural
    /// oracle, input by input.
    #[test]
    fn pipeline_agrees_with_reference_matcher(
        node in node_strategy(),
        inputs in proptest::collection::vec(
            proptest::collection::vec(b'a'..=b'e', 0..12), 1..8),
    ) {
        let pattern = node.to_pattern();
        let nfa = Regex::parse(&pattern).expect("generated pattern parses").compile();
        let dfa = Dfa::from_nfa(&nfa);
        let min = dfa.minimize();
        prop_assert!(min.state_count() <= dfa.state_count(), "minimize grew {}", pattern);
        for input in &inputs {
            let expected = node.matches(input);
            prop_assert_eq!(nfa.accepts(input), expected, "nfa, pattern {} input {:?}", pattern, input);
            prop_assert_eq!(dfa.accepts(input), expected, "dfa, pattern {} input {:?}", pattern, input);
            prop_assert_eq!(min.accepts(input), expected, "min dfa, pattern {} input {:?}", pattern, input);
        }
    }

    /// The minimized DFA accepts exactly the same inputs as the raw DFA
    /// even on bytes outside the generated alphabet.
    #[test]
    fn minimization_is_language_preserving_off_alphabet(
        node in node_strategy(),
        input in proptest::collection::vec(any::<u8>(), 0..10),
    ) {
        let pattern = node.to_pattern();
        let nfa = Regex::parse(&pattern).expect("generated pattern parses").compile();
        let dfa = Dfa::from_nfa(&nfa);
        let min = dfa.minimize();
        prop_assert_eq!(dfa.accepts(&input), min.accepts(&input), "pattern {} input {:?}", pattern, input);
    }
}
