//! Shared table-rendering helpers for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one figure (or headline number)
//! of the paper; see the experiment index in `DESIGN.md` and the
//! paper-vs-measured record in `EXPERIMENTS.md`. The [`json`] module
//! backs the machine-readable reports written by the `perf_report`
//! binary.

pub mod json;
pub mod yields;

/// Renders a simple aligned table: a header row plus data rows.
///
/// # Examples
///
/// ```
/// let t = memcim_bench::table(
///     &["tech", "delay"],
///     &[vec!["RRAM".into(), "104 ps".into()]],
/// );
/// assert!(t.contains("RRAM"));
/// ```
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..widths.get(i).copied().unwrap_or(0) {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    render(&header_cells, &widths, &mut out);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

/// Formats a float with the given precision (helper for table cells).
pub fn fmt(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "bbbb"],
            &[vec!["xxx".into(), "y".into()], vec!["z".into(), "wwwww".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    bbbb"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn fmt_controls_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
