//! Minimal JSON support for the machine-readable bench reports.
//!
//! The build container has no registry access, so instead of `serde`
//! this module hand-rolls the tiny subset the `perf_report` binary
//! needs: a recursive-descent parser (used by `perf_report --check` to
//! validate committed `BENCH_*.json` files) and a string escaper for the
//! writer side. Numbers are parsed as `f64`, which is exact for every
//! value the reports emit.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first syntax
/// problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError { offset: pos, message: "trailing characters after document" });
    }
    Ok(value)
}

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8, message: &'static str) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { offset: *pos, message })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError { offset: *pos, message: "unexpected end of input" }),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &'static [u8],
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError { offset: *pos, message: "invalid literal" })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError { offset: start, message: "invalid number" })?;
    let x: f64 =
        text.parse().map_err(|_| JsonError { offset: start, message: "invalid number" })?;
    if !x.is_finite() {
        return Err(JsonError { offset: start, message: "non-finite number" });
    }
    Ok(JsonValue::Number(x))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected string")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { offset: *pos, message: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError { offset: *pos, message: "invalid \\u escape" })?;
                        // Surrogate pairs are not needed by the reports;
                        // map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError { offset: *pos, message: "invalid escape" }),
                }
                *pos += 1;
            }
            Some(&byte) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let len = match byte {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&bytes[*pos..*pos + len])
                    .map_err(|_| JsonError { offset: *pos, message: "invalid UTF-8" })?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[', "expected array")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(JsonError { offset: *pos, message: "expected ',' or ']'" }),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{', "expected object")?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return Err(JsonError { offset: *pos, message: "expected ',' or '}'" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\ny"}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("a").and_then(|a| a.as_array()).map(<[JsonValue]>::len), Some(3));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "{\"a\": }", "[1, 2,]", "tru", "\"open", "{} extra", "1e999"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote\" backslash\\ newline\n tab\t ünïcode";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).expect("parses");
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some(original));
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("[]").expect("array"), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").expect("object"), JsonValue::Object(vec![]));
    }
}
