//! Closed-loop TCP load generator for the `memcim-serve` network front
//! door: N client threads, each with its own loopback connection and
//! tenant, hammer a live [`NetServer`] with bitmap MVP queries and
//! record per-request latency. The report is the latency distribution
//! (p50/p95/p99), accepted QPS, and — because the client count is
//! deliberately larger than the queue — the number of requests the
//! admission path refused with typed `OverCapacity` frames instead of
//! blocking.
//!
//! ```text
//! serve_load [--quick] [--clients N] [--workers W] [--queue-depth Q]
//!            [--duration-ms MS] [--kill-rate K] [--streams S]
//! ```
//!
//! * `--quick` shrinks the run for CI smoke (4 clients, 150 ms).
//! * `--streams S` switches the workload from MVP queries to
//!   multi-stream AP sessions: each client opens one session and every
//!   request is an `ApFeedMany` driving S lanes through the shared
//!   automaton (with a periodic `ApFinishMany` so lane state stays
//!   bounded) — the overload instrument for the multi-stream wire path.
//! * `--kill-rate K` retires worker engines at ~K kills/second
//!   (seeded schedule, at least one engine always survives): a chaos
//!   mode proving the retire-and-divert path stays invisible to
//!   clients — every request still completes or is refused with a
//!   typed `OverCapacity`, never an engine fault.
//! * Defaults: 16 clients, 4 workers, queue depth 8, 2000 ms, no kills.
//!
//! Unlike `perf_report`'s `serve_net_qps` config (one connection,
//! sequential round trips — the committed trajectory number), this
//! binary is the *overload* instrument: concurrency exceeds capacity
//! on purpose, so tail latency and refusal behavior are visible.

use memcim_bits::BitVec;
use memcim_crossbar::{
    BankedCrossbar, CrossbarBackend, CrossbarError, OpLedger, RemapEntry, ScoutingKind,
};
use memcim_mvp::Instruction;
use memcim_serve::net::{ClientError, ErrorCode, NetClient, NetConfig, NetServer, TenantPolicy};
use memcim_serve::{BoxedBackend, ServeConfig, Service};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Same fixed seed as `perf_report` (the paper's year).
const SEED: u64 = 2018;

/// Per-tenant auth token (the generator provisions every tenant).
fn token(tenant: u64) -> String {
    format!("load-tenant-{tenant}")
}

struct Args {
    clients: usize,
    workers: usize,
    queue_depth: usize,
    duration: Duration,
    /// Engine kills per second; zero disables the chaos schedule.
    kill_rate: f64,
    /// AP lanes per request; zero keeps the MVP query workload.
    streams: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        clients: 16,
        workers: 4,
        queue_depth: 8,
        duration: Duration::from_millis(2000),
        kill_rate: 0.0,
        streams: 0,
    };
    let mut it = argv.iter();
    let number = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> u64 {
        it.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .parse()
            .unwrap_or_else(|e| panic!("{flag}: {e}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                args.clients = 4;
                args.duration = Duration::from_millis(150);
            }
            "--clients" => args.clients = number(&mut it, "--clients") as usize,
            "--workers" => args.workers = number(&mut it, "--workers") as usize,
            "--queue-depth" => args.queue_depth = number(&mut it, "--queue-depth") as usize,
            "--duration-ms" => {
                args.duration = Duration::from_millis(number(&mut it, "--duration-ms"))
            }
            "--streams" => args.streams = number(&mut it, "--streams") as usize,
            "--kill-rate" => {
                args.kill_rate = it
                    .next()
                    .unwrap_or_else(|| panic!("--kill-rate needs a value"))
                    .parse()
                    .unwrap_or_else(|e| panic!("--kill-rate: {e}"))
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: serve_load [--quick] [--clients N] [--workers W] \
                     [--queue-depth Q] [--duration-ms MS] [--kill-rate K] [--streams S]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(args.clients > 0, "--clients must be positive");
    assert!(args.kill_rate >= 0.0 && args.kill_rate.is_finite(), "--kill-rate must be finite");
    assert!(args.streams <= 64, "--streams is capped at the wire protocol's 64 lanes");
    assert!(
        args.streams == 0 || args.kill_rate == 0.0,
        "--streams and --kill-rate are separate instruments (AP sessions live on one worker)"
    );
    args
}

/// A substrate with a remote kill switch: executes normally until its
/// worker's flag flips, then reports `ExhaustedSpares` on every
/// operation. The serve layer retires the engine and diverts the
/// in-flight job to a surviving worker, so clients never see the kill.
struct KillableBackend {
    inner: BankedCrossbar,
    switches: Arc<Vec<AtomicBool>>,
    worker: usize,
}

impl KillableBackend {
    fn check(&self) -> Result<(), CrossbarError> {
        if self.switches[self.worker].load(Ordering::SeqCst) {
            Err(CrossbarError::ExhaustedSpares { row: 0, spares: 0 })
        } else {
            Ok(())
        }
    }
}

impl CrossbarBackend for KillableBackend {
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        self.check()?;
        self.inner.program_row(row, values)
    }

    fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        self.check()?;
        self.inner.read_row(row)
    }

    fn scouting(&mut self, kind: ScoutingKind, rows: &[usize]) -> Result<BitVec, CrossbarError> {
        self.check()?;
        self.inner.scouting(kind, rows)
    }

    fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError> {
        self.check()?;
        self.inner.scouting_write(kind, rows, dest)
    }

    fn ledger_parts(&self) -> Vec<OpLedger> {
        self.inner.ledger_parts()
    }

    fn remap_table(&self) -> Vec<RemapEntry> {
        self.inner.remap_table()
    }
}

/// What one client thread observed.
struct ClientReport {
    /// Latency of each accepted request, in nanoseconds.
    latencies_ns: Vec<u64>,
    /// Requests refused before queue admission (typed `OverCapacity`).
    over_capacity: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

fn main() {
    let args = parse_args();

    // The same small-query bitmap workload as perf_report's serving
    // configs: 2048 records striped over 64 banks, four query plans.
    let records = 2_048usize;
    let mut rng = SmallRng::seed_from_u64(SEED);
    let col1: Vec<u8> = (0..records).map(|_| rng.gen_range(0..16)).collect();
    let col2: Vec<u8> = (0..records).map(|_| rng.gen_range(0..8)).collect();
    let table = memcim_mvp::workloads::bitmap::BitmapTable::new(col1, col2, 16)
        .expect("well-formed columns");
    let queries: [(&[u8], &[u8]); 4] =
        [(&[1, 4, 9], &[0, 3]), (&[2, 5], &[1, 6]), (&[11], &[2, 4, 7]), (&[0, 8, 14], &[5])];
    let plans: Vec<Vec<Instruction>> =
        queries.iter().map(|(s1, s2)| table.query_plan(s1, s2)).collect();

    let (rows, banks, bank_cols) = (32usize, 64usize, records / 64);
    let mut serve_config = ServeConfig::default()
        .with_workers(args.workers)
        .with_queue_depth(args.queue_depth)
        .with_max_burst(8)
        .with_mvp_geometry(rows, banks, bank_cols);
    let switches: Arc<Vec<AtomicBool>> =
        Arc::new((0..args.workers).map(|_| AtomicBool::new(false)).collect());
    if args.kill_rate > 0.0 {
        let factory_switches = Arc::clone(&switches);
        serve_config = serve_config.with_engine_factory(move |worker| -> BoxedBackend {
            Box::new(KillableBackend {
                inner: BankedCrossbar::rram(rows, banks, bank_cols),
                switches: Arc::clone(&factory_switches),
                worker,
            })
        });
    }
    let service = Arc::new(Service::try_start(serve_config).expect("service starts"));
    let mut net = NetConfig::default();
    for tenant in 0..args.clients as u64 {
        net = net.with_tenant(tenant, TenantPolicy::new(token(tenant)));
    }
    let server = NetServer::start(Arc::clone(&service), net).expect("server starts");
    let addr = server.local_addr();

    let started = Instant::now();
    let deadline = started + args.duration;

    // The chaos schedule: a seeded thread flips one surviving worker's
    // kill switch roughly every 1/K seconds, always leaving at least
    // one engine alive so the service stays answerable.
    let chaos = (args.kill_rate > 0.0).then(|| {
        let switches = Arc::clone(&switches);
        let kill_rate = args.kill_rate;
        std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(SEED ^ 0xC4A05);
            let mut killed = 0u64;
            while Instant::now() < deadline {
                // Jittered inter-kill gap: 0.5x..1.5x of the mean.
                let gap = Duration::from_secs_f64(rng.gen_range(0.5..1.5) / kill_rate);
                let wake = Instant::now() + gap;
                while Instant::now() < wake.min(deadline) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                if Instant::now() >= deadline {
                    break;
                }
                let alive: Vec<usize> =
                    (0..switches.len()).filter(|&w| !switches[w].load(Ordering::SeqCst)).collect();
                if alive.len() <= 1 {
                    break; // the last engine must survive
                }
                let victim = alive[rng.gen_range(0..alive.len())];
                switches[victim].store(true, Ordering::SeqCst);
                killed += 1;
            }
            killed
        })
    });

    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|i| {
                let plans = &plans;
                let streams = args.streams;
                scope.spawn(move || {
                    let tenant = i as u64;
                    let mut client = NetClient::connect(addr).expect("client connects");
                    client.hello(tenant, &token(tenant)).expect("tenant is provisioned");
                    let mut report = ClientReport { latencies_ns: Vec::new(), over_capacity: 0 };
                    let mut next = i; // stagger plan rotation across clients
                    if streams > 0 {
                        // Multi-stream AP workload: one session per
                        // client, every request one ApFeedMany over
                        // `streams` lanes; a finish every 32 feeds
                        // bounds per-lane state without dominating.
                        let session =
                            client.ap_open(&["GET /[a-z]+", "ab+c"]).expect("session opens");
                        let mut lane_rng = SmallRng::seed_from_u64(SEED ^ i as u64);
                        let chunks: Vec<Vec<u8>> = (0..streams)
                            .map(|_| {
                                (0..64)
                                    .map(|_| {
                                        const ALPHABET: &[u8] = b"GET /abcindex ";
                                        ALPHABET[lane_rng.gen_range(0..ALPHABET.len())]
                                    })
                                    .collect()
                            })
                            .collect();
                        while Instant::now() < deadline {
                            next += 1;
                            let sent = Instant::now();
                            match client.ap_feed_many(session, &chunks) {
                                Ok(reports) => {
                                    assert_eq!(reports.len(), streams);
                                    report.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                                }
                                Err(ClientError::Server {
                                    code: ErrorCode::OverCapacity, ..
                                }) => report.over_capacity += 1,
                                Err(e) => panic!("client {i}: unexpected failure: {e}"),
                            }
                            if next % 32 == 0 {
                                client.ap_finish_many(session).expect("lanes finish");
                            }
                        }
                        return report;
                    }
                    while Instant::now() < deadline {
                        let plan = plans[next % plans.len()].clone();
                        next += 1;
                        let sent = Instant::now();
                        match client.submit_mvp(&[plan]) {
                            Ok(_) => {
                                report.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                            }
                            Err(ClientError::Server { code: ErrorCode::OverCapacity, .. }) => {
                                report.over_capacity += 1
                            }
                            Err(e) => panic!("client {i}: unexpected failure: {e}"),
                        }
                    }
                    report
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread joins")).collect()
    });
    let wall = started.elapsed();
    let killed = chaos.map_or(0, |h| h.join().expect("chaos thread joins"));
    let retired = service.retired_engines() as u64;
    server.shutdown();
    drop(service);

    let mut latencies: Vec<u64> = Vec::new();
    let mut refused = 0u64;
    for report in &reports {
        latencies.extend_from_slice(&report.latencies_ns);
        refused += report.over_capacity;
    }
    latencies.sort_unstable();
    let accepted = latencies.len() as u64;
    let qps = accepted as f64 / wall.as_secs_f64();
    let us = |ns: u64| memcim_bench::fmt(ns as f64 / 1e3, 1);

    println!(
        "{}",
        memcim_bench::table(
            &[
                "clients", "workers", "queue", "wall_ms", "accepted", "refused", "killed",
                "retired", "qps", "p50_us", "p95_us", "p99_us"
            ],
            &[vec![
                args.clients.to_string(),
                args.workers.to_string(),
                args.queue_depth.to_string(),
                memcim_bench::fmt(wall.as_secs_f64() * 1e3, 0),
                accepted.to_string(),
                refused.to_string(),
                killed.to_string(),
                retired.to_string(),
                memcim_bench::fmt(qps, 0),
                us(percentile(&latencies, 0.50)),
                us(percentile(&latencies, 0.95)),
                us(percentile(&latencies, 0.99)),
            ]],
        )
    );
    assert!(accepted > 0, "the load generator must complete at least one request");
    assert!(
        retired <= killed,
        "the service cannot retire more engines ({retired}) than the schedule killed ({killed})"
    );
}
