//! Closed-loop TCP load generator for the `memcim-serve` network front
//! door: N client threads, each with its own loopback connection and
//! tenant, hammer a live [`NetServer`] with bitmap MVP queries and
//! record per-request latency. The report is the latency distribution
//! (p50/p95/p99), accepted QPS, and — because the client count is
//! deliberately larger than the queue — the number of requests the
//! admission path refused with typed `OverCapacity` frames instead of
//! blocking.
//!
//! ```text
//! serve_load [--quick] [--clients N] [--workers W] [--queue-depth Q]
//!            [--duration-ms MS]
//! ```
//!
//! * `--quick` shrinks the run for CI smoke (4 clients, 150 ms).
//! * Defaults: 16 clients, 4 workers, queue depth 8, 2000 ms.
//!
//! Unlike `perf_report`'s `serve_net_qps` config (one connection,
//! sequential round trips — the committed trajectory number), this
//! binary is the *overload* instrument: concurrency exceeds capacity
//! on purpose, so tail latency and refusal behavior are visible.

use memcim_mvp::Instruction;
use memcim_serve::net::{ClientError, ErrorCode, NetClient, NetConfig, NetServer, TenantPolicy};
use memcim_serve::{ServeConfig, Service};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Same fixed seed as `perf_report` (the paper's year).
const SEED: u64 = 2018;

/// Per-tenant auth token (the generator provisions every tenant).
fn token(tenant: u64) -> String {
    format!("load-tenant-{tenant}")
}

struct Args {
    clients: usize,
    workers: usize,
    queue_depth: usize,
    duration: Duration,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args =
        Args { clients: 16, workers: 4, queue_depth: 8, duration: Duration::from_millis(2000) };
    let mut it = argv.iter();
    let number = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> u64 {
        it.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .parse()
            .unwrap_or_else(|e| panic!("{flag}: {e}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                args.clients = 4;
                args.duration = Duration::from_millis(150);
            }
            "--clients" => args.clients = number(&mut it, "--clients") as usize,
            "--workers" => args.workers = number(&mut it, "--workers") as usize,
            "--queue-depth" => args.queue_depth = number(&mut it, "--queue-depth") as usize,
            "--duration-ms" => {
                args.duration = Duration::from_millis(number(&mut it, "--duration-ms"))
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: serve_load [--quick] [--clients N] [--workers W] \
                     [--queue-depth Q] [--duration-ms MS]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(args.clients > 0, "--clients must be positive");
    args
}

/// What one client thread observed.
struct ClientReport {
    /// Latency of each accepted request, in nanoseconds.
    latencies_ns: Vec<u64>,
    /// Requests refused before queue admission (typed `OverCapacity`).
    over_capacity: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

fn main() {
    let args = parse_args();

    // The same small-query bitmap workload as perf_report's serving
    // configs: 2048 records striped over 64 banks, four query plans.
    let records = 2_048usize;
    let mut rng = SmallRng::seed_from_u64(SEED);
    let col1: Vec<u8> = (0..records).map(|_| rng.gen_range(0..16)).collect();
    let col2: Vec<u8> = (0..records).map(|_| rng.gen_range(0..8)).collect();
    let table = memcim_mvp::workloads::bitmap::BitmapTable::new(col1, col2, 16);
    let queries: [(&[u8], &[u8]); 4] =
        [(&[1, 4, 9], &[0, 3]), (&[2, 5], &[1, 6]), (&[11], &[2, 4, 7]), (&[0, 8, 14], &[5])];
    let plans: Vec<Vec<Instruction>> =
        queries.iter().map(|(s1, s2)| table.query_plan(s1, s2)).collect();

    let service = Arc::new(
        Service::try_start(
            ServeConfig::default()
                .with_workers(args.workers)
                .with_queue_depth(args.queue_depth)
                .with_max_burst(8)
                .with_mvp_geometry(32, 64, records / 64),
        )
        .expect("service starts"),
    );
    let mut net = NetConfig::default();
    for tenant in 0..args.clients as u64 {
        net = net.with_tenant(tenant, TenantPolicy::new(token(tenant)));
    }
    let server = NetServer::start(Arc::clone(&service), net).expect("server starts");
    let addr = server.local_addr();

    let started = Instant::now();
    let deadline = started + args.duration;
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|i| {
                let plans = &plans;
                scope.spawn(move || {
                    let tenant = i as u64;
                    let mut client = NetClient::connect(addr).expect("client connects");
                    client.hello(tenant, &token(tenant)).expect("tenant is provisioned");
                    let mut report = ClientReport { latencies_ns: Vec::new(), over_capacity: 0 };
                    let mut next = i; // stagger plan rotation across clients
                    while Instant::now() < deadline {
                        let plan = plans[next % plans.len()].clone();
                        next += 1;
                        let sent = Instant::now();
                        match client.submit_mvp(&[plan]) {
                            Ok(_) => {
                                report.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                            }
                            Err(ClientError::Server { code: ErrorCode::OverCapacity, .. }) => {
                                report.over_capacity += 1
                            }
                            Err(e) => panic!("client {i}: unexpected failure: {e}"),
                        }
                    }
                    report
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread joins")).collect()
    });
    let wall = started.elapsed();
    server.shutdown();
    drop(service);

    let mut latencies: Vec<u64> = Vec::new();
    let mut refused = 0u64;
    for report in &reports {
        latencies.extend_from_slice(&report.latencies_ns);
        refused += report.over_capacity;
    }
    latencies.sort_unstable();
    let accepted = latencies.len() as u64;
    let qps = accepted as f64 / wall.as_secs_f64();
    let us = |ns: u64| memcim_bench::fmt(ns as f64 / 1e3, 1);

    println!(
        "{}",
        memcim_bench::table(
            &[
                "clients", "workers", "queue", "wall_ms", "accepted", "refused", "qps", "p50_us",
                "p95_us", "p99_us"
            ],
            &[vec![
                args.clients.to_string(),
                args.workers.to_string(),
                args.queue_depth.to_string(),
                memcim_bench::fmt(wall.as_secs_f64() * 1e3, 0),
                accepted.to_string(),
                refused.to_string(),
                memcim_bench::fmt(qps, 0),
                us(percentile(&latencies, 0.50)),
                us(percentile(&latencies, 0.95)),
                us(percentile(&latencies, 0.99)),
            ]],
        )
    );
    assert!(accepted > 0, "the load generator must complete at least one request");
}
