//! Regenerates Fig. 3b: scouting-logic input-current levels and the
//! reference placement realizing OR / AND / XOR.
//!
//! Prints the three bit-line current levels for two activated rows
//! (`2Vr/RH`, `≈Vr/RL`, `2Vr/RL`), the chosen sense references per gate,
//! and the resulting truth tables, then validates an array-level sweep.

use memcim_bench::table;
use memcim_bits::BitVec;
use memcim_crossbar::{Crossbar, ScoutingKind, SenseThresholds};
use memcim_units::{Ohms, Volts};

fn main() {
    let vr = Volts::from_millivolts(100.0);
    let rl = Ohms::from_kilohms(1.0);
    let rh = Ohms::from_megohms(100.0);
    println!("Fig. 3b — scouting logic references (Vr = {vr}, RL = {rl}, RH = {rh})\n");

    let i = |states: &[bool]| -> f64 {
        states.iter().map(|&s| (vr / if s { rl } else { rh }).as_amps()).sum()
    };
    println!("bit-line current levels (two activated rows):");
    let mut level_rows = Vec::new();
    for (label, states) in [("0,0", [false, false]), ("0,1", [false, true]), ("1,1", [true, true])]
    {
        level_rows.push(vec![label.into(), format!("{:.3e} A", i(&states))]);
    }
    println!("{}", table(&["cells", "I_in"], &level_rows));

    let mut gate_rows = Vec::new();
    for kind in [ScoutingKind::Or, ScoutingKind::And, ScoutingKind::Xor] {
        let t = SenseThresholds::for_gate(kind, 2, vr, rl, rh);
        let outs: Vec<String> = [[false, false], [false, true], [true, false], [true, true]]
            .iter()
            .map(|s| u8::from(t.sense(memcim_units::Amps::new(i(s)))).to_string())
            .collect();
        gate_rows.push(vec![
            format!("{kind:?}"),
            format!("{:.3e} A", t.low().as_amps()),
            t.high().map_or("—".into(), |h| format!("{:.3e} A", h.as_amps())),
            outs.join(" "),
        ]);
    }
    println!(
        "{}",
        table(&["gate", "Iref (low)", "Iref (high)", "out for 00 01 10 11"], &gate_rows)
    );

    // Array-level validation: 64-column random-ish patterns.
    let mut xbar = Crossbar::rram(2, 64);
    let a = BitVec::from_indices(64, &(0..64).step_by(2).collect::<Vec<_>>());
    let b = BitVec::from_indices(64, &(0..64).step_by(3).collect::<Vec<_>>());
    xbar.program_row(0, &a).expect("row 0");
    xbar.program_row(1, &b).expect("row 1");
    let or_ok = xbar.scouting(ScoutingKind::Or, &[0, 1]).expect("or") == a.or(&b);
    let and_ok = xbar.scouting(ScoutingKind::And, &[0, 1]).expect("and") == a.and(&b);
    let xor_ok = xbar.scouting(ScoutingKind::Xor, &[0, 1]).expect("xor") == a.xor(&b);
    println!("array validation over 64 columns: OR {or_ok}, AND {and_ok}, XOR {xor_ok}");
    println!(
        "array cost so far: {} scouting ops, {} total",
        xbar.ledger().scouting_ops(),
        xbar.ledger().energy()
    );
}
