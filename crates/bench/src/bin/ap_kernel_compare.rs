//! Regenerates headline H1: the vector dot-product kernel and chip-level
//! comparison of RRAM-AP against SRAM-AP and SDRAM-AP.
//!
//! The abstract claims the RRAM dot-product kernel beats the SRAM one by
//! "40 % less delay and 27 % less energy"; Section IV.D's raw operator
//! numbers are 35 % / 59 %. This harness prints both views: the raw
//! operator (discharge only) and the kernel with peripheral latency
//! included, plus an end-to-end rule-set scan on all three backends.

use memcim_ap::{ApBackend, AutomataProcessor, RoutingKind};
use memcim_automata::{rules, PatternSet, StartKind};
use memcim_bench::{fmt, table};
use memcim_crossbar::CellTechnology;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("H1 — vector dot-product kernel and chip-level backend comparison\n");

    // Operator level (the Fig. 9 kernel, 256-input dot product).
    let rram = CellTechnology::rram_1t1r();
    let sram = CellTechnology::sram_8t();
    let mut rows = Vec::new();
    for tech in [&rram, &sram] {
        rows.push(vec![
            tech.name.into(),
            fmt(tech.analytic_discharge_time(256).as_picoseconds(), 1),
            fmt(tech.read_latency(256).as_picoseconds(), 1),
            fmt(tech.analytic_cycle_energy(256).as_femtojoules(), 2),
            fmt(tech.cell_area().as_square_micrometers() * 256.0, 2),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "operator",
                "discharge (ps)",
                "with SA+decode (ps)",
                "energy (fJ/col)",
                "area (µm²/col)"
            ],
            &rows
        )
    );
    let d_raw = 1.0
        - rram.analytic_discharge_time(256).as_seconds()
            / sram.analytic_discharge_time(256).as_seconds();
    let d_kernel = 1.0 - rram.read_latency(256).as_seconds() / sram.read_latency(256).as_seconds();
    let e_saving = 1.0
        - rram.analytic_cycle_energy(256).as_joules() / sram.analytic_cycle_energy(256).as_joules();
    println!(
        "savings: discharge {:.0}% (paper §IV.D: 35%), kernel incl. peripherals {:.0}% (abstract: 40%), energy {:.0}% (paper §IV.D: 59%, abstract: 27%)\n",
        d_raw * 100.0,
        d_kernel * 100.0,
        e_saving * 100.0
    );

    // Chip level: a synthetic DPI rule set streamed on each backend.
    let mut rng = SmallRng::seed_from_u64(2018);
    let rule_texts = rules::synthetic_rules(&mut rng, 24);
    let refs: Vec<&str> = rule_texts.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs).expect("rules compile");
    let (homog, _) = set.to_homogeneous();
    let homog = homog.with_start_kind(StartKind::AllInput);
    let traffic = rules::synthetic_traffic(&mut rng, set.patterns(), 1 << 15, 64);

    let mut chip_rows = Vec::new();
    for backend in [ApBackend::rram(), ApBackend::sram(), ApBackend::sdram()] {
        let name = backend.name;
        let mut ap =
            AutomataProcessor::compile(&homog, backend, RoutingKind::Dense).expect("rule set maps");
        let run = ap.run(&traffic);
        chip_rows.push(vec![
            name.into(),
            format!("{}", ap.state_count()),
            format!("{:.2}", ap.costs().throughput() / 1.0e9),
            format!("{:.2}", run.report.energy_per_symbol().as_picojoules()),
            format!("{:.3}", ap.costs().area.as_square_millimeters()),
            format!("{:.2}", ap.costs().static_power.as_milliwatts()),
            format!("{}", run.accept_events.len()),
        ]);
    }
    println!(
        "{}",
        table(
            &["backend", "STEs", "Gsym/s", "pJ/sym", "area (mm²)", "leak (mW)", "reports"],
            &chip_rows
        )
    );
    println!(
        "expected shape: RRAM-AP fastest and lowest energy/area/leakage; identical report counts"
    );
}
