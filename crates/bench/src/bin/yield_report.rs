//! Monte-Carlo yield report for the fault-tolerance stack: sweeps
//! stuck-at defect density × endurance budget over seeded trials of
//! ECC-protected, spare-repaired crossbars and records
//! clean/corrected/uncorrectable/retired/exhausted counts per grid
//! point in a machine-readable JSON artifact (`BENCH_yield.json`).
//!
//! ```text
//! yield_report [--quick] [--out PATH]
//! yield_report --check PATH
//! ```
//!
//! * `--quick` shrinks geometry and trial counts (CI smoke; same seed
//!   and grid axes).
//! * `--check` parses an existing report and fails (exit 1) if it is
//!   malformed, misses a grid point, or carries impossible counts —
//!   the CI guard over the committed artifact.

use memcim_bench::json::{self, JsonValue};
use memcim_bench::yields::{self, YieldConfig, YieldPoint};

/// Same fixed seed as `perf_report` (the paper's year).
const SEED: u64 = 2018;

fn render_report(cfg: &YieldConfig, points: &[YieldPoint], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"memcim-yield-report/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!(
        "  \"geometry\": {{ \"rows\": {}, \"cols\": {}, \"spares\": {}, \"threshold\": {}, \
         \"rounds\": {}, \"trials\": {} }},\n",
        cfg.rows, cfg.cols, cfg.spares, cfg.threshold, cfg.rounds, cfg.trials
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"stuck_density\": {},\n", p.stuck_density));
        out.push_str(&format!("      \"endurance_budget\": {},\n", p.endurance_budget));
        out.push_str(&format!("      \"trials\": {},\n", p.trials));
        out.push_str(&format!("      \"clean_trials\": {},\n", p.clean_trials));
        out.push_str(&format!("      \"yield_fraction\": {:.4},\n", p.yield_fraction()));
        out.push_str(&format!("      \"corrected\": {},\n", p.corrected));
        out.push_str(&format!("      \"uncorrectable\": {},\n", p.uncorrectable));
        out.push_str(&format!("      \"silent\": {},\n", p.silent));
        out.push_str(&format!("      \"retired_rows\": {},\n", p.retired_rows));
        out.push_str(&format!("      \"exhausted_spares\": {}\n", p.exhausted_spares));
        out.push_str(if i + 1 == points.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a report: schema tag, the full grid present, counts that
/// add up, and evidence the harness exercised the repair machinery
/// (some point corrected at least one upset).
fn check_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("memcim-yield-report/v1") => {}
        other => return Err(format!("unexpected schema tag {other:?}")),
    }
    let points = doc
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"points\" array".to_string())?;
    let expected = yields::DENSITIES.len() * yields::BUDGETS.len();
    if points.len() != expected {
        return Err(format!("expected {expected} grid points, found {}", points.len()));
    }
    let mut any_corrected = false;
    for density in yields::DENSITIES {
        for budget in yields::BUDGETS {
            let point = points
                .iter()
                .find(|p| {
                    p.get("stuck_density").and_then(JsonValue::as_f64) == Some(*density)
                        && p.get("endurance_budget").and_then(JsonValue::as_f64)
                            == Some(*budget as f64)
                })
                .ok_or_else(|| format!("missing grid point ({density}, {budget})"))?;
            let field = |name: &str| -> Result<f64, String> {
                point
                    .get(name)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("point ({density}, {budget}): missing {name:?}"))
            };
            let trials = field("trials")?;
            let clean = field("clean_trials")?;
            if trials <= 0.0 || clean < 0.0 || clean > trials {
                return Err(format!(
                    "point ({density}, {budget}): impossible clean_trials {clean}/{trials}"
                ));
            }
            for counter in
                ["corrected", "uncorrectable", "silent", "retired_rows", "exhausted_spares"]
            {
                if field(counter)? < 0.0 {
                    return Err(format!("point ({density}, {budget}): negative {counter}"));
                }
            }
            if field("corrected")? > 0.0 {
                any_corrected = true;
            }
            // A pristine array must yield perfectly, with no silent
            // wrong reads.
            if *density == 0.0 && *budget >= 1_000_000 && (clean < trials || field("silent")? > 0.0)
            {
                return Err(format!("pristine point lost yield: {clean}/{trials} clean"));
            }
        }
    }
    if !any_corrected {
        return Err("no grid point corrected a single upset — ECC never engaged".to_string());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = "BENCH_yield.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: yield_report [--quick] [--out PATH] | --check PATH");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match check_report(&text) {
            Ok(()) => {
                println!(
                    "{path}: OK ({} grid points present)",
                    yields::DENSITIES.len() * yields::BUDGETS.len()
                );
                return;
            }
            Err(message) => {
                eprintln!("{path}: INVALID — {message}");
                std::process::exit(1);
            }
        }
    }

    let cfg = if quick { YieldConfig::quick() } else { YieldConfig::full() };
    let points = yields::run_grid(&cfg, yields::DENSITIES, yields::BUDGETS, SEED);

    println!(
        "{}",
        memcim_bench::table(
            &[
                "density",
                "budget",
                "yield",
                "corrected",
                "uncorr",
                "silent",
                "retired",
                "exhausted"
            ],
            &points
                .iter()
                .map(|p| vec![
                    format!("{:.3}", p.stuck_density),
                    p.endurance_budget.to_string(),
                    format!("{}/{}", p.clean_trials, p.trials),
                    p.corrected.to_string(),
                    p.uncorrectable.to_string(),
                    p.silent.to_string(),
                    p.retired_rows.to_string(),
                    p.exhausted_spares.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );

    let report = render_report(&cfg, &points, quick);
    check_report(&report).expect("generated report must validate");
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
}
