//! Regenerates Fig. 4: MVP vs multicore efficiency metrics over the
//! L1/L2 miss-rate grid (0–60 %), %Acc = 0.7.
//!
//! Prints ηPE (MOPs/mW), ηE (pJ/op) and ηPA (MOPs/mm²) for both
//! architectures at every grid point, plus the MVP gain factors — the
//! paper's headline is the ≈one-order-of-magnitude ηPE / ηE advantage.

use memcim_bench::{fmt, table};
use memcim_mvp::{evaluate, MissRates, SystemConfig};

fn main() {
    let cfg = SystemConfig::paper_defaults();
    println!(
        "Fig. 4 — MVP vs multicore (%Acc = {}, paper-default constants)\n",
        cfg.accelerated_fraction
    );
    let grid = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let mut rows = Vec::new();
    for &l1 in &grid {
        for &l2 in &grid {
            let c = evaluate(&cfg, MissRates::new(l1, l2));
            rows.push(vec![
                format!("{:.0}%", l1 * 100.0),
                format!("{:.0}%", l2 * 100.0),
                fmt(c.multicore.eta_pe(), 2),
                fmt(c.mvp.eta_pe(), 2),
                fmt(c.eta_pe_gain(), 1),
                fmt(c.multicore.eta_e_pj(), 0),
                fmt(c.mvp.eta_e_pj(), 1),
                fmt(c.eta_e_gain(), 1),
                fmt(c.multicore.eta_pa(), 2),
                fmt(c.mvp.eta_pa(), 2),
                fmt(c.eta_pa_gain(), 2),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "L1 miss", "L2 miss", "ηPE mc", "ηPE mvp", "×", "ηE mc", "ηE mvp", "×", "ηPA mc",
                "ηPA mvp", "×",
            ],
            &rows
        )
    );

    let mid = evaluate(&cfg, MissRates::new(0.2, 0.2));
    println!("reference point (20 %, 20 %):");
    println!(
        "  ηPE gain {:.1}×, ηE gain {:.1}×, ηPA gain {:.2}×  (paper: ≈10× ηPE/ηE, ηPA higher)",
        mid.eta_pe_gain(),
        mid.eta_e_gain(),
        mid.eta_pa_gain()
    );
    println!(
        "  multicore: {:.0} MOPS, {:.0} mW, {:.0} mm²  |  MVP: {:.0} MOPS, {:.0} mW, {:.0} mm²",
        mid.multicore.throughput_mops,
        mid.multicore.power_mw(),
        mid.multicore.area_mm2,
        mid.mvp.throughput_mops,
        mid.mvp.power_mw(),
        mid.mvp.area_mm2,
    );
}
