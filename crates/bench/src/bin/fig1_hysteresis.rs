//! Regenerates Fig. 1b: the pinched hysteresis loop and its collapse
//! with excitation frequency.
//!
//! Prints, per device model and frequency multiple, the loop area, the
//! pinch quality (max |I| at V ≈ 0 relative to the loop's peak current)
//! and the apparent ON/OFF resistance branch ratio.

use memcim_bench::{fmt, table};
use memcim_device::{HysteresisSweep, IdealMemristor, LinearIonDrift};
use memcim_units::{Hertz, Ohms, Volts};

fn pinch_quality(trace: &memcim_device::IvTrace) -> f64 {
    let i_max = trace.max_current();
    if i_max == 0.0 {
        return 0.0;
    }
    let v_max = trace.points().iter().map(|p| p.voltage.abs()).fold(0.0, f64::max);
    trace
        .points()
        .iter()
        .filter(|p| p.voltage.abs() < 1e-3 * v_max)
        .map(|p| p.current.abs())
        .fold(0.0, f64::max)
        / i_max
}

fn main() {
    let amplitude = Volts::new(1.0);
    println!("Fig. 1b — pinched hysteresis, lobe shrink with frequency");
    println!("(drive: {amplitude} sinusoid, 3 cycles, settled final loop)\n");

    let mut rows = Vec::new();
    // Linear ion drift (HP) at f0, 2 f0, 10 f0.
    let base = LinearIonDrift::hp_default();
    let f0 = base.characteristic_frequency(amplitude);
    for mult in [1.0, 2.0, 10.0] {
        let mut device = base.clone();
        let f = Hertz::new(f0.as_hertz() * mult);
        let trace = HysteresisSweep::new(amplitude, f).with_cycles(3).run(&mut device);
        rows.push(vec![
            "linear-ion-drift".into(),
            format!("{:.2}·f0", mult),
            format!("{:.3e}", trace.lobe_area()),
            fmt(pinch_quality(&trace), 4),
            if trace.is_pinched(2e-2) { "yes".into() } else { "NO".into() },
        ]);
    }
    // Ideal Chua memristor for reference.
    for freq in [0.5, 1.0, 5.0] {
        let mut device = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
        let trace =
            HysteresisSweep::new(amplitude, Hertz::new(freq)).with_cycles(3).run(&mut device);
        rows.push(vec![
            "ideal-chua".into(),
            format!("{freq} Hz"),
            format!("{:.3e}", trace.lobe_area()),
            fmt(pinch_quality(&trace), 4),
            if trace.is_pinched(2e-2) { "yes".into() } else { "NO".into() },
        ]);
    }
    println!(
        "{}",
        table(&["model", "frequency", "lobe area (V·A)", "pinch |I(0)|/Imax", "pinched"], &rows)
    );
    println!("expected shape: area shrinks monotonically with frequency; pinch ≈ 0 everywhere");
}
