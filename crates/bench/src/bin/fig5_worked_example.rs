//! Regenerates Fig. 5 and the Section IV.B worked example: the
//! three-state NFA, its homogeneous conversion, the V/R/c matrices and
//! the s/f/a vector trace for input symbol `b`.

use memcim_automata::{HomogeneousAutomaton, Nfa, SymbolClass};
use memcim_bits::BitVec;

fn show(v: &BitVec) -> String {
    (0..v.len()).map(|i| if v.get(i) { "1 " } else { "0 " }).collect::<String>().trim().to_string()
}

fn main() {
    println!("Fig. 5 + Section IV.B worked example\n");

    // Fig. 5a: S1 --{a,b,c}--> S1, S1 --c--> S2, S1 --b--> S3,
    // S2 --b--> S3; S3 accepts.
    let mut nfa = Nfa::new();
    let s1 = nfa.add_state();
    let s2 = nfa.add_state();
    let s3 = nfa.add_state();
    nfa.add_start(s1);
    nfa.set_accept(s3, true);
    nfa.add_transition(s1, SymbolClass::from_bytes(b"abc"), s1);
    nfa.add_transition(s1, SymbolClass::of(b'c'), s2);
    nfa.add_transition(s1, SymbolClass::of(b'b'), s3);
    nfa.add_transition(s2, SymbolClass::of(b'b'), s3);

    let homog = HomogeneousAutomaton::from_nfa(&nfa);
    println!("homogeneous conversion: {} states (Fig. 5b)", homog.state_count());
    for i in 0..homog.state_count() {
        println!(
            "  state {i}: class {:?}, start={:?}, accept={}",
            homog.class(i),
            homog.start_kind(i),
            homog.is_accept(i)
        );
    }

    let m = homog.to_matrices();
    println!("\nSTE matrix V over Σ = {{a, b, c, d}} (rows = symbols), from the conversion:");
    for sym in [b'a', b'b', b'c', b'd'] {
        println!("  {}: [{}]", sym as char, show(m.v.row(sym as usize)));
    }
    println!("\nrouting matrix R rows, from the conversion:");
    for p in 0..m.r.rows() {
        println!("  R[{p}]: [{}]", show(m.r.row(p)));
    }
    println!("\naccept vector c: [{}]", show(&m.accept));
    println!(
        "\nnote: the conversion keeps the S1 self-loop drawn in Fig. 5a (R[0][0] = 1);\n\
         the paper's *printed* R omits it — a paper-internal inconsistency that does\n\
         not affect acceptance. The worked trace below uses the printed matrices\n\
         verbatim."
    );

    // The paper's printed matrices, verbatim (no self-loop row).
    let mut v = memcim_bits::BitMatrix::new(256, 3);
    for b in [b'a', b'b', b'c'] {
        v.set(b as usize, 0, true);
    }
    v.set(b'c' as usize, 1, true);
    v.set(b'b' as usize, 2, true);
    let mut r = memcim_bits::BitMatrix::new(3, 3);
    r.set(0, 1, true);
    r.set(0, 2, true);
    r.set(1, 2, true);
    let c = BitVec::from_indices(3, &[2]);

    let a = BitVec::from_indices(3, &[0]);
    let s = v.row(b'b' as usize);
    let f = r.vector_product(&a);
    let next = f.and(s);
    println!("\nworked trace for input symbol 'b' with a = [{}]:", show(&a));
    println!("  s = i·V   = [{}]   (paper: [1 0 1])", show(s));
    println!("  f = a·R   = [{}]   (paper: [0 1 1])", show(&f));
    println!("  a' = f&s  = [{}]   (paper: [0 0 1])", show(&next));
    println!("  A = a'·cᵀ = {}        (paper: 1)", u8::from(next.intersects(&c)));

    println!("\nlanguage checks (accepted inputs end in a reachable 'b'):");
    for input in [&b"b"[..], b"ab", b"cb", b"acb", b"ba", b"ac"] {
        println!(
            "  {:>5}: nfa={} homogeneous={}",
            String::from_utf8_lossy(input),
            u8::from(nfa.accepts(input)),
            u8::from(homog.run(input).accepted)
        );
    }
}
