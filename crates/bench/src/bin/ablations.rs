//! Ablation studies for the design decisions D1–D5 of DESIGN.md.
//!
//! D1 window functions · D2 scouting reference margins under
//! variability · D3 dense vs hierarchical routing · D4 integrator
//! accuracy · D5 dense vs sparse AP state evaluation.

use memcim_ap::{ApBackend, AutomataProcessor, RoutingKind};
use memcim_automata::{rules, PatternSet, StartKind};
use memcim_bench::{fmt, table};
use memcim_bits::BitVec;
use memcim_crossbar::{Crossbar, ScoutingKind};
use memcim_device::{
    window::Window, HysteresisSweep, LinearIonDrift, MemristiveDevice, VariabilityModel,
};
use memcim_spice::{Circuit, Integration, Transient, Waveform};
use memcim_units::{Farads, Ohms, Seconds, Volts};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    d1_window_functions();
    d2_reference_margins();
    d3_routing_structures();
    d4_integrator_accuracy();
    d5_engine_evaluation();
}

/// D1: hysteresis lobe area per window function.
fn d1_window_functions() {
    println!("D1 — window function ablation (linear ion drift, V0 = 1 V, f = f0)\n");
    let mut rows = Vec::new();
    for (name, window) in [
        ("rectangular", Window::Rectangular),
        ("joglekar p=2", Window::Joglekar { p: 2 }),
        ("biolek p=2", Window::Biolek { p: 2 }),
    ] {
        let mut device = LinearIonDrift::hp_default().with_window(window);
        let f0 = device.characteristic_frequency(Volts::new(1.0));
        let trace = HysteresisSweep::new(Volts::new(1.0), f0).with_cycles(3).run(&mut device);
        // Boundary-stick check: drive hard ON then try to come back.
        let mut probe = LinearIonDrift::hp_default().with_window(window);
        probe.set_normalized_state(1.0);
        probe.step(Volts::new(-2.0), Seconds::new(0.05));
        rows.push(vec![
            name.into(),
            format!("{:.3e}", trace.lobe_area()),
            if probe.normalized_state() < 0.99 { "releases".into() } else { "STICKS".into() },
        ]);
    }
    println!("{}", table(&["window", "settled lobe area", "boundary behaviour"], &rows));
}

/// D2: scouting error rate as device variability grows.
fn d2_reference_margins() {
    println!("D2 — scouting reference margins under lognormal variability\n");
    let mut rows = Vec::new();
    for sigma in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let model =
            VariabilityModel { sigma_d2d_low: sigma, sigma_d2d_high: sigma, sigma_c2c: 0.0 };
        let mut errors = 0usize;
        let mut total = 0usize;
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..8 {
            let mut xbar = Crossbar::rram(2, 256).with_variability(model, 1000 + trial as u64);
            let a: BitVec = (0..256).map(|_| rng.gen_bool(0.5)).collect();
            let b: BitVec = (0..256).map(|_| rng.gen_bool(0.5)).collect();
            xbar.program_row(0, &a).expect("row 0");
            xbar.program_row(1, &b).expect("row 1");
            for (kind, expect) in [
                (ScoutingKind::Or, a.or(&b)),
                (ScoutingKind::And, a.and(&b)),
                (ScoutingKind::Xor, a.xor(&b)),
            ] {
                let got = xbar.scouting(kind, &[0, 1]).expect("scout");
                errors += got.xor(&expect).count_ones();
                total += 256;
            }
        }
        rows.push(vec![
            fmt(sigma, 2),
            format!("{errors}/{total}"),
            format!("{:.3}%", 100.0 * errors as f64 / total as f64),
        ]);
    }
    println!("{}", table(&["σ(ln R)", "bit errors", "error rate"], &rows));
    println!(
        "expected shape: error-free through moderate spread, XOR window fails first at large σ\n"
    );
}

/// D3: routing fabric resources on a realistic rule set.
fn d3_routing_structures() {
    println!("D3 — routing matrix organization (24-rule synthetic DPI set)\n");
    let mut rng = SmallRng::seed_from_u64(7);
    let texts = rules::synthetic_rules(&mut rng, 24);
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs).expect("compiles");
    let (homog, _) = set.to_homogeneous();
    let homog = homog.with_start_kind(StartKind::AllInput);
    let mut rows = Vec::new();
    for (name, kind) in [
        ("dense", RoutingKind::Dense),
        ("hierarchical 64", RoutingKind::Hierarchical { block: 64, max_global: 1 << 16 }),
        ("hierarchical 256", RoutingKind::Hierarchical { block: 256, max_global: 1 << 16 }),
    ] {
        let ap = AutomataProcessor::compile(&homog, ApBackend::rram(), kind).expect("maps");
        let r = ap.routing_resources();
        rows.push(vec![
            name.into(),
            format!("{}", ap.state_count()),
            format!("{}", r.config_bits),
            format!("{}", r.global_wires),
            format!("{:.4}", ap.costs().area.as_square_millimeters()),
        ]);
    }
    println!("{}", table(&["fabric", "STEs", "switch bits", "global wires", "area (mm²)"], &rows));
}

/// D4: integrator error against the closed-form RC discharge.
fn d4_integrator_accuracy() {
    println!("D4 — integrator ablation (RC discharge, τ = 1 ns, v(1 ns) = 1/e)\n");
    let run = |integration: Integration, dt_ps: f64| -> f64 {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("R", a, Circuit::GROUND, Ohms::from_kilohms(1.0)).expect("r");
        ckt.add_capacitor_with_ic(
            "C",
            a,
            Circuit::GROUND,
            Farads::from_picofarads(1.0),
            Volts::new(1.0),
        )
        .expect("c");
        let x = ckt.node("x");
        ckt.add_vsource("Vdummy", x, Circuit::GROUND, Waveform::dc(Volts::ZERO)).expect("v");
        let trace =
            Transient::new(Seconds::from_nanoseconds(1.0), Seconds::from_picoseconds(dt_ps))
                .with_integration(integration)
                .run(&mut ckt)
                .expect("runs");
        (trace.final_value("a").expect("a") - (-1.0_f64).exp()).abs()
    };
    let mut rows = Vec::new();
    for dt in [20.0, 10.0, 5.0, 2.5] {
        rows.push(vec![
            format!("{dt} ps"),
            format!("{:.3e}", run(Integration::BackwardEuler, dt)),
            format!("{:.3e}", run(Integration::Trapezoidal, dt)),
        ]);
    }
    println!("{}", table(&["dt", "backward Euler |err|", "trapezoidal |err|"], &rows));
    println!("expected shape: BE error ∝ dt, trapezoidal ∝ dt² (orders of magnitude smaller)\n");
}

/// D5: dense bit-parallel vs sparse set-based state evaluation.
fn d5_engine_evaluation() {
    println!("D5 — state evaluation strategy (software reference vs bit-parallel)\n");
    let mut rng = SmallRng::seed_from_u64(21);
    let texts = rules::synthetic_rules(&mut rng, 16);
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs).expect("compiles");
    let traffic = rules::synthetic_traffic(&mut rng, set.patterns(), 1 << 14, 32);
    let (homog, _) = set.to_homogeneous();
    let scanning = homog.with_start_kind(StartKind::AllInput);
    let matrices = scanning.to_matrices();

    let t0 = std::time::Instant::now();
    let sparse_events = set.nfa().scan(&traffic).len();
    let sparse_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let dense_events = matrices.run(&traffic).accept_positions.len();
    let dense_time = t1.elapsed();
    println!(
        "{}",
        table(
            &["engine", "events", "wall time"],
            &[
                vec![
                    "sparse set-based NFA".into(),
                    format!("{sparse_events}"),
                    format!("{sparse_time:?}"),
                ],
                vec![
                    "dense bit-parallel".into(),
                    format!("{dense_events} accept cycles"),
                    format!("{dense_time:?}"),
                ],
            ]
        )
    );
    println!("(event counts differ in unit: per-state events vs per-cycle accepts; both engines agree on accept cycles — asserted by the test suite)");
}
