//! Regenerates Fig. 9: the 256-cell bit-line discharge transient,
//! RRAM 1T1R vs 8T SRAM.
//!
//! Default run uses the lumped netlist (one explicit conducting cell,
//! remaining load lumped). Pass `--explicit` to instantiate all 256
//! cells — the honest full reproduction (a few hundred MNA unknowns;
//! takes noticeably longer). Pass `--csv` to dump the bit-line waveforms.

use memcim_bench::{fmt, table};
use memcim_crossbar::{BitlineCircuit, CellTechnology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let explicit = args.iter().any(|a| a == "--explicit");
    let csv = args.iter().any(|a| a == "--csv");
    let n_cells = 256;

    println!(
        "Fig. 9 — bit-line discharge, {} netlist, {n_cells} cells, WL at 1 ns, BL 0.4 V → 0.1 V\n",
        if explicit { "explicit (all cells instantiated)" } else { "lumped" }
    );

    let mut rows = Vec::new();
    for (tech, paper_t, paper_e) in
        [(CellTechnology::rram_1t1r(), 104.0, 2.09), (CellTechnology::sram_8t(), 161.0, 5.16)]
    {
        let name = tech.name;
        let analytic_t = tech.analytic_discharge_time(n_cells).as_picoseconds();
        let analytic_e = tech.analytic_cycle_energy(n_cells).as_femtojoules();
        let circuit = if explicit {
            BitlineCircuit::explicit(tech, n_cells)
        } else {
            BitlineCircuit::lumped(tech, n_cells)
        };
        let (report, trace) = circuit.run_with_trace().expect("transient solves");
        let t = report.discharge_time.expect("stored 1 discharges").as_picoseconds();
        let e = report.cycle_energy.as_femtojoules();
        rows.push(vec![
            name.into(),
            fmt(paper_t, 0),
            fmt(analytic_t, 1),
            fmt(t, 1),
            fmt(paper_e, 2),
            fmt(analytic_e, 2),
            fmt(e, 2),
        ]);
        if csv {
            let path = format!("fig9_{}.csv", name.to_lowercase().replace('-', "_"));
            std::fs::write(&path, trace.to_csv(&["bl", "wl"]).expect("signals recorded"))
                .expect("write csv");
            println!("waveform written to {path}");
        }
    }
    println!(
        "{}",
        table(
            &[
                "technology",
                "t_d paper (ps)",
                "t_d analytic (ps)",
                "t_d transient (ps)",
                "E paper (fJ)",
                "E analytic (fJ)",
                "E transient (fJ)",
            ],
            &rows
        )
    );

    // Headline ratios.
    let parse = |s: &str| s.parse::<f64>().expect("numeric cell");
    let (tr, ts) = (parse(&rows[0][3]), parse(&rows[1][3]));
    let (er, es) = (parse(&rows[0][6]), parse(&rows[1][6]));
    println!(
        "transient ratios: RRAM discharge {:.0}% less than SRAM (paper: 35%), energy {:.0}% less (paper: 59%)",
        (1.0 - tr / ts) * 100.0,
        (1.0 - er / es) * 100.0,
    );

    // Control experiment: a stored 0 must not discharge the line.
    let zero = BitlineCircuit::lumped(CellTechnology::rram_1t1r(), n_cells)
        .with_stored_bit(false)
        .run()
        .expect("solves");
    println!(
        "stored-0 control: reads_one = {}, BL after evaluate = {}",
        zero.reads_one(),
        zero.bitline_after_evaluate
    );
}
