//! Reproducible performance report for the hot paths: AP symbol
//! streaming, bit-line transient solves and MVP bulk bitwise queries —
//! the latter on both the monolithic crossbar and a 64-bank
//! `BankedCrossbar` substrate driven through the `BatchRequest` API.
//!
//! Unlike the criterion benches (interactive, eyeball-level), this binary
//! runs **fixed-seed** workloads and writes a **machine-readable** JSON
//! report so the repository can keep a committed performance trajectory
//! (`BENCH_ap_engine.json`) that future PRs extend and compare against.
//!
//! ```text
//! perf_report [--quick] [--out PATH] [--baseline PATH]
//! perf_report --check PATH
//! ```
//!
//! * `--quick` shrinks every workload (CI smoke mode; same seeds).
//! * `--out` sets the report path (default `BENCH_ap_engine.json`).
//! * `--baseline` embeds a previously written report under `"baseline"`,
//!   which is how before/after numbers land in one committed file.
//! * `--check` parses an existing report and fails (exit 1) if it is
//!   malformed or missing a required config — the CI guard.

use memcim_ap::{ApBackend, AutomataProcessor, RoutingKind};
use memcim_automata::{rules, PatternSet, StartKind};
use memcim_bench::json::{self, JsonValue};
use memcim_bench::yields::{self, YieldConfig};
use memcim_crossbar::{BitlineCircuit, CellTechnology};
use memcim_mvp::workloads::bitmap::BitmapTable;
use memcim_mvp::{BatchRequest, MvpSimulator};
use memcim_serve::{Job, ServeConfig, Service};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Workload seed shared by every config (the paper's year).
const SEED: u64 = 2018;

/// Configs that must be present for a report to be considered complete
/// (the `--check` contract; also documented in the README).
const REQUIRED_CONFIGS: &[&str] = &[
    "engine_dense_RRAM-AP",
    "engine_dense_SRAM-AP",
    "engine_hierarchical_RRAM-AP",
    "ap_multistream",
    "software_bitparallel",
    "bitline_lumped_RRAM-AP",
    "bitline_lumped_SRAM-AP",
    "mvp_bitmap_query",
    "mvp_bitmap_query_banked",
    "correlation_detect",
    "serve_bitmap_qps_1w",
    "serve_bitmap_qps_4w",
    "serve_bitmap_qps_8w",
    "serve_shard_qps",
    "serve_net_qps",
    "serve_cache_hit",
    "verify_overhead",
    "yield_report",
];

struct ConfigResult {
    name: &'static str,
    /// What one unit is: `"symbol"`, `"solve"`, `"record"`.
    unit: &'static str,
    /// Units processed per timed iteration.
    units_per_iter: u64,
    iters: u64,
    wall: Duration,
}

impl ConfigResult {
    fn ns_per_unit(&self) -> f64 {
        self.wall.as_nanos() as f64 / (self.iters * self.units_per_iter) as f64
    }

    fn units_per_sec(&self) -> f64 {
        1.0e9 / self.ns_per_unit()
    }
}

/// Times `f` (which processes `units_per_iter` units per call): one
/// warm-up call, then whole-call batches until `budget` is spent.
fn measure<F: FnMut()>(
    name: &'static str,
    unit: &'static str,
    units_per_iter: u64,
    budget: Duration,
    mut f: F,
) -> ConfigResult {
    f(); // warm-up
    let mut iters = 0u64;
    let mut wall = Duration::ZERO;
    while wall < budget {
        let start = Instant::now();
        f();
        wall += start.elapsed();
        iters += 1;
    }
    ConfigResult { name, unit, units_per_iter, iters, wall }
}

fn run_workloads(quick: bool) -> Vec<ConfigResult> {
    let budget = if quick { Duration::from_millis(20) } else { Duration::from_millis(400) };
    let mut results = Vec::new();

    // --- AP engine: synthetic rule set over synthetic traffic ----------
    let mut rng = SmallRng::seed_from_u64(SEED);
    let texts = rules::synthetic_rules(&mut rng, 16);
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs).expect("rules compile");
    let traffic_len = if quick { 1 << 12 } else { 1 << 16 };
    let traffic = rules::synthetic_traffic(&mut rng, set.patterns(), traffic_len, 32);
    let (homog, _) = set.to_homogeneous();
    let scanning = homog.with_start_kind(StartKind::AllInput);
    let symbols = traffic.len() as u64;

    for (name, backend) in
        [("engine_dense_RRAM-AP", ApBackend::rram()), ("engine_dense_SRAM-AP", ApBackend::sram())]
    {
        let mut ap =
            AutomataProcessor::compile(&scanning, backend, RoutingKind::Dense).expect("dense maps");
        results.push(measure(name, "symbol", symbols, budget, || {
            std::hint::black_box(ap.run(&traffic));
        }));
    }
    let mut hier = AutomataProcessor::compile(
        &scanning,
        ApBackend::rram(),
        RoutingKind::Hierarchical { block: 64, max_global: 1 << 16 },
    )
    .expect("hierarchical maps");
    results.push(measure("engine_hierarchical_RRAM-AP", "symbol", symbols, budget, || {
        std::hint::black_box(hier.run(&traffic));
    }));

    // --- Multi-stream AP: 8 lanes through one compiled automaton -------
    // The same hierarchical automaton, but the traffic is sliced into 8
    // independent streams driven in lockstep by a MultiStreamProcessor:
    // each pass fetches the symbol-indexed STE rows once per *symbol
    // column*, not once per stream, so ns/symbol should land below the
    // single-stream `engine_hierarchical_RRAM-AP` number above. The
    // lanes are fed chunk-by-chunk (as the serve layer does) and
    // finished each iteration, so lane state never leaks across timed
    // passes.
    {
        let streams = 8usize;
        let lane_len = traffic.len() / streams;
        let lanes: Vec<&[u8]> =
            (0..streams).map(|i| &traffic[i * lane_len..(i + 1) * lane_len]).collect();
        let mut msp = hier.multi_stream(streams);
        results.push(measure(
            "ap_multistream",
            "symbol",
            (lane_len * streams) as u64,
            budget,
            || {
                std::hint::black_box(msp.feed_many(&lanes));
                std::hint::black_box(msp.finish_all());
            },
        ));
    }
    let matrices = scanning.to_matrices();
    results.push(measure("software_bitparallel", "symbol", symbols, budget, || {
        std::hint::black_box(matrices.run(&traffic));
    }));

    // --- Bit-line transient solves (the spice hot path) ----------------
    let cells = if quick { 32 } else { 256 };
    for (name, tech) in [
        ("bitline_lumped_RRAM-AP", CellTechnology::rram_1t1r()),
        ("bitline_lumped_SRAM-AP", CellTechnology::sram_8t()),
    ] {
        let tech = tech.clone();
        results.push(measure(name, "solve", 1, budget, || {
            std::hint::black_box(
                BitlineCircuit::lumped(tech.clone(), cells).run().expect("bitline solves"),
            );
        }));
    }

    // --- MVP bulk bitwise query ----------------------------------------
    let records = if quick { 2_048 } else { 16_384 };
    let mut wrng = SmallRng::seed_from_u64(SEED);
    let col1: Vec<u8> = (0..records).map(|_| wrng.gen_range(0..16)).collect();
    let col2: Vec<u8> = (0..records).map(|_| wrng.gen_range(0..8)).collect();
    let table = BitmapTable::new(col1, col2, 16).expect("well-formed columns");
    let mut mvp = MvpSimulator::new(32, records);
    results.push(measure("mvp_bitmap_query", "record", records as u64, budget, || {
        std::hint::black_box(table.query_mvp(&mut mvp, &[1, 4, 9], &[0, 3]).expect("query runs"));
    }));

    // --- Banked MVP: a batch of queries on 64 parallel banks ------------
    // Same table and row width, but the vector processor stripes its
    // columns over 64 subarrays (the paper's "millions of subarrays"
    // organization at benchmark scale) and serves a burst of four
    // independent queries per iteration through the BatchRequest API.
    let queries: [(&[u8], &[u8]); 4] =
        [(&[1, 4, 9], &[0, 3]), (&[2, 5], &[1, 6]), (&[11], &[2, 4, 7]), (&[0, 8, 14], &[5])];
    let mut batch = BatchRequest::new();
    for (s1, s2) in queries {
        batch.push(table.query_plan(s1, s2));
    }
    let mut banked = MvpSimulator::banked(32, 64, records / 64);
    results.push(measure(
        "mvp_bitmap_query_banked",
        "record",
        (records * queries.len()) as u64,
        budget,
        || {
            std::hint::black_box(banked.run_batch(&batch).expect("batch runs"));
        },
    ));

    // --- Streaming correlation detection --------------------------------
    // N event streams × T steps through the in-memory popcount/mask
    // kernel (arXiv:1706.00511 as an MVP workload) on a banked engine,
    // one 256-step window at a time; each unit is one event
    // stream-slot. The timed path is pinned bit-for-bit against the
    // software reference every iteration, so the number reports the
    // *correct* kernel, not a drifted one.
    {
        use memcim_mvp::correlation::{
            correlation_reference, rows_needed, CorrelationAccumulator, CorrelationConfig,
            EventStreams,
        };
        let steps = if quick { 256 } else { 768 };
        let cfg = CorrelationConfig {
            streams: 24,
            steps,
            rate: 0.25,
            strength: 0.95,
            groups: vec![vec![2, 7, 11, 19, 22], vec![4, 5, 9, 16, 21]],
        };
        let events = EventStreams::synthesize(&cfg, SEED).expect("corpus synthesizes");
        let reference = correlation_reference(events.data()).expect("well-formed corpus");
        let window = 256usize;
        let mut engine = MvpSimulator::banked(rows_needed(cfg.streams), 4, window / 4);
        results.push(measure(
            "correlation_detect",
            "event",
            (cfg.streams * steps) as u64,
            budget,
            || {
                let mut acc = CorrelationAccumulator::new(cfg.streams).expect("enough streams");
                let mut lo = 0;
                while lo < steps {
                    let hi = (lo + window).min(steps);
                    let slice = events.window(lo..hi).expect("range in corpus");
                    acc.feed_mvp(&mut engine, &slice).expect("engine fits the streams");
                    lo = hi;
                }
                assert_eq!(acc.scores(), reference, "timed path ≡ software reference");
                std::hint::black_box(acc.detect(cfg.threshold().expect("well-posed")));
            },
        ));
    }

    // --- Serving layer: multi-tenant bitmap QPS vs worker count --------
    // The same four bitmap query plans, served through `memcim-serve`:
    // each iteration submits a fixed closed-loop burst of jobs round-
    // robin over 8 tenants and waits for every ticket, so units/s is
    // end-to-end queries per second through the queue, the coalescer,
    // the per-worker banked engines and the tenant ledger accounting.
    // Worker counts 1/4/8 record the throughput-scaling trajectory.
    // The serving workload is deliberately many *small* queries (a
    // 2048-record table in both modes, unlike the big-scan configs
    // above): the layer under test is the queue/coalescer/ticket
    // machinery under heavy request traffic, not one giant scan. Worker
    // scaling needs cores — the report records `host_cores` so a flat
    // trio on a single-CPU container reads as what it is.
    let serve_records = 2_048usize;
    let mut srng = SmallRng::seed_from_u64(SEED);
    let serve_col1: Vec<u8> = (0..serve_records).map(|_| srng.gen_range(0..16)).collect();
    let serve_col2: Vec<u8> = (0..serve_records).map(|_| srng.gen_range(0..8)).collect();
    let serve_table = BitmapTable::new(serve_col1, serve_col2, 16).expect("well-formed columns");
    let serve_plans: Vec<Vec<memcim_mvp::Instruction>> =
        queries.iter().map(|(s1, s2)| serve_table.query_plan(s1, s2)).collect();
    let jobs_per_iter = 32usize;
    for (name, workers) in
        [("serve_bitmap_qps_1w", 1), ("serve_bitmap_qps_4w", 4), ("serve_bitmap_qps_8w", 8)]
    {
        let service = Service::start(
            ServeConfig::default()
                .with_workers(workers)
                .with_queue_depth(jobs_per_iter)
                .with_max_burst(8)
                .with_mvp_geometry(32, 64, serve_records / 64),
        );
        results.push(measure(name, "query", jobs_per_iter as u64, budget, || {
            let tickets: Vec<_> = (0..jobs_per_iter)
                .map(|i| {
                    let tenant = (i % 8) as u64;
                    service
                        .submit(tenant, Job::MvpProgram(serve_plans[i % serve_plans.len()].clone()))
                        .expect("service is running")
                })
                .collect();
            for ticket in tickets {
                std::hint::black_box(ticket.wait().expect("query runs"));
            }
        }));
        service.shutdown();
    }

    // --- Replicated placement: scatter-gather QPS ----------------------
    // The same table partitioned into 4 shards, each replicated on 2 of
    // 4 workers. Each unit is one full scatter-gather: four shard-local
    // sub-queries fanned out to one live replica each, partials
    // gathered in submission order, ledgers merged with parallel
    // semantics. The gap between this number and `serve_bitmap_qps_4w`
    // is the per-query cost of the placement catalog, the mailbox
    // routing and the gather — the price of kill-a-shard failover.
    {
        let shards = 4usize;
        let map = memcim_mvp::ShardMap::new(serve_records, shards).expect("valid geometry");
        let serve_config = ServeConfig::default()
            .with_workers(4)
            .with_queue_depth(jobs_per_iter)
            .with_max_burst(8)
            .with_mvp_geometry(32, 64, serve_records / 64)
            .with_placement(shards, 2);
        let width = serve_config.mvp_width();
        let shard_plans: Vec<Vec<(usize, Vec<memcim_mvp::Instruction>)>> = queries
            .iter()
            .map(|(s1, s2)| {
                map.ranges()
                    .enumerate()
                    .map(|(shard, range)| {
                        (
                            shard,
                            serve_table
                                .shard_query_plan(s1, s2, range, width)
                                .expect("plan compiles"),
                        )
                    })
                    .collect()
            })
            .collect();
        let service = Service::start(serve_config);
        let scatters_per_iter = jobs_per_iter / shards;
        results.push(measure(
            "serve_shard_qps",
            "scatter",
            scatters_per_iter as u64,
            budget,
            || {
                let tickets: Vec<_> = (0..scatters_per_iter)
                    .map(|i| {
                        let tenant = (i % 8) as u64;
                        service
                            .submit_sharded(tenant, shard_plans[i % shard_plans.len()].clone())
                            .expect("service is running")
                    })
                    .collect();
                for ticket in tickets {
                    std::hint::black_box(ticket.wait().expect("scatter gathers"));
                }
            },
        ));
        service.shutdown();
    }

    // --- Network front door: framed TCP round-trip QPS -----------------
    // The same small bitmap queries, but through the full wire path: a
    // live `NetServer` on loopback, one authenticated `NetClient`, one
    // request in flight at a time. Each unit is a complete round trip —
    // encode, frame, TCP, auth/admission, queue, engine, encode back —
    // so the gap between this number and `serve_bitmap_qps_*` is the
    // per-request cost of the network front door itself. Tail latency
    // under deliberate overload is the `serve_load` binary's job, not
    // this config's.
    {
        let service = std::sync::Arc::new(
            Service::try_start(
                ServeConfig::default()
                    .with_workers(4)
                    .with_queue_depth(jobs_per_iter)
                    .with_max_burst(8)
                    .with_mvp_geometry(32, 64, serve_records / 64),
            )
            .expect("service starts"),
        );
        let server = memcim_serve::net::NetServer::start(
            std::sync::Arc::clone(&service),
            memcim_serve::net::NetConfig::default()
                .with_tenant(1, memcim_serve::net::TenantPolicy::new("perf-report-token")),
        )
        .expect("server starts");
        let mut client =
            memcim_serve::net::NetClient::connect(server.local_addr()).expect("client connects");
        client.hello(1, "perf-report-token").expect("tenant is provisioned");
        results.push(measure("serve_net_qps", "query", jobs_per_iter as u64, budget, || {
            for i in 0..jobs_per_iter {
                let plan = serve_plans[i % serve_plans.len()].clone();
                std::hint::black_box(client.submit_mvp(&[plan]).expect("query runs"));
            }
        }));
        server.shutdown();
    }

    // --- Serve-layer compile cache: warm vs cold session opens ----------
    // Every unit is one full `ApOpen` round trip over loopback TCP. The
    // `serve_cache_hit` config reopens one pattern set, so after the
    // priming open every compile is served from the tenant-keyed LRU
    // (a map lookup plus a template stamp); `serve_cache_cold` cycles
    // through more distinct pattern sets than the cache holds, so every
    // open really compiles and places routing. The gap between the two
    // numbers is what the cache saves per submission. Counters are
    // reconciled against the wire `Stats` verb after the timed runs —
    // the hit path must actually be the hit path.
    {
        let service = std::sync::Arc::new(
            Service::try_start(ServeConfig::default().with_workers(1)).expect("service starts"),
        );
        let server = memcim_serve::net::NetServer::start(
            std::sync::Arc::clone(&service),
            memcim_serve::net::NetConfig::default()
                .with_tenant(1, memcim_serve::net::TenantPolicy::new("perf-report-token")),
        )
        .expect("server starts");
        let mut client =
            memcim_serve::net::NetClient::connect(server.local_addr()).expect("client connects");
        client.hello(1, "perf-report-token").expect("tenant is provisioned");

        let opens_per_iter = 8usize;
        let warm_patterns = ["GET /[a-z]+", "ab+c"];
        let session = client.ap_open(&warm_patterns).expect("priming open");
        client.ap_close(session).expect("closes");
        results.push(measure("serve_cache_hit", "open", opens_per_iter as u64, budget, || {
            for _ in 0..opens_per_iter {
                let session = client.ap_open(&warm_patterns).expect("warm open");
                client.ap_close(session).expect("closes");
            }
        }));
        let hits_after_warm = service.ap_cache_hits();
        assert!(hits_after_warm > 0, "the warm path hit the compile cache");

        // More distinct pattern sets than the cache holds (capacity 32),
        // cycled round-robin: every open misses and compiles.
        let cold_texts: Vec<[String; 2]> =
            (0..48).map(|i| [format!("cold{i}x[a-z]+"), format!("ab+c{i}")]).collect();
        let mut next_cold = 0usize;
        results.push(measure("serve_cache_cold", "open", opens_per_iter as u64, budget, || {
            for _ in 0..opens_per_iter {
                let set = &cold_texts[next_cold % cold_texts.len()];
                next_cold += 1;
                let refs: Vec<&str> = set.iter().map(String::as_str).collect();
                let session = client.ap_open(&refs).expect("cold open");
                client.ap_close(session).expect("closes");
            }
        }));
        assert_eq!(service.ap_cache_hits(), hits_after_warm, "the cold path never hit the cache");

        // The wire counters are the in-process counters.
        let stats = client.stats().expect("stats");
        assert_eq!(stats.ap_cache_hits, service.ap_cache_hits(), "hits reconcile over the wire");
        assert_eq!(
            stats.ap_cache_misses,
            service.ap_cache_misses(),
            "misses reconcile over the wire"
        );
        server.shutdown();
    }

    // --- Admission-time verification overhead ---------------------------
    // The static pass the serve layer runs on every submitted program
    // before it may queue: one abstract-interpretation walk
    // (`verify_program`) plus the static cost bound, on the same four
    // bitmap query plans the QPS configs serve on the same banked
    // geometry. ns/unit is the per-program admission tax; set it
    // against `serve_net_qps`'s round trip to see what gating costs.
    {
        let rows = 32usize;
        let model = memcim_verify::CostModel::banked(rows, 64, serve_records / 64);
        results.push(measure(
            "verify_overhead",
            "program",
            serve_plans.len() as u64,
            budget,
            || {
                for plan in &serve_plans {
                    let diagnostics = memcim_verify::verify_program(plan, rows, serve_records);
                    assert!(
                        memcim_verify::first_error(&diagnostics).is_none(),
                        "the served plans are valid"
                    );
                    std::hint::black_box(model.bound(plan));
                }
            },
        ));
    }

    // --- Fault-tolerance yield harness ---------------------------------
    // One Monte-Carlo batch per iteration: manufacture ECC-protected,
    // spare-repaired arrays at a defective corner (0.5 % stuck cells),
    // run the repair audit and the scouting workload, score against the
    // software reference. Timing it here keeps the reliability machinery
    // on the committed performance trajectory; the full density ×
    // endurance sweep lives in BENCH_yield.json (`yield_report` binary).
    let yield_cfg = if quick { YieldConfig::quick() } else { YieldConfig::full() };
    results.push(measure("yield_report", "trial", u64::from(yield_cfg.trials), budget, || {
        std::hint::black_box(yields::run_point(&yield_cfg, 0.005, 1_000_000, SEED));
    }));

    results
}

fn render_report(results: &[ConfigResult], quick: bool, baseline: Option<&str>) -> String {
    // The serve_bitmap_qps_* worker-scaling trio only spreads across
    // real cores; recording the host's parallelism makes a committed
    // report interpretable (cores = 1 ⇒ the trio times-slices and stays
    // flat by construction).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"memcim-perf-report/v1\",\n");
    out.push_str("  \"bench\": \"ap_engine\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json::escape(r.name)));
        out.push_str(&format!("      \"unit\": \"{}\",\n", json::escape(r.unit)));
        out.push_str(&format!("      \"units_per_iter\": {},\n", r.units_per_iter));
        out.push_str(&format!("      \"iters\": {},\n", r.iters));
        out.push_str(&format!("      \"wall_ms\": {:.3},\n", r.wall.as_secs_f64() * 1e3));
        out.push_str(&format!("      \"ns_per_unit\": {:.3},\n", r.ns_per_unit()));
        out.push_str(&format!("      \"units_per_sec\": {:.1}\n", r.units_per_sec()));
        out.push_str(if i + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]");
    if let Some(raw) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(raw.trim());
        out.push('\n');
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Drops a previous report's own nested `"baseline"` member so the
/// committed trajectory stays exactly one level deep (current numbers
/// plus the immediately preceding ones) instead of accreting a full
/// copy of all history on every regeneration. Reports are written by
/// this binary with a fixed layout, so the member is located textually;
/// the result is re-validated by `json::parse` before use.
fn strip_nested_baseline(text: &str) -> String {
    match text.find(",\n  \"baseline\":") {
        Some(idx) => {
            let mut out = text[..idx].to_string();
            out.push_str("\n}\n");
            out
        }
        None => text.to_string(),
    }
}

/// Validates a written report: parses, checks the schema tag and that
/// every required config is present with sane numbers.
fn check_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("memcim-perf-report/v1") => {}
        other => return Err(format!("unexpected schema tag {other:?}")),
    }
    let configs = doc
        .get("configs")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"configs\" array".to_string())?;
    for required in REQUIRED_CONFIGS {
        let entry = configs
            .iter()
            .find(|c| c.get("name").and_then(JsonValue::as_str) == Some(required))
            .ok_or_else(|| format!("missing config {required:?}"))?;
        for field in ["ns_per_unit", "units_per_sec", "wall_ms"] {
            let x = entry
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("config {required:?}: missing number {field:?}"))?;
            if !(x.is_finite() && x > 0.0) {
                return Err(format!("config {required:?}: {field} = {x} is not positive"));
            }
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = "BENCH_ap_engine.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline needs a path").clone())
            }
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: perf_report [--quick] [--out PATH] [--baseline PATH] | --check PATH"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match check_report(&text) {
            Ok(()) => {
                println!("{path}: OK ({} required configs present)", REQUIRED_CONFIGS.len());
                return;
            }
            Err(message) => {
                eprintln!("{path}: INVALID — {message}");
                std::process::exit(1);
            }
        }
    }

    let baseline = baseline_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let text = strip_nested_baseline(&text);
        json::parse(&text).unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"));
        text
    });

    let results = run_workloads(quick);
    println!(
        "{}",
        memcim_bench::table(
            &["config", "unit", "ns/unit", "units/s", "iters"],
            &results
                .iter()
                .map(|r| vec![
                    r.name.to_string(),
                    r.unit.to_string(),
                    memcim_bench::fmt(r.ns_per_unit(), 2),
                    memcim_bench::fmt(r.units_per_sec(), 0),
                    r.iters.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );

    let report = render_report(&results, quick, baseline.as_deref());
    check_report(&report).expect("generated report must validate");
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One fake result per required config, with sane positive numbers.
    fn complete_results() -> Vec<ConfigResult> {
        REQUIRED_CONFIGS
            .iter()
            .map(|name| ConfigResult {
                name,
                unit: "unit",
                units_per_iter: 100,
                iters: 10,
                wall: Duration::from_millis(5),
            })
            .collect()
    }

    #[test]
    fn a_complete_report_validates() {
        let report = render_report(&complete_results(), true, None);
        check_report(&report).expect("all required configs present");
    }

    #[test]
    fn a_missing_required_config_fails_loudly_by_name() {
        // Every required config must be individually load-bearing: drop
        // each one in turn and the validator must name exactly it.
        for victim in REQUIRED_CONFIGS {
            let results: Vec<ConfigResult> =
                complete_results().into_iter().filter(|r| r.name != *victim).collect();
            let report = render_report(&results, true, None);
            let err = check_report(&report).expect_err("a required config is missing");
            assert!(err.contains(victim), "error {err:?} names the missing config {victim:?}");
        }
    }

    #[test]
    fn the_new_pr10_configs_are_required() {
        for name in ["ap_multistream", "serve_cache_hit"] {
            assert!(REQUIRED_CONFIGS.contains(&name), "{name} must be in the --check contract");
        }
    }

    #[test]
    fn non_positive_or_missing_numbers_are_refused() {
        // A syntactically valid report whose first config claims a zero
        // per-unit time (all complete_results timings render alike).
        let report = render_report(&complete_results(), true, None);
        let zeroed = report.replacen("\"ns_per_unit\": 5000.000", "\"ns_per_unit\": 0.000", 1);
        assert_ne!(zeroed, report, "the corruption took");
        let err = check_report(&zeroed).expect_err("zero timings are invalid");
        assert!(err.contains("not positive"), "{err}");

        let err = check_report("{\"schema\": \"memcim-perf-report/v1\"}")
            .expect_err("a report without configs is invalid");
        assert!(err.contains("configs"), "{err}");

        let err = check_report("{\"schema\": \"something-else\"}")
            .expect_err("a foreign schema tag is invalid");
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn baselines_nest_exactly_one_level() {
        let inner = render_report(&complete_results(), true, None);
        let outer = render_report(&complete_results(), true, Some(&inner));
        check_report(&outer).expect("a report with a baseline validates");
        let stripped = strip_nested_baseline(&outer);
        assert!(!stripped.contains("baseline"), "the nested baseline is dropped");
        check_report(&stripped).expect("the stripped report still validates");
    }
}
