//! Monte-Carlo yield analysis of the fault-tolerance stack.
//!
//! The paper names endurance and device defects as the central obstacle
//! to memristive computation-in-memory; this module quantifies how far
//! the repair stack (SEC-DED [`EccCrossbar`] + spare-row remapping)
//! pushes the usable-yield frontier. Each *trial* manufactures a fresh
//! ECC-protected array with a seeded stuck-at defect sprinkle and an
//! endurance budget, runs a post-fab repair audit, then drives a
//! scouting workload and scores the array against a software reference:
//!
//! * **clean** — every output bit-identical to the fault-free reference;
//! * **corrected** — single-bit upsets transparently repaired on reads;
//! * **uncorrectable** — reads that hit multi-bit corruption the code
//!   detected and surfaced as an error;
//! * **silent** — reads that returned `Ok` with wrong data (3+ bit
//!   errors can alias a valid syndrome and miscorrect — SEC-DED's
//!   honest limit, measured rather than hidden);
//! * **retired / exhausted** — spare-row repairs performed, and rows
//!   that needed one after the pool ran dry.
//!
//! [`run_grid`] sweeps stuck-at density × endurance budget; the
//! `yield_report` binary renders the sweep as a table and a committed
//! JSON artifact, and `perf_report` times one batch of trials as its
//! `yield_report` config.

use memcim_bits::BitVec;
use memcim_crossbar::{
    Crossbar, CrossbarBackend, CrossbarError, EccCrossbar, HammingCode, ScoutingKind,
};
use memcim_device::EnduranceModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Geometry and workload sizing shared by every grid point.
#[derive(Debug, Clone, Copy)]
pub struct YieldConfig {
    /// Host-visible rows per trial array.
    pub rows: usize,
    /// Data columns per row (the codeword adds the parity overhead).
    pub cols: usize,
    /// Spare rows reserved for retirement.
    pub spares: usize,
    /// Stuck-cell count that retires a row.
    pub threshold: usize,
    /// Store → scouting-write → read-back rounds per trial.
    pub rounds: usize,
    /// Seeded trials per grid point.
    pub trials: u32,
}

impl YieldConfig {
    /// The full-size sweep used by the committed report. The threshold
    /// of 2 divides the labor architecturally: ECC absorbs single stuck
    /// cells per codeword (its exact correction capability), spares
    /// take over only when a row degrades beyond SEC.
    pub fn full() -> Self {
        Self { rows: 12, cols: 96, spares: 4, threshold: 2, rounds: 8, trials: 24 }
    }

    /// A shrunken configuration for CI smoke runs (same structure).
    pub fn quick() -> Self {
        Self { rows: 6, cols: 48, spares: 2, threshold: 2, rounds: 3, trials: 6 }
    }
}

/// Aggregated outcome of every trial at one (density, budget) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldPoint {
    /// Probability that any one cell is manufactured stuck.
    pub stuck_density: f64,
    /// Endurance budget (program cycles) per cell.
    pub endurance_budget: u64,
    /// Trials run.
    pub trials: u32,
    /// Trials whose every output matched the fault-free reference.
    pub clean_trials: u32,
    /// Single-bit upsets corrected across all trials.
    pub corrected: u64,
    /// Reads that hit uncorrectable multi-bit corruption.
    pub uncorrectable: u64,
    /// Reads that returned `Ok` with *wrong* data — miscorrections
    /// beyond SEC-DED's detection reach (3+ bit errors whose syndrome
    /// aliases a valid single-error position). The failure mode the
    /// sweep exists to quantify, not hide.
    pub silent: u64,
    /// Spare-row retirements performed.
    pub retired_rows: u64,
    /// Retirements denied because the spare pool was empty.
    pub exhausted_spares: u64,
}

impl YieldPoint {
    /// Fraction of trials that were bit-exact end to end.
    pub fn yield_fraction(&self) -> f64 {
        f64::from(self.clean_trials) / f64::from(self.trials.max(1))
    }
}

/// Deterministically derives a per-trial seed from the sweep seed and
/// the grid coordinates (SplitMix-style mixing).
fn trial_seed(seed: u64, density_ppm: u64, budget: u64, trial: u32) -> u64 {
    let mut x = seed
        ^ density_ppm.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ budget.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ u64::from(trial).wrapping_mul(0x94D0_49BB_1331_11EB);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

/// One manufactured array, repaired and exercised; tallies fold into
/// `point`.
fn run_trial(cfg: &YieldConfig, point: &mut YieldPoint, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let physical_cols = HammingCode::total_bits_for(cfg.cols);
    let inner = Crossbar::rram(cfg.rows + cfg.spares, physical_cols)
        .with_spare_rows(cfg.spares, cfg.threshold)
        .with_endurance(EnduranceModel::new(point.endurance_budget));
    let mut ecc = EccCrossbar::with_data_width(inner, cfg.cols).expect("codeword fits");

    // Manufacturing defects: each physical cell stuck with probability
    // `stuck_density`, at a random polarity.
    let physical_rows = cfg.rows + cfg.spares;
    for row in 0..physical_rows {
        for col in 0..physical_cols {
            if rng.gen_bool(point.stuck_density) {
                let polarity = rng.gen_bool(0.5);
                ecc.inner_mut().faults_mut().inject_stuck_at(row, col, polarity);
            }
        }
    }
    // Post-fab repair: retire every row over threshold while spares
    // last (the audit stops at the first denied retirement).
    match ecc.inner_mut().audit() {
        Ok(_) => {}
        Err(CrossbarError::ExhaustedSpares { .. }) => point.exhausted_spares += 1,
        Err(e) => unreachable!("audit can only fail on spares: {e}"),
    }

    // Runtime workload: stores, an in-memory scouting op, read-backs —
    // scored against pure software boolean algebra.
    let kinds = [ScoutingKind::And, ScoutingKind::Or, ScoutingKind::Xor];
    let mut clean = true;
    for round in 0..cfg.rounds {
        let a: BitVec = (0..cfg.cols).map(|_| rng.gen_bool(0.5)).collect();
        let b: BitVec = (0..cfg.cols).map(|_| rng.gen_bool(0.5)).collect();
        let kind = kinds[round % kinds.len()];
        let reference = match kind {
            ScoutingKind::And => a.and(&b),
            ScoutingKind::Or => a.or(&b),
            _ => a.xor(&b),
        };
        let rows = [(0usize, &a), (1usize, &b)];
        let mut degraded = false;
        for (row, data) in rows {
            match ecc.program_row(row, data) {
                Ok(_) => {}
                Err(CrossbarError::ExhaustedSpares { .. }) => {
                    point.exhausted_spares += 1;
                    degraded = true;
                }
                Err(_) => degraded = true,
            }
        }
        if !degraded {
            match ecc.scouting_write(kind, &[0, 1], 2) {
                Ok(_) => {}
                Err(CrossbarError::Uncorrectable { .. }) => {
                    point.uncorrectable += 1;
                    degraded = true;
                }
                Err(CrossbarError::ExhaustedSpares { .. }) => {
                    point.exhausted_spares += 1;
                    degraded = true;
                }
                Err(_) => degraded = true,
            }
        }
        if degraded {
            clean = false;
            continue;
        }
        for (row, expected) in [(0, &a), (1, &b), (2, &reference)] {
            match ecc.read_row(row) {
                Ok(got) => {
                    if &got != expected {
                        point.silent += 1;
                        clean = false;
                    }
                }
                Err(CrossbarError::Uncorrectable { .. }) => {
                    point.uncorrectable += 1;
                    clean = false;
                }
                Err(_) => clean = false,
            }
        }
    }
    point.corrected += ecc.corrected_errors();
    point.retired_rows += ecc.inner().retired_rows();
    if clean {
        point.clean_trials += 1;
    }
}

/// Runs every trial at one (stuck-at density, endurance budget) point.
pub fn run_point(cfg: &YieldConfig, density: f64, budget: u64, seed: u64) -> YieldPoint {
    let mut point = YieldPoint {
        stuck_density: density,
        endurance_budget: budget,
        trials: cfg.trials,
        clean_trials: 0,
        corrected: 0,
        uncorrectable: 0,
        silent: 0,
        retired_rows: 0,
        exhausted_spares: 0,
    };
    let density_ppm = (density * 1e6) as u64;
    for trial in 0..cfg.trials {
        run_trial(cfg, &mut point, trial_seed(seed, density_ppm, budget, trial));
    }
    point
}

/// Sweeps the full density × budget grid, row-major over `densities`.
pub fn run_grid(
    cfg: &YieldConfig,
    densities: &[f64],
    budgets: &[u64],
    seed: u64,
) -> Vec<YieldPoint> {
    densities
        .iter()
        .flat_map(|&density| budgets.iter().map(move |&budget| (density, budget)))
        .map(|(density, budget)| run_point(cfg, density, budget, seed))
        .collect()
}

/// The density axis of the committed sweep: pristine → pessimistic.
pub const DENSITIES: &[f64] = &[0.0, 0.001, 0.005, 0.02];

/// The endurance axis of the committed sweep: fragile enough that the
/// workload itself wears cells out → comfortable → effectively
/// unlimited.
pub const BUDGETS: &[u64] = &[6, 64, 1_000_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_arrays_yield_perfectly() {
        let cfg = YieldConfig::quick();
        let point = run_point(&cfg, 0.0, 1_000_000, 7);
        assert_eq!(point.clean_trials, point.trials);
        assert_eq!(point.corrected, 0);
        assert_eq!(point.uncorrectable, 0);
        assert_eq!(point.silent, 0);
        assert_eq!(point.retired_rows, 0);
        assert!((point.yield_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn light_defect_density_is_absorbed_by_the_repair_stack() {
        let cfg = YieldConfig::full();
        let point = run_point(&cfg, 0.001, 1_000_000, 2018);
        // Faults existed and the stack worked around them.
        assert!(point.corrected + point.retired_rows > 0, "defects were encountered");
        assert!(
            point.clean_trials >= point.trials * 3 / 4,
            "repair keeps ≥75 % of arrays usable at 0.1 % defects, got {}/{}",
            point.clean_trials,
            point.trials
        );
    }

    #[test]
    fn heavy_defect_density_degrades_with_reported_events() {
        let cfg = YieldConfig::full();
        let clean = run_point(&cfg, 0.0, 1_000_000, 2018);
        let dirty = run_point(&cfg, 0.02, 64, 2018);
        assert!(dirty.yield_fraction() <= clean.yield_fraction());
        // Degradation shows up as *reported* events, not silence.
        assert!(
            dirty.corrected
                + dirty.uncorrectable
                + dirty.silent
                + dirty.retired_rows
                + dirty.exhausted_spares
                > 0
        );
    }

    #[test]
    fn the_sweep_is_deterministic() {
        let cfg = YieldConfig::quick();
        let a = run_grid(&cfg, &[0.0, 0.01], &[128], 42);
        let b = run_grid(&cfg, &[0.0, 0.01], &[128], 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
