//! Criterion bench for H1/D3/D5: AP engine symbol throughput across
//! backends and routing fabrics, against the software NFA baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memcim_ap::{ApBackend, AutomataProcessor, RoutingKind};
use memcim_automata::{rules, PatternSet, StartKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ap(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2018);
    let texts = rules::synthetic_rules(&mut rng, 16);
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs).expect("compiles");
    let traffic = rules::synthetic_traffic(&mut rng, set.patterns(), 1 << 14, 32);
    let (homog, _) = set.to_homogeneous();
    let scanning = homog.with_start_kind(StartKind::AllInput);

    let mut group = c.benchmark_group("ap_engine");
    group.throughput(Throughput::Bytes(traffic.len() as u64));
    group.sample_size(20);

    for backend in [ApBackend::rram(), ApBackend::sram()] {
        let name = backend.name;
        let mut ap =
            AutomataProcessor::compile(&scanning, backend, RoutingKind::Dense).expect("maps");
        group.bench_function(format!("engine_dense_{name}"), |b| {
            b.iter(|| black_box(ap.run(&traffic)))
        });
    }
    let mut hier = AutomataProcessor::compile(
        &scanning,
        ApBackend::rram(),
        RoutingKind::Hierarchical { block: 64, max_global: 1 << 16 },
    )
    .expect("maps");
    group.bench_function("engine_hierarchical_RRAM-AP", |b| {
        b.iter(|| black_box(hier.run(&traffic)))
    });
    group.bench_function("software_nfa_scan", |b| b.iter(|| black_box(set.nfa().scan(&traffic))));
    group.bench_function("software_bitparallel", |b| {
        let matrices = scanning.to_matrices();
        b.iter(|| black_box(matrices.run(&traffic)))
    });
    group.finish();
}

criterion_group!(benches, bench_ap);
criterion_main!(benches);
