//! Criterion bench for H1/D3/D5: AP engine symbol throughput across
//! backends and routing fabrics, against the software NFA baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memcim_ap::{ApBackend, AutomataProcessor, Routing, RoutingKind};
use memcim_automata::{rules, PatternSet, StartKind};
use memcim_bits::{BitMatrix, BitVec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_ap(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2018);
    let texts = rules::synthetic_rules(&mut rng, 16);
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs).expect("compiles");
    let traffic = rules::synthetic_traffic(&mut rng, set.patterns(), 1 << 14, 32);
    let (homog, _) = set.to_homogeneous();
    let scanning = homog.with_start_kind(StartKind::AllInput);

    let mut group = c.benchmark_group("ap_engine");
    group.throughput(Throughput::Bytes(traffic.len() as u64));
    group.sample_size(20);

    for backend in [ApBackend::rram(), ApBackend::sram()] {
        let name = backend.name;
        let mut ap =
            AutomataProcessor::compile(&scanning, backend, RoutingKind::Dense).expect("maps");
        group.bench_function(format!("engine_dense_{name}"), |b| {
            b.iter(|| black_box(ap.run(&traffic)))
        });
    }
    let mut hier = AutomataProcessor::compile(
        &scanning,
        ApBackend::rram(),
        RoutingKind::Hierarchical { block: 64, max_global: 1 << 16 },
    )
    .expect("maps");
    group.bench_function("engine_hierarchical_RRAM-AP", |b| {
        b.iter(|| black_box(hier.run(&traffic)))
    });
    group.bench_function("software_nfa_scan", |b| b.iter(|| black_box(set.nfa().scan(&traffic))));
    group.bench_function("software_bitparallel", |b| {
        let matrices = scanning.to_matrices();
        b.iter(|| black_box(matrices.run(&traffic)))
    });
    group.finish();
}

/// `Routing::follow`-only microbench: isolates Equation (2) from the
/// rest of the pipeline at 1k and 4k states, on both fabrics, with the
/// allocation-free `follow_into` path the engine uses.
fn bench_follow(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_follow");
    for n in [1024usize, 4096] {
        let mut rng = SmallRng::seed_from_u64(2018 ^ n as u64);
        // ~4 successors per state, mostly block-local with a cross-block
        // tail — the shape homogeneous automata actually map to.
        let mut m = BitMatrix::new(n, n);
        for p in 0..n {
            for _ in 0..4 {
                let q = if rng.gen_range(0..8) == 0 {
                    rng.gen_range(0..n)
                } else {
                    (p / 256) * 256 + rng.gen_range(0..256.min(n))
                };
                m.set(p, q % n, true);
            }
        }
        let active_idx: Vec<usize> = (0..n / 16).map(|_| rng.gen_range(0..n)).collect();
        let active = BitVec::from_indices(n, &active_idx);
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(20);
        for (label, kind) in [
            ("dense", RoutingKind::Dense),
            ("hierarchical", RoutingKind::Hierarchical { block: 256, max_global: n * n }),
        ] {
            let routing = Routing::compile(&m, kind).expect("routable");
            let mut out = BitVec::new(n);
            let mut scratch = routing.scratch();
            group.bench_function(format!("follow_{label}_{n}"), |b| {
                b.iter(|| {
                    routing.follow_into(black_box(&active), &mut out, &mut scratch);
                    black_box(&out);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ap, bench_follow);
criterion_main!(benches);
