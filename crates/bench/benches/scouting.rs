//! Criterion bench for F3: scouting-logic operations on the crossbar
//! versus host-side boolean ops on fetched rows (the data-movement
//! elimination the MVP section argues for).

use criterion::{criterion_group, criterion_main, Criterion};
use memcim_bits::BitVec;
use memcim_crossbar::{Crossbar, ScoutingKind};
use std::hint::black_box;

fn setup(cols: usize) -> Crossbar {
    let mut xbar = Crossbar::rram(8, cols);
    for r in 0..8 {
        let v = BitVec::from_indices(cols, &(r..cols).step_by(r + 2).collect::<Vec<_>>());
        xbar.program_row(r, &v).expect("program");
    }
    xbar
}

fn bench_scouting(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_scouting");
    for cols in [256usize, 1024, 4096] {
        let mut xbar = setup(cols);
        group.bench_function(format!("scouting_and_2x{cols}"), |b| {
            b.iter(|| black_box(xbar.scouting(ScoutingKind::And, &[0, 1]).expect("and")))
        });
        let mut xbar_or = setup(cols);
        group.bench_function(format!("scouting_or_8x{cols}"), |b| {
            b.iter(|| {
                black_box(
                    xbar_or.scouting(ScoutingKind::Or, &[0, 1, 2, 3, 4, 5, 6, 7]).expect("or"),
                )
            })
        });
        // Host-side reference: the same logic on already-fetched rows.
        let a = BitVec::from_indices(cols, &(0..cols).step_by(2).collect::<Vec<_>>());
        let bvec = BitVec::from_indices(cols, &(0..cols).step_by(3).collect::<Vec<_>>());
        group.bench_function(format!("host_and_2x{cols}"), |b| b.iter(|| black_box(a.and(&bvec))));
    }
    group.finish();
}

criterion_group!(benches, bench_scouting);
criterion_main!(benches);
