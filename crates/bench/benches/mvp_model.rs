//! Criterion bench for F4: the MVP architecture-model grid evaluation
//! and the functional MVP workloads against their scalar references.

use criterion::{criterion_group, criterion_main, Criterion};
use memcim_mvp::workloads::{bfs::Graph, bitmap::BitmapTable};
use memcim_mvp::{evaluate, MissRates, MvpSimulator, SystemConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_mvp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_mvp");

    group.bench_function("model_grid_7x7", |b| {
        let cfg = SystemConfig::paper_defaults();
        b.iter(|| {
            let mut acc = 0.0;
            for l1 in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
                for l2 in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
                    acc += evaluate(&cfg, MissRates::new(l1, l2)).eta_pe_gain();
                }
            }
            black_box(acc)
        })
    });

    let mut rng = SmallRng::seed_from_u64(5);
    let n = 4096;
    let col1: Vec<u8> = (0..n).map(|_| rng.gen_range(0..16)).collect();
    let col2: Vec<u8> = (0..n).map(|_| rng.gen_range(0..16)).collect();
    let table = BitmapTable::new(col1, col2, 16).expect("well-formed columns");
    group.bench_function("bitmap_query_mvp", |b| {
        let mut mvp = MvpSimulator::new(24, n);
        b.iter(|| black_box(table.query_mvp(&mut mvp, &[1, 3, 5], &[2, 4]).expect("query")))
    });
    group.bench_function("bitmap_query_scalar", |b| {
        b.iter(|| black_box(table.query_reference(&[1, 3, 5], &[2, 4])))
    });

    let mut g = Graph::new(256).expect("nonempty graph");
    for _ in 0..2048 {
        g.add_edge(rng.gen_range(0..256), rng.gen_range(0..256)).expect("in range");
    }
    group.bench_function("bfs_mvp", |b| {
        let mut mvp = MvpSimulator::new(16, 256);
        b.iter(|| black_box(g.bfs_mvp(&mut mvp, 0, 8).expect("bfs")))
    });
    group.bench_function("bfs_scalar", |b| b.iter(|| black_box(g.bfs_reference(0))));

    group.finish();
}

criterion_group!(benches, bench_mvp);
criterion_main!(benches);
