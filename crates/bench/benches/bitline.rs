//! Criterion bench for F9: the bit-line discharge transient (lumped
//! netlist) for both technologies, plus the analytic shortcut.

use criterion::{criterion_group, criterion_main, Criterion};
use memcim_crossbar::{BitlineCircuit, CellTechnology};
use std::hint::black_box;

fn bench_bitline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_bitline");
    group.sample_size(20);
    for tech in [CellTechnology::rram_1t1r(), CellTechnology::sram_8t()] {
        let name = tech.name;
        let circuit = BitlineCircuit::lumped(tech.clone(), 256);
        group.bench_function(format!("transient_{name}"), |b| {
            b.iter(|| black_box(circuit.run().expect("solves")))
        });
        group.bench_function(format!("analytic_{name}"), |b| {
            b.iter(|| {
                black_box((tech.analytic_discharge_time(256), tech.analytic_cycle_energy(256)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitline);
criterion_main!(benches);
