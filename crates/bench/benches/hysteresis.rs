//! Criterion bench for F1: device-model sweep throughput (the kernel
//! behind the Fig. 1b reproduction), per window function.

use criterion::{criterion_group, criterion_main, Criterion};
use memcim_device::{window::Window, HysteresisSweep, IdealMemristor, LinearIonDrift};
use memcim_units::{Hertz, Ohms, Volts};
use std::hint::black_box;

fn bench_hysteresis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_hysteresis");
    for (name, window) in [
        ("rectangular", Window::Rectangular),
        ("joglekar", Window::Joglekar { p: 2 }),
        ("biolek", Window::Biolek { p: 2 }),
    ] {
        group.bench_function(format!("drift_sweep_{name}"), |b| {
            let base = LinearIonDrift::hp_default().with_window(window);
            let f0 = base.characteristic_frequency(Volts::new(1.0));
            b.iter(|| {
                let mut device = base.clone();
                let trace = HysteresisSweep::new(Volts::new(1.0), f0)
                    .with_cycles(1)
                    .with_steps_per_cycle(512)
                    .run(&mut device);
                black_box(trace.lobe_area())
            });
        });
    }
    group.bench_function("ideal_chua_sweep", |b| {
        b.iter(|| {
            let mut device = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
            let trace = HysteresisSweep::new(Volts::new(1.0), Hertz::new(1.0))
                .with_cycles(1)
                .with_steps_per_cycle(512)
                .run(&mut device);
            black_box(trace.is_pinched(1e-2))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hysteresis);
criterion_main!(benches);
