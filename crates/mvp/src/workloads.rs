//! Paper-motivated MVP workloads with scalar reference implementations.
//!
//! Section III.B names database management \[17\], DNA sequencing \[18–20\]
//! and graph processing \[21\] as the target applications. Each workload
//! here has (a) an MVP execution path built from macro-instructions and
//! (b) a plain software reference, so tests can assert bit-identical
//! results while the ledger shows what the in-memory execution cost.
//!
//! Every MVP path is generic over [`CrossbarBackend`]: the same workload
//! runs unchanged on a monolithic [`MvpSimulator`] or a banked one
//! ([`MvpSimulator::banked`]), producing bit-identical results — the
//! banked substrate only changes the cost model (energy sums over banks,
//! wall clock is one bank cycle).
//!
//! [`CrossbarBackend`]: memcim_crossbar::CrossbarBackend

use crate::{Instruction, MvpError, MvpSimulator};
use memcim_bits::BitVec;
use memcim_crossbar::CrossbarBackend;

/// FastBit-style bitmap-index selection (database management).
pub mod bitmap {
    use super::*;

    /// A two-column categorical table indexed by per-value bitmaps.
    ///
    /// Queries of the form `col1 ∈ set1 AND col2 ∈ set2` become
    /// OR-reductions over value bitmaps followed by one AND — exactly
    /// the bulk bitwise work MVP executes in memory.
    #[derive(Debug, Clone)]
    pub struct BitmapTable {
        rows: usize,
        col1: Vec<u8>,
        col2: Vec<u8>,
        cardinality: usize,
    }

    impl BitmapTable {
        /// Builds a table from two categorical columns.
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] if the columns differ in
        /// length, are empty, or contain values ≥ `cardinality`.
        pub fn new(col1: Vec<u8>, col2: Vec<u8>, cardinality: usize) -> Result<Self, MvpError> {
            if col1.len() != col2.len() {
                return Err(MvpError::BadInput {
                    reason: format!("columns must align: {} vs {} records", col1.len(), col2.len()),
                });
            }
            if col1.is_empty() {
                return Err(MvpError::BadInput { reason: "table must not be empty".into() });
            }
            if let Some(&v) = col1.iter().chain(&col2).find(|&&v| (v as usize) >= cardinality) {
                return Err(MvpError::BadInput {
                    reason: format!("value {v} is not below the cardinality {cardinality}"),
                });
            }
            Ok(Self { rows: col1.len(), col1, col2, cardinality })
        }

        /// Number of records.
        pub fn len(&self) -> usize {
            self.rows
        }

        /// `true` when the table has no records (cannot occur via
        /// [`new`](Self::new)).
        pub fn is_empty(&self) -> bool {
            self.rows == 0
        }

        /// The bitmap of records whose column equals `value`.
        fn bitmap(col: &[u8], value: u8, rows: usize) -> BitVec {
            let mut v = BitVec::new(rows);
            for (i, &c) in col.iter().enumerate() {
                if c == value {
                    v.set(i, true);
                }
            }
            v
        }

        /// Scalar reference: records with `col1 ∈ set1 && col2 ∈ set2`.
        pub fn query_reference(&self, set1: &[u8], set2: &[u8]) -> BitVec {
            let mut out = BitVec::new(self.rows);
            for i in 0..self.rows {
                if set1.contains(&self.col1[i]) && set2.contains(&self.col2[i]) {
                    out.set(i, true);
                }
            }
            out
        }

        /// The macro-instruction program for one query — the unit that
        /// [`query_mvp`](Self::query_mvp) executes and that a
        /// [`BatchRequest`](crate::BatchRequest) can aggregate many of.
        /// The program ends with a `Read` of the result row.
        ///
        /// Row layout: `[set1 bitmaps…][set2 bitmaps…][tmp1][tmp2][out]`.
        pub fn query_plan(&self, set1: &[u8], set2: &[u8]) -> Vec<Instruction> {
            let mut program = Vec::new();
            let mut row = 0;
            let mut rows1 = Vec::new();
            for &v in set1 {
                program
                    .push(Instruction::Store { row, data: Self::bitmap(&self.col1, v, self.rows) });
                rows1.push(row);
                row += 1;
            }
            let mut rows2 = Vec::new();
            for &v in set2 {
                program
                    .push(Instruction::Store { row, data: Self::bitmap(&self.col2, v, self.rows) });
                rows2.push(row);
                row += 1;
            }
            let (tmp1, tmp2, out) = (row, row + 1, row + 2);
            // Single-value sets need no OR reduction.
            let lhs = if rows1.len() == 1 {
                rows1[0]
            } else {
                program.push(Instruction::Or { srcs: rows1, dst: tmp1 });
                tmp1
            };
            let rhs = if rows2.len() == 1 {
                rows2[0]
            } else {
                program.push(Instruction::Or { srcs: rows2, dst: tmp2 });
                tmp2
            };
            program.push(Instruction::And { srcs: vec![lhs, rhs], dst: out });
            program.push(Instruction::Read { row: out });
            program
        }

        /// The shard-local program for records `range` of the same
        /// query, padded to an engine of `width` columns.
        ///
        /// The program has the same `[set1…][set2…][tmp1][tmp2][out]`
        /// shape as [`query_plan`](Self::query_plan), but every stored
        /// bitmap carries only the records in `range` (in its low
        /// `range.len()` bits, zero-padded above). Executing one such
        /// program per shard of a [`ShardMap`](crate::ShardMap) and
        /// stitching the `Read` outputs reproduces the unsharded answer
        /// bit for bit — the differential contract the serve layer's
        /// scatter-gather path is tested against.
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] when `range` escapes the
        /// table or does not fit an engine of `width` columns.
        pub fn shard_query_plan(
            &self,
            set1: &[u8],
            set2: &[u8],
            range: std::ops::Range<usize>,
            width: usize,
        ) -> Result<Vec<Instruction>, MvpError> {
            if range.end > self.rows || range.start > range.end {
                return Err(MvpError::BadInput {
                    reason: format!(
                        "shard range {}..{} escapes the {}-record table",
                        range.start, range.end, self.rows
                    ),
                });
            }
            if range.len() > width {
                return Err(MvpError::BadInput {
                    reason: format!(
                        "{}-record shard does not fit a {width}-column engine",
                        range.len()
                    ),
                });
            }
            let mut program = Vec::new();
            let mut row = 0;
            let mut rows1 = Vec::new();
            for &v in set1 {
                program.push(Instruction::Store {
                    row,
                    data: Self::bitmap(&self.col1[range.clone()], v, width),
                });
                rows1.push(row);
                row += 1;
            }
            let mut rows2 = Vec::new();
            for &v in set2 {
                program.push(Instruction::Store {
                    row,
                    data: Self::bitmap(&self.col2[range.clone()], v, width),
                });
                rows2.push(row);
                row += 1;
            }
            let (tmp1, tmp2, out) = (row, row + 1, row + 2);
            let lhs = if rows1.len() == 1 {
                rows1[0]
            } else {
                program.push(Instruction::Or { srcs: rows1, dst: tmp1 });
                tmp1
            };
            let rhs = if rows2.len() == 1 {
                rows2[0]
            } else {
                program.push(Instruction::Or { srcs: rows2, dst: tmp2 });
                tmp2
            };
            program.push(Instruction::And { srcs: vec![lhs, rhs], dst: out });
            program.push(Instruction::Read { row: out });
            Ok(program)
        }

        /// MVP execution: loads the value bitmaps and runs the
        /// OR/OR/AND plan in memory.
        ///
        /// # Errors
        ///
        /// Propagates [`MvpError`] from program execution (a geometry
        /// mismatch between the table and the simulator, for instance).
        pub fn query_mvp<B: CrossbarBackend>(
            &self,
            mvp: &mut MvpSimulator<B>,
            set1: &[u8],
            set2: &[u8],
        ) -> Result<BitVec, MvpError> {
            let mut outputs = mvp.run_program(&self.query_plan(set1, set2))?;
            Ok(outputs.pop().expect("program ends with a read"))
        }

        /// Value cardinality per column.
        pub fn cardinality(&self) -> usize {
            self.cardinality
        }
    }
}

/// Bit-parallel k-mer filtering (DNA sequencing).
pub mod kmer {
    use super::*;

    /// Per-base occurrence bitmaps of a genome, pre-shifted so that a
    /// k-mer match test is a single k-way AND (the bit-parallelism of
    /// \[18, 19\] mapped onto scouting logic).
    #[derive(Debug, Clone)]
    pub struct ShiftedBaseIndex {
        len: usize,
        k: usize,
        /// `layers[j]` = bitmap of positions `p` where
        /// `genome[p + j] == kmer[j]` will be tested; stored per (offset,
        /// base) pair: `layers[j][base]`.
        layers: Vec<[BitVec; 4]>,
    }

    fn base_index(b: u8, position: usize) -> Result<usize, MvpError> {
        match b {
            b'A' => Ok(0),
            b'C' => Ok(1),
            b'G' => Ok(2),
            b'T' => Ok(3),
            other => Err(MvpError::BadInput {
                reason: format!("non-ACGT base {:?} at position {position}", char::from(other)),
            }),
        }
    }

    impl ShiftedBaseIndex {
        /// Indexes a genome for k-mers of length `k`.
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] if `k` is zero, the genome is
        /// shorter than `k`, or the genome contains non-ACGT bytes.
        pub fn build(genome: &[u8], k: usize) -> Result<Self, MvpError> {
            if k == 0 {
                return Err(MvpError::BadInput { reason: "k must be positive".into() });
            }
            if genome.len() < k {
                return Err(MvpError::BadInput {
                    reason: format!("genome of {} bases is shorter than k = {k}", genome.len()),
                });
            }
            let positions = genome.len() - k + 1;
            let mut layers = Vec::with_capacity(k);
            for j in 0..k {
                let mut maps = [
                    BitVec::new(positions),
                    BitVec::new(positions),
                    BitVec::new(positions),
                    BitVec::new(positions),
                ];
                for p in 0..positions {
                    maps[base_index(genome[p + j], p + j)?].set(p, true);
                }
                layers.push(maps);
            }
            Ok(Self { len: positions, k, layers })
        }

        /// Number of candidate positions.
        pub fn positions(&self) -> usize {
            self.len
        }

        fn check_kmer(&self, kmer: &[u8]) -> Result<(), MvpError> {
            if kmer.len() != self.k {
                return Err(MvpError::BadInput {
                    reason: format!(
                        "k-mer of {} bases does not match the index's k = {}",
                        kmer.len(),
                        self.k
                    ),
                });
            }
            Ok(())
        }

        /// Scalar reference: match positions of `kmer`.
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] if `kmer.len() != k` or the
        /// k-mer contains non-ACGT bytes.
        pub fn find_reference(&self, kmer: &[u8]) -> Result<BitVec, MvpError> {
            self.check_kmer(kmer)?;
            let mut out = self.layers[0][base_index(kmer[0], 0)?].clone();
            for (j, &b) in kmer.iter().enumerate().skip(1) {
                out.and_assign(&self.layers[j][base_index(b, j)?]);
            }
            Ok(out)
        }

        /// MVP execution: stores the k relevant layers and AND-reduces
        /// them in one scouting operation.
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] for a malformed k-mer and
        /// propagates [`MvpError`] from program execution.
        pub fn find_mvp<B: CrossbarBackend>(
            &self,
            mvp: &mut MvpSimulator<B>,
            kmer: &[u8],
        ) -> Result<BitVec, MvpError> {
            self.check_kmer(kmer)?;
            let mut program = Vec::new();
            for (j, &b) in kmer.iter().enumerate() {
                program.push(Instruction::Store {
                    row: j,
                    data: self.layers[j][base_index(b, j)?].clone(),
                });
            }
            let dst = self.k;
            program.push(Instruction::And { srcs: (0..self.k).collect(), dst });
            program.push(Instruction::Read { row: dst });
            let mut outputs = mvp.run_program(&program)?;
            Ok(outputs.pop().expect("program ends with a read"))
        }

        /// The shard-local program testing only candidate positions
        /// `range`, padded to an engine of `width` columns — the k-mer
        /// counterpart of
        /// [`BitmapTable::shard_query_plan`](super::bitmap::BitmapTable::shard_query_plan).
        /// Stitching the per-shard `Read` outputs over a
        /// [`ShardMap`](crate::ShardMap) of [`positions`](Self::positions)
        /// reproduces [`find_reference`](Self::find_reference) bit for
        /// bit.
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] for a malformed k-mer or a
        /// range that escapes the index or the engine width.
        pub fn shard_find_plan(
            &self,
            kmer: &[u8],
            range: std::ops::Range<usize>,
            width: usize,
        ) -> Result<Vec<Instruction>, MvpError> {
            self.check_kmer(kmer)?;
            let mut program = Vec::new();
            for (j, &b) in kmer.iter().enumerate() {
                let layer = &self.layers[j][base_index(b, j)?];
                program.push(Instruction::Store {
                    row: j,
                    data: crate::sharded::slice_to_width(layer, range.clone(), width)?,
                });
            }
            let dst = self.k;
            program.push(Instruction::And { srcs: (0..self.k).collect(), dst });
            program.push(Instruction::Read { row: dst });
            Ok(program)
        }
    }
}

/// Frontier-expansion BFS (graph processing, direction-optimizing style
/// \[21\]).
pub mod bfs {
    use super::*;

    /// An unweighted directed graph as adjacency bitmaps.
    #[derive(Debug, Clone)]
    pub struct Graph {
        n: usize,
        adjacency: Vec<BitVec>,
    }

    impl Graph {
        /// Creates an edgeless graph on `n` vertices.
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] if `n` is zero.
        pub fn new(n: usize) -> Result<Self, MvpError> {
            if n == 0 {
                return Err(MvpError::BadInput {
                    reason: "graph needs at least one vertex".into(),
                });
            }
            Ok(Self { n, adjacency: vec![BitVec::new(n); n] })
        }

        /// Adds a directed edge.
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] if either endpoint is out of
        /// range.
        pub fn add_edge(&mut self, from: usize, to: usize) -> Result<(), MvpError> {
            if from >= self.n || to >= self.n {
                return Err(MvpError::BadInput {
                    reason: format!("edge {from} → {to} escapes the {}-vertex graph", self.n),
                });
            }
            self.adjacency[from].set(to, true);
            Ok(())
        }

        /// Vertex count.
        pub fn len(&self) -> usize {
            self.n
        }

        /// `true` for an empty graph (cannot occur via
        /// [`new`](Self::new)).
        pub fn is_empty(&self) -> bool {
            self.n == 0
        }

        /// Scalar reference BFS: per-vertex levels (`usize::MAX` =
        /// unreachable).
        pub fn bfs_reference(&self, src: usize) -> Vec<usize> {
            let mut level = vec![usize::MAX; self.n];
            level[src] = 0;
            let mut frontier = vec![src];
            let mut depth = 0;
            while !frontier.is_empty() {
                depth += 1;
                let mut next = Vec::new();
                for &v in &frontier {
                    for u in self.adjacency[v].ones() {
                        if level[u] == usize::MAX {
                            level[u] = depth;
                            next.push(u);
                        }
                    }
                }
                frontier = next;
            }
            level
        }

        /// MVP BFS: each level's frontier expansion is a multi-way OR of
        /// adjacency rows executed in memory (chunked at `max_fanin` rows
        /// per scouting operation); visited-set subtraction stays on the
        /// host, mirroring the bottom-up/top-down split of \[21\].
        ///
        /// # Errors
        ///
        /// Returns [`MvpError::BadInput`] if `src` is out of range or
        /// `max_fanin < 2`, and propagates [`MvpError`] from program
        /// execution.
        pub fn bfs_mvp<B: CrossbarBackend>(
            &self,
            mvp: &mut MvpSimulator<B>,
            src: usize,
            max_fanin: usize,
        ) -> Result<Vec<usize>, MvpError> {
            if src >= self.n {
                return Err(MvpError::BadInput {
                    reason: format!("source vertex {src} outside the {}-vertex graph", self.n),
                });
            }
            if max_fanin < 2 {
                return Err(MvpError::BadInput {
                    reason: format!("scouting needs a fan-in of at least 2, got {max_fanin}"),
                });
            }
            let mut level = vec![usize::MAX; self.n];
            level[src] = 0;
            let mut frontier: Vec<usize> = vec![src];
            let mut depth = 0;
            while !frontier.is_empty() {
                depth += 1;
                // Expand the whole frontier with chunked in-memory ORs.
                let mut reached = BitVec::new(self.n);
                for chunk in frontier.chunks(max_fanin) {
                    if chunk.len() == 1 {
                        reached.or_assign(&self.adjacency[chunk[0]]);
                        continue;
                    }
                    let mut program = Vec::new();
                    for (i, &v) in chunk.iter().enumerate() {
                        program
                            .push(Instruction::Store { row: i, data: self.adjacency[v].clone() });
                    }
                    let dst = chunk.len();
                    program.push(Instruction::Or { srcs: (0..chunk.len()).collect(), dst });
                    program.push(Instruction::Read { row: dst });
                    let mut outputs = mvp.run_program(&program)?;
                    reached.or_assign(&outputs.pop().expect("read output"));
                }
                let mut next = Vec::new();
                for u in reached.ones() {
                    if level[u] == usize::MAX {
                        level[u] = depth;
                        next.push(u);
                    }
                }
                frontier = next;
            }
            Ok(level)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bitmap_query_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 512;
        let col1: Vec<u8> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let col2: Vec<u8> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let table = bitmap::BitmapTable::new(col1, col2, 8).expect("well-formed");
        let mut mvp = MvpSimulator::new(24, n);
        for (s1, s2) in [(&[1u8, 3][..], &[0u8, 2, 5][..]), (&[7], &[7]), (&[0, 1, 2], &[3])] {
            let fast = table.query_mvp(&mut mvp, s1, s2).expect("mvp query");
            let slow = table.query_reference(s1, s2);
            assert_eq!(fast, slow, "sets {s1:?} / {s2:?}");
        }
        assert!(mvp.ledger().scouting_ops() >= 3);
    }

    #[test]
    fn bitmap_query_runs_banked() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 384;
        let col1: Vec<u8> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let col2: Vec<u8> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let table = bitmap::BitmapTable::new(col1, col2, 8).expect("well-formed");
        // Three banks, non-power-of-two bank width.
        let mut banked = MvpSimulator::banked(24, 3, 128);
        let fast = table.query_mvp(&mut banked, &[1, 3], &[0, 2]).expect("banked query");
        assert_eq!(fast, table.query_reference(&[1, 3], &[0, 2]));
    }

    #[test]
    fn sharded_bitmap_query_stitches_to_the_reference() {
        let mut rng = SmallRng::seed_from_u64(2018);
        let n = 500; // deliberately not a multiple of the shard counts
        let col1: Vec<u8> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let col2: Vec<u8> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let table = bitmap::BitmapTable::new(col1, col2, 8).expect("well-formed");
        let width = 512; // engine width exceeds every shard's record count
        for shards in [1usize, 2, 3, 4] {
            let map = crate::ShardMap::new(n, shards).expect("valid geometry");
            for (s1, s2) in [(&[1u8, 3][..], &[0u8, 2, 5][..]), (&[7], &[7])] {
                let partials: Vec<BitVec> = map
                    .ranges()
                    .map(|r| {
                        let plan = table.shard_query_plan(s1, s2, r, width).expect("plan compiles");
                        let mut engine = MvpSimulator::new(16, width);
                        engine.run_program(&plan).expect("shard runs").pop().expect("read")
                    })
                    .collect();
                let stitched = map.stitch(&partials).expect("aligned");
                assert_eq!(stitched, table.query_reference(s1, s2), "{shards} shards");
            }
        }
    }

    #[test]
    fn shard_query_plan_validates_geometry() {
        let table =
            bitmap::BitmapTable::new(vec![0, 1, 2, 3], vec![0, 1, 2, 3], 4).expect("well-formed");
        assert!(matches!(
            table.shard_query_plan(&[1], &[2], 2..6, 64),
            Err(MvpError::BadInput { .. })
        ));
        assert!(matches!(
            table.shard_query_plan(&[1], &[2], 0..4, 2),
            Err(MvpError::BadInput { .. })
        ));
    }

    #[test]
    fn sharded_kmer_search_stitches_to_the_reference() {
        let mut rng = SmallRng::seed_from_u64(2018);
        let bases = [b'A', b'C', b'G', b'T'];
        let mut genome: Vec<u8> = (0..700).map(|_| bases[rng.gen_range(0..4usize)]).collect();
        for at in [50usize, 340, 650] {
            genome[at..at + 5].copy_from_slice(b"GATTA");
        }
        let index = kmer::ShiftedBaseIndex::build(&genome, 5).expect("clean genome");
        let map = crate::ShardMap::new(index.positions(), 3).expect("valid geometry");
        let width = 256;
        let partials: Vec<BitVec> = map
            .ranges()
            .map(|r| {
                let plan = index.shard_find_plan(b"GATTA", r, width).expect("plan compiles");
                let mut engine = MvpSimulator::new(8, width);
                engine.run_program(&plan).expect("shard runs").pop().expect("read")
            })
            .collect();
        let stitched = map.stitch(&partials).expect("aligned");
        assert_eq!(stitched, index.find_reference(b"GATTA").expect("reference"));
        assert!(matches!(
            index.shard_find_plan(b"GAT", 0..4, width),
            Err(MvpError::BadInput { .. })
        ));
    }

    #[test]
    fn kmer_search_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(23);
        let bases = [b'A', b'C', b'G', b'T'];
        let mut genome: Vec<u8> = (0..2000).map(|_| bases[rng.gen_range(0..4usize)]).collect();
        // Plant a motif to guarantee hits.
        for at in [100usize, 900, 1500] {
            genome[at..at + 6].copy_from_slice(b"ACGTAC");
        }
        let index = kmer::ShiftedBaseIndex::build(&genome, 6).expect("clean genome");
        let mut mvp = MvpSimulator::new(8, index.positions());
        let fast = index.find_mvp(&mut mvp, b"ACGTAC").expect("mvp find");
        let slow = index.find_reference(b"ACGTAC").expect("reference find");
        assert_eq!(fast, slow);
        for at in [100usize, 900, 1500] {
            assert!(fast.get(at), "planted hit at {at}");
        }
        // The whole k-way AND costs exactly one scouting cycle.
        assert_eq!(mvp.ledger().scouting_ops(), 1);
    }

    #[test]
    fn kmer_index_rejects_bad_bases_as_errors() {
        let err = kmer::ShiftedBaseIndex::build(b"ACGN", 2).expect_err("N is not a base");
        match err {
            MvpError::BadInput { reason } => {
                assert!(reason.contains("non-ACGT base 'N' at position 3"), "got: {reason}");
            }
            other => panic!("expected BadInput, got {other:?}"),
        }
        // Degenerate shapes are errors too, not aborts.
        assert!(matches!(kmer::ShiftedBaseIndex::build(b"ACG", 0), Err(MvpError::BadInput { .. })));
        assert!(matches!(kmer::ShiftedBaseIndex::build(b"AC", 3), Err(MvpError::BadInput { .. })));
    }

    #[test]
    fn kmer_lookup_rejects_bad_queries_as_errors() {
        let index = kmer::ShiftedBaseIndex::build(b"ACGTACGT", 4).expect("clean genome");
        let mut mvp = MvpSimulator::new(8, index.positions());
        assert!(matches!(index.find_reference(b"ACG"), Err(MvpError::BadInput { .. })));
        assert!(matches!(index.find_mvp(&mut mvp, b"ACGTT"), Err(MvpError::BadInput { .. })));
        assert!(matches!(index.find_reference(b"ACNT"), Err(MvpError::BadInput { .. })));
        assert!(matches!(index.find_mvp(&mut mvp, b"ACNT"), Err(MvpError::BadInput { .. })));
    }

    #[test]
    fn bfs_levels_match_reference_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(37);
        for trial in 0..5 {
            let n = 64;
            let mut g = bfs::Graph::new(n).expect("nonempty");
            for _ in 0..300 {
                g.add_edge(rng.gen_range(0..n), rng.gen_range(0..n)).expect("in range");
            }
            let mut mvp = MvpSimulator::new(16, n);
            let fast = g.bfs_mvp(&mut mvp, 0, 8).expect("mvp bfs");
            let slow = g.bfs_reference(0);
            assert_eq!(fast, slow, "trial {trial}");
        }
    }

    #[test]
    fn bfs_on_a_path_visits_levels_in_order() {
        let mut g = bfs::Graph::new(5).expect("nonempty");
        for i in 0..4 {
            g.add_edge(i, i + 1).expect("in range");
        }
        let mut mvp = MvpSimulator::new(8, 5);
        // A path frontier has single vertices: exercises the chunk == 1
        // host path.
        let levels = g.bfs_mvp(&mut mvp, 0, 4).expect("bfs");
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_rejects_bad_arguments_as_errors() {
        let g = bfs::Graph::new(4).expect("nonempty");
        let mut mvp = MvpSimulator::new(8, 4);
        assert!(matches!(g.bfs_mvp(&mut mvp, 9, 4), Err(MvpError::BadInput { .. })));
        assert!(matches!(g.bfs_mvp(&mut mvp, 0, 1), Err(MvpError::BadInput { .. })));
    }

    #[test]
    fn bitmap_table_validates_its_inputs_as_errors() {
        assert!(matches!(
            bitmap::BitmapTable::new(vec![0, 1], vec![0], 4),
            Err(MvpError::BadInput { .. })
        ));
        assert!(matches!(
            bitmap::BitmapTable::new(vec![], vec![], 4),
            Err(MvpError::BadInput { .. })
        ));
        assert!(matches!(
            bitmap::BitmapTable::new(vec![5], vec![0], 4),
            Err(MvpError::BadInput { .. })
        ));
        // Degenerate graphs and edges are errors too, not aborts.
        assert!(matches!(bfs::Graph::new(0), Err(MvpError::BadInput { .. })));
        let mut g = bfs::Graph::new(2).expect("nonempty");
        assert!(matches!(g.add_edge(0, 2), Err(MvpError::BadInput { .. })));
    }
}
