//! Streaming temporal correlation detection (Sebastian et al.,
//! arXiv:1706.00511) as an MVP workload.
//!
//! N binary event streams are mapped onto crossbar rows one time window
//! at a time. For every window the MVP accumulates, *in memory*, each
//! stream's correlation statistic
//!
//! ```text
//! score(i) = Σ_t  x_i(t) · A(t)        A(t) = Σ_j x_j(t)
//! ```
//!
//! — the number of co-activations of stream `i` with the whole
//! ensemble, the momentum the phase-change devices of the paper
//! integrate physically. The column-parallel part is pure scouting
//! logic: the instantaneous activity count `A(t)` is built as
//! ⌈log₂(N+1)⌉ bit planes by a ripple-carry population count across the
//! stream rows (XOR/AND steps, one stream at a time), then each
//! stream's contribution is masked out with one scouting `AND` per
//! plane and read back, so the host only pops counters — it never sees
//! the raw time series twice.
//!
//! Correlated streams co-activate more often than independence allows,
//! so their scores exceed the uncorrelated expectation; thresholding
//! against that baseline recovers the correlated subset. The exact
//! software reference ([`correlation_reference`]) computes the same
//! statistic scalar-wise, so every backend — monolithic, banked,
//! sharded — can be pinned bit for bit on seeded synthetic data with
//! planted correlated groups ([`EventStreams::synthesize`]).
//!
//! Sharding partitions the *streams* ([`ShardMap`](crate::ShardMap)):
//! every shard replays the full window to rebuild the global activity
//! planes (the statistic couples all streams), but masks and reads only
//! its own stream range, so per-shard score deltas concatenate to the
//! unsharded answer exactly.

use crate::{Instruction, MvpError, MvpSimulator};
use memcim_bits::BitVec;
use memcim_crossbar::CrossbarBackend;
use std::ops::Range;

/// Fewest streams that make a correlation question well-posed.
pub const MIN_STREAMS: usize = 2;

/// Bit planes needed to hold an activity count in `0..=streams`.
pub fn planes_for(streams: usize) -> usize {
    (usize::BITS - streams.leading_zeros()) as usize
}

/// Crossbar rows a correlation feed program needs: one stream-staging
/// row, two ping-pong banks of activity planes, two carry rows and one
/// mask destination.
pub fn rows_needed(streams: usize) -> usize {
    4 + 2 * planes_for(streams)
}

/// Parameters of a synthetic event corpus with planted correlated
/// groups.
///
/// Uncorrelated streams fire i.i.d. Bernoulli(`rate`) per time step.
/// Each planted group shares a hidden Bernoulli(`rate`) process; a
/// member copies it with probability `strength` and otherwise fires an
/// independent Bernoulli(`rate`) — so every stream has the *same
/// marginal rate* and only temporal correlation separates members from
/// the background.
#[derive(Debug, Clone)]
pub struct CorrelationConfig {
    /// Total number of event streams.
    pub streams: usize,
    /// Total time steps to synthesize.
    pub steps: usize,
    /// Marginal event rate `p` of every stream, in `(0, 1)`.
    pub rate: f64,
    /// Correlation strength `c` of planted groups, in `[0, 1]`.
    pub strength: f64,
    /// Planted groups as disjoint sets of stream indices (each ≥ 2).
    pub groups: Vec<Vec<usize>>,
}

impl CorrelationConfig {
    fn validate(&self) -> Result<(), MvpError> {
        if self.streams < MIN_STREAMS {
            return Err(MvpError::BadInput {
                reason: format!("correlation needs at least {MIN_STREAMS} streams"),
            });
        }
        if self.steps == 0 {
            return Err(MvpError::BadInput { reason: "corpus needs at least one step".into() });
        }
        if !(self.rate > 0.0 && self.rate < 1.0) {
            return Err(MvpError::BadInput {
                reason: format!("rate must lie in (0, 1), got {}", self.rate),
            });
        }
        if !(0.0..=1.0).contains(&self.strength) {
            return Err(MvpError::BadInput {
                reason: format!("strength must lie in [0, 1], got {}", self.strength),
            });
        }
        let mut member = vec![false; self.streams];
        for group in &self.groups {
            if group.len() < 2 {
                return Err(MvpError::BadInput {
                    reason: "a correlated group needs at least two members".into(),
                });
            }
            for &i in group {
                if i >= self.streams {
                    return Err(MvpError::BadInput {
                        reason: format!("group member {i} escapes the {} streams", self.streams),
                    });
                }
                if std::mem::replace(&mut member[i], true) {
                    return Err(MvpError::BadInput {
                        reason: format!("stream {i} appears in two groups"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Expected score of an *uncorrelated* stream over the full corpus:
    /// `T·p·(1 + (N−1)·p)`.
    pub fn baseline(&self) -> f64 {
        let (t, n, p) = (self.steps as f64, self.streams as f64, self.rate);
        t * p * (1.0 + (n - 1.0) * p)
    }

    /// Expected score *excess* of a member of a planted group of `m`
    /// streams: `(m−1)·T·c²·p·(1−p)` above [`baseline`](Self::baseline).
    pub fn excess(&self, m: usize) -> f64 {
        let (t, p, c) = (self.steps as f64, self.rate, self.strength);
        (m as f64 - 1.0) * t * c * c * p * (1.0 - p)
    }

    /// The detection threshold halfway between the uncorrelated
    /// baseline and the weakest planted member's expectation.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] when the configuration is
    /// malformed or plants no group to threshold against.
    pub fn threshold(&self) -> Result<u64, MvpError> {
        self.validate()?;
        let smallest = self
            .groups
            .iter()
            .map(Vec::len)
            .min()
            .ok_or_else(|| MvpError::BadInput { reason: "no planted group".into() })?;
        Ok((self.baseline() + self.excess(smallest) / 2.0).round() as u64)
    }
}

/// A deterministic splitmix64 generator — the corpus must reproduce
/// bit-identically from a seed on every substrate and host.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// A seeded synthetic event corpus: per-stream activity bitmaps over
/// time, with the planted groups remembered for test introspection.
#[derive(Debug, Clone)]
pub struct EventStreams {
    data: Vec<BitVec>,
    steps: usize,
    groups: Vec<Vec<usize>>,
}

impl EventStreams {
    /// Draws a corpus from `cfg` with the generative model described on
    /// [`CorrelationConfig`]. The same `(cfg, seed)` pair always yields
    /// the same bits.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] for a malformed configuration.
    pub fn synthesize(cfg: &CorrelationConfig, seed: u64) -> Result<Self, MvpError> {
        cfg.validate()?;
        let mut group_of = vec![usize::MAX; cfg.streams];
        for (g, group) in cfg.groups.iter().enumerate() {
            for &i in group {
                group_of[i] = g;
            }
        }
        let mut rng = SplitMix64(seed);
        let mut data = vec![BitVec::new(cfg.steps); cfg.streams];
        let mut hidden = vec![false; cfg.groups.len()];
        for t in 0..cfg.steps {
            for z in &mut hidden {
                *z = rng.chance(cfg.rate);
            }
            for i in 0..cfg.streams {
                let copies = rng.chance(cfg.strength);
                let background = rng.chance(cfg.rate);
                let fires = match group_of[i] {
                    usize::MAX => background,
                    g if copies => hidden[g],
                    _ => background,
                };
                if fires {
                    data[i].set(t, true);
                }
            }
        }
        Ok(Self { data, steps: cfg.steps, groups: cfg.groups.clone() })
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.data.len()
    }

    /// Total time steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The full per-stream activity bitmaps.
    pub fn data(&self) -> &[BitVec] {
        &self.data
    }

    /// The planted groups.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The time slice `range` of every stream — one feedable window.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] for an empty or escaping range.
    pub fn window(&self, range: Range<usize>) -> Result<Vec<BitVec>, MvpError> {
        if range.start >= range.end || range.end > self.steps {
            return Err(MvpError::BadInput {
                reason: format!(
                    "window {}..{} escapes the {}-step corpus",
                    range.start, range.end, self.steps
                ),
            });
        }
        let len = range.len();
        Ok(self
            .data
            .iter()
            .map(|stream| {
                let mut out = BitVec::new(len);
                stream.extract_range_into(range.start, len, &mut out);
                out
            })
            .collect())
    }

    /// The expected correlated set: one bit per stream, set for every
    /// planted group member.
    pub fn planted(&self) -> BitVec {
        let mut out = BitVec::new(self.streams());
        for group in &self.groups {
            for &i in group {
                out.set(i, true);
            }
        }
        out
    }
}

/// Exact software reference: the per-stream correlation scores
/// `score(i) = Σ_t x_i(t)·A(t)` over the given activity bitmaps.
///
/// # Errors
///
/// Returns [`MvpError::BadInput`] for fewer than [`MIN_STREAMS`]
/// streams or streams of unequal length.
pub fn correlation_reference(data: &[BitVec]) -> Result<Vec<u64>, MvpError> {
    if data.len() < MIN_STREAMS {
        return Err(MvpError::BadInput {
            reason: format!("correlation needs at least {MIN_STREAMS} streams"),
        });
    }
    let steps = data[0].len();
    if data.iter().any(|s| s.len() != steps) {
        return Err(MvpError::BadInput { reason: "streams must cover the same steps".into() });
    }
    let mut scores = vec![0u64; data.len()];
    for t in 0..steps {
        let active = data.iter().filter(|s| s.get(t)).count() as u64;
        for (score, stream) in scores.iter_mut().zip(data) {
            if stream.get(t) {
                *score += active;
            }
        }
    }
    Ok(scores)
}

/// The streaming detector state: per-stream scores accumulated window
/// by window, plus the events-processed counter the serve layer bills
/// from.
///
/// Windows partition time and `A(t)` depends only on its own column, so
/// feeding a corpus in any chunking yields the same final scores as one
/// shot — the property the serve layer's chunked-feed tests pin.
#[derive(Debug, Clone)]
pub struct CorrelationAccumulator {
    streams: usize,
    planes: usize,
    scores: Vec<u64>,
    events: u64,
}

impl CorrelationAccumulator {
    /// A fresh accumulator over `streams` event streams.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] for fewer than [`MIN_STREAMS`].
    pub fn new(streams: usize) -> Result<Self, MvpError> {
        if streams < MIN_STREAMS {
            return Err(MvpError::BadInput {
                reason: format!("correlation needs at least {MIN_STREAMS} streams"),
            });
        }
        Ok(Self { streams, planes: planes_for(streams), scores: vec![0; streams], events: 0 })
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Activity bit planes per window (⌈log₂(streams+1)⌉).
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// The scores accumulated so far.
    pub fn scores(&self) -> &[u64] {
        &self.scores
    }

    /// Stream-slots processed so far (`streams × window width`, summed
    /// over fed windows) — the billing unit.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Forgets all accumulated state (scores and events).
    pub fn reset(&mut self) {
        self.scores.fill(0);
        self.events = 0;
    }

    /// The monolithic feed program for one window: population-count
    /// phase over all streams, then mask-and-read phase for all
    /// streams. Equivalent to
    /// [`shard_feed_plan`](Self::shard_feed_plan) over the full range.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] for a malformed window or one
    /// that does not fit `width` columns.
    pub fn feed_plan(&self, window: &[BitVec], width: usize) -> Result<Vec<Instruction>, MvpError> {
        self.shard_feed_plan(window, 0..self.streams, width)
    }

    /// The shard-local feed program: rebuilds the *global* activity
    /// planes from the full window, but masks and reads only the
    /// streams in `range`. Applying every shard of a
    /// [`ShardMap`](crate::ShardMap) over the streams reproduces the
    /// monolithic scores exactly.
    ///
    /// The program uses [`rows_needed`]`(streams)` rows and emits
    /// `range.len() × planes` `Read`s, in `(stream, plane)` order.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] when the window is empty, ragged,
    /// wider than `width`, or `range` escapes the streams.
    pub fn shard_feed_plan(
        &self,
        window: &[BitVec],
        range: Range<usize>,
        width: usize,
    ) -> Result<Vec<Instruction>, MvpError> {
        let w = self.check_window(window, width)?;
        if range.start >= range.end || range.end > self.streams {
            return Err(MvpError::BadInput {
                reason: format!(
                    "scored range {}..{} escapes the {} streams",
                    range.start, range.end, self.streams
                ),
            });
        }
        let planes = self.planes;
        let acc = |bank: usize, b: usize| 1 + bank * planes + b;
        let r_x = 0;
        let carries = [1 + 2 * planes, 2 + 2 * planes];
        let r_mask = 3 + 2 * planes;
        let mut program = Vec::new();
        // Phase 1: ripple-carry popcount of stream activity into
        // ping-pong plane banks, one stream row at a time.
        for b in 0..planes {
            program.push(Instruction::Store { row: acc(0, b), data: BitVec::new(width) });
        }
        let mut cur = 0;
        for stream in window {
            program.push(Instruction::Store {
                row: r_x,
                data: crate::sharded::slice_to_width(stream, 0..w, width)?,
            });
            let mut carry = r_x;
            for b in 0..planes {
                program.push(Instruction::Xor { a: acc(cur, b), b: carry, dst: acc(1 - cur, b) });
                program
                    .push(Instruction::And { srcs: vec![acc(cur, b), carry], dst: carries[b % 2] });
                carry = carries[b % 2];
            }
            cur = 1 - cur;
        }
        // Phase 2: mask each scored stream against every activity plane
        // and read the co-activation columns back.
        for i in range {
            program.push(Instruction::Store {
                row: r_x,
                data: crate::sharded::slice_to_width(&window[i], 0..w, width)?,
            });
            for b in 0..planes {
                program.push(Instruction::And { srcs: vec![r_x, acc(cur, b)], dst: r_mask });
                program.push(Instruction::Read { row: r_mask });
            }
        }
        Ok(program)
    }

    /// Folds the `Read` outputs of a feed program for stream `range`
    /// into the scores: `Δscore(i) = Σ_b 2^b · popcount(outputs[i][b])`.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] when `range` escapes the streams
    /// or the output count is not `range.len() × planes`.
    pub fn apply_reads(&mut self, range: Range<usize>, outputs: &[BitVec]) -> Result<(), MvpError> {
        if range.start >= range.end || range.end > self.streams {
            return Err(MvpError::BadInput {
                reason: format!(
                    "scored range {}..{} escapes the {} streams",
                    range.start, range.end, self.streams
                ),
            });
        }
        if outputs.len() != range.len() * self.planes {
            return Err(MvpError::BadInput {
                reason: format!(
                    "{} outputs do not cover {} streams × {} planes",
                    outputs.len(),
                    range.len(),
                    self.planes
                ),
            });
        }
        for (k, i) in range.enumerate() {
            for b in 0..self.planes {
                self.scores[i] += (1u64 << b) * outputs[k * self.planes + b].count_ones() as u64;
            }
        }
        Ok(())
    }

    /// Records a fed window of `window_width` steps in the billing
    /// counter (`streams × width` stream-slots). Call once per window,
    /// after every shard's reads were applied.
    pub fn note_window(&mut self, window_width: usize) {
        self.events += (self.streams * window_width) as u64;
    }

    /// Convenience: plans, executes and applies one window on the given
    /// simulator (monolithic or banked), updating scores and events.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] when the engine is too small for
    /// the stream count and propagates execution errors.
    pub fn feed_mvp<B: CrossbarBackend>(
        &mut self,
        mvp: &mut MvpSimulator<B>,
        window: &[BitVec],
    ) -> Result<(), MvpError> {
        if mvp.rows() < rows_needed(self.streams) {
            return Err(MvpError::BadInput {
                reason: format!(
                    "{} streams need {} rows, engine has {}",
                    self.streams,
                    rows_needed(self.streams),
                    mvp.rows()
                ),
            });
        }
        let w = self.check_window(window, mvp.width())?;
        let outputs = mvp.run_program(&self.feed_plan(window, mvp.width())?)?;
        self.apply_reads(0..self.streams, &outputs)?;
        self.note_window(w);
        Ok(())
    }

    /// The streams whose accumulated score strictly exceeds
    /// `threshold`, as one bit per stream.
    pub fn detect(&self, threshold: u64) -> BitVec {
        let mut out = BitVec::new(self.streams);
        for (i, &score) in self.scores.iter().enumerate() {
            if score > threshold {
                out.set(i, true);
            }
        }
        out
    }

    fn check_window(&self, window: &[BitVec], width: usize) -> Result<usize, MvpError> {
        if window.len() != self.streams {
            return Err(MvpError::BadInput {
                reason: format!(
                    "window carries {} streams, session expects {}",
                    window.len(),
                    self.streams
                ),
            });
        }
        let w = window[0].len();
        if w == 0 {
            return Err(MvpError::BadInput {
                reason: "window must cover at least one step".into(),
            });
        }
        if window.iter().any(|s| s.len() != w) {
            return Err(MvpError::BadInput {
                reason: "every stream must cover the same window steps".into(),
            });
        }
        if w > width {
            return Err(MvpError::BadInput {
                reason: format!("{w}-step window does not fit a {width}-column engine"),
            });
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardMap;

    fn corpus() -> (CorrelationConfig, EventStreams) {
        let cfg = CorrelationConfig {
            streams: 24,
            steps: 768,
            rate: 0.25,
            strength: 0.95,
            groups: vec![vec![2, 7, 11, 19, 22], vec![4, 5, 9, 16, 21]],
        };
        let streams = EventStreams::synthesize(&cfg, 2018).expect("well-formed");
        (cfg, streams)
    }

    #[test]
    fn accumulator_matches_reference_monolithic_and_banked() {
        let (_, streams) = corpus();
        let expected = correlation_reference(streams.data()).expect("reference");
        let mut mono = MvpSimulator::new(rows_needed(24), 128);
        let mut banked = MvpSimulator::banked(rows_needed(24), 4, 32);
        let mut acc_m = CorrelationAccumulator::new(24).expect("streams");
        let mut acc_b = CorrelationAccumulator::new(24).expect("streams");
        for start in (0..streams.steps()).step_by(128) {
            let window = streams.window(start..(start + 128).min(streams.steps())).expect("slice");
            acc_m.feed_mvp(&mut mono, &window).expect("mono feed");
            acc_b.feed_mvp(&mut banked, &window).expect("banked feed");
        }
        assert_eq!(acc_m.scores(), &expected[..]);
        assert_eq!(acc_b.scores(), &expected[..]);
        assert_eq!(acc_m.events(), (24 * 768) as u64);
        assert!(mono.ledger().scouting_ops() > 0, "work ran in memory");
    }

    #[test]
    fn chunked_feeds_equal_one_shot() {
        let (_, streams) = corpus();
        let mut one_shot = CorrelationAccumulator::new(24).expect("streams");
        let mut engine = MvpSimulator::new(rows_needed(24), 768);
        one_shot.feed_mvp(&mut engine, streams.data()).expect("one shot");
        let mut chunked = CorrelationAccumulator::new(24).expect("streams");
        let mut engine2 = MvpSimulator::new(rows_needed(24), 768);
        for bounds in [[0usize, 17, 64, 768], [0, 300, 500, 768]] {
            chunked.reset();
            for pair in bounds.windows(2) {
                let window = streams.window(pair[0]..pair[1]).expect("slice");
                chunked.feed_mvp(&mut engine2, &window).expect("chunk feed");
            }
            assert_eq!(chunked.scores(), one_shot.scores());
        }
    }

    #[test]
    fn sharded_plans_concatenate_to_the_monolithic_scores() {
        let (_, streams) = corpus();
        let expected = correlation_reference(streams.data()).expect("reference");
        let window = streams.window(0..streams.steps()).expect("full window");
        for shards in [1usize, 2, 3, 4] {
            let map = ShardMap::new(24, shards).expect("geometry");
            let mut acc = CorrelationAccumulator::new(24).expect("streams");
            for range in map.ranges() {
                let plan = acc.shard_feed_plan(&window, range.clone(), 800).expect("plan");
                let mut engine = MvpSimulator::new(rows_needed(24), 800);
                let outputs = engine.run_program(&plan).expect("shard runs");
                acc.apply_reads(range, &outputs).expect("apply");
            }
            acc.note_window(streams.steps());
            assert_eq!(acc.scores(), &expected[..], "{shards} shards");
        }
    }

    #[test]
    fn planted_groups_are_recovered_and_nothing_else() {
        let (cfg, streams) = corpus();
        let threshold = cfg.threshold().expect("groups planted");
        let mut acc = CorrelationAccumulator::new(24).expect("streams");
        let mut engine = MvpSimulator::banked(rows_needed(24), 4, 192);
        acc.feed_mvp(&mut engine, streams.data()).expect("feed");
        assert_eq!(acc.detect(threshold), streams.planted());
    }

    #[test]
    fn synthesis_is_deterministic_and_marginal_rates_hold() {
        let (cfg, streams) = corpus();
        let again = EventStreams::synthesize(&cfg, 2018).expect("well-formed");
        assert_eq!(streams.data(), again.data());
        let other_seed = EventStreams::synthesize(&cfg, 2019).expect("well-formed");
        assert_ne!(streams.data(), other_seed.data());
        // Every stream — member or not — fires near the marginal rate.
        for (i, stream) in streams.data().iter().enumerate() {
            let rate = stream.count_ones() as f64 / cfg.steps as f64;
            assert!((rate - cfg.rate).abs() < 0.12, "stream {i} fires at {rate}");
        }
    }

    #[test]
    fn malformed_inputs_are_errors_not_aborts() {
        let cfg = CorrelationConfig {
            streams: 8,
            steps: 16,
            rate: 0.3,
            strength: 0.9,
            groups: vec![vec![1, 2]],
        };
        for bad in [
            CorrelationConfig { streams: 1, ..cfg.clone() },
            CorrelationConfig { steps: 0, ..cfg.clone() },
            CorrelationConfig { rate: 1.5, ..cfg.clone() },
            CorrelationConfig { strength: -0.1, ..cfg.clone() },
            CorrelationConfig { groups: vec![vec![3]], ..cfg.clone() },
            CorrelationConfig { groups: vec![vec![1, 99]], ..cfg.clone() },
            CorrelationConfig { groups: vec![vec![1, 2], vec![2, 3]], ..cfg.clone() },
        ] {
            assert!(matches!(EventStreams::synthesize(&bad, 1), Err(MvpError::BadInput { .. })));
        }
        let streams = EventStreams::synthesize(&cfg, 1).expect("well-formed");
        assert!(matches!(streams.window(4..4), Err(MvpError::BadInput { .. })));
        assert!(matches!(streams.window(10..20), Err(MvpError::BadInput { .. })));
        assert!(matches!(CorrelationAccumulator::new(1), Err(MvpError::BadInput { .. })));
        let mut acc = CorrelationAccumulator::new(8).expect("streams");
        let window = streams.window(0..16).expect("slice");
        assert!(matches!(acc.feed_plan(&window[..4], 64), Err(MvpError::BadInput { .. })));
        assert!(matches!(acc.feed_plan(&window, 8), Err(MvpError::BadInput { .. })));
        #[allow(clippy::reversed_empty_ranges)] // deliberately malformed: must be refused
        let backwards = 5..3;
        assert!(matches!(
            acc.shard_feed_plan(&window, backwards, 64),
            Err(MvpError::BadInput { .. })
        ));
        assert!(matches!(acc.apply_reads(0..8, &[]), Err(MvpError::BadInput { .. })));
        let mut tiny = MvpSimulator::new(4, 64);
        assert!(matches!(acc.feed_mvp(&mut tiny, &window), Err(MvpError::BadInput { .. })));
        assert!(matches!(correlation_reference(&window[..1]), Err(MvpError::BadInput { .. })));
    }

    #[test]
    fn geometry_helpers_are_consistent() {
        assert_eq!(planes_for(2), 2);
        assert_eq!(planes_for(3), 2);
        assert_eq!(planes_for(4), 3);
        assert_eq!(planes_for(24), 5);
        assert_eq!(planes_for(255), 8);
        assert_eq!(rows_needed(24), 14);
        // The plan never escapes its declared row budget.
        let acc = CorrelationAccumulator::new(24).expect("streams");
        let window = vec![BitVec::new(32); 24];
        let plan = acc.feed_plan(&window, 64).expect("plan");
        let top = plan.iter().flat_map(Instruction::touched_rows).max().expect("nonempty");
        assert!(top < rows_needed(24), "row {top} escapes {}", rows_needed(24));
    }
}
