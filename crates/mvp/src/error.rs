//! Error type for MVP program execution.

use core::fmt;
use memcim_crossbar::CrossbarError;

/// Errors produced while executing an MVP program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MvpError {
    /// The underlying crossbar rejected an operation.
    Crossbar(CrossbarError),
    /// An instruction referenced a row outside the array.
    RowOutOfRange {
        /// The offending row.
        row: usize,
        /// Rows available.
        rows: usize,
    },
    /// An instruction's operand list was invalid.
    InvalidOperands {
        /// Which constraint failed.
        constraint: &'static str,
    },
    /// Workload input data was malformed (e.g. a non-ACGT genome base or
    /// a k-mer of the wrong length).
    BadInput {
        /// What was wrong with the input.
        reason: String,
    },
}

impl fmt::Display for MvpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvpError::Crossbar(e) => write!(f, "crossbar rejected the operation: {e}"),
            MvpError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} outside the {rows}-row array")
            }
            MvpError::InvalidOperands { constraint } => {
                write!(f, "invalid instruction operands: {constraint}")
            }
            MvpError::BadInput { reason } => write!(f, "bad workload input: {reason}"),
        }
    }
}

impl std::error::Error for MvpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MvpError::Crossbar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CrossbarError> for MvpError {
    fn from(e: CrossbarError) -> Self {
        MvpError::Crossbar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains_the_source() {
        use std::error::Error as _;
        let e = MvpError::Crossbar(CrossbarError::WidthMismatch { got: 3, expected: 4 });
        assert!(e.to_string().contains("crossbar"));
        assert!(e.source().is_some());
    }

    #[test]
    fn bad_input_carries_the_reason() {
        let e = MvpError::BadInput { reason: "non-ACGT base 'N' at position 3".into() };
        assert!(e.to_string().contains("non-ACGT base 'N' at position 3"));
    }
}
