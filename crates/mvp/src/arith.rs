//! In-memory vector arithmetic built from scouting logic.
//!
//! The paper's reference \[9\] (Du Nguyen et al., *"On the implementation
//! of computation-in-memory parallel adder"*, IEEE TVLSI 2017) is the
//! companion work the MVP's evaluation model leans on. This module
//! implements that capability on the functional simulator: **column-wise
//! parallel addition** of integer vectors stored as bit planes, using
//! only the OR/AND/XOR macro-instructions scouting logic provides.
//!
//! Layout: a `width`-lane vector of `w`-bit integers occupies `w` crossbar
//! rows (bit planes, LSB first); lane `j` is the integer whose bit `i`
//! is row `i`, column `j`. A ripple-carry step per bit position computes
//! all `width` lanes simultaneously:
//!
//! ```text
//! t    = aᵢ XOR bᵢ            (1 scouting cycle)
//! sᵢ   = t XOR c              (1)
//! g    = aᵢ AND bᵢ            (1)
//! p    = c AND t              (1)
//! c'   = g OR p               (1)
//! ```
//!
//! — five in-memory cycles per bit, independent of the vector width.

use crate::{Instruction, MvpError, MvpSimulator};
use memcim_bits::BitVec;

/// Scratch/working rows used by [`add_bit_planes`]: the adder needs 8
/// free rows on top of the data planes.
const WORK_ROWS: usize = 8;

/// Adds two bit-plane-encoded integer vectors inside the MVP,
/// returning the `w + 1` result planes (including the final carry).
///
/// `a` and `b` must hold the same number of planes (`w ≥ 1`) of the same
/// width. The simulator needs at least 8 rows and
/// `a\[0\].len()` columns.
///
/// # Errors
///
/// Returns [`MvpError::BadInput`] if the plane counts or widths
/// disagree, `a` is empty, or the simulator has fewer than 8 rows, and
/// propagates [`MvpError`] from program execution (e.g. a simulator
/// narrower than the planes).
pub fn add_bit_planes(
    mvp: &mut MvpSimulator,
    a: &[BitVec],
    b: &[BitVec],
) -> Result<Vec<BitVec>, MvpError> {
    if a.is_empty() {
        return Err(MvpError::BadInput { reason: "need at least one bit plane".into() });
    }
    if a.len() != b.len() {
        return Err(MvpError::BadInput {
            reason: format!("operand plane counts must match: {} vs {}", a.len(), b.len()),
        });
    }
    let width = a[0].len();
    if !a.iter().chain(b).all(|p| p.len() == width) {
        return Err(MvpError::BadInput {
            reason: format!("all planes must share one width ({width} columns)"),
        });
    }
    if mvp.rows() < WORK_ROWS {
        return Err(MvpError::BadInput {
            reason: format!("adder needs at least {WORK_ROWS} rows, simulator has {}", mvp.rows()),
        });
    }

    // Row roles.
    const RA: usize = 0; // aᵢ
    const RB: usize = 1; // bᵢ
    const RT: usize = 2; // t = aᵢ ^ bᵢ
    const RS: usize = 3; // sᵢ
    const RG: usize = 4; // g = aᵢ & bᵢ
    const RP: usize = 5; // p = c & t
    const RC: [usize; 2] = [6, 7]; // alternating carry rows

    let mut sums = Vec::with_capacity(a.len() + 1);
    // carry-in = 0.
    mvp.run_program(&[Instruction::Store { row: RC[0], data: BitVec::new(width) }])?;

    for (i, (plane_a, plane_b)) in a.iter().zip(b).enumerate() {
        let c_in = RC[i % 2];
        let c_out = RC[(i + 1) % 2];
        let mut outputs = mvp.run_program(&[
            Instruction::Store { row: RA, data: plane_a.clone() },
            Instruction::Store { row: RB, data: plane_b.clone() },
            Instruction::Xor { a: RA, b: RB, dst: RT },
            Instruction::Xor { a: RT, b: c_in, dst: RS },
            Instruction::And { srcs: vec![RA, RB], dst: RG },
            Instruction::And { srcs: vec![c_in, RT], dst: RP },
            Instruction::Or { srcs: vec![RG, RP], dst: c_out },
            Instruction::Read { row: RS },
        ])?;
        sums.push(outputs.pop().expect("read emits one vector"));
    }
    // Final carry plane.
    let mut outputs = mvp.run_program(&[Instruction::Read { row: RC[a.len() % 2] }])?;
    sums.push(outputs.pop().expect("read emits one vector"));
    Ok(sums)
}

/// Encodes a slice of integers as `w` bit planes (LSB first).
///
/// # Errors
///
/// Returns [`MvpError::BadInput`] if `w == 0`, `w > 64`, or any value
/// needs more than `w` bits.
pub fn to_bit_planes(values: &[u64], w: usize) -> Result<Vec<BitVec>, MvpError> {
    if !(1..=64).contains(&w) {
        return Err(MvpError::BadInput {
            reason: format!("plane count must be in 1..=64, got {w}"),
        });
    }
    if let Some(&v) = values.iter().find(|&&v| w < 64 && v >= (1u64 << w)) {
        return Err(MvpError::BadInput { reason: format!("value {v} exceeds {w} bits") });
    }
    Ok((0..w).map(|bit| values.iter().map(|&v| v >> bit & 1 == 1).collect()).collect())
}

/// Decodes bit planes (LSB first) back into integers.
///
/// # Errors
///
/// Returns [`MvpError::BadInput`] if the planes disagree in width or
/// exceed 64.
pub fn from_bit_planes(planes: &[BitVec]) -> Result<Vec<u64>, MvpError> {
    if planes.len() > 64 {
        return Err(MvpError::BadInput {
            reason: format!("at most 64 planes, got {}", planes.len()),
        });
    }
    let Some(first) = planes.first() else {
        return Ok(Vec::new());
    };
    let width = first.len();
    if !planes.iter().all(|p| p.len() == width) {
        return Err(MvpError::BadInput {
            reason: format!("plane widths must match ({width} columns)"),
        });
    }
    Ok((0..width)
        .map(|lane| {
            planes.iter().enumerate().map(|(bit, plane)| u64::from(plane.get(lane)) << bit).sum()
        })
        .collect())
}

/// Convenience: adds two integer vectors end to end (encode, in-memory
/// add, decode).
///
/// # Errors
///
/// Returns [`MvpError::BadInput`] on mismatched lengths or values
/// exceeding `w` bits (see [`to_bit_planes`]) and propagates
/// [`MvpError`] from the in-memory execution.
pub fn add_vectors(
    mvp: &mut MvpSimulator,
    a: &[u64],
    b: &[u64],
    w: usize,
) -> Result<Vec<u64>, MvpError> {
    if a.len() != b.len() {
        return Err(MvpError::BadInput {
            reason: format!("vector lengths must match: {} vs {}", a.len(), b.len()),
        });
    }
    let planes = add_bit_planes(mvp, &to_bit_planes(a, w)?, &to_bit_planes(b, w)?)?;
    from_bit_planes(&planes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_encoding_round_trips() {
        let values = [0u64, 1, 5, 255, 128, 77];
        let planes = to_bit_planes(&values, 8).expect("encodes");
        assert_eq!(planes.len(), 8);
        assert_eq!(from_bit_planes(&planes).expect("decodes"), values);
    }

    #[test]
    fn adds_small_vectors_exactly() {
        let mut mvp = MvpSimulator::new(8, 6);
        let a = [1u64, 2, 3, 200, 255, 0];
        let b = [1u64, 2, 4, 55, 255, 0];
        let sums = add_vectors(&mut mvp, &a, &b, 8).expect("adds");
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn carry_ripples_through_every_bit() {
        // 0xFF + 0x01 = 0x100: the worst-case ripple.
        let mut mvp = MvpSimulator::new(8, 1);
        let sums = add_vectors(&mut mvp, &[0xFF], &[0x01], 8).expect("adds");
        assert_eq!(sums, vec![0x100]);
    }

    #[test]
    fn cycle_count_is_five_per_bit_plus_setup() {
        let mut mvp = MvpSimulator::new(8, 16);
        let a: Vec<u64> = (0..16).collect();
        let b: Vec<u64> = (0..16).rev().collect();
        add_vectors(&mut mvp, &a, &b, 8).expect("adds");
        // 5 scouting ops per bit, 8 bits — width-independent.
        assert_eq!(mvp.ledger().scouting_ops(), 40);
    }

    #[test]
    fn sixteen_bit_lanes() {
        let mut mvp = MvpSimulator::new(8, 4);
        let a = [65_535u64, 12_345, 0, 40_000];
        let b = [1u64, 54_321, 0, 25_535];
        let sums = add_vectors(&mut mvp, &a, &b, 16).expect("adds");
        assert_eq!(sums, vec![65_536, 66_666, 0, 65_535]);
    }

    #[test]
    fn mismatched_planes_are_rejected_as_errors() {
        let mut mvp = MvpSimulator::new(8, 4);
        let a = to_bit_planes(&[1, 2, 3, 4], 4).expect("encodes");
        let b = to_bit_planes(&[1, 2, 3, 4], 5).expect("encodes");
        match add_bit_planes(&mut mvp, &a, &b) {
            Err(MvpError::BadInput { reason }) => {
                assert!(reason.contains("plane counts must match"), "got: {reason}");
            }
            other => panic!("expected BadInput, got {other:?}"),
        }
        assert!(matches!(add_bit_planes(&mut mvp, &[], &[]), Err(MvpError::BadInput { .. })));
        assert!(matches!(add_vectors(&mut mvp, &[1], &[1, 2], 4), Err(MvpError::BadInput { .. })));
        let mut small = MvpSimulator::new(4, 4);
        assert!(matches!(add_vectors(&mut small, &[1], &[2], 4), Err(MvpError::BadInput { .. })));
    }

    #[test]
    fn overflowing_values_are_rejected_at_encode() {
        match to_bit_planes(&[9], 3) {
            Err(MvpError::BadInput { reason }) => {
                assert!(reason.contains("exceeds 3 bits"), "got: {reason}");
            }
            other => panic!("expected BadInput, got {other:?}"),
        }
        assert!(matches!(to_bit_planes(&[1], 0), Err(MvpError::BadInput { .. })));
        assert!(matches!(to_bit_planes(&[1], 65), Err(MvpError::BadInput { .. })));
        let uneven = [memcim_bits::BitVec::new(4), memcim_bits::BitVec::new(5)];
        assert!(matches!(from_bit_planes(&uneven), Err(MvpError::BadInput { .. })));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The in-memory adder equals u64 addition for random vectors.
        #[test]
        fn adder_matches_scalar_addition(
            pairs in proptest::collection::vec((0u64..1 << 12, 0u64..1 << 12), 1..24),
        ) {
            let a: Vec<u64> = pairs.iter().map(|&(x, _)| x).collect();
            let b: Vec<u64> = pairs.iter().map(|&(_, y)| y).collect();
            let mut mvp = MvpSimulator::new(8, a.len());
            let sums = add_vectors(&mut mvp, &a, &b, 12).expect("adds");
            let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
            prop_assert_eq!(sums, expect);
        }
    }
}
