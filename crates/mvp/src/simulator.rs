//! The functional MVP: a scouting-logic crossbar driven by macro-instructions.

use crate::{Instruction, MvpError};
use memcim_bits::BitVec;
use memcim_crossbar::{BankedCrossbar, Crossbar, CrossbarBackend, OpLedger, ScoutingKind};

/// A functional Memristive Vector Processor: host-visible rows of a
/// scouting-logic crossbar, executing [`Instruction`] programs.
///
/// The simulator is generic over its storage substrate: any
/// [`CrossbarBackend`] — a monolithic [`Crossbar`] (the default) or a
/// [`BankedCrossbar`] that stripes the vector width over parallel
/// subarrays — executes the same programs bit-identically; only the cost
/// accounting differs (banked: energy sums over banks, wall clock is the
/// slowest bank).
///
/// Results of `Read` instructions are returned in program order; every
/// in-memory operation is costed through the backend's [`OpLedger`].
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct MvpSimulator<B: CrossbarBackend = Crossbar> {
    xbar: B,
}

impl MvpSimulator<Crossbar> {
    /// Creates an MVP over a fresh monolithic RRAM crossbar of the given
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { xbar: Crossbar::rram(rows, cols) }
    }

    /// Wraps an existing (possibly variability/endurance-configured)
    /// crossbar.
    pub fn with_crossbar(xbar: Crossbar) -> Self {
        Self { xbar }
    }
}

impl MvpSimulator<BankedCrossbar> {
    /// Creates an MVP whose vector width is striped over `bank_count`
    /// parallel RRAM banks of `bank_cols` columns each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    ///
    /// # Examples
    ///
    /// Programs run bit-identically on banked and monolithic substrates;
    /// only the cost accounting differs:
    ///
    /// ```
    /// use memcim_bits::BitVec;
    /// use memcim_mvp::{Instruction, MvpSimulator};
    ///
    /// # fn main() -> Result<(), memcim_mvp::MvpError> {
    /// let mut banked = MvpSimulator::banked(8, 4, 32); // 4 banks × 32 cols
    /// assert_eq!(banked.width(), 128);
    /// let program = vec![
    ///     Instruction::Store { row: 0, data: BitVec::from_indices(128, &[31, 32, 100]) },
    ///     Instruction::Store { row: 1, data: BitVec::from_indices(128, &[32, 100, 127]) },
    ///     Instruction::And { srcs: vec![0, 1], dst: 2 },
    ///     Instruction::Read { row: 2 },
    /// ];
    /// let out = banked.run_program(&program)?;
    /// assert_eq!(out[0].ones().collect::<Vec<_>>(), vec![32, 100]);
    /// // Every bank executed the AND in the same memory cycle.
    /// assert_eq!(banked.ledger().scouting_ops(), 4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn banked(rows: usize, bank_count: usize, bank_cols: usize) -> Self {
        Self { xbar: BankedCrossbar::rram(rows, bank_count, bank_cols) }
    }
}

impl<B: CrossbarBackend> MvpSimulator<B> {
    /// Wraps any crossbar substrate.
    pub fn with_backend(xbar: B) -> Self {
        Self { xbar }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.xbar.rows()
    }

    /// Vector width (columns).
    pub fn width(&self) -> usize {
        self.xbar.cols()
    }

    /// The accumulated cost totals. On a banked substrate energy/ops sum
    /// over banks while busy time is the wall-clock maximum over banks.
    pub fn ledger(&self) -> OpLedger {
        self.xbar.ledger_totals()
    }

    /// Borrows the underlying substrate (fault injection, inspection).
    pub fn crossbar_mut(&mut self) -> &mut B {
        &mut self.xbar
    }

    /// Executes a program, returning the outputs of `Read` instructions
    /// in order.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::RowOutOfRange`] / [`MvpError::InvalidOperands`]
    /// for malformed instructions and propagates crossbar failures.
    pub fn run_program(&mut self, program: &[Instruction]) -> Result<Vec<BitVec>, MvpError> {
        let mut outputs = Vec::new();
        for instr in program {
            self.check_rows(instr)?;
            match instr {
                Instruction::Store { row, data } => {
                    self.xbar.program_row(*row, data)?;
                }
                Instruction::Or { srcs, dst } => {
                    self.validate_sources(srcs, *dst)?;
                    self.xbar.scouting_write(ScoutingKind::Or, srcs, *dst)?;
                }
                Instruction::And { srcs, dst } => {
                    self.validate_sources(srcs, *dst)?;
                    self.xbar.scouting_write(ScoutingKind::And, srcs, *dst)?;
                }
                Instruction::Xor { a, b, dst } => {
                    if a == b {
                        return Err(MvpError::InvalidOperands {
                            constraint: "xor operands must be distinct rows",
                        });
                    }
                    self.validate_sources(&[*a, *b], *dst)?;
                    self.xbar.scouting_write(ScoutingKind::Xor, &[*a, *b], *dst)?;
                }
                Instruction::Read { row } => {
                    outputs.push(self.xbar.read_row(*row)?);
                }
            }
        }
        Ok(outputs)
    }

    fn check_rows(&self, instr: &Instruction) -> Result<(), MvpError> {
        for row in instr.touched_rows() {
            if row >= self.xbar.rows() {
                return Err(MvpError::RowOutOfRange { row, rows: self.xbar.rows() });
            }
        }
        Ok(())
    }

    fn validate_sources(&self, srcs: &[usize], dst: usize) -> Result<(), MvpError> {
        if srcs.len() < 2 {
            return Err(MvpError::InvalidOperands {
                constraint: "scouting needs at least two source rows",
            });
        }
        if srcs.contains(&dst) {
            return Err(MvpError::InvalidOperands {
                constraint: "destination must differ from the sources",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(row: usize, bits: &[usize]) -> Instruction {
        Instruction::Store { row, data: BitVec::from_indices(128, bits) }
    }

    #[test]
    fn program_computes_compound_expression() {
        // out = (A AND B) OR (C XOR D)
        let mut mvp = MvpSimulator::new(16, 128);
        let program = vec![
            store(0, &[0, 1, 2, 3]),
            store(1, &[2, 3, 4]),
            store(2, &[5, 6]),
            store(3, &[6, 7]),
            Instruction::And { srcs: vec![0, 1], dst: 8 },
            Instruction::Xor { a: 2, b: 3, dst: 9 },
            Instruction::Or { srcs: vec![8, 9], dst: 10 },
            Instruction::Read { row: 10 },
        ];
        let out = mvp.run_program(&program).expect("runs");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ones().collect::<Vec<_>>(), vec![2, 3, 5, 7]);
    }

    #[test]
    fn banked_substrate_computes_the_same_expression() {
        let mut mono = MvpSimulator::new(16, 128);
        let mut banked = MvpSimulator::banked(16, 4, 32);
        assert_eq!(banked.width(), 128);
        let program = vec![
            store(0, &[0, 31, 32, 63, 64, 127]),
            store(1, &[31, 32, 100]),
            Instruction::And { srcs: vec![0, 1], dst: 2 },
            Instruction::Read { row: 2 },
        ];
        let out_mono = mono.run_program(&program).expect("mono");
        let out_banked = banked.run_program(&program).expect("banked");
        assert_eq!(out_mono, out_banked);
        assert_eq!(out_banked[0].ones().collect::<Vec<_>>(), vec![31, 32]);
        // Four banks each run the scouting op in the same cycle.
        assert_eq!(banked.ledger().scouting_ops(), 4);
        assert!(banked.ledger().busy_time().as_seconds() <= mono.ledger().busy_time().as_seconds());
    }

    #[test]
    fn ledger_shows_in_memory_execution() {
        let mut mvp = MvpSimulator::new(8, 128);
        let program = vec![
            store(0, &[0]),
            store(1, &[1]),
            Instruction::Or { srcs: vec![0, 1], dst: 2 },
            Instruction::Read { row: 2 },
        ];
        mvp.run_program(&program).expect("runs");
        assert_eq!(mvp.ledger().scouting_ops(), 1);
        assert_eq!(mvp.ledger().reads(), 1);
        assert!(mvp.ledger().programs() >= 3); // two stores + write-back
        assert!(mvp.ledger().energy().as_joules() > 0.0);
    }

    #[test]
    fn malformed_programs_are_rejected() {
        let mut mvp = MvpSimulator::new(8, 64);
        assert!(matches!(
            mvp.run_program(&[Instruction::Read { row: 99 }]),
            Err(MvpError::RowOutOfRange { row: 99, .. })
        ));
        assert!(matches!(
            mvp.run_program(&[Instruction::Or { srcs: vec![0], dst: 2 }]),
            Err(MvpError::InvalidOperands { .. })
        ));
        assert!(matches!(
            mvp.run_program(&[Instruction::And { srcs: vec![0, 1], dst: 1 }]),
            Err(MvpError::InvalidOperands { .. })
        ));
        assert!(matches!(
            mvp.run_program(&[Instruction::Xor { a: 3, b: 3, dst: 4 }]),
            Err(MvpError::InvalidOperands { .. })
        ));
    }

    #[test]
    fn multi_way_or_collapses_many_rows_in_one_op() {
        let mut mvp = MvpSimulator::new(16, 128);
        let mut program: Vec<Instruction> = (0..8).map(|r| store(r, &[r * 4, r * 4 + 1])).collect();
        program.push(Instruction::Or { srcs: (0..8).collect(), dst: 9 });
        program.push(Instruction::Read { row: 9 });
        let out = mvp.run_program(&program).expect("runs");
        assert_eq!(out[0].count_ones(), 16);
        assert_eq!(mvp.ledger().scouting_ops(), 1, "one cycle for an 8-way OR");
    }
}
