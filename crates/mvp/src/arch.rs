//! The Fig. 4 analytical architecture comparison.
//!
//! The paper evaluates MVP against a multicore with an *analytical*
//! model "similar to those in \[3, 9\]". This module is that model with
//! every constant named and documented. Core assumptions:
//!
//! * Each operation is an ALU op plus one memory reference resolved in
//!   the hierarchy; per-reference energies follow the paper's cited
//!   ratios (on-chip SRAM ≈ 50×, off-chip DRAM ≈ 6400× an ALU op
//!   \[15, 16\]).
//! * The multicore (4 ALU-only cores, 32 KB L1, 256 KB L2, 4 GB DRAM)
//!   serves all traffic through the hierarchy at the swept L1/L2 miss
//!   rates.
//! * The MVP system (1 core + same caches + 2 GB DRAM + 2 GB scouting
//!   crossbar) offloads `%Acc = 0.7` of operations — "the part of the
//!   program which is memory intensive" — so the residual 30 % is
//!   ALU + L1-resident, while offloaded operations cost one amortized
//!   in-memory scouting operation and no data movement.
//! * Non-volatility zeroes the crossbar's standby power (the paper:
//!   "the non-volatile memory reduces the static power practically to
//!   zero").

use memcim_units::{Joules, Seconds, SquareMicrometers, Watts};

/// L1/L2 miss rates for one grid point of the Fig. 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRates {
    /// L1 miss rate in `\[0, 1\]`.
    pub l1: f64,
    /// L2 (local) miss rate in `\[0, 1\]`.
    pub l2: f64,
}

impl MissRates {
    /// Creates a pair of miss rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `\[0, 1\]`.
    pub fn new(l1: f64, l2: f64) -> Self {
        assert!((0.0..=1.0).contains(&l1), "l1 miss rate must be in [0, 1]");
        assert!((0.0..=1.0).contains(&l2), "l2 miss rate must be in [0, 1]");
        Self { l1, l2 }
    }
}

/// Every constant of the Fig. 4 model. Energies in picojoules per
/// operation, latencies in nanoseconds, powers in milliwatts, areas in
/// square millimetres.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// ALU operation energy (the 1× baseline of \[15, 16\]), pJ.
    pub alu_energy_pj: f64,
    /// L1 (32 KB SRAM) reference energy: the paper's 50×, pJ.
    pub l1_energy_pj: f64,
    /// L2 (256 KB SRAM) reference energy, pJ.
    pub l2_energy_pj: f64,
    /// Off-chip DRAM reference energy: the paper's 6400×, pJ.
    pub dram_energy_pj: f64,
    /// Amortized energy of one offloaded (scouting) word-operation:
    /// per-column cycle energy of the calibrated RRAM bit line divided
    /// over the 32-bit words of a 512-column subarray, plus dispatch
    /// overhead, pJ.
    pub cim_energy_pj: f64,
    /// ALU latency, ns (1 GHz single-issue core).
    pub alu_latency_ns: f64,
    /// L1 access latency, ns.
    pub l1_latency_ns: f64,
    /// L2 access latency, ns.
    pub l2_latency_ns: f64,
    /// DRAM access latency, ns.
    pub dram_latency_ns: f64,
    /// Effective latency per offloaded word-op (massively
    /// column-parallel scouting cycles, amortized), ns.
    pub cim_latency_ns: f64,
    /// Cores in the multicore baseline.
    pub multicore_cores: usize,
    /// Cores in the MVP host.
    pub mvp_cores: usize,
    /// Static power per core (mW).
    pub core_static_mw: f64,
    /// Static power of one core's cache slice (mW).
    pub cache_static_mw: f64,
    /// DRAM standby/refresh power per GB (mW).
    pub dram_static_mw_per_gb: f64,
    /// Core area (mm²).
    pub core_area_mm2: f64,
    /// Per-core cache area (mm²).
    pub cache_area_mm2: f64,
    /// DRAM area per GB (8F² at 32 nm), mm².
    pub dram_area_mm2_per_gb: f64,
    /// Crossbar area per GB (12F² 1T1R at 32 nm), mm².
    pub crossbar_area_mm2_per_gb: f64,
    /// Multicore DRAM capacity, GB.
    pub multicore_dram_gb: f64,
    /// MVP DRAM capacity, GB.
    pub mvp_dram_gb: f64,
    /// MVP non-volatile crossbar capacity, GB.
    pub mvp_crossbar_gb: f64,
    /// Fraction of operations offloaded to the MVP (`%Acc`).
    pub accelerated_fraction: f64,
}

impl SystemConfig {
    /// The configuration of the paper's Fig. 4: 4-core baseline vs
    /// 1-core + 2 GB crossbar MVP, `%Acc = 0.7`.
    pub fn paper_defaults() -> Self {
        Self {
            alu_energy_pj: 1.0,
            l1_energy_pj: 50.0,
            l2_energy_pj: 100.0,
            dram_energy_pj: 6400.0,
            cim_energy_pj: 0.2,
            alu_latency_ns: 1.0,
            l1_latency_ns: 1.0,
            l2_latency_ns: 10.0,
            dram_latency_ns: 100.0,
            cim_latency_ns: 0.01,
            multicore_cores: 4,
            mvp_cores: 1,
            core_static_mw: 20.0,
            cache_static_mw: 5.0,
            dram_static_mw_per_gb: 12.5,
            core_area_mm2: 2.0,
            cache_area_mm2: 1.0,
            dram_area_mm2_per_gb: 70.4,
            crossbar_area_mm2_per_gb: 105.6,
            multicore_dram_gb: 4.0,
            mvp_dram_gb: 2.0,
            mvp_crossbar_gb: 2.0,
            accelerated_fraction: 0.7,
        }
    }
}

/// The paper's three evaluation metrics plus their ingredients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Throughput in millions of operations per second.
    pub throughput_mops: f64,
    /// Dynamic power, mW.
    pub dynamic_power_mw: f64,
    /// Static power, mW.
    pub static_power_mw: f64,
    /// Silicon area, mm².
    pub area_mm2: f64,
}

impl Metrics {
    /// Total power in milliwatts.
    pub fn power_mw(&self) -> f64 {
        self.dynamic_power_mw + self.static_power_mw
    }

    /// `ηPE`: performance-energy efficiency, MOPs/mW.
    pub fn eta_pe(&self) -> f64 {
        self.throughput_mops / self.power_mw()
    }

    /// `ηE`: energy per operation, pJ/op (total power over throughput).
    pub fn eta_e_pj(&self) -> f64 {
        // mW / MOPS = (1e-3 J/s) / (1e6 op/s) = 1e-9 J/op = 1 nJ/op.
        self.power_mw() / self.throughput_mops * 1000.0
    }

    /// `ηPA`: performance-area efficiency, MOPs/mm².
    pub fn eta_pa(&self) -> f64 {
        self.throughput_mops / self.area_mm2
    }

    /// Energy per operation as a typed quantity.
    pub fn energy_per_op(&self) -> Joules {
        Joules::from_picojoules(self.eta_e_pj())
    }

    /// Time per operation as a typed quantity.
    pub fn time_per_op(&self) -> Seconds {
        Seconds::new(1.0 / (self.throughput_mops * 1.0e6))
    }

    /// Area as a typed quantity.
    pub fn area(&self) -> SquareMicrometers {
        SquareMicrometers::from_square_millimeters(self.area_mm2)
    }

    /// Total power as a typed quantity.
    pub fn power(&self) -> Watts {
        Watts::from_milliwatts(self.power_mw())
    }
}

/// One grid point of the Fig. 4 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchComparison {
    /// The grid point evaluated.
    pub miss: MissRates,
    /// Baseline metrics.
    pub multicore: Metrics,
    /// MVP system metrics.
    pub mvp: Metrics,
}

impl ArchComparison {
    /// `ηPE(MVP) / ηPE(multicore)` — the headline "≈10×".
    pub fn eta_pe_gain(&self) -> f64 {
        self.mvp.eta_pe() / self.multicore.eta_pe()
    }

    /// `ηE(multicore) / ηE(MVP)` (higher = MVP better).
    pub fn eta_e_gain(&self) -> f64 {
        self.multicore.eta_e_pj() / self.mvp.eta_e_pj()
    }

    /// `ηPA(MVP) / ηPA(multicore)`.
    pub fn eta_pa_gain(&self) -> f64 {
        self.mvp.eta_pa() / self.multicore.eta_pa()
    }
}

/// Evaluates both architectures at one miss-rate grid point.
pub fn evaluate(cfg: &SystemConfig, miss: MissRates) -> ArchComparison {
    ArchComparison { miss, multicore: multicore_metrics(cfg, miss), mvp: mvp_metrics(cfg, miss) }
}

fn multicore_metrics(cfg: &SystemConfig, miss: MissRates) -> Metrics {
    // Per-op energy and latency through the full hierarchy.
    let e_pj = cfg.alu_energy_pj
        + cfg.l1_energy_pj
        + miss.l1 * (cfg.l2_energy_pj + miss.l2 * cfg.dram_energy_pj);
    let t_ns = cfg.alu_latency_ns
        + cfg.l1_latency_ns
        + miss.l1 * (cfg.l2_latency_ns + miss.l2 * cfg.dram_latency_ns);
    let cores = cfg.multicore_cores as f64;
    let throughput_mops = cores / t_ns * 1000.0;
    Metrics {
        throughput_mops,
        dynamic_power_mw: throughput_mops * e_pj * 1.0e-3,
        static_power_mw: cores * (cfg.core_static_mw + cfg.cache_static_mw)
            + cfg.multicore_dram_gb * cfg.dram_static_mw_per_gb,
        area_mm2: cores * (cfg.core_area_mm2 + cfg.cache_area_mm2)
            + cfg.multicore_dram_gb * cfg.dram_area_mm2_per_gb,
    }
}

fn mvp_metrics(cfg: &SystemConfig, _miss: MissRates) -> Metrics {
    let acc = cfg.accelerated_fraction;
    // Residual (non-offloaded) fraction: ALU + L1-resident by the model's
    // central assumption; offloaded fraction: one amortized scouting op.
    let e_pj = (1.0 - acc) * (cfg.alu_energy_pj + cfg.l1_energy_pj) + acc * cfg.cim_energy_pj;
    let t_ns = (1.0 - acc) * (cfg.alu_latency_ns + cfg.l1_latency_ns) + acc * cfg.cim_latency_ns;
    let cores = cfg.mvp_cores as f64;
    let throughput_mops = cores / t_ns * 1000.0;
    Metrics {
        throughput_mops,
        dynamic_power_mw: throughput_mops * e_pj * 1.0e-3,
        // The crossbar contributes no standby power (non-volatile).
        static_power_mw: cores * (cfg.core_static_mw + cfg.cache_static_mw)
            + cfg.mvp_dram_gb * cfg.dram_static_mw_per_gb,
        area_mm2: cores * (cfg.core_area_mm2 + cfg.cache_area_mm2)
            + cfg.mvp_dram_gb * cfg.dram_area_mm2_per_gb
            + cfg.mvp_crossbar_gb * cfg.crossbar_area_mm2_per_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(l1: f64, l2: f64) -> ArchComparison {
        evaluate(&SystemConfig::paper_defaults(), MissRates::new(l1, l2))
    }

    #[test]
    fn order_of_magnitude_gain_at_moderate_miss_rates() {
        // The paper's headline: ≈10× ηPE and ηE at %Acc = 0.7.
        let c = cmp(0.2, 0.2);
        assert!((5.0..30.0).contains(&c.eta_pe_gain()), "ηPE gain {}", c.eta_pe_gain());
        assert!((5.0..30.0).contains(&c.eta_e_gain()), "ηE gain {}", c.eta_e_gain());
    }

    #[test]
    fn mvp_has_higher_performance_area_efficiency() {
        // The paper's claim holds wherever the workload is actually
        // memory-intensive (nonzero miss rates). At a perfect 0 % miss
        // rate the multicore never stalls and wins on area — which is
        // consistent: Fig. 2b's target programs are the ones thrashing
        // the hierarchy.
        for (l1, l2) in [(0.15, 0.15), (0.2, 0.2), (0.4, 0.4), (0.6, 0.6)] {
            let c = cmp(l1, l2);
            assert!(c.eta_pa_gain() > 1.0, "ηPA gain at ({l1},{l2}) = {}", c.eta_pa_gain());
        }
        assert!(cmp(0.0, 0.0).eta_pa_gain() < 1.0, "compute-bound work favours the multicore");
    }

    #[test]
    fn gains_grow_with_miss_rate() {
        // Fig. 4's visual signature: the gap widens as the hierarchy
        // thrashes, because MVP eliminated exactly that traffic.
        let mut last = 0.0;
        for m in [0.0, 0.15, 0.3, 0.45, 0.6] {
            let g = cmp(m, m).eta_pe_gain();
            assert!(g > last, "gain {g} at miss {m} not monotonic");
            last = g;
        }
    }

    #[test]
    fn multicore_energy_per_op_matches_hand_computation() {
        // e = 1 + 50 + 0.3·(100 + 0.3·6400) = 657 pJ dynamic.
        let m = multicore_metrics(&SystemConfig::paper_defaults(), MissRates::new(0.3, 0.3));
        let t_ns = 2.0 + 0.3 * (10.0 + 0.3 * 100.0);
        assert!((m.throughput_mops - 4000.0 / t_ns).abs() < 1e-9);
        let e_dyn_pj = m.dynamic_power_mw / m.throughput_mops * 1000.0;
        assert!((e_dyn_pj - 657.0).abs() < 1e-6, "e = {e_dyn_pj}");
    }

    #[test]
    fn mvp_metrics_are_miss_rate_independent() {
        // MVP offloaded the memory-intensive part; the residual is
        // L1-resident, so the swept miss rates do not touch it.
        let a = cmp(0.0, 0.0).mvp;
        let b = cmp(0.6, 0.6).mvp;
        assert_eq!(a, b);
    }

    #[test]
    fn metric_identities_hold() {
        let m = cmp(0.3, 0.3).multicore;
        // ηPE · ηE = 1000 (MOPs/mW · pJ/op identity).
        assert!((m.eta_pe() * m.eta_e_pj() - 1000.0).abs() < 1e-6);
        assert!(m.power().as_milliwatts() > 0.0);
        assert!(m.energy_per_op().as_picojoules() > 0.0);
        assert!(m.time_per_op().as_nanoseconds() > 0.0);
    }

    #[test]
    fn mvp_pays_an_area_premium_but_wins_on_density_of_compute() {
        let c = cmp(0.3, 0.3);
        // The 2 GB crossbar costs area: the MVP *system* is bigger…
        assert!(c.mvp.area_mm2 > c.multicore.area_mm2);
        // …but delivers so much more throughput that ηPA still wins.
        assert!(c.eta_pa_gain() > 1.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn miss_rates_are_validated() {
        let _ = MissRates::new(1.5, 0.0);
    }
}
