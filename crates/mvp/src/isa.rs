//! The MVP macro-instruction set.

use memcim_bits::BitVec;

/// A macro-instruction sent by the host core to the MVP (Fig. 2b: each
/// loop iteration becomes one instruction, decoded and executed inside
/// the memory).
///
/// Row indices address crossbar rows; wide bitwise operations execute
/// column-parallel via scouting logic, so `And`/`Or` take any number of
/// distinct source rows (≥ 2) while `Xor` is a two-row window sense.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Loads a bit vector into a row (host → memory transfer plus
    /// programming cost).
    Store {
        /// Destination row.
        row: usize,
        /// Data to program.
        data: BitVec,
    },
    /// `dst = OR(srcs…)` in one scouting cycle plus a write-back.
    Or {
        /// Source rows (≥ 2, distinct).
        srcs: Vec<usize>,
        /// Destination row.
        dst: usize,
    },
    /// `dst = AND(srcs…)` in one scouting cycle plus a write-back.
    And {
        /// Source rows (≥ 2, distinct).
        srcs: Vec<usize>,
        /// Destination row.
        dst: usize,
    },
    /// `dst = a XOR b` (two-reference window sense) plus a write-back.
    Xor {
        /// First operand row.
        a: usize,
        /// Second operand row.
        b: usize,
        /// Destination row.
        dst: usize,
    },
    /// Reads a row back to the host (appended to the program's outputs).
    Read {
        /// Row to read.
        row: usize,
    },
}

impl Instruction {
    /// Rows this instruction touches (for dependency/diagnostic tooling).
    pub fn touched_rows(&self) -> Vec<usize> {
        match self {
            Instruction::Store { row, .. } | Instruction::Read { row } => vec![*row],
            Instruction::Or { srcs, dst } | Instruction::And { srcs, dst } => {
                let mut v = srcs.clone();
                v.push(*dst);
                v
            }
            Instruction::Xor { a, b, dst } => vec![*a, *b, *dst],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_rows_cover_all_operands() {
        let i = Instruction::And { srcs: vec![1, 2, 3], dst: 9 };
        assert_eq!(i.touched_rows(), vec![1, 2, 3, 9]);
        let x = Instruction::Xor { a: 0, b: 5, dst: 6 };
        assert_eq!(x.touched_rows(), vec![0, 5, 6]);
        let r = Instruction::Read { row: 4 };
        assert_eq!(r.touched_rows(), vec![4]);
    }
}
