//! The Memristive Vector Processor (MVP) — Section III of the paper.
//!
//! Two complementary views are provided:
//!
//! * **Functional** — [`MvpSimulator`]: a macro-instruction vector unit
//!   backed by the scouting-logic crossbar of `memcim-crossbar`
//!   (Fig. 2a/3). The host issues [`Instruction`]s; bulk bitwise
//!   operations execute *inside* the array, and the ledger records the
//!   energy/latency actually spent. [`workloads`] contains the
//!   paper-motivated applications (bitmap-index database queries \[17\],
//!   DNA k-mer filtering \[18–20\], BFS frontier expansion \[21\]) with
//!   scalar reference implementations for differential testing.
//!
//! * **Banked execution** — [`MvpSimulator`] is generic over the
//!   [`CrossbarBackend`](memcim_crossbar::CrossbarBackend) trait, so the
//!   same programs and workloads run on a monolithic
//!   [`Crossbar`](memcim_crossbar::Crossbar) (the default) or a
//!   [`BankedCrossbar`](memcim_crossbar::BankedCrossbar)
//!   ([`MvpSimulator::banked`]) that stripes the vector width across
//!   parallel subarrays — the paper's "2 GB crossbar = millions of
//!   subarrays" organization. Results are bit-identical; the cost model
//!   changes: energy and operation counts sum over banks, busy time is
//!   the wall-clock maximum over banks. [`BatchRequest`] /
//!   [`MvpSimulator::run_batch`] execute many independent programs
//!   against one substrate and report the aggregate ledger delta.
//!
//! * **Analytical** — [`SystemConfig`] / [`evaluate`]: the Fig. 4
//!   architecture comparison. A 4-core ALU-only multicore with a
//!   32 KB L1 / 256 KB L2 / DRAM hierarchy is compared against an MVP
//!   system (one core + caches + DRAM + a 2 GB non-volatile crossbar with
//!   scouting read-out), sweeping L1/L2 miss rates at an accelerated
//!   fraction `%Acc = 0.7`, over the paper's three metrics: `ηPE`
//!   (MOPs/mW), `ηE` (pJ/op) and `ηPA` (MOPs/mm²).
//!
//! The analytical model's key interpretation (documented in DESIGN.md):
//! the offloaded 70 % is "the part of the program which is memory
//! intensive", so the residual 30 % is ALU + L1-resident work, while the
//! multicore baseline serves *all* traffic through the full hierarchy
//! with the swept miss rates. Energy ratios follow the paper's cited
//! 50×/6400× SRAM/DRAM-vs-ALU costs \[15, 16\].
//!
//! # Examples
//!
//! ```
//! use memcim_bits::BitVec;
//! use memcim_mvp::{Instruction, MvpSimulator};
//!
//! # fn main() -> Result<(), memcim_mvp::MvpError> {
//! let mut mvp = MvpSimulator::new(16, 128);
//! let program = vec![
//!     Instruction::Store { row: 0, data: BitVec::from_indices(128, &[1, 2, 3]) },
//!     Instruction::Store { row: 1, data: BitVec::from_indices(128, &[2, 3, 4]) },
//!     Instruction::And { srcs: vec![0, 1], dst: 2 },
//!     Instruction::Read { row: 2 },
//! ];
//! let outputs = mvp.run_program(&program)?;
//! assert_eq!(outputs[0].ones().collect::<Vec<_>>(), vec![2, 3]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod arch;
pub mod arith;
mod batch;
pub mod correlation;
mod error;
mod isa;
pub mod sharded;
mod simulator;
pub mod workloads;

pub use arch::{evaluate, ArchComparison, Metrics, MissRates, SystemConfig};
pub use batch::{BatchReport, BatchRequest};
pub use error::MvpError;
pub use isa::Instruction;
pub use sharded::ShardMap;
pub use simulator::MvpSimulator;
