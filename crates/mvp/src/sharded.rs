//! Shard-local planning support for scatter-gather execution.
//!
//! The paper's scale framing — a 2 GB crossbar is "millions of
//! subarrays" — assumes data spread over many engines, yet one
//! [`MvpSimulator`](crate::MvpSimulator) holds a single (banked) array.
//! This module supplies the geometry half of the bridge: a [`ShardMap`]
//! partitions a record space `0..total` into contiguous near-equal
//! ranges, one per shard, and stitches per-shard partial answers back
//! into the full-width result. The placement half (which worker owns
//! which replica of which shard) lives in the serve layer; keeping the
//! slicing arithmetic here means both layers and the tests agree on the
//! same ranges by construction.
//!
//! Shard-local *programs* (the per-shard `Store`/`Or`/`And`/`Read`
//! sequences) are produced by the workloads themselves — see
//! [`bitmap::BitmapTable::shard_query_plan`] and
//! [`kmer::ShiftedBaseIndex::shard_find_plan`] — because only the
//! workload knows how to slice its own bitmaps. The contract tying it
//! together is differential: for any map, OR-stitching the shard
//! partials must be bit-for-bit identical to the unsharded answer.
//!
//! [`bitmap::BitmapTable::shard_query_plan`]: crate::workloads::bitmap::BitmapTable::shard_query_plan
//! [`kmer::ShiftedBaseIndex::shard_find_plan`]: crate::workloads::kmer::ShiftedBaseIndex::shard_find_plan

use crate::MvpError;
use memcim_bits::BitVec;
use std::ops::Range;

/// A partition of the record space `0..total` into `shards` contiguous
/// ranges of near-equal size (sizes differ by at most one bit).
///
/// The map is pure geometry: it knows nothing about workers, replicas
/// or engines. The serve layer's catalog maps each of these shards onto
/// R distinct workers; this type decides only *which records* each
/// shard owns and how to reassemble partial answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    total: usize,
    ranges: Vec<Range<usize>>,
}

impl ShardMap {
    /// Partitions `0..total` into `shards` contiguous ranges. The first
    /// `total % shards` ranges are one record longer, so sizes are as
    /// equal as integer division allows and every record is owned by
    /// exactly one shard.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] when `shards` is zero or exceeds
    /// `total` (an empty shard could never hold a record).
    pub fn new(total: usize, shards: usize) -> Result<Self, MvpError> {
        if shards == 0 {
            return Err(MvpError::BadInput { reason: "shard count must be positive".into() });
        }
        if shards > total {
            return Err(MvpError::BadInput {
                reason: format!("{shards} shards cannot partition {total} records"),
            });
        }
        let base = total / shards;
        let extra = total % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut lo = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            ranges.push(lo..lo + len);
            lo += len;
        }
        Ok(Self { total, ranges })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total records across all shards.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The record range owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn range(&self, shard: usize) -> Range<usize> {
        self.ranges[shard].clone()
    }

    /// All ranges, in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.ranges.iter().cloned()
    }

    /// Reassembles the full-width answer from per-shard partials.
    ///
    /// `partials[s]` carries shard `s`'s answer in its low
    /// `range(s).len()` bits (the padding an engine-width program adds
    /// above them is ignored). The result places each slice back at its
    /// record offset — the inverse of the slicing that built the shard
    /// programs.
    ///
    /// # Errors
    ///
    /// Returns [`MvpError::BadInput`] when the partial count does not
    /// match the shard count or a partial is narrower than its range.
    pub fn stitch(&self, partials: &[BitVec]) -> Result<BitVec, MvpError> {
        if partials.len() != self.ranges.len() {
            return Err(MvpError::BadInput {
                reason: format!(
                    "{} partials cannot cover {} shards",
                    partials.len(),
                    self.ranges.len()
                ),
            });
        }
        let mut out = BitVec::new(self.total);
        for (range, partial) in self.ranges.iter().zip(partials) {
            if partial.len() < range.len() {
                return Err(MvpError::BadInput {
                    reason: format!(
                        "partial of {} bits is narrower than its {}-record shard",
                        partial.len(),
                        range.len()
                    ),
                });
            }
            // Mask to exactly the owned records: engine-width partials
            // are padded with zeros by construction, but a defensive
            // copy keeps a stray high bit in one shard from corrupting
            // its neighbour's records.
            let mut slice = BitVec::new(range.len());
            partial.extract_range_into(0, range.len(), &mut slice);
            out.or_shifted(&slice, range.start);
        }
        Ok(out)
    }
}

/// Copies `src[range]` into the low bits of a fresh `width`-bit vector
/// (the padding the engine's full-width `Store` contract requires).
///
/// # Errors
///
/// Returns [`MvpError::BadInput`] when the range escapes `src` or is
/// wider than `width`.
pub fn slice_to_width(src: &BitVec, range: Range<usize>, width: usize) -> Result<BitVec, MvpError> {
    if range.end > src.len() || range.start > range.end {
        return Err(MvpError::BadInput {
            reason: format!(
                "range {}..{} escapes the {}-bit source",
                range.start,
                range.end,
                src.len()
            ),
        });
    }
    if range.len() > width {
        return Err(MvpError::BadInput {
            reason: format!("{}-record shard does not fit a {width}-bit engine", range.len()),
        });
    }
    let mut out = BitVec::new(width);
    src.extract_range_into(range.start, range.len(), &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_every_record_exactly_once() {
        for total in [1usize, 7, 64, 100, 2048] {
            for shards in [1usize, 2, 3, 5, 8] {
                if shards > total {
                    continue;
                }
                let map = ShardMap::new(total, shards).expect("valid geometry");
                assert_eq!(map.shards(), shards);
                let mut covered = 0;
                let mut next = 0;
                for range in map.ranges() {
                    assert_eq!(range.start, next, "ranges are contiguous");
                    assert!(!range.is_empty(), "no shard is empty");
                    covered += range.len();
                    next = range.end;
                }
                assert_eq!(covered, total, "every record owned exactly once");
                // Near-equal: sizes differ by at most one.
                let sizes: Vec<usize> = map.ranges().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "sizes {sizes:?} are near-equal");
            }
        }
    }

    #[test]
    fn degenerate_geometries_are_refused() {
        assert!(matches!(ShardMap::new(8, 0), Err(MvpError::BadInput { .. })));
        assert!(matches!(ShardMap::new(3, 4), Err(MvpError::BadInput { .. })));
    }

    #[test]
    fn stitch_inverts_slicing_even_with_padding() {
        let total = 100;
        let src = BitVec::from_indices(total, &[0, 13, 31, 32, 63, 64, 77, 99]);
        for shards in [1usize, 2, 3, 7] {
            let map = ShardMap::new(total, shards).expect("valid geometry");
            let partials: Vec<BitVec> = map
                .ranges()
                .map(|r| slice_to_width(&src, r, 128).expect("fits the engine"))
                .collect();
            assert_eq!(map.stitch(&partials).expect("aligned"), src);
        }
    }

    #[test]
    fn stitch_masks_stray_padding_bits() {
        let map = ShardMap::new(8, 2).expect("valid geometry");
        // Shard 0 owns records 0..4 but reports a stray bit at 5 in its
        // padding; the stitch must not let it leak into shard 1's range.
        let mut dirty = BitVec::new(16);
        dirty.set(1, true);
        dirty.set(5, true);
        let clean = slice_to_width(&BitVec::from_indices(8, &[6]), 4..8, 16).expect("fits");
        let out = map.stitch(&[dirty, clean]).expect("aligned");
        assert_eq!(out.ones().collect::<Vec<_>>(), vec![1, 6]);
    }

    #[test]
    fn stitch_refuses_misaligned_partials() {
        let map = ShardMap::new(8, 2).expect("valid geometry");
        assert!(matches!(map.stitch(&[BitVec::new(16)]), Err(MvpError::BadInput { .. })));
        assert!(matches!(
            map.stitch(&[BitVec::new(2), BitVec::new(16)]),
            Err(MvpError::BadInput { .. })
        ));
    }

    #[test]
    fn slice_to_width_validates_geometry() {
        let src = BitVec::from_indices(8, &[7]);
        assert!(matches!(slice_to_width(&src, 4..9, 16), Err(MvpError::BadInput { .. })));
        assert!(matches!(slice_to_width(&src, 0..8, 4), Err(MvpError::BadInput { .. })));
        let ok = slice_to_width(&src, 4..8, 16).expect("fits");
        assert_eq!(ok.len(), 16);
        assert_eq!(ok.ones().collect::<Vec<_>>(), vec![3]);
    }
}
