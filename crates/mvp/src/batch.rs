//! Batched MVP execution: many independent programs against one
//! substrate, with aggregate cost reporting.
//!
//! The MVP serves its host as a shared vector engine: the interesting
//! unit of accounting is rarely one instruction but a *request stream* —
//! e.g. a burst of bitmap-index queries hitting the same banked
//! crossbar. [`BatchRequest`] collects independent [`Instruction`]
//! programs; [`MvpSimulator::run_batch`] executes them back-to-back on
//! the simulator's backend and returns a [`BatchReport`] with every
//! program's `Read` outputs plus the ledger delta the batch actually
//! cost (computed via [`OpLedger::delta_since`], so a reused simulator
//! reports only the batch's own activity).

use crate::{Instruction, MvpError, MvpSimulator};
use memcim_bits::BitVec;
use memcim_crossbar::{CrossbarBackend, OpLedger};

/// An ordered collection of independent MVP programs to execute against
/// one backend.
///
/// # Examples
///
/// ```
/// use memcim_bits::BitVec;
/// use memcim_mvp::{BatchRequest, Instruction, MvpSimulator};
///
/// # fn main() -> Result<(), memcim_mvp::MvpError> {
/// let mut batch = BatchRequest::new();
/// for shift in 0..3usize {
///     batch.push(vec![
///         Instruction::Store { row: 0, data: BitVec::from_indices(64, &[shift]) },
///         Instruction::Store { row: 1, data: BitVec::from_indices(64, &[shift, shift + 1]) },
///         Instruction::Or { srcs: vec![0, 1], dst: 2 },
///         Instruction::Read { row: 2 },
///     ]);
/// }
/// let mut mvp = MvpSimulator::banked(4, 2, 32);
/// let report = mvp.run_batch(&batch)?;
/// assert_eq!(report.outputs.len(), 3);
/// assert_eq!(report.outputs[2][0].ones().collect::<Vec<_>>(), vec![2, 3]);
/// assert!(report.ledger.energy().as_joules() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchRequest {
    programs: Vec<Vec<Instruction>>,
}

impl BatchRequest {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one program to the batch.
    pub fn push(&mut self, program: Vec<Instruction>) -> &mut Self {
        self.programs.push(program);
        self
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with_program(mut self, program: Vec<Instruction>) -> Self {
        self.programs.push(program);
        self
    }

    /// Number of programs queued.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// `true` when no programs are queued.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The queued programs, in execution order.
    pub fn programs(&self) -> &[Vec<Instruction>] {
        &self.programs
    }
}

/// The result of [`MvpSimulator::run_batch`]: per-program outputs plus
/// the aggregate activity the batch cost.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// `outputs[i]` holds program `i`'s `Read` results in program order.
    pub outputs: Vec<Vec<BitVec>>,
    /// Ledger delta over the whole batch (banked backends: energy/ops
    /// summed over banks, busy time max-over-banks).
    pub ledger: OpLedger,
}

impl BatchReport {
    /// Number of programs executed.
    pub fn programs_run(&self) -> usize {
        self.outputs.len()
    }
}

impl<B: CrossbarBackend> MvpSimulator<B> {
    /// Executes every program of `batch` in order on this simulator's
    /// backend, returning all `Read` outputs and the aggregate ledger
    /// delta. Programs are independent requests: each may freely reuse
    /// the rows of its predecessors.
    ///
    /// # Errors
    ///
    /// Stops at the first failing program and returns its error; the
    /// activity of already-executed programs remains on the ledger.
    ///
    /// # Examples
    ///
    /// ```
    /// use memcim_bits::BitVec;
    /// use memcim_mvp::{BatchRequest, Instruction, MvpSimulator};
    ///
    /// # fn main() -> Result<(), memcim_mvp::MvpError> {
    /// let batch = BatchRequest::new()
    ///     .with_program(vec![
    ///         Instruction::Store { row: 0, data: BitVec::from_indices(64, &[3, 9]) },
    ///         Instruction::Read { row: 0 },
    ///     ])
    ///     .with_program(vec![
    ///         Instruction::Store { row: 0, data: BitVec::from_indices(64, &[5]) },
    ///         Instruction::Read { row: 0 },
    ///     ]);
    /// let mut mvp = MvpSimulator::banked(4, 2, 32);
    /// let report = mvp.run_batch(&batch)?;
    /// assert_eq!(report.outputs[0][0].ones().collect::<Vec<_>>(), vec![3, 9]);
    /// assert_eq!(report.outputs[1][0].ones().collect::<Vec<_>>(), vec![5]);
    /// // The delta covers exactly this batch, not the simulator's past.
    /// assert_eq!(report.ledger.reads(), 2 * 2, "one read per program, per bank");
    /// # Ok(())
    /// # }
    /// ```
    pub fn run_batch(&mut self, batch: &BatchRequest) -> Result<BatchReport, MvpError> {
        let before = self.crossbar_mut().ledger_parts();
        let mut outputs = Vec::with_capacity(batch.len());
        for program in &batch.programs {
            outputs.push(self.run_program(program)?);
        }
        // Diff per subarray, then re-aggregate: the busy time of the
        // *aggregate* is a max over banks, which is not monotone in the
        // batch's own work (a quiet bank's activity would vanish behind
        // an already-busy one), so only part-wise deltas are exact.
        let mut ledger = OpLedger::new();
        for (after, before) in self.crossbar_mut().ledger_parts().iter().zip(&before) {
            ledger.merge_parallel(&after.delta_since(before));
        }
        Ok(BatchReport { outputs, ledger })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(shift: usize, width: usize) -> Vec<Instruction> {
        vec![
            Instruction::Store { row: 0, data: BitVec::from_indices(width, &[shift, shift + 8]) },
            Instruction::Store { row: 1, data: BitVec::from_indices(width, &[shift]) },
            Instruction::And { srcs: vec![0, 1], dst: 2 },
            Instruction::Read { row: 2 },
        ]
    }

    #[test]
    fn batch_outputs_match_individual_runs() {
        let width = 96;
        let batch = BatchRequest::new()
            .with_program(query(0, width))
            .with_program(query(3, width))
            .with_program(query(7, width));
        let mut batched = MvpSimulator::new(4, width);
        let report = batched.run_batch(&batch).expect("batch runs");
        assert_eq!(report.programs_run(), 3);
        for (i, program) in batch.programs().iter().enumerate() {
            let mut solo = MvpSimulator::new(4, width);
            assert_eq!(solo.run_program(program).expect("solo"), report.outputs[i]);
        }
    }

    #[test]
    fn ledger_delta_covers_only_the_batch() {
        let width = 64;
        let mut mvp = MvpSimulator::new(4, width);
        // Pre-batch activity must not leak into the report.
        mvp.run_program(&query(1, width)).expect("warm-up");
        let report =
            mvp.run_batch(&BatchRequest::new().with_program(query(2, width))).expect("batch");
        assert_eq!(report.ledger.scouting_ops(), 1);
        assert_eq!(report.ledger.reads(), 1);
        assert!(report.ledger.energy().as_joules() > 0.0);
        assert!(report.ledger.energy() < mvp.ledger().energy());
    }

    #[test]
    fn banked_batch_agrees_with_monolithic_batch() {
        let width = 90;
        let batch = BatchRequest::new()
            .with_program(query(0, width))
            .with_program(query(11, width))
            .with_program(query(40, width));
        let mut mono = MvpSimulator::new(4, width);
        let mut banked = MvpSimulator::banked(4, 3, 30);
        let rm = mono.run_batch(&batch).expect("mono");
        let rb = banked.run_batch(&batch).expect("banked");
        assert_eq!(rm.outputs, rb.outputs);
        // Energy sums over banks; wall clock does not.
        assert!(rb.ledger.busy_time().as_seconds() <= rm.ledger.busy_time().as_seconds());
    }

    #[test]
    fn banked_busy_delta_counts_work_hidden_behind_a_busier_bank() {
        // Warm up bank 0 only: a store whose bits all land in the first
        // bank records programming latency there and nowhere else.
        let mut warmed = MvpSimulator::banked(4, 2, 32);
        warmed
            .run_program(&[Instruction::Store {
                row: 0,
                data: BitVec::from_indices(64, &[0, 5, 20]),
            }])
            .expect("warm bank 0");
        // The batch then works only in bank 1 (plus a read that touches
        // both banks equally).
        let batch = BatchRequest::new().with_program(vec![
            Instruction::Store { row: 1, data: BitVec::from_indices(64, &[40, 50]) },
            Instruction::Read { row: 1 },
        ]);
        let report = warmed.run_batch(&batch).expect("batch");
        // A fresh simulator running the same batch measures the true
        // cost; the warmed simulator must report the same delta even
        // though bank 0's earlier busy time still dominates the maximum.
        let fresh = MvpSimulator::banked(4, 2, 32).run_batch(&batch).expect("fresh");
        assert_eq!(report.ledger.busy_time(), fresh.ledger.busy_time());
        assert_eq!(report.ledger.bits_programmed(), fresh.ledger.bits_programmed());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut mvp = MvpSimulator::new(2, 32);
        let report = mvp.run_batch(&BatchRequest::new()).expect("empty");
        assert_eq!(report.programs_run(), 0);
        assert_eq!(report.ledger.energy().as_joules(), 0.0);
    }

    #[test]
    fn a_failing_program_stops_the_batch() {
        let mut mvp = MvpSimulator::new(2, 32);
        let batch = BatchRequest::new()
            .with_program(vec![Instruction::Read { row: 99 }])
            .with_program(query(0, 32));
        assert!(matches!(mvp.run_batch(&batch), Err(MvpError::RowOutOfRange { row: 99, .. })));
    }
}
