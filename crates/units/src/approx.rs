//! Tolerant floating-point comparison used by tests and calibration checks.

/// A relative tolerance for approximate comparison.
///
/// The default (`1e-9`) is appropriate for comparing analytically derived
/// values; calibration checks against transient simulation typically use a
/// looser `RelTol::new(0.05)` (5 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelTol(f64);

impl RelTol {
    /// Creates a relative tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not a finite, non-negative value.
    pub fn new(tol: f64) -> Self {
        assert!(tol.is_finite() && tol >= 0.0, "tolerance must be finite and ≥ 0");
        Self(tol)
    }

    /// Returns the tolerance value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for RelTol {
    fn default() -> Self {
        Self(1e-9)
    }
}

/// Compares two values with a relative tolerance (scaled by the larger
/// magnitude), falling back to an absolute comparison near zero.
///
/// # Examples
///
/// ```
/// use memcim_units::{approx_eq, RelTol};
/// assert!(approx_eq(104.0e-12, 104.0000001e-12, RelTol::new(1e-6)));
/// assert!(!approx_eq(104.0e-12, 161.0e-12, RelTol::new(0.05)));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: RelTol) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    if scale < f64::MIN_POSITIVE {
        return true;
    }
    (a - b).abs() <= tol.0.max(f64::EPSILON * 4.0) * scale
}

/// Compares two values with an absolute tolerance.
pub fn approx_eq_abs(a: f64, b: f64, abs_tol: f64) -> bool {
    (a - b).abs() <= abs_tol
}

/// Returns `true` if `a` is within `abs_tol` of zero.
pub fn approx_zero(a: f64, abs_tol: f64) -> bool {
    a.abs() <= abs_tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_equal_at_zero_tolerance() {
        assert!(approx_eq(1.0, 1.0, RelTol::new(0.0)));
        assert!(approx_eq(0.0, 0.0, RelTol::new(0.0)));
    }

    #[test]
    fn relative_tolerance_scales_with_magnitude() {
        assert!(approx_eq(1.0e12, 1.0e12 + 1.0, RelTol::new(1e-9)));
        assert!(!approx_eq(1.0e-12, 2.0e-12, RelTol::new(1e-9)));
    }

    #[test]
    fn absolute_comparison() {
        assert!(approx_eq_abs(0.1, 0.1000001, 1e-5));
        assert!(!approx_eq_abs(0.1, 0.2, 1e-5));
        assert!(approx_zero(1e-18, 1e-15));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_tolerance_panics() {
        let _ = RelTol::new(-1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn approx_eq_is_reflexive(x in -1.0e15_f64..1.0e15) {
            prop_assert!(approx_eq(x, x, RelTol::default()));
        }

        #[test]
        fn approx_eq_is_symmetric(
            a in -1.0e6_f64..1.0e6,
            b in -1.0e6_f64..1.0e6,
            t in 0.0_f64..0.5,
        ) {
            let tol = RelTol::new(t);
            prop_assert_eq!(approx_eq(a, b, tol), approx_eq(b, a, tol));
        }

        #[test]
        fn widening_tolerance_preserves_equality(
            a in -1.0e6_f64..1.0e6,
            b in -1.0e6_f64..1.0e6,
            t in 0.0_f64..0.25,
        ) {
            if approx_eq(a, b, RelTol::new(t)) {
                prop_assert!(approx_eq(a, b, RelTol::new(t * 2.0)));
            }
        }
    }
}
