//! Engineering-notation formatting shared by all quantity `Display` impls.

/// Formats a value with an SI prefix so the mantissa lands in `[1, 1000)`.
///
/// Values are rounded to at most three significant decimals; exact zero is
/// rendered as `"0"`, and values outside the femto–tera range fall back to
/// scientific notation.
///
/// # Examples
///
/// ```
/// assert_eq!(memcim_units::engineering(4.0e-4), "400 µ");
/// assert_eq!(memcim_units::engineering(1.04e-10), "104 p");
/// assert_eq!(memcim_units::engineering(0.0), "0 ");
/// ```
pub fn engineering(value: f64) -> String {
    if value == 0.0 {
        return "0 ".to_string();
    }
    if !value.is_finite() {
        return format!("{value} ");
    }
    const PREFIXES: [(f64, &str); 11] = [
        (1.0e12, "T"),
        (1.0e9, "G"),
        (1.0e6, "M"),
        (1.0e3, "k"),
        (1.0, ""),
        (1.0e-3, "m"),
        (1.0e-6, "µ"),
        (1.0e-9, "n"),
        (1.0e-12, "p"),
        (1.0e-15, "f"),
        (1.0e-18, "a"),
    ];
    let magnitude = value.abs();
    for &(scale, prefix) in &PREFIXES {
        if magnitude >= scale * (1.0 - 1e-12) {
            let mantissa = value / scale;
            return format!("{} {prefix}", trim(mantissa));
        }
    }
    format!("{value:e} ")
}

/// Renders a mantissa with up to three decimal places, trailing zeros trimmed.
fn trim(mantissa: f64) -> String {
    let s = format!("{mantissa:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_range_has_empty_prefix() {
        assert_eq!(engineering(1.5), "1.5 ");
        assert_eq!(engineering(999.0), "999 ");
    }

    #[test]
    fn sub_unit_prefixes() {
        assert_eq!(engineering(2.09e-15), "2.09 f");
        assert_eq!(engineering(1.61e-10), "161 p");
        assert_eq!(engineering(-3.3e-3), "-3.3 m");
    }

    #[test]
    fn super_unit_prefixes() {
        assert_eq!(engineering(1.0e8), "100 M");
        assert_eq!(engineering(2.4e9), "2.4 G");
    }

    #[test]
    fn boundary_rounding_does_not_produce_1000_mantissa() {
        // 0.9999999999999999e3 should round into the kilo bucket cleanly.
        let s = engineering(1000.0);
        assert_eq!(s, "1 k");
    }

    #[test]
    fn extreme_values_fall_back_to_scientific() {
        let s = engineering(1.0e-21);
        assert!(s.contains('e'), "got {s}");
    }
}
