//! Physical quantity newtypes for the `memcim` workspace.
//!
//! Circuit-level code in the workspace never passes bare `f64` values for
//! electrical quantities: a voltage is a [`Volts`], a resistance an
//! [`Ohms`], and the compiler rejects `bitline.precharge(Ohms::new(0.4))`.
//! (See C-NEWTYPE in the Rust API guidelines.)
//!
//! All quantities are thin wrappers over `f64` in base SI units and are
//! `Copy`; arithmetic between compatible quantities is provided where the
//! physics is unambiguous (`Volts / Ohms = Amps`, `Watts * Seconds =
//! Joules`, …).
//!
//! # Examples
//!
//! ```
//! use memcim_units::{Volts, Ohms, Seconds, Farads};
//!
//! let v = Volts::from_millivolts(400.0);
//! let r = Ohms::from_kilohms(1.0);
//! let i = v / r;
//! assert!((i.as_amps() - 4.0e-4).abs() < 1e-12);
//!
//! // An RC time constant comes out typed as seconds.
//! let tau: Seconds = r * Farads::from_femtofarads(28.0);
//! assert!(tau.as_picoseconds() > 0.0);
//! ```

#![deny(missing_docs)]

mod approx;
mod format;
mod quantity;

pub use approx::{approx_eq, approx_eq_abs, approx_zero, RelTol};
pub use format::engineering;
pub use quantity::{
    Amps, Celsius, Coulombs, Farads, Hertz, Joules, Ohms, Seconds, Siemens, SquareMicrometers,
    Volts, Watts, Webers,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trip() {
        let v = Volts::new(1.2);
        let r = Ohms::new(400.0);
        let i = v / r;
        assert!(approx_eq(i.as_amps(), 3.0e-3, RelTol::default()));
        let back: Volts = i * r;
        assert!(approx_eq(back.as_volts(), 1.2, RelTol::default()));
    }

    #[test]
    fn power_and_energy_compose() {
        let p: Watts = Volts::new(1.0) * Amps::new(2.0);
        let e: Joules = p * Seconds::from_nanoseconds(1.0);
        assert!(approx_eq(e.as_femtojoules(), 2.0e6, RelTol::default()));
    }

    #[test]
    fn conductance_is_reciprocal_resistance() {
        let g = Ohms::new(1.0e3).to_siemens();
        assert!(approx_eq(g.as_siemens(), 1.0e-3, RelTol::default()));
        assert!(approx_eq(g.to_ohms().as_ohms(), 1.0e3, RelTol::default()));
    }

    #[test]
    fn rc_time_constant_has_time_dimension() {
        let tau: Seconds = Ohms::from_kilohms(4.0) * Farads::from_femtofarads(25.0);
        assert!(approx_eq(tau.as_picoseconds(), 100.0, RelTol::default()));
    }

    #[test]
    fn charge_relations() {
        let q: Coulombs = Amps::new(1.0e-6) * Seconds::from_microseconds(3.0);
        assert!(approx_eq(q.as_coulombs(), 3.0e-12, RelTol::default()));
        let q2: Coulombs = Farads::from_picofarads(2.0) * Volts::new(0.5);
        assert!(approx_eq(q2.as_coulombs(), 1.0e-12, RelTol::default()));
    }

    #[test]
    fn frequency_period_round_trip() {
        let f = Hertz::from_megahertz(10.0);
        let t = f.period();
        assert!(approx_eq(t.as_nanoseconds(), 100.0, RelTol::default()));
        assert!(approx_eq(t.to_frequency().as_hertz(), 1.0e7, RelTol::default()));
    }
}
