//! Quantity newtype definitions and the arithmetic between them.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Defines a quantity newtype wrapping an `f64` in base SI units,
/// together with the full set of scalar arithmetic impls.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $as_base:ident, $new_doc:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = $new_doc]
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base SI units.
            #[inline]
            pub const fn $as_base(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` if the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the sign (−1.0, 0.0 or 1.0) of the value.
            #[inline]
            pub fn signum(self) -> f64 {
                if self.0 == 0.0 { 0.0 } else { self.0.signum() }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", crate::format::engineering(self.0), $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts, "V", as_volts, "Creates a voltage from a value in volts."
);
quantity!(
    /// Electric current in amperes.
    Amps, "A", as_amps, "Creates a current from a value in amperes."
);
quantity!(
    /// Resistance in ohms.
    Ohms, "Ω", as_ohms, "Creates a resistance from a value in ohms."
);
quantity!(
    /// Conductance in siemens.
    Siemens, "S", as_siemens, "Creates a conductance from a value in siemens."
);
quantity!(
    /// Capacitance in farads.
    Farads, "F", as_farads, "Creates a capacitance from a value in farads."
);
quantity!(
    /// Time in seconds.
    Seconds, "s", as_seconds, "Creates a duration from a value in seconds."
);
quantity!(
    /// Frequency in hertz.
    Hertz, "Hz", as_hertz, "Creates a frequency from a value in hertz."
);
quantity!(
    /// Energy in joules.
    Joules, "J", as_joules, "Creates an energy from a value in joules."
);
quantity!(
    /// Power in watts.
    Watts, "W", as_watts, "Creates a power from a value in watts."
);
quantity!(
    /// Electric charge in coulombs.
    Coulombs, "C", as_coulombs, "Creates a charge from a value in coulombs."
);
quantity!(
    /// Magnetic flux in webers (the memristor state variable φ).
    Webers, "Wb", as_webers, "Creates a flux from a value in webers."
);
quantity!(
    /// Area in square micrometres (layout area bookkeeping).
    SquareMicrometers, "µm²", as_square_micrometers,
    "Creates an area from a value in square micrometres."
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius, "°C", as_celsius, "Creates a temperature from a value in degrees Celsius."
);

// ---------------------------------------------------------------------------
// Prefixed constructors / accessors for the quantities that are used at
// sub-unit scale throughout the workspace.
// ---------------------------------------------------------------------------

impl Volts {
    /// Creates a voltage from millivolts.
    #[inline]
    pub const fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1.0e-3)
    }

    /// Returns the value in millivolts.
    #[inline]
    pub const fn as_millivolts(self) -> f64 {
        self.as_volts() * 1.0e3
    }
}

impl Amps {
    /// Creates a current from microamperes.
    #[inline]
    pub const fn from_microamps(ua: f64) -> Self {
        Self::new(ua * 1.0e-6)
    }

    /// Creates a current from nanoamperes.
    #[inline]
    pub const fn from_nanoamps(na: f64) -> Self {
        Self::new(na * 1.0e-9)
    }

    /// Returns the value in microamperes.
    #[inline]
    pub const fn as_microamps(self) -> f64 {
        self.as_amps() * 1.0e6
    }
}

impl Ohms {
    /// Creates a resistance from kilohms.
    #[inline]
    pub const fn from_kilohms(k: f64) -> Self {
        Self::new(k * 1.0e3)
    }

    /// Creates a resistance from megohms.
    #[inline]
    pub const fn from_megohms(m: f64) -> Self {
        Self::new(m * 1.0e6)
    }

    /// Returns the value in kilohms.
    #[inline]
    pub const fn as_kilohms(self) -> f64 {
        self.as_ohms() * 1.0e-3
    }

    /// Converts to the reciprocal conductance.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is zero.
    #[inline]
    pub fn to_siemens(self) -> Siemens {
        assert!(self.as_ohms() != 0.0, "cannot invert a zero resistance");
        Siemens::new(1.0 / self.as_ohms())
    }

    /// Parallel combination of two resistances.
    #[inline]
    pub fn parallel(self, other: Ohms) -> Ohms {
        let (a, b) = (self.as_ohms(), other.as_ohms());
        Ohms::new(a * b / (a + b))
    }
}

impl Siemens {
    /// Converts to the reciprocal resistance.
    ///
    /// # Panics
    ///
    /// Panics if the conductance is zero.
    #[inline]
    pub fn to_ohms(self) -> Ohms {
        assert!(self.as_siemens() != 0.0, "cannot invert a zero conductance");
        Ohms::new(1.0 / self.as_siemens())
    }
}

impl Farads {
    /// Creates a capacitance from picofarads.
    #[inline]
    pub const fn from_picofarads(pf: f64) -> Self {
        Self::new(pf * 1.0e-12)
    }

    /// Creates a capacitance from femtofarads.
    #[inline]
    pub const fn from_femtofarads(ff: f64) -> Self {
        Self::new(ff * 1.0e-15)
    }

    /// Creates a capacitance from attofarads.
    #[inline]
    pub const fn from_attofarads(af: f64) -> Self {
        Self::new(af * 1.0e-18)
    }

    /// Returns the value in femtofarads.
    #[inline]
    pub const fn as_femtofarads(self) -> f64 {
        self.as_farads() * 1.0e15
    }
}

impl Seconds {
    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_microseconds(us: f64) -> Self {
        Self::new(us * 1.0e-6)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanoseconds(ns: f64) -> Self {
        Self::new(ns * 1.0e-9)
    }

    /// Creates a duration from picoseconds.
    #[inline]
    pub const fn from_picoseconds(ps: f64) -> Self {
        Self::new(ps * 1.0e-12)
    }

    /// Returns the value in nanoseconds.
    #[inline]
    pub const fn as_nanoseconds(self) -> f64 {
        self.as_seconds() * 1.0e9
    }

    /// Returns the value in picoseconds.
    #[inline]
    pub const fn as_picoseconds(self) -> f64 {
        self.as_seconds() * 1.0e12
    }

    /// Returns the value in microseconds.
    #[inline]
    pub const fn as_microseconds(self) -> f64 {
        self.as_seconds() * 1.0e6
    }

    /// Converts a period into the corresponding frequency.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    #[inline]
    pub fn to_frequency(self) -> Hertz {
        assert!(self.as_seconds() != 0.0, "cannot invert a zero period");
        Hertz::new(1.0 / self.as_seconds())
    }
}

impl Hertz {
    /// Creates a frequency from kilohertz.
    #[inline]
    pub const fn from_kilohertz(khz: f64) -> Self {
        Self::new(khz * 1.0e3)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub const fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1.0e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub const fn from_gigahertz(ghz: f64) -> Self {
        Self::new(ghz * 1.0e9)
    }

    /// Returns the value in gigahertz.
    #[inline]
    pub const fn as_gigahertz(self) -> f64 {
        self.as_hertz() * 1.0e-9
    }

    /// Returns the corresponding period.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn period(self) -> Seconds {
        assert!(self.as_hertz() != 0.0, "cannot invert a zero frequency");
        Seconds::new(1.0 / self.as_hertz())
    }

    /// Angular frequency ω = 2πf in rad/s.
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * core::f64::consts::PI * self.as_hertz()
    }
}

impl Joules {
    /// Creates an energy from picojoules.
    #[inline]
    pub const fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1.0e-12)
    }

    /// Creates an energy from femtojoules.
    #[inline]
    pub const fn from_femtojoules(fj: f64) -> Self {
        Self::new(fj * 1.0e-15)
    }

    /// Returns the value in picojoules.
    #[inline]
    pub const fn as_picojoules(self) -> f64 {
        self.as_joules() * 1.0e12
    }

    /// Returns the value in femtojoules.
    #[inline]
    pub const fn as_femtojoules(self) -> f64 {
        self.as_joules() * 1.0e15
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    #[inline]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1.0e-3)
    }

    /// Returns the value in milliwatts.
    #[inline]
    pub const fn as_milliwatts(self) -> f64 {
        self.as_watts() * 1.0e3
    }
}

impl SquareMicrometers {
    /// Returns the value in square millimetres.
    #[inline]
    pub const fn as_square_millimeters(self) -> f64 {
        self.as_square_micrometers() * 1.0e-6
    }

    /// Creates an area from square millimetres.
    #[inline]
    pub const fn from_square_millimeters(mm2: f64) -> Self {
        Self::new(mm2 * 1.0e6)
    }
}

// ---------------------------------------------------------------------------
// Cross-quantity physics (C-OVERLOAD: only unambiguous relations).
// ---------------------------------------------------------------------------

impl Div<Ohms> for Volts {
    type Output = Amps;
    /// Ohm's law: I = V / R.
    #[inline]
    fn div(self, r: Ohms) -> Amps {
        Amps::new(self.as_volts() / r.as_ohms())
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    /// Ohm's law: V = I · R.
    #[inline]
    fn mul(self, r: Ohms) -> Volts {
        Volts::new(self.as_amps() * r.as_ohms())
    }
}

impl Mul<Amps> for Ohms {
    type Output = Volts;
    #[inline]
    fn mul(self, i: Amps) -> Volts {
        i * self
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    /// R = V / I.
    #[inline]
    fn div(self, i: Amps) -> Ohms {
        Ohms::new(self.as_volts() / i.as_amps())
    }
}

impl Mul<Siemens> for Volts {
    type Output = Amps;
    /// I = V · G.
    #[inline]
    fn mul(self, g: Siemens) -> Amps {
        Amps::new(self.as_volts() * g.as_siemens())
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    /// P = V · I.
    #[inline]
    fn mul(self, i: Amps) -> Watts {
        Watts::new(self.as_volts() * i.as_amps())
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, v: Volts) -> Watts {
        v * self
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// E = P · t.
    #[inline]
    fn mul(self, t: Seconds) -> Joules {
        Joules::new(self.as_watts() * t.as_seconds())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, p: Watts) -> Joules {
        p * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// P = E / t.
    #[inline]
    fn div(self, t: Seconds) -> Watts {
        Watts::new(self.as_joules() / t.as_seconds())
    }
}

impl Mul<Seconds> for Amps {
    type Output = Coulombs;
    /// Q = I · t.
    #[inline]
    fn mul(self, t: Seconds) -> Coulombs {
        Coulombs::new(self.as_amps() * t.as_seconds())
    }
}

impl Mul<Volts> for Farads {
    type Output = Coulombs;
    /// Q = C · V.
    #[inline]
    fn mul(self, v: Volts) -> Coulombs {
        Coulombs::new(self.as_farads() * v.as_volts())
    }
}

impl Mul<Farads> for Ohms {
    type Output = Seconds;
    /// τ = R · C.
    #[inline]
    fn mul(self, c: Farads) -> Seconds {
        Seconds::new(self.as_ohms() * c.as_farads())
    }
}

impl Mul<Ohms> for Farads {
    type Output = Seconds;
    #[inline]
    fn mul(self, r: Ohms) -> Seconds {
        r * self
    }
}

impl Mul<Seconds> for Volts {
    type Output = Webers;
    /// φ = ∫v dt, for a constant v over t.
    #[inline]
    fn mul(self, t: Seconds) -> Webers {
        Webers::new(self.as_volts() * t.as_seconds())
    }
}

impl Div<Coulombs> for Webers {
    type Output = Ohms;
    /// Chua's memristance: M = dφ/dq, for finite increments.
    #[inline]
    fn div(self, q: Coulombs) -> Ohms {
        Ohms::new(self.as_webers() / q.as_coulombs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(Volts::from_millivolts(400.0).to_string(), "400 mV");
        assert_eq!(Ohms::from_megohms(100.0).to_string(), "100 MΩ");
        assert_eq!(Seconds::from_picoseconds(104.0).to_string(), "104 ps");
        assert_eq!(Joules::from_femtojoules(2.09).to_string(), "2.09 fJ");
    }

    #[test]
    fn parallel_resistance_of_equal_resistors_halves() {
        let r = Ohms::from_kilohms(2.0).parallel(Ohms::from_kilohms(2.0));
        assert!((r.as_kilohms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_low_dominates_high() {
        // The scouting-logic premise: RH ∥ RL ≈ RL when RH ≫ RL.
        let r = Ohms::from_megohms(100.0).parallel(Ohms::from_kilohms(1.0));
        assert!((r.as_ohms() - 999.99).abs() < 0.02);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joules = [1.0, 2.0, 3.0].iter().map(|&fj| Joules::from_femtojoules(fj)).sum();
        assert!((total.as_femtojoules() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn like_quantity_ratio_is_dimensionless() {
        let ratio = Seconds::from_picoseconds(161.0) / Seconds::from_picoseconds(104.0);
        assert!(ratio > 1.54 && ratio < 1.55);
    }

    #[test]
    #[should_panic(expected = "zero resistance")]
    fn inverting_zero_resistance_panics() {
        let _ = Ohms::ZERO.to_siemens();
    }

    #[test]
    fn signum_and_abs() {
        assert_eq!(Volts::new(-2.0).signum(), -1.0);
        assert_eq!(Volts::ZERO.signum(), 0.0);
        assert_eq!(Volts::new(-2.0).abs(), Volts::new(2.0));
    }
}
