//! Memristive device models for computation-in-memory simulation.
//!
//! This crate implements Section II of Yu et al., *"Memristive Devices for
//! Computation-In-Memory"* (DATE 2018): the device-level substrate that the
//! MVP crossbar and the RRAM automata processor are built on.
//!
//! Five models are provided, from textbook-ideal to the projection the
//! paper actually simulates:
//!
//! * [`IdealMemristor`] — Chua's charge-controlled memristor `M(q)`
//!   (the missing fourth element of Fig. 1a); exhibits the pinched
//!   current–voltage hysteresis fingerprint of Fig. 1b.
//! * [`LinearIonDrift`] — the HP TiO₂ model (Strukov et al., 2008) with
//!   pluggable boundary [`window`] functions (rectangular, Joglekar,
//!   Biolek).
//! * [`StanfordAsu`] — a filament-gap compact model in the style of the
//!   ASU/Stanford RRAM model (\[28\] in the paper), with exponential
//!   gap-to-current mapping and sinh field-driven gap dynamics.
//! * [`Vteam`] — the VTEAM voltage-threshold model (Kvatinsky et al.,
//!   2015): state strictly frozen below threshold, polynomial
//!   super-threshold drive — the idealization scouting logic's
//!   disturb-free reads assume.
//! * [`BehavioralSwitch`] — the two-state device of the paper's Fig. 8/9
//!   experiment (`RL ≈ 1 kΩ`, `RH ≈ 100 MΩ`, `VSET = 1.3 V`,
//!   `VRESET = 0.5 V`), with switching-time, endurance and wear accounting.
//!
//! All models implement the [`MemristiveDevice`] trait so the transient
//! solver in `memcim-spice` and the crossbar in `memcim-crossbar` can use
//! them interchangeably.
//!
//! # Examples
//!
//! Sweep an HP-style device with a sinusoid and confirm the pinched loop:
//!
//! ```
//! use memcim_device::{HysteresisSweep, LinearIonDrift, MemristiveDevice};
//! use memcim_units::Volts;
//!
//! let mut device = LinearIonDrift::hp_default();
//! let f0 = device.characteristic_frequency(Volts::new(1.0));
//! let sweep = HysteresisSweep::new(Volts::new(1.0), f0).with_cycles(2);
//! let trace = sweep.run(&mut device);
//! assert!(trace.is_pinched(1e-3));
//! assert!(trace.lobe_area() > 0.0);
//! ```

mod behavioral;
mod endurance;
mod error;
mod ideal;
mod linear_drift;
mod stanford;
mod sweep;
mod variability;
mod vteam;
pub mod window;

pub use behavioral::{BehavioralSwitch, SwitchEvent, SwitchParams};
pub use endurance::{EnduranceModel, WearState};
pub use error::DeviceError;
pub use ideal::IdealMemristor;
pub use linear_drift::LinearIonDrift;
pub use stanford::{StanfordAsu, StanfordParams};
pub use sweep::{HysteresisSweep, IvPoint, IvTrace};
pub use variability::{DeviceSample, VariabilityModel};
pub use vteam::{Vteam, VteamParams};

use memcim_units::{Amps, Ohms, Seconds, Siemens, Volts};

/// A two-terminal memristive device with internal state.
///
/// The contract mirrors what a circuit simulator needs:
/// [`current`](MemristiveDevice::current) and
/// [`conductance`](MemristiveDevice::conductance) evaluate the device at its
/// *present* state (used inside a Newton solve where the state is frozen),
/// while [`step`](MemristiveDevice::step) advances the state after a
/// converged timestep.
pub trait MemristiveDevice {
    /// Instantaneous current for an applied voltage at the present state.
    fn current(&self, v: Volts) -> Amps;

    /// Small-signal conductance `dI/dV` at the present state and bias.
    ///
    /// Used by Newton linearization in the transient solver. For ohmic
    /// models this is bias-independent.
    fn conductance(&self, v: Volts) -> Siemens;

    /// Advances the internal state by `dt` under an applied voltage.
    fn step(&mut self, v: Volts, dt: Seconds);

    /// Normalized state in `\[0, 1\]`, where `1` is fully ON (low resistance).
    fn normalized_state(&self) -> f64;

    /// Forces the normalized state (clamped to `\[0, 1\]`).
    fn set_normalized_state(&mut self, state: f64);

    /// Static (chord) resistance `V/I` at the given read bias.
    ///
    /// Returns `Ohms::new(f64::INFINITY)` when the device carries no
    /// current at this bias.
    fn static_resistance(&self, v: Volts) -> Ohms {
        let i = self.current(v);
        if i.as_amps() == 0.0 {
            Ohms::new(f64::INFINITY)
        } else {
            v / i
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every model must be usable through the trait object interface
    /// (C-OBJECT): heterogeneous device collections appear in crossbars.
    #[test]
    fn models_are_object_safe() {
        let devices: Vec<Box<dyn MemristiveDevice>> = vec![
            Box::new(IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0))),
            Box::new(LinearIonDrift::hp_default()),
            Box::new(StanfordAsu::new(StanfordParams::default())),
            Box::new(BehavioralSwitch::new(SwitchParams::paper_fig9())),
        ];
        for d in &devices {
            let i = d.current(Volts::from_millivolts(100.0));
            assert!(i.as_amps().is_finite());
        }
    }

    #[test]
    fn static_resistance_is_infinite_at_zero_current() {
        let d = BehavioralSwitch::new(SwitchParams::paper_fig9());
        let r = d.static_resistance(Volts::ZERO);
        assert!(!r.as_ohms().is_finite() || r.as_ohms() > 0.0);
    }
}
