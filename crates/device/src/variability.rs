//! Device-to-device and cycle-to-cycle variability.
//!
//! RRAM resistance states are approximately lognormally distributed; the
//! scouting-logic reference margins (design decision D2) are stressed by
//! exactly this spread. The model here draws per-device `R_low`/`R_high`
//! pairs with independent device-to-device and cycle-to-cycle components.

use memcim_units::Ohms;
use rand::Rng;

/// Lognormal variability magnitudes (sigmas of `ln R`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariabilityModel {
    /// Device-to-device sigma of `ln R_low`.
    pub sigma_d2d_low: f64,
    /// Device-to-device sigma of `ln R_high`.
    pub sigma_d2d_high: f64,
    /// Cycle-to-cycle sigma applied on each re-program.
    pub sigma_c2c: f64,
}

impl VariabilityModel {
    /// A typical HfOₓ-class spread: 5 % on `R_low`, 25 % on `R_high`,
    /// 3 % cycle-to-cycle.
    pub fn typical() -> Self {
        Self { sigma_d2d_low: 0.05, sigma_d2d_high: 0.25, sigma_c2c: 0.03 }
    }

    /// No variability (deterministic nominal values).
    pub fn none() -> Self {
        Self { sigma_d2d_low: 0.0, sigma_d2d_high: 0.0, sigma_c2c: 0.0 }
    }

    /// Draws the device-to-device resistance pair for one cell.
    pub fn sample_device<R: Rng + ?Sized>(
        &self,
        nominal_low: Ohms,
        nominal_high: Ohms,
        rng: &mut R,
    ) -> DeviceSample {
        DeviceSample {
            r_low: lognormal(nominal_low, self.sigma_d2d_low, rng),
            r_high: lognormal(nominal_high, self.sigma_d2d_high, rng),
        }
    }

    /// Applies a fresh cycle-to-cycle perturbation to a device sample
    /// (called on each re-program).
    pub fn sample_cycle<R: Rng + ?Sized>(
        &self,
        device: &DeviceSample,
        rng: &mut R,
    ) -> DeviceSample {
        DeviceSample {
            r_low: lognormal(device.r_low, self.sigma_c2c, rng),
            r_high: lognormal(device.r_high, self.sigma_c2c, rng),
        }
    }
}

/// The per-device resistance pair drawn from a [`VariabilityModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSample {
    /// This device's low (ON) resistance.
    pub r_low: Ohms,
    /// This device's high (OFF) resistance.
    pub r_high: Ohms,
}

/// Draws `nominal · exp(σ·z)` with `z ~ N(0,1)` (Box–Muller, so only a
/// uniform source is needed).
fn lognormal<R: Rng + ?Sized>(nominal: Ohms, sigma: f64, rng: &mut R) -> Ohms {
    if sigma == 0.0 {
        return nominal;
    }
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
    Ohms::new(nominal.as_ohms() * (sigma * z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = VariabilityModel::none();
        let s = m.sample_device(Ohms::from_kilohms(1.0), Ohms::from_megohms(100.0), &mut rng);
        assert_eq!(s.r_low, Ohms::from_kilohms(1.0));
        assert_eq!(s.r_high, Ohms::from_megohms(100.0));
    }

    #[test]
    fn sample_median_tracks_nominal() {
        let mut rng = SmallRng::seed_from_u64(42);
        let m = VariabilityModel::typical();
        let mut lows: Vec<f64> = (0..4001)
            .map(|_| {
                m.sample_device(Ohms::from_kilohms(1.0), Ohms::from_megohms(100.0), &mut rng)
                    .r_low
                    .as_ohms()
            })
            .collect();
        lows.sort_by(f64::total_cmp);
        let median = lows[lows.len() / 2];
        assert!((median - 1000.0).abs() / 1000.0 < 0.05, "median = {median}");
    }

    #[test]
    fn spread_grows_with_sigma() {
        let mut rng = SmallRng::seed_from_u64(7);
        let tight = VariabilityModel { sigma_d2d_high: 0.05, ..VariabilityModel::typical() };
        let wide = VariabilityModel { sigma_d2d_high: 0.5, ..VariabilityModel::typical() };
        let spread = |m: &VariabilityModel, rng: &mut SmallRng| {
            let xs: Vec<f64> = (0..2000)
                .map(|_| {
                    m.sample_device(Ohms::from_kilohms(1.0), Ohms::from_megohms(100.0), rng)
                        .r_high
                        .as_ohms()
                        .ln()
                })
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(spread(&wide, &mut rng) > spread(&tight, &mut rng) * 4.0);
    }

    #[test]
    fn samples_are_always_positive() {
        let mut rng = SmallRng::seed_from_u64(9);
        let m = VariabilityModel { sigma_d2d_low: 1.0, sigma_d2d_high: 1.0, sigma_c2c: 1.0 };
        for _ in 0..5000 {
            let s = m.sample_device(Ohms::from_kilohms(1.0), Ohms::from_megohms(100.0), &mut rng);
            assert!(s.r_low.as_ohms() > 0.0);
            assert!(s.r_high.as_ohms() > 0.0);
            let c = m.sample_cycle(&s, &mut rng);
            assert!(c.r_low.as_ohms() > 0.0);
        }
    }
}
