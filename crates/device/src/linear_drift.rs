//! The HP linear ion drift model (Strukov et al., *Nature* 2008).

use crate::window::Window;
use crate::MemristiveDevice;
use memcim_units::{Amps, Hertz, Ohms, Seconds, Siemens, Volts};

/// The HP TiO₂ linear ion drift memristor.
///
/// The doped-region width `w ∈ [0, D]` is tracked as the normalized state
/// `x = w / D`. Resistance and state dynamics follow the original model:
///
/// ```text
/// R(x)   = r_on·x + r_off·(1 − x)
/// dx/dt  = (µv · r_on / D²) · i(t) · f(x, sign i)
/// ```
///
/// where `f` is a boundary [`Window`] function (design decision D1). The
/// model reproduces the frequency-dependent pinched hysteresis of the
/// paper's Fig. 1b: driven at its characteristic frequency the loop is
/// wide open, and the lobes collapse at ~10× that frequency.
///
/// # Examples
///
/// ```
/// use memcim_device::{LinearIonDrift, MemristiveDevice};
/// use memcim_units::{Seconds, Volts};
///
/// let mut d = LinearIonDrift::hp_default();
/// let before = d.normalized_state();
/// d.step(Volts::new(1.0), Seconds::new(1.0e-3));
/// assert!(d.normalized_state() > before);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearIonDrift {
    r_on: Ohms,
    r_off: Ohms,
    /// Dopant mobility µv in m²/(V·s).
    mobility: f64,
    /// Film thickness D in metres.
    thickness: f64,
    window: Window,
    /// Normalized doped-region width, 1 = fully ON.
    x: f64,
}

impl LinearIonDrift {
    /// Creates a drift model from explicit physical parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or if `r_on >= r_off`.
    pub fn new(r_on: Ohms, r_off: Ohms, mobility: f64, thickness: f64, window: Window) -> Self {
        assert!(r_on.as_ohms() > 0.0, "r_on must be > 0");
        assert!(r_off.as_ohms() > r_on.as_ohms(), "r_off must exceed r_on");
        assert!(mobility > 0.0, "mobility must be > 0");
        assert!(thickness > 0.0, "thickness must be > 0");
        Self { r_on, r_off, mobility, thickness, window, x: 0.5 }
    }

    /// The canonical HP device: `r_on = 100 Ω`, `r_off = 16 kΩ`,
    /// `µv = 10⁻¹⁴ m²/(V·s)`, `D = 10 nm`, Biolek window (`p = 2`).
    ///
    /// The Biolek window is the default because full-swing sinusoidal
    /// drives (the Fig. 1b experiment) park the state at a boundary once
    /// per half-cycle, where Joglekar's symmetric window would freeze it
    /// permanently (the boundary-stick problem).
    pub fn hp_default() -> Self {
        Self::new(
            Ohms::new(100.0),
            Ohms::from_kilohms(16.0),
            1.0e-14,
            10.0e-9,
            Window::Biolek { p: 2 },
        )
    }

    /// Replaces the window function (builder-style).
    #[must_use]
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// The drift gain `k = µv·r_on/D²` in 1/(A·s): the state velocity per
    /// ampere of device current.
    pub fn drift_gain(&self) -> f64 {
        self.mobility * self.r_on.as_ohms() / (self.thickness * self.thickness)
    }

    /// Present resistance `R(x)`.
    pub fn resistance(&self) -> Ohms {
        Ohms::new(self.r_on.as_ohms() * self.x + self.r_off.as_ohms() * (1.0 - self.x))
    }

    /// The excitation frequency at which a sinusoid of amplitude `v0`
    /// traverses roughly the full state range in one half-period.
    ///
    /// Used by the hysteresis benches to choose frequencies: at
    /// `f ≈ f_c` the loop is maximally open; at `10·f_c` it collapses
    /// towards a straight line (the Fig. 1b shrinking-lobe signature).
    pub fn characteristic_frequency(&self, v0: Volts) -> Hertz {
        // Half period T/2 such that Δx ≈ k · ī · T/2 = 1, with the mean
        // rectified current ī ≈ (2/π)·v0/R̄ at the mid-state resistance.
        let r_mid = (self.r_on.as_ohms() + self.r_off.as_ohms()) / 2.0;
        let mean_current = (2.0 / core::f64::consts::PI) * v0.as_volts() / r_mid;
        let half_period = 1.0 / (self.drift_gain() * mean_current);
        Hertz::new(1.0 / (2.0 * half_period))
    }

    /// The window function in use.
    pub fn window(&self) -> Window {
        self.window
    }
}

impl MemristiveDevice for LinearIonDrift {
    fn current(&self, v: Volts) -> Amps {
        v / self.resistance()
    }

    fn conductance(&self, _v: Volts) -> Siemens {
        self.resistance().to_siemens()
    }

    fn step(&mut self, v: Volts, dt: Seconds) {
        // Sub-step for accuracy when the caller takes a large dt relative
        // to the state dynamics (forward Euler inside).
        let i = self.current(v).as_amps();
        let rate = self.drift_gain() * i;
        let total = rate.abs() * dt.as_seconds();
        let substeps = (total / 0.01).ceil().max(1.0) as usize;
        let h = dt.as_seconds() / substeps as f64;
        for _ in 0..substeps {
            let i_now = self.current(v).as_amps();
            let f = self.window.evaluate(self.x, i_now.signum());
            self.x = (self.x + self.drift_gain() * i_now * f * h).clamp(0.0, 1.0);
        }
    }

    fn normalized_state(&self) -> f64 {
        self.x
    }

    fn set_normalized_state(&mut self, state: f64) {
        self.x = state.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_units::{approx_eq, RelTol};

    #[test]
    fn resistance_interpolates_linearly_in_state() {
        let mut d = LinearIonDrift::hp_default();
        d.set_normalized_state(0.0);
        assert!(approx_eq(d.resistance().as_ohms(), 16_000.0, RelTol::new(1e-9)));
        d.set_normalized_state(1.0);
        assert!(approx_eq(d.resistance().as_ohms(), 100.0, RelTol::new(1e-9)));
        d.set_normalized_state(0.5);
        assert!(approx_eq(d.resistance().as_ohms(), 8_050.0, RelTol::new(1e-9)));
    }

    #[test]
    fn positive_bias_drives_towards_on() {
        let mut d = LinearIonDrift::hp_default();
        let x0 = d.normalized_state();
        d.step(Volts::new(1.0), Seconds::new(1.0e-3));
        assert!(d.normalized_state() > x0);
    }

    #[test]
    fn negative_bias_drives_towards_off() {
        let mut d = LinearIonDrift::hp_default();
        let x0 = d.normalized_state();
        d.step(Volts::new(-1.0), Seconds::new(1.0e-3));
        assert!(d.normalized_state() < x0);
    }

    #[test]
    fn state_saturates_without_overshoot() {
        let mut d = LinearIonDrift::hp_default().with_window(Window::Rectangular);
        for _ in 0..100 {
            d.step(Volts::new(2.0), Seconds::new(0.01));
        }
        assert!(d.normalized_state() <= 1.0);
        assert!(d.normalized_state() > 0.99);
        // And it must come back down — no boundary lock-up for
        // rectangular windows (handled by direction-aware evaluation).
        for _ in 0..100 {
            d.step(Volts::new(-2.0), Seconds::new(0.01));
        }
        assert!(d.normalized_state() < 0.01);
    }

    #[test]
    fn joglekar_window_sticks_at_boundary_biolek_does_not() {
        // Classic observation motivating Biolek's window: once hard at a
        // bound, Joglekar's f(x)=0 freezes the state in both directions.
        let mut joglekar = LinearIonDrift::hp_default().with_window(Window::Joglekar { p: 2 });
        joglekar.set_normalized_state(1.0);
        joglekar.step(Volts::new(-2.0), Seconds::new(0.05));
        assert!(joglekar.normalized_state() > 0.999, "joglekar should stick");

        let mut biolek = LinearIonDrift::hp_default().with_window(Window::Biolek { p: 2 });
        biolek.set_normalized_state(1.0);
        biolek.step(Volts::new(-2.0), Seconds::new(0.05));
        assert!(biolek.normalized_state() < 0.999, "biolek should release");
    }

    #[test]
    fn characteristic_frequency_is_positive_and_scales_with_amplitude() {
        let d = LinearIonDrift::hp_default();
        let f1 = d.characteristic_frequency(Volts::new(0.5));
        let f2 = d.characteristic_frequency(Volts::new(2.0));
        assert!(f1.as_hertz() > 0.0);
        // Stronger drive ⇒ state sweeps faster ⇒ higher frequency needed.
        assert!(f2.as_hertz() > f1.as_hertz());
    }

    #[test]
    fn drift_gain_matches_hand_computation() {
        let d = LinearIonDrift::hp_default();
        // k = 1e-14 · 100 / (1e-8)² = 1e4.
        assert!(approx_eq(d.drift_gain(), 1.0e4, RelTol::new(1e-9)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// State stays in \[0,1\] under arbitrary drive sequences, for every
        /// window.
        #[test]
        fn state_bounded_under_random_drive(
            volts in proptest::collection::vec(-3.0_f64..3.0, 1..100),
            which in 0usize..3,
        ) {
            let window = [
                Window::Rectangular,
                Window::Joglekar { p: 2 },
                Window::Biolek { p: 2 },
            ][which];
            let mut d = LinearIonDrift::hp_default().with_window(window);
            for v in volts {
                d.step(Volts::new(v), Seconds::new(1.0e-4));
                let x = d.normalized_state();
                prop_assert!((0.0..=1.0).contains(&x), "x = {x}");
            }
        }
    }
}
