//! Error type for device-model construction and operation.

use core::fmt;

/// Errors produced by device-model constructors and programming operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A model parameter was outside its physical domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be > 0"`.
        constraint: &'static str,
    },
    /// The device has exceeded its endurance budget and no longer switches.
    EnduranceExhausted {
        /// Number of completed program cycles at failure.
        cycles: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter { name, value, constraint } => {
                write!(f, "invalid device parameter {name} = {value}: {constraint}")
            }
            DeviceError::EnduranceExhausted { cycles } => {
                write!(f, "device endurance exhausted after {cycles} program cycles")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e =
            DeviceError::InvalidParameter { name: "r_on", value: -1.0, constraint: "must be > 0" };
        let msg = e.to_string();
        assert!(msg.starts_with("invalid device parameter"));
        assert!(msg.contains("r_on"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
