//! Endurance (program-cycle wear) modelling.
//!
//! The paper repeatedly flags "low endurance" as the key drawback of
//! memristive designs (Sections III.C and IV.C). This module provides the
//! wear bookkeeping used by [`crate::BehavioralSwitch`] and by the
//! crossbar's wear map: a cycle budget, a gradual OFF-resistance
//! degradation, and a hard failure mode (stuck cell) when the budget is
//! exhausted.

use crate::DeviceError;
use memcim_units::Ohms;

/// Wear accumulated by a single device.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WearState {
    cycles: u64,
    failed: bool,
}

impl WearState {
    /// A fresh, unworn device.
    pub const fn new() -> Self {
        Self { cycles: 0, failed: false }
    }

    /// Completed program (SET or RESET) cycles.
    pub const fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether the device has hard-failed (stuck).
    pub const fn is_failed(&self) -> bool {
        self.failed
    }
}

/// An endurance model: cycle budget plus gradual window closure.
///
/// The dominant RRAM wear-out signature is the resistance window closing
/// from the OFF side (the filament can no longer be fully dissolved), so
/// the effective OFF resistance decays towards the ON resistance as the
/// cycle budget is consumed:
///
/// ```text
/// r_off(n) = r_on · ratio^(1 − drift·(n/max)^2)     for n ≤ max
/// ```
///
/// At `n = max` the device hard-fails stuck-ON.
///
/// # Examples
///
/// ```
/// use memcim_device::{EnduranceModel, WearState};
/// use memcim_units::Ohms;
///
/// let model = EnduranceModel::new(1_000_000);
/// let mut wear = WearState::new();
/// model.record_cycle(&mut wear).expect("fresh device");
/// let fresh = model.effective_r_off(Ohms::new(1e3), Ohms::new(1e8), &WearState::new());
/// assert!(fresh.as_ohms() > 9.9e7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    max_cycles: u64,
    /// Fraction of the (log-domain) resistance window lost at end of life.
    window_drift: f64,
}

impl EnduranceModel {
    /// Creates a model with the given cycle budget and the default 30 %
    /// log-window drift at end of life.
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` is zero.
    pub fn new(max_cycles: u64) -> Self {
        Self::with_window_drift(max_cycles, 0.3)
    }

    /// Creates a model with an explicit end-of-life window drift fraction.
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` is zero or `window_drift` is outside `[0, 1)`.
    pub fn with_window_drift(max_cycles: u64, window_drift: f64) -> Self {
        assert!(max_cycles > 0, "max_cycles must be > 0");
        assert!((0.0..1.0).contains(&window_drift), "window_drift must be in [0, 1)");
        Self { max_cycles, window_drift }
    }

    /// The cycle budget.
    pub const fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Records one completed program cycle.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EnduranceExhausted`] once the budget is
    /// consumed; the wear state is marked failed and stays failed.
    pub fn record_cycle(&self, wear: &mut WearState) -> Result<(), DeviceError> {
        if wear.failed {
            return Err(DeviceError::EnduranceExhausted { cycles: wear.cycles });
        }
        wear.cycles += 1;
        if wear.cycles >= self.max_cycles {
            wear.failed = true;
            return Err(DeviceError::EnduranceExhausted { cycles: wear.cycles });
        }
        Ok(())
    }

    /// Effective OFF resistance after wear: the log-domain window shrinks
    /// quadratically with consumed life.
    pub fn effective_r_off(&self, r_on: Ohms, r_off_fresh: Ohms, wear: &WearState) -> Ohms {
        let life = (wear.cycles as f64 / self.max_cycles as f64).min(1.0);
        let full_window = (r_off_fresh.as_ohms() / r_on.as_ohms()).ln();
        let kept = 1.0 - self.window_drift * life * life;
        Ohms::new(r_on.as_ohms() * (full_window * kept).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_device_has_full_window() {
        let m = EnduranceModel::new(100);
        let r = m.effective_r_off(Ohms::new(1e3), Ohms::new(1e8), &WearState::new());
        assert!((r.as_ohms() - 1e8).abs() / 1e8 < 1e-12);
    }

    #[test]
    fn window_closes_monotonically_with_wear() {
        let m = EnduranceModel::new(1_000);
        let mut wear = WearState::new();
        let mut last = f64::INFINITY;
        for _ in 0..999 {
            m.record_cycle(&mut wear).expect("within budget");
            let r = m.effective_r_off(Ohms::new(1e3), Ohms::new(1e8), &wear).as_ohms();
            assert!(r <= last + 1.0);
            last = r;
        }
        // At 99.9 % of life with 30 % log-window drift the OFF state has
        // dropped by orders of magnitude but is still far above R_ON.
        assert!(last < 5.0e7);
        assert!(last > 1.0e4);
    }

    #[test]
    fn exhaustion_fails_hard_and_stays_failed() {
        let m = EnduranceModel::new(3);
        let mut wear = WearState::new();
        assert!(m.record_cycle(&mut wear).is_ok());
        assert!(m.record_cycle(&mut wear).is_ok());
        let err = m.record_cycle(&mut wear).expect_err("third cycle exhausts");
        assert_eq!(err, DeviceError::EnduranceExhausted { cycles: 3 });
        assert!(wear.is_failed());
        // Further cycles keep failing without advancing the counter.
        let err2 = m.record_cycle(&mut wear).expect_err("still failed");
        assert_eq!(err2, DeviceError::EnduranceExhausted { cycles: 3 });
        assert_eq!(wear.cycles(), 3);
    }

    #[test]
    #[should_panic(expected = "max_cycles must be > 0")]
    fn zero_budget_panics() {
        let _ = EnduranceModel::new(0);
    }
}
