//! Filament-gap RRAM compact model in the style of the ASU/Stanford model.

use crate::MemristiveDevice;
use memcim_units::{Amps, Seconds, Siemens, Volts};

/// Boltzmann constant expressed in eV/K.
const K_B_EV: f64 = 8.617_333e-5;

/// Parameters of the [`StanfordAsu`] filament-gap model.
///
/// The model follows the structure of the ASU/Stanford RRAM compact model
/// (Chen & Yu, *IEEE TED* 2015 — reference \[28\] of the paper): a tunnelling
/// gap `g` between filament tip and electrode controls the current
/// exponentially, and the gap evolves with a field-accelerated,
/// temperature-activated `sinh` law.
///
/// ```text
/// I(g, V)  = i0 · exp(−g / g0) · sinh(V / v0)
/// dg/dt    = −velocity0 · exp(−Ea / kT) · sinh(γ·a0·V / (tox·kT/q))
/// γ(g)     = gamma0 − beta · (g / g1)³
/// ```
///
/// Defaults are calibrated so that at a 0.1 V read the ON state
/// (`g = g_min`) is ≈1 kΩ and the OFF state (`g = g_max`) is in the
/// 100 MΩ decade, matching the two-state projection the paper simulates
/// ("high and low resistances are approximately 100 MΩ and 1 kΩ"), and so
/// that a 1.3 V SET pulse completes in ~10 ns. Local filament heating is
/// not modelled (temperature is held at `temperature`); this simplification
/// is recorded in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StanfordParams {
    /// Minimum tunnelling gap (fully ON), metres.
    pub g_min: f64,
    /// Maximum tunnelling gap (fully OFF), metres.
    pub g_max: f64,
    /// Gap decay constant for the current, metres.
    pub g0: f64,
    /// Current prefactor, amperes.
    pub i0: f64,
    /// Voltage scale of the current `sinh`, volts.
    pub v0: f64,
    /// Activation energy for ion migration, eV.
    pub ea_ev: f64,
    /// Attempt velocity prefactor, m/s.
    pub velocity0: f64,
    /// Field-enhancement factor at zero gap.
    pub gamma0: f64,
    /// Gap dependence strength of the enhancement factor.
    pub beta: f64,
    /// Gap normalization for the enhancement factor, metres.
    pub g1: f64,
    /// Atomic hopping distance, metres.
    pub a0: f64,
    /// Oxide thickness, metres.
    pub tox: f64,
    /// Ambient temperature, kelvin.
    pub temperature: f64,
}

impl Default for StanfordParams {
    fn default() -> Self {
        Self {
            g_min: 0.1e-9,
            g_max: 1.8e-9,
            g0: 0.15e-9,
            i0: 4.75e-4,
            v0: 0.25,
            ea_ev: 0.6,
            velocity0: 0.01,
            gamma0: 16.5,
            beta: 1.0,
            g1: 1.0e-9,
            a0: 0.25e-9,
            tox: 5.0e-9,
            temperature: 300.0,
        }
    }
}

impl StanfordParams {
    /// Validates physical constraints, returning a descriptive panic
    /// message target for [`StanfordAsu::new`].
    fn validate(&self) {
        assert!(self.g_min > 0.0 && self.g_max > self.g_min, "need 0 < g_min < g_max");
        assert!(self.g0 > 0.0, "g0 must be > 0");
        assert!(self.i0 > 0.0, "i0 must be > 0");
        assert!(self.v0 > 0.0, "v0 must be > 0");
        assert!(self.velocity0 > 0.0, "velocity0 must be > 0");
        assert!(self.tox > 0.0, "tox must be > 0");
        assert!(self.temperature > 0.0, "temperature must be > 0");
    }
}

/// A filament-gap RRAM device (see [`StanfordParams`] for the equations).
///
/// # Examples
///
/// ```
/// use memcim_device::{MemristiveDevice, StanfordAsu, StanfordParams};
/// use memcim_units::{Seconds, Volts};
///
/// let mut cell = StanfordAsu::new(StanfordParams::default());
/// cell.set_normalized_state(0.0); // fully OFF
/// // A 1.3 V SET pulse of 50 ns programs the cell ON.
/// cell.step(Volts::new(1.3), Seconds::from_nanoseconds(50.0));
/// assert!(cell.normalized_state() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StanfordAsu {
    params: StanfordParams,
    /// Tunnelling gap, metres (the state variable).
    gap: f64,
}

impl StanfordAsu {
    /// Creates a device at the fully ON state.
    ///
    /// # Panics
    ///
    /// Panics if any parameter violates its physical constraint (all
    /// lengths, currents, voltages and temperatures strictly positive,
    /// `g_min < g_max`).
    pub fn new(params: StanfordParams) -> Self {
        params.validate();
        Self { params, gap: params.g_min }
    }

    /// The model parameters.
    pub fn params(&self) -> &StanfordParams {
        &self.params
    }

    /// Present tunnelling gap in metres.
    pub fn gap(&self) -> f64 {
        self.gap
    }

    /// Gap growth/shrink velocity (m/s) at the given bias.
    fn gap_velocity(&self, v: Volts) -> f64 {
        let p = &self.params;
        let kt_ev = K_B_EV * p.temperature;
        let gamma = p.gamma0 - p.beta * (self.gap / p.g1).powi(3);
        let field_arg = gamma * p.a0 * v.as_volts() / (p.tox * kt_ev);
        -p.velocity0 * (-p.ea_ev / kt_ev).exp() * field_arg.sinh()
    }
}

impl MemristiveDevice for StanfordAsu {
    fn current(&self, v: Volts) -> Amps {
        let p = &self.params;
        Amps::new(p.i0 * (-self.gap / p.g0).exp() * (v.as_volts() / p.v0).sinh())
    }

    fn conductance(&self, v: Volts) -> Siemens {
        let p = &self.params;
        Siemens::new(p.i0 * (-self.gap / p.g0).exp() * (v.as_volts() / p.v0).cosh() / p.v0)
    }

    fn step(&mut self, v: Volts, dt: Seconds) {
        // Adaptive sub-stepping: the sinh law is stiff near programming
        // voltages, so limit each Euler substep to 2 % of the gap range.
        let p = self.params;
        let range = p.g_max - p.g_min;
        let mut remaining = dt.as_seconds();
        let mut guard = 0;
        while remaining > 0.0 && guard < 100_000 {
            guard += 1;
            let vel = self.gap_velocity(v);
            if vel == 0.0 {
                break;
            }
            let max_h = 0.02 * range / vel.abs();
            let h = remaining.min(max_h);
            self.gap = (self.gap + vel * h).clamp(p.g_min, p.g_max);
            remaining -= h;
            // Once pinned at a bound with velocity still pushing outward,
            // further substeps cannot change anything.
            if (self.gap == p.g_min && vel < 0.0) || (self.gap == p.g_max && vel > 0.0) {
                break;
            }
        }
    }

    fn normalized_state(&self) -> f64 {
        let p = &self.params;
        (p.g_max - self.gap) / (p.g_max - p.g_min)
    }

    fn set_normalized_state(&mut self, state: f64) {
        let p = &self.params;
        let s = state.clamp(0.0, 1.0);
        self.gap = p.g_max - s * (p.g_max - p.g_min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const READ: Volts = Volts::new(0.1);

    #[test]
    fn on_state_is_kilohm_class() {
        let cell = StanfordAsu::new(StanfordParams::default());
        let r = cell.static_resistance(READ).as_ohms();
        assert!((500.0..2_000.0).contains(&r), "R_on = {r}");
    }

    #[test]
    fn off_state_is_in_the_hundred_megohm_decade() {
        let mut cell = StanfordAsu::new(StanfordParams::default());
        cell.set_normalized_state(0.0);
        let r = cell.static_resistance(READ).as_ohms();
        assert!((5.0e7..5.0e8).contains(&r), "R_off = {r}");
    }

    #[test]
    fn on_off_ratio_exceeds_four_decades() {
        let mut cell = StanfordAsu::new(StanfordParams::default());
        let r_on = cell.static_resistance(READ).as_ohms();
        cell.set_normalized_state(0.0);
        let r_off = cell.static_resistance(READ).as_ohms();
        assert!(r_off / r_on > 1.0e4, "ratio = {}", r_off / r_on);
    }

    #[test]
    fn set_pulse_programs_within_tens_of_nanoseconds() {
        let mut cell = StanfordAsu::new(StanfordParams::default());
        cell.set_normalized_state(0.0);
        cell.step(Volts::new(1.3), Seconds::from_nanoseconds(50.0));
        assert!(cell.normalized_state() > 0.9, "state = {}", cell.normalized_state());
    }

    #[test]
    fn negative_bias_resets_the_cell() {
        let mut cell = StanfordAsu::new(StanfordParams::default());
        assert!(cell.normalized_state() > 0.99);
        cell.step(Volts::new(-1.5), Seconds::from_microseconds(10.0));
        assert!(cell.normalized_state() < 0.5, "state = {}", cell.normalized_state());
    }

    #[test]
    fn read_voltage_causes_negligible_disturb() {
        let mut cell = StanfordAsu::new(StanfordParams::default());
        cell.set_normalized_state(0.0);
        let before = cell.normalized_state();
        // A million 1 µs reads at 0.1 V.
        cell.step(READ, Seconds::new(1.0));
        let drift = (cell.normalized_state() - before).abs();
        assert!(drift < 0.05, "read disturb = {drift}");
    }

    #[test]
    fn current_is_odd_in_voltage() {
        let cell = StanfordAsu::new(StanfordParams::default());
        let ip = cell.current(Volts::new(0.2)).as_amps();
        let in_ = cell.current(Volts::new(-0.2)).as_amps();
        assert!((ip + in_).abs() < 1e-18 * ip.abs().max(1.0));
    }

    #[test]
    fn conductance_matches_finite_difference() {
        let cell = StanfordAsu::new(StanfordParams::default());
        let v = Volts::new(0.15);
        let h = 1e-6;
        let di = (cell.current(Volts::new(0.15 + h)).as_amps()
            - cell.current(Volts::new(0.15 - h)).as_amps())
            / (2.0 * h);
        let g = cell.conductance(v).as_siemens();
        assert!((di - g).abs() / g.abs() < 1e-5, "fd = {di}, analytic = {g}");
    }

    #[test]
    #[should_panic(expected = "g_min < g_max")]
    fn inverted_gap_bounds_panic() {
        let params = StanfordParams { g_min: 2.0e-9, g_max: 1.0e-9, ..Default::default() };
        let _ = StanfordAsu::new(params);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Gap stays inside [g_min, g_max] for arbitrary pulse trains.
        #[test]
        fn gap_bounded(pulses in proptest::collection::vec((-2.0_f64..2.0, 1.0_f64..100.0), 1..30)) {
            let mut cell = StanfordAsu::new(StanfordParams::default());
            for (v, ns) in pulses {
                cell.step(Volts::new(v), Seconds::from_nanoseconds(ns));
                let g = cell.gap();
                prop_assert!(g >= cell.params().g_min - 1e-15);
                prop_assert!(g <= cell.params().g_max + 1e-15);
            }
        }

        /// normalized_state/set_normalized_state round-trip.
        #[test]
        fn state_round_trip(s in 0.0_f64..1.0) {
            let mut cell = StanfordAsu::new(StanfordParams::default());
            cell.set_normalized_state(s);
            prop_assert!((cell.normalized_state() - s).abs() < 1e-12);
        }
    }
}
