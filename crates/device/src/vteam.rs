//! The VTEAM voltage-threshold memristor model.

use crate::window::Window;
use crate::MemristiveDevice;
use memcim_units::{Amps, Ohms, Seconds, Siemens, Volts};

/// Parameters of the [`Vteam`] model.
///
/// VTEAM (Kvatinsky et al., *IEEE TCAS-II* 2015) is the standard
/// *voltage-threshold* memristor model: the state is strictly frozen
/// below the thresholds and moves with a polynomial super-threshold
/// drive —
///
/// ```text
/// dx/dt = +k_set   · (v/v_set − 1)^α    for v ≥ v_set
/// dx/dt = −k_reset · (−v/v_reset − 1)^α for v ≤ −v_reset
/// dx/dt = 0                              otherwise
/// ```
///
/// with `x ∈ \[0, 1\]` (1 = ON), a boundary [`Window`], and
/// `R(x) = r_on·x + r_off·(1 − x)`.
///
/// This is the idealization the scouting-logic scheme relies on: reads at
/// `Vr = 0.1 V` are *exactly* disturb-free, unlike the drift models where
/// read disturb is merely slow. Defaults follow the paper's Fig. 9 device
/// corner (`v_set = 1.3 V`, `v_reset = 0.5 V`, nanosecond-class
/// programming).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VteamParams {
    /// ON (low) resistance.
    pub r_on: Ohms,
    /// OFF (high) resistance.
    pub r_off: Ohms,
    /// SET threshold (positive), volts.
    pub v_set: Volts,
    /// RESET threshold magnitude (applied negative), volts.
    pub v_reset: Volts,
    /// SET rate constant, 1/s at `v = 2·v_set`.
    pub k_set: f64,
    /// RESET rate constant, 1/s at `v = −2·v_reset`.
    pub k_reset: f64,
    /// Super-threshold drive exponent α.
    pub alpha: u32,
    /// Boundary window.
    pub window: Window,
}

impl Default for VteamParams {
    fn default() -> Self {
        Self {
            r_on: Ohms::from_kilohms(1.0),
            r_off: Ohms::from_megohms(100.0),
            v_set: Volts::new(1.3),
            v_reset: Volts::new(0.5),
            // Full transition in ~10 ns at 2× threshold drive.
            k_set: 1.0e8,
            k_reset: 5.0e7,
            alpha: 3,
            window: Window::Biolek { p: 2 },
        }
    }
}

impl VteamParams {
    fn validate(&self) {
        assert!(self.r_on.as_ohms() > 0.0, "r_on must be > 0");
        assert!(self.r_off.as_ohms() > self.r_on.as_ohms(), "r_off must exceed r_on");
        assert!(self.v_set.as_volts() > 0.0, "v_set must be > 0");
        assert!(self.v_reset.as_volts() > 0.0, "v_reset must be > 0");
        assert!(self.k_set > 0.0 && self.k_reset > 0.0, "rate constants must be > 0");
        assert!(self.alpha >= 1, "alpha must be >= 1");
    }
}

/// A VTEAM threshold memristor (see [`VteamParams`]).
///
/// # Examples
///
/// ```
/// use memcim_device::{MemristiveDevice, Vteam, VteamParams};
/// use memcim_units::{Seconds, Volts};
///
/// let mut cell = Vteam::new(VteamParams::default());
/// // Sub-threshold reads never move the state…
/// cell.step(Volts::new(0.4), Seconds::new(1.0));
/// assert_eq!(cell.normalized_state(), 0.0);
/// // …a SET pulse does.
/// cell.step(Volts::new(2.6), Seconds::from_nanoseconds(20.0));
/// assert!(cell.normalized_state() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Vteam {
    params: VteamParams,
    x: f64,
}

impl Vteam {
    /// Creates a device in the OFF state.
    ///
    /// # Panics
    ///
    /// Panics on nonphysical parameters (see [`VteamParams`] field
    /// constraints).
    pub fn new(params: VteamParams) -> Self {
        params.validate();
        Self { params, x: 0.0 }
    }

    /// The model parameters.
    pub fn params(&self) -> &VteamParams {
        &self.params
    }

    /// Present resistance `R(x)`.
    pub fn resistance(&self) -> Ohms {
        Ohms::new(
            self.params.r_on.as_ohms() * self.x + self.params.r_off.as_ohms() * (1.0 - self.x),
        )
    }

    /// State velocity at the given bias (0 in the threshold gap).
    fn velocity(&self, v: Volts) -> f64 {
        let p = &self.params;
        let vv = v.as_volts();
        if vv >= p.v_set.as_volts() {
            p.k_set * (vv / p.v_set.as_volts() - 1.0).powi(p.alpha as i32)
        } else if vv <= -p.v_reset.as_volts() {
            -p.k_reset * (-vv / p.v_reset.as_volts() - 1.0).powi(p.alpha as i32)
        } else {
            0.0
        }
    }
}

impl MemristiveDevice for Vteam {
    fn current(&self, v: Volts) -> Amps {
        v / self.resistance()
    }

    fn conductance(&self, _v: Volts) -> Siemens {
        self.resistance().to_siemens()
    }

    fn step(&mut self, v: Volts, dt: Seconds) {
        let mut remaining = dt.as_seconds();
        let mut guard = 0;
        while remaining > 0.0 && guard < 10_000 {
            guard += 1;
            let vel = self.velocity(v);
            if vel == 0.0 {
                break;
            }
            let f = self.params.window.evaluate(self.x, vel.signum());
            let rate = vel * f;
            if rate == 0.0 {
                break;
            }
            // Cap each substep at 2 % of the state range.
            let h = remaining.min(0.02 / rate.abs());
            self.x = (self.x + rate * h).clamp(0.0, 1.0);
            remaining -= h;
        }
    }

    fn normalized_state(&self) -> f64 {
        self.x
    }

    fn set_normalized_state(&mut self, state: f64) {
        self.x = state.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Vteam {
        Vteam::new(VteamParams::default())
    }

    #[test]
    fn strictly_no_drift_in_the_threshold_gap() {
        // The defining VTEAM property: v ∈ (−v_reset, v_set) never moves
        // the state, no matter how long it is applied.
        let mut c = cell();
        c.set_normalized_state(0.37);
        for v in [-0.49, -0.2, 0.0, 0.4, 1.29] {
            c.step(Volts::new(v), Seconds::new(100.0));
            assert_eq!(c.normalized_state(), 0.37, "v = {v}");
        }
    }

    #[test]
    fn set_completes_in_nanoseconds_at_double_threshold() {
        let mut c = cell();
        c.step(Volts::new(2.6), Seconds::from_nanoseconds(20.0));
        assert!(c.normalized_state() > 0.9, "x = {}", c.normalized_state());
        assert!(c.resistance().as_kilohms() < 15.0);
    }

    #[test]
    fn reset_is_polarity_sensitive() {
        let mut c = cell();
        c.set_normalized_state(1.0);
        // Positive over-threshold drives further ON (pinned), not OFF.
        c.step(Volts::new(2.0), Seconds::from_nanoseconds(50.0));
        assert_eq!(c.normalized_state(), 1.0);
        c.step(Volts::new(-1.0), Seconds::from_nanoseconds(100.0));
        assert!(c.normalized_state() < 0.1, "x = {}", c.normalized_state());
    }

    #[test]
    fn drive_strength_scales_polynomially() {
        // α = 3: doubling the overdrive multiplies the rate by 8, so the
        // barely-over-threshold case is much slower.
        let mut slow = cell();
        slow.step(Volts::new(1.43), Seconds::from_nanoseconds(20.0)); // 10 % overdrive
        let mut fast = cell();
        fast.step(Volts::new(1.56), Seconds::from_nanoseconds(20.0)); // 20 % overdrive
        assert!(fast.normalized_state() > 7.0 * slow.normalized_state().max(1e-12));
    }

    #[test]
    fn resistance_endpoints_match_parameters() {
        let mut c = cell();
        assert_eq!(c.resistance(), Ohms::from_megohms(100.0));
        c.set_normalized_state(1.0);
        assert_eq!(c.resistance(), Ohms::from_kilohms(1.0));
    }

    #[test]
    fn works_as_a_trait_object() {
        let mut boxed: Box<dyn MemristiveDevice> = Box::new(cell());
        assert!(boxed.current(Volts::new(0.1)).as_amps() > 0.0);
        boxed.step(Volts::new(2.6), Seconds::from_nanoseconds(20.0));
        assert!(boxed.normalized_state() > 0.9);
    }

    #[test]
    #[should_panic(expected = "v_set must be > 0")]
    fn invalid_threshold_panics() {
        let _ = Vteam::new(VteamParams { v_set: Volts::ZERO, ..Default::default() });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// State stays in \[0, 1\] under arbitrary pulse trains.
        #[test]
        fn state_bounded(pulses in proptest::collection::vec((-3.0_f64..3.0, 0.1_f64..50.0), 1..40)) {
            let mut c = Vteam::new(VteamParams::default());
            for (v, ns) in pulses {
                c.step(Volts::new(v), Seconds::from_nanoseconds(ns));
                let x = c.normalized_state();
                prop_assert!((0.0..=1.0).contains(&x), "x = {x}");
            }
        }

        /// Sub-threshold voltages are exactly state-neutral.
        #[test]
        fn threshold_gap_is_inert(
            x0 in 0.0_f64..1.0,
            v in -0.499_f64..1.299,
            secs in 0.0_f64..1000.0,
        ) {
            let mut c = Vteam::new(VteamParams::default());
            c.set_normalized_state(x0);
            c.step(Volts::new(v), Seconds::new(secs));
            prop_assert_eq!(c.normalized_state(), x0);
        }
    }
}
