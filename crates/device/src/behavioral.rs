//! Two-state behavioral switch — the device projection of the paper's
//! Fig. 8/9 experiment.

use crate::{DeviceError, EnduranceModel, MemristiveDevice, WearState};
use memcim_units::{Amps, Ohms, Seconds, Siemens, Volts};

/// Parameters of the two-state [`BehavioralSwitch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchParams {
    /// Low (ON, logic 1) resistance.
    pub r_low: Ohms,
    /// High (OFF, logic 0) resistance.
    pub r_high: Ohms,
    /// SET threshold: sustained `v ≥ v_set` programs the cell ON.
    pub v_set: Volts,
    /// RESET threshold: sustained `v ≤ −v_reset` programs the cell OFF.
    pub v_reset: Volts,
    /// Over-threshold dwell time required to complete a SET.
    pub t_set: Seconds,
    /// Over-threshold dwell time required to complete a RESET.
    pub t_reset: Seconds,
}

impl SwitchParams {
    /// The exact configuration of the paper's Fig. 9 HSPICE experiment:
    /// `RL ≈ 1 kΩ`, `RH ≈ 100 MΩ`, `VSET = 1.3 V`, `VRESET = 0.5 V`,
    /// with nanosecond-class programming times.
    pub fn paper_fig9() -> Self {
        Self {
            r_low: Ohms::from_kilohms(1.0),
            r_high: Ohms::from_megohms(100.0),
            v_set: Volts::new(1.3),
            v_reset: Volts::new(0.5),
            t_set: Seconds::from_nanoseconds(10.0),
            t_reset: Seconds::from_nanoseconds(20.0),
        }
    }

    fn validate(&self) {
        assert!(self.r_low.as_ohms() > 0.0, "r_low must be > 0");
        assert!(self.r_high.as_ohms() > self.r_low.as_ohms(), "r_high must exceed r_low");
        assert!(self.v_set.as_volts() > 0.0, "v_set must be > 0");
        assert!(self.v_reset.as_volts() > 0.0, "v_reset must be > 0");
        assert!(self.t_set.as_seconds() > 0.0, "t_set must be > 0");
        assert!(self.t_reset.as_seconds() > 0.0, "t_reset must be > 0");
    }
}

/// A completed programming event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchEvent {
    /// The cell switched to the low-resistance (logic 1) state.
    Set,
    /// The cell switched to the high-resistance (logic 0) state.
    Reset,
}

/// The paper's 1T1R storage element as a two-state threshold switch
/// (Fig. 8b), with dwell-time programming dynamics, endurance wear and a
/// stuck-at failure mode.
///
/// Below threshold the device is a passive resistor (non-destructive
/// read); an over-threshold voltage sustained for the programming dwell
/// time flips the state and consumes one endurance cycle.
///
/// # Examples
///
/// ```
/// use memcim_device::{BehavioralSwitch, MemristiveDevice, SwitchParams};
/// use memcim_units::{Seconds, Volts};
///
/// let mut cell = BehavioralSwitch::new(SwitchParams::paper_fig9());
/// assert!(!cell.is_on());
/// cell.step(Volts::new(1.5), Seconds::from_nanoseconds(15.0));
/// assert!(cell.is_on());
/// // Reads at 0.4 V (below both thresholds) never disturb the state.
/// cell.step(Volts::new(0.4), Seconds::from_microseconds(1.0));
/// assert!(cell.is_on());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BehavioralSwitch {
    params: SwitchParams,
    on: bool,
    /// Dwell accumulated towards the pending transition.
    dwell: Seconds,
    wear: WearState,
    endurance: Option<EnduranceModel>,
    events: u64,
    last_event: Option<SwitchEvent>,
}

impl BehavioralSwitch {
    /// Creates a switch in the OFF (high-resistance, logic 0) state.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate their constraints (resistances and
    /// thresholds strictly positive, `r_high > r_low`).
    pub fn new(params: SwitchParams) -> Self {
        params.validate();
        Self {
            params,
            on: false,
            dwell: Seconds::ZERO,
            wear: WearState::new(),
            endurance: None,
            events: 0,
            last_event: None,
        }
    }

    /// Attaches an endurance model (builder-style); programming then
    /// consumes cycles and the device hard-fails when the budget runs out.
    #[must_use]
    pub fn with_endurance(mut self, model: EnduranceModel) -> Self {
        self.endurance = Some(model);
        self
    }

    /// Whether the device is in the low-resistance (logic 1) state.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Present resistance, including endurance-induced OFF-window closure.
    pub fn resistance(&self) -> Ohms {
        if self.on {
            self.params.r_low
        } else if let Some(model) = &self.endurance {
            model.effective_r_off(self.params.r_low, self.params.r_high, &self.wear)
        } else {
            self.params.r_high
        }
    }

    /// Number of completed programming events.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// The most recent programming event, if any.
    pub fn last_event(&self) -> Option<SwitchEvent> {
        self.last_event
    }

    /// Accumulated wear.
    pub fn wear(&self) -> WearState {
        self.wear
    }

    /// Directly programs the state (a modelling convenience used when the
    /// programming pulse itself is not being simulated), consuming one
    /// endurance cycle if the state actually changes.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EnduranceExhausted`] if an attached
    /// endurance budget is consumed; the state then stays frozen.
    pub fn program(&mut self, on: bool) -> Result<(), DeviceError> {
        if self.on == on {
            return Ok(());
        }
        if self.wear.is_failed() {
            return Err(DeviceError::EnduranceExhausted { cycles: self.wear.cycles() });
        }
        if let Some(model) = self.endurance {
            // A failing record still allows this final cycle to complete:
            // real devices fail *after* the wear-out write.
            let result = model.record_cycle(&mut self.wear);
            self.apply(on);
            return result;
        }
        self.apply(on);
        Ok(())
    }

    fn apply(&mut self, on: bool) {
        self.on = on;
        self.events += 1;
        self.last_event = Some(if on { SwitchEvent::Set } else { SwitchEvent::Reset });
        self.dwell = Seconds::ZERO;
    }
}

impl MemristiveDevice for BehavioralSwitch {
    fn current(&self, v: Volts) -> Amps {
        v / self.resistance()
    }

    fn conductance(&self, _v: Volts) -> Siemens {
        self.resistance().to_siemens()
    }

    fn step(&mut self, v: Volts, dt: Seconds) {
        if self.wear.is_failed() {
            return; // stuck: electrically alive, no longer programmable
        }
        let p = &self.params;
        let setting = !self.on && v.as_volts() >= p.v_set.as_volts();
        let resetting = self.on && v.as_volts() <= -p.v_reset.as_volts();
        if setting || resetting {
            self.dwell += dt;
            let needed = if setting { p.t_set } else { p.t_reset };
            if self.dwell.as_seconds() >= needed.as_seconds() {
                // Ignore a failed record here: step() is infallible by
                // design; the failure latches in `wear` and freezes the
                // device from the *next* programming attempt on.
                let _ = self.program(setting);
            }
        } else {
            // Sub-threshold: the partial transition relaxes.
            self.dwell = Seconds::ZERO;
        }
    }

    fn normalized_state(&self) -> f64 {
        if self.on {
            1.0
        } else {
            0.0
        }
    }

    fn set_normalized_state(&mut self, state: f64) {
        self.on = state >= 0.5;
        self.dwell = Seconds::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> BehavioralSwitch {
        BehavioralSwitch::new(SwitchParams::paper_fig9())
    }

    #[test]
    fn fresh_cell_reads_high_resistance() {
        let c = cell();
        assert!(!c.is_on());
        assert_eq!(c.resistance(), Ohms::from_megohms(100.0));
    }

    #[test]
    fn set_requires_sustained_over_threshold_dwell() {
        let mut c = cell();
        // 5 ns at 1.5 V: below the 10 ns dwell — no switch.
        c.step(Volts::new(1.5), Seconds::from_nanoseconds(5.0));
        assert!(!c.is_on());
        // Another 6 ns completes the dwell.
        c.step(Volts::new(1.5), Seconds::from_nanoseconds(6.0));
        assert!(c.is_on());
        assert_eq!(c.last_event(), Some(SwitchEvent::Set));
    }

    #[test]
    fn sub_threshold_gap_resets_partial_dwell() {
        let mut c = cell();
        c.step(Volts::new(1.5), Seconds::from_nanoseconds(8.0));
        // Drop below threshold: partial transition relaxes.
        c.step(Volts::new(0.2), Seconds::from_nanoseconds(1.0));
        c.step(Volts::new(1.5), Seconds::from_nanoseconds(8.0));
        assert!(!c.is_on(), "8 ns + 8 ns with a gap must not switch");
    }

    #[test]
    fn reset_needs_negative_polarity() {
        let mut c = cell();
        c.program(true).expect("program on");
        // Positive 0.6 V (above v_reset magnitude but wrong sign): no-op.
        c.step(Volts::new(0.6), Seconds::from_microseconds(1.0));
        assert!(c.is_on());
        c.step(Volts::new(-0.6), Seconds::from_nanoseconds(25.0));
        assert!(!c.is_on());
        assert_eq!(c.last_event(), Some(SwitchEvent::Reset));
    }

    #[test]
    fn read_at_0v4_is_non_destructive() {
        // The Fig. 9 bit line is precharged to 0.4 V precisely because it
        // is below both programming thresholds.
        let mut c = cell();
        c.program(true).expect("program on");
        c.step(Volts::new(0.4), Seconds::new(1.0));
        assert!(c.is_on());
        c.program(false).expect("program off");
        c.step(Volts::new(0.4), Seconds::new(1.0));
        assert!(!c.is_on());
    }

    #[test]
    fn program_counts_events_and_skips_no_ops() {
        let mut c = cell();
        c.program(true).expect("on");
        c.program(true).expect("no-op");
        c.program(false).expect("off");
        assert_eq!(c.event_count(), 2);
    }

    #[test]
    fn endurance_exhaustion_freezes_the_cell() {
        let mut c = cell().with_endurance(EnduranceModel::new(2));
        c.program(true).expect("cycle 1");
        let err = c.program(false).expect_err("cycle 2 exhausts the budget");
        assert!(matches!(err, DeviceError::EnduranceExhausted { cycles: 2 }));
        // The wear-out write itself completed...
        assert!(!c.is_on());
        // ...but the cell is now stuck.
        assert!(c.program(true).is_err());
        assert!(!c.is_on());
        // And step()-driven programming is silently inert.
        c.step(Volts::new(1.5), Seconds::from_microseconds(1.0));
        assert!(!c.is_on());
    }

    #[test]
    fn worn_cell_shows_window_closure() {
        let model = EnduranceModel::new(1_000);
        let mut c = cell().with_endurance(model);
        for i in 0..800 {
            c.program(i % 2 == 0).expect("within budget");
        }
        assert!(!c.is_on());
        let r = c.resistance().as_ohms();
        assert!(r < 1.0e8, "worn R_off = {r}");
        assert!(r > 1.0e3, "window not fully closed: {r}");
    }

    #[test]
    fn state_by_trait_interface() {
        let mut c = cell();
        assert_eq!(c.normalized_state(), 0.0);
        c.set_normalized_state(1.0);
        assert_eq!(c.normalized_state(), 1.0);
        assert_eq!(c.resistance(), Ohms::from_kilohms(1.0));
    }

    #[test]
    fn logic_current_levels_match_fig3_premise() {
        // At the 0.1 V read of Fig. 3: logic 1 conducts ~100 µA, logic 0
        // conducts ~1 nA — five decades apart, the premise of sensing.
        let v = Volts::from_millivolts(100.0);
        let mut c = cell();
        let i_off = c.current(v).as_amps();
        c.set_normalized_state(1.0);
        let i_on = c.current(v).as_amps();
        assert!(i_on / i_off > 1.0e4);
    }
}
