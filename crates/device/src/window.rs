//! Boundary window functions for ion-drift memristor models.
//!
//! A window function `f(x)` multiplies the state derivative of a drift
//! model to keep the normalized state `x ∈ \[0, 1\]` inside its physical
//! bounds and to model the nonlinear dopant drift near the electrodes.
//! The choice of window is design decision **D1** in `DESIGN.md` and is
//! exercised by the window-function ablation bench.

/// Window function selection for [`crate::LinearIonDrift`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Window {
    /// `f(x) = 1` inside the open interval, hard clamping at the bounds.
    ///
    /// The original HP paper behaviour; suffers from the boundary-stick
    /// problem (state cannot leave a bound without current reversal
    /// handling, which the drift model performs explicitly).
    Rectangular,
    /// Joglekar window `f(x) = 1 − (2x − 1)^{2p}`.
    ///
    /// Symmetric; zero velocity at both bounds. Larger `p` flattens the
    /// window towards rectangular.
    Joglekar {
        /// Window order `p ≥ 1`.
        p: u32,
    },
    /// Biolek window `f(x, i) = 1 − (x − stp(−i))^{2p}` where
    /// `stp(i) = 1` for `i ≥ 0` and `0` otherwise.
    ///
    /// Direction-dependent: solves Joglekar's boundary-stick problem by
    /// letting the state leave a boundary as soon as the current reverses.
    Biolek {
        /// Window order `p ≥ 1`.
        p: u32,
    },
}

impl Window {
    /// Evaluates the window at normalized state `x ∈ \[0, 1\]` for a given
    /// current direction (`current_sign` is the sign of the device
    /// current, positive meaning drift towards the ON state).
    ///
    /// The result is always in `\[0, 1\]`.
    pub fn evaluate(self, x: f64, current_sign: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        let value = match self {
            Window::Rectangular => {
                // Unity inside, zero drive past a bound in the direction
                // that would exit it.
                if (x >= 1.0 && current_sign > 0.0) || (x <= 0.0 && current_sign < 0.0) {
                    0.0
                } else {
                    1.0
                }
            }
            Window::Joglekar { p } => 1.0 - (2.0 * x - 1.0).powi(2 * p.max(1) as i32),
            Window::Biolek { p } => {
                let stp = if -current_sign >= 0.0 { 1.0 } else { 0.0 };
                1.0 - (x - stp).powi(2 * p.max(1) as i32)
            }
        };
        value.clamp(0.0, 1.0)
    }
}

impl Default for Window {
    /// Joglekar with `p = 2`, a common literature default.
    fn default() -> Self {
        Window::Joglekar { p: 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joglekar_is_zero_at_bounds_and_one_at_center() {
        let w = Window::Joglekar { p: 1 };
        assert_eq!(w.evaluate(0.0, 1.0), 0.0);
        assert_eq!(w.evaluate(1.0, 1.0), 0.0);
        assert_eq!(w.evaluate(0.5, 1.0), 1.0);
    }

    #[test]
    fn joglekar_order_flattens_window() {
        let narrow = Window::Joglekar { p: 1 }.evaluate(0.25, 1.0);
        let wide = Window::Joglekar { p: 10 }.evaluate(0.25, 1.0);
        assert!(wide > narrow);
    }

    #[test]
    fn biolek_releases_boundary_on_current_reversal() {
        let w = Window::Biolek { p: 1 };
        // At the ON bound (x = 1) with positive current: stuck (f = 0).
        assert_eq!(w.evaluate(1.0, 1.0), 0.0);
        // Same position, reversed current: free to move (f = 1).
        assert_eq!(w.evaluate(1.0, -1.0), 1.0);
        // Mirrored at the OFF bound.
        assert_eq!(w.evaluate(0.0, -1.0), 0.0);
        assert_eq!(w.evaluate(0.0, 1.0), 1.0);
    }

    #[test]
    fn rectangular_blocks_only_outward_drive() {
        let w = Window::Rectangular;
        assert_eq!(w.evaluate(1.0, 1.0), 0.0);
        assert_eq!(w.evaluate(1.0, -1.0), 1.0);
        assert_eq!(w.evaluate(0.5, 1.0), 1.0);
    }

    #[test]
    fn default_is_joglekar_order_two() {
        assert_eq!(Window::default(), Window::Joglekar { p: 2 });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn any_window() -> impl Strategy<Value = Window> {
        prop_oneof![
            Just(Window::Rectangular),
            (1u32..6).prop_map(|p| Window::Joglekar { p }),
            (1u32..6).prop_map(|p| Window::Biolek { p }),
        ]
    }

    proptest! {
        /// Invariant: windows are bounded in \[0, 1\] for any state/current.
        #[test]
        fn window_bounded(
            w in any_window(),
            x in -0.5_f64..1.5,
            sign in prop_oneof![Just(-1.0), Just(0.0), Just(1.0)],
        ) {
            let f = w.evaluate(x, sign);
            prop_assert!((0.0..=1.0).contains(&f), "f = {f}");
        }

        /// Joglekar is symmetric about x = 0.5.
        #[test]
        fn joglekar_symmetric(p in 1u32..6, x in 0.0_f64..1.0) {
            let w = Window::Joglekar { p };
            let a = w.evaluate(x, 1.0);
            let b = w.evaluate(1.0 - x, 1.0);
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
