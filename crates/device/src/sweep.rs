//! Sinusoidal sweep driver and I–V trace analysis (Fig. 1b reproduction).

use crate::MemristiveDevice;
use memcim_units::{Hertz, Seconds, Volts};

/// One sample of an I–V trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvPoint {
    /// Simulation time, seconds.
    pub time: f64,
    /// Applied voltage, volts.
    pub voltage: f64,
    /// Device current, amperes.
    pub current: f64,
    /// Device normalized state at this instant.
    pub state: f64,
}

/// A recorded I–V trace with the analyses used by the Fig. 1b benches.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IvTrace {
    points: Vec<IvPoint>,
    points_per_cycle: usize,
}

impl IvTrace {
    /// The recorded samples.
    pub fn points(&self) -> &[IvPoint] {
        &self.points
    }

    /// Samples belonging to the final full excitation cycle (the settled
    /// loop, after initial-state transients died out).
    pub fn final_cycle(&self) -> &[IvPoint] {
        if self.points.len() < self.points_per_cycle {
            &self.points
        } else {
            &self.points[self.points.len() - self.points_per_cycle..]
        }
    }

    /// Peak current magnitude over the whole trace, amperes.
    pub fn max_current(&self) -> f64 {
        self.points.iter().map(|p| p.current.abs()).fold(0.0, f64::max)
    }

    /// Checks the pinched-hysteresis fingerprint: wherever the excitation
    /// crosses zero volts, the current magnitude must be below
    /// `tol · max_current`.
    ///
    /// This is *the* signature of a memristive device (paper Fig. 1b): the
    /// loop is a figure-eight pinched at the origin.
    pub fn is_pinched(&self, tol: f64) -> bool {
        let i_max = self.max_current();
        if i_max == 0.0 {
            return true;
        }
        let v_max = self.points.iter().map(|p| p.voltage.abs()).fold(0.0, f64::max);
        self.points
            .iter()
            .filter(|p| p.voltage.abs() < 1e-3 * v_max)
            .all(|p| p.current.abs() <= tol * i_max)
    }

    /// Area enclosed by the final-cycle loop in the I–V plane (shoelace
    /// formula), in volt·amperes. Shrinks with excitation frequency — the
    /// second Fig. 1b fingerprint.
    pub fn lobe_area(&self) -> f64 {
        let cycle = self.final_cycle();
        if cycle.len() < 3 {
            return 0.0;
        }
        let mut twice_area = 0.0;
        for k in 0..cycle.len() {
            let a = &cycle[k];
            let b = &cycle[(k + 1) % cycle.len()];
            twice_area += a.voltage * b.current - b.voltage * a.current;
        }
        (twice_area / 2.0).abs()
    }

    /// Writes the trace as CSV (`time,voltage,current,state` header plus
    /// one row per sample) — used by the plotting examples.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,voltage,current,state\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:.6e},{:.6e},{:.6e},{:.6e}\n",
                p.time, p.voltage, p.current, p.state
            ));
        }
        out
    }
}

/// A sinusoidal excitation sweep `v(t) = V₀·sin(2πft)` applied to a
/// device, recording the I–V trajectory.
///
/// # Examples
///
/// ```
/// use memcim_device::{HysteresisSweep, IdealMemristor};
/// use memcim_units::{Hertz, Ohms, Volts};
///
/// let mut device = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
/// let trace = HysteresisSweep::new(Volts::new(1.0), Hertz::new(1.0)).run(&mut device);
/// assert!(trace.is_pinched(1e-2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisSweep {
    amplitude: Volts,
    frequency: Hertz,
    cycles: u32,
    steps_per_cycle: usize,
}

impl HysteresisSweep {
    /// Creates a sweep with 2 cycles and 2000 steps per cycle.
    ///
    /// # Panics
    ///
    /// Panics if amplitude or frequency is not strictly positive.
    pub fn new(amplitude: Volts, frequency: Hertz) -> Self {
        assert!(amplitude.as_volts() > 0.0, "amplitude must be > 0");
        assert!(frequency.as_hertz() > 0.0, "frequency must be > 0");
        Self { amplitude, frequency, cycles: 2, steps_per_cycle: 2000 }
    }

    /// Sets the number of excitation cycles.
    #[must_use]
    pub fn with_cycles(mut self, cycles: u32) -> Self {
        self.cycles = cycles.max(1);
        self
    }

    /// Sets the time resolution per cycle.
    #[must_use]
    pub fn with_steps_per_cycle(mut self, steps: usize) -> Self {
        self.steps_per_cycle = steps.max(16);
        self
    }

    /// The excitation frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Runs the sweep, mutating the device state along the trajectory.
    pub fn run<D: MemristiveDevice + ?Sized>(&self, device: &mut D) -> IvTrace {
        let period = 1.0 / self.frequency.as_hertz();
        let dt = period / self.steps_per_cycle as f64;
        let total = self.steps_per_cycle * self.cycles as usize;
        let omega = self.frequency.angular();
        let mut points = Vec::with_capacity(total);
        for k in 0..total {
            let t = k as f64 * dt;
            let v = Volts::new(self.amplitude.as_volts() * (omega * t).sin());
            let i = device.current(v);
            points.push(IvPoint {
                time: t,
                voltage: v.as_volts(),
                current: i.as_amps(),
                state: device.normalized_state(),
            });
            device.step(v, Seconds::new(dt));
        }
        IvTrace { points, points_per_cycle: self.steps_per_cycle }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdealMemristor, LinearIonDrift};
    use memcim_units::Ohms;

    #[test]
    fn ideal_memristor_loop_is_pinched() {
        let mut d = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
        let trace = HysteresisSweep::new(Volts::new(1.0), Hertz::new(1.0)).run(&mut d);
        assert!(trace.is_pinched(2e-2));
        assert!(trace.lobe_area() > 0.0);
    }

    #[test]
    fn drift_model_loop_is_pinched_at_characteristic_frequency() {
        let mut d = LinearIonDrift::hp_default();
        let f0 = d.characteristic_frequency(Volts::new(1.0));
        let trace = HysteresisSweep::new(Volts::new(1.0), f0).run(&mut d);
        assert!(trace.is_pinched(2e-2));
    }

    #[test]
    fn lobes_shrink_with_frequency() {
        // The second Fig. 1b fingerprint: area(f0) > area(2 f0) > area(10 f0).
        let base = LinearIonDrift::hp_default();
        let f0 = base.characteristic_frequency(Volts::new(1.0)).as_hertz();
        let area_at = |mult: f64| {
            let mut d = base.clone();
            HysteresisSweep::new(Volts::new(1.0), Hertz::new(f0 * mult))
                .with_cycles(3)
                .run(&mut d)
                .lobe_area()
        };
        let a1 = area_at(1.0);
        let a2 = area_at(2.0);
        let a10 = area_at(10.0);
        assert!(a1 > a2, "a(f0)={a1} vs a(2f0)={a2}");
        assert!(a2 > a10, "a(2f0)={a2} vs a(10f0)={a10}");
        assert!(a10 < 0.3 * a1, "high-frequency loop should collapse: {a10} vs {a1}");
    }

    #[test]
    fn final_cycle_extracts_exactly_one_period() {
        let mut d = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
        let sweep = HysteresisSweep::new(Volts::new(1.0), Hertz::new(1.0))
            .with_cycles(3)
            .with_steps_per_cycle(500);
        let trace = sweep.run(&mut d);
        assert_eq!(trace.points().len(), 1500);
        assert_eq!(trace.final_cycle().len(), 500);
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let mut d = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
        let trace = HysteresisSweep::new(Volts::new(1.0), Hertz::new(1.0))
            .with_cycles(1)
            .with_steps_per_cycle(16)
            .run(&mut d);
        let csv = trace.to_csv();
        assert_eq!(csv.lines().count(), 17);
        assert!(csv.starts_with("time,voltage,current,state\n"));
    }

    #[test]
    #[should_panic(expected = "amplitude must be > 0")]
    fn zero_amplitude_panics() {
        let _ = HysteresisSweep::new(Volts::ZERO, Hertz::new(1.0));
    }
}
