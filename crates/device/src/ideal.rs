//! Chua's ideal charge-controlled memristor.

use crate::MemristiveDevice;
use memcim_units::{Amps, Coulombs, Ohms, Seconds, Siemens, Volts, Webers};

/// An ideal charge-controlled memristor `M(q)` in the sense of Chua (1971).
///
/// The device is fully described by the constitutive relation
/// `dφ = M(q)·dq` (the dashed edge completing Fig. 1a of the paper).
/// Here the memristance interpolates smoothly between an ON and an OFF
/// resistance as a function of the accumulated charge:
///
/// ```text
/// M(q) = r_off + (r_on − r_off) · σ(q / q_scale)
/// ```
///
/// with `σ` a logistic saturation. Driven by a sinusoid it produces the
/// textbook pinched hysteresis loop whose lobes shrink with excitation
/// frequency (Fig. 1b) — reproduced by the `fig1_hysteresis` bench.
///
/// # Examples
///
/// ```
/// use memcim_device::{IdealMemristor, MemristiveDevice};
/// use memcim_units::{Ohms, Seconds, Volts};
///
/// let mut m = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
/// let r0 = m.static_resistance(Volts::new(0.1));
/// // Positive charge flow drives the device towards the ON state.
/// for _ in 0..1000 {
///     m.step(Volts::new(1.0), Seconds::from_microseconds(50.0));
/// }
/// assert!(m.static_resistance(Volts::new(0.1)) < r0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IdealMemristor {
    r_on: Ohms,
    r_off: Ohms,
    /// Charge scale over which the full OFF→ON transition occurs.
    q_scale: Coulombs,
    /// Accumulated charge (state variable).
    charge: Coulombs,
    /// Accumulated flux (∫v dt), tracked for the φ–q characteristic.
    flux: Webers,
}

impl IdealMemristor {
    /// Default charge scale: full transition over 100 µC.
    const DEFAULT_Q_SCALE: f64 = 1.0e-4;

    /// Creates an ideal memristor with the given ON/OFF resistances and
    /// the default charge scale, starting midway between the states.
    ///
    /// # Panics
    ///
    /// Panics if either resistance is not strictly positive or if
    /// `r_on >= r_off`.
    pub fn new(r_on: Ohms, r_off: Ohms) -> Self {
        Self::with_charge_scale(r_on, r_off, Coulombs::new(Self::DEFAULT_Q_SCALE))
    }

    /// Creates an ideal memristor with an explicit charge scale.
    ///
    /// # Panics
    ///
    /// Panics if either resistance is not strictly positive, if
    /// `r_on >= r_off`, or if `q_scale` is not strictly positive.
    pub fn with_charge_scale(r_on: Ohms, r_off: Ohms, q_scale: Coulombs) -> Self {
        assert!(r_on.as_ohms() > 0.0, "r_on must be > 0");
        assert!(r_off.as_ohms() > r_on.as_ohms(), "r_off must exceed r_on");
        assert!(q_scale.as_coulombs() > 0.0, "q_scale must be > 0");
        Self { r_on, r_off, q_scale, charge: Coulombs::ZERO, flux: Webers::ZERO }
    }

    /// The memristance `M(q)` at the present state.
    pub fn memristance(&self) -> Ohms {
        let x = self.saturation();
        Ohms::new(self.r_off.as_ohms() + (self.r_on.as_ohms() - self.r_off.as_ohms()) * x)
    }

    /// Accumulated charge `q = ∫i dt`.
    pub fn charge(&self) -> Coulombs {
        self.charge
    }

    /// Accumulated flux `φ = ∫v dt`.
    pub fn flux(&self) -> Webers {
        self.flux
    }

    /// Logistic saturation of charge: 0 → OFF, 1 → ON.
    fn saturation(&self) -> f64 {
        let z = self.charge.as_coulombs() / self.q_scale.as_coulombs();
        1.0 / (1.0 + (-4.0 * z).exp())
    }
}

impl MemristiveDevice for IdealMemristor {
    fn current(&self, v: Volts) -> Amps {
        v / self.memristance()
    }

    fn conductance(&self, _v: Volts) -> Siemens {
        self.memristance().to_siemens()
    }

    fn step(&mut self, v: Volts, dt: Seconds) {
        let i = self.current(v);
        self.charge += i * dt;
        self.flux += v * dt;
    }

    fn normalized_state(&self) -> f64 {
        self.saturation()
    }

    fn set_normalized_state(&mut self, state: f64) {
        // Invert the logistic: z = ln(x / (1-x)) / 4, clamped away from the
        // asymptotes so the charge stays finite.
        let x = state.clamp(1e-9, 1.0 - 1e-9);
        let z = (x / (1.0 - x)).ln() / 4.0;
        self.charge = Coulombs::new(z * self.q_scale.as_coulombs());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_units::{approx_eq, RelTol};

    fn device() -> IdealMemristor {
        IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0))
    }

    #[test]
    fn fresh_device_sits_midway() {
        let m = device();
        let mid = (100.0 + 16_000.0) / 2.0;
        assert!(approx_eq(m.memristance().as_ohms(), mid, RelTol::new(1e-6)));
        assert!(approx_eq(m.normalized_state(), 0.5, RelTol::new(1e-9)));
    }

    #[test]
    fn positive_charge_turns_device_on() {
        let mut m = device();
        for _ in 0..10_000 {
            m.step(Volts::new(1.0), Seconds::from_microseconds(100.0));
        }
        assert!(m.memristance().as_ohms() < 200.0);
        assert!(m.normalized_state() > 0.95);
    }

    #[test]
    fn negative_charge_turns_device_off() {
        let mut m = device();
        for _ in 0..10_000 {
            m.step(Volts::new(-1.0), Seconds::from_microseconds(100.0));
        }
        assert!(m.memristance().as_ohms() > 10_000.0);
        assert!(m.normalized_state() < 0.05);
    }

    #[test]
    fn zero_voltage_means_zero_current() {
        // The pinch condition: v = 0 ⇒ i = 0 regardless of state.
        let mut m = device();
        assert_eq!(m.current(Volts::ZERO).as_amps(), 0.0);
        m.set_normalized_state(0.9);
        assert_eq!(m.current(Volts::ZERO).as_amps(), 0.0);
    }

    #[test]
    fn set_normalized_state_round_trips() {
        let mut m = device();
        for target in [0.1, 0.25, 0.5, 0.75, 0.9] {
            m.set_normalized_state(target);
            assert!(
                approx_eq(m.normalized_state(), target, RelTol::new(1e-6)),
                "target {target}, got {}",
                m.normalized_state()
            );
        }
    }

    #[test]
    fn flux_and_charge_track_integrals() {
        let mut m = device();
        m.step(Volts::new(2.0), Seconds::new(0.5));
        assert!(approx_eq(m.flux().as_webers(), 1.0, RelTol::new(1e-9)));
        assert!(m.charge().as_coulombs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "r_off must exceed r_on")]
    fn inverted_resistances_panic() {
        let _ = IdealMemristor::new(Ohms::from_kilohms(16.0), Ohms::new(100.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Memristance stays within [r_on, r_off] for any drive history.
        #[test]
        fn memristance_bounded(
            steps in proptest::collection::vec(-2.0_f64..2.0, 1..200),
        ) {
            let mut m = IdealMemristor::new(Ohms::new(100.0), Ohms::from_kilohms(16.0));
            for v in steps {
                m.step(Volts::new(v), Seconds::from_microseconds(200.0));
                let r = m.memristance().as_ohms();
                prop_assert!((100.0 - 1e-6..=16_000.0 + 1e-6).contains(&r), "r = {r}");
            }
        }
    }
}
