//! Verifier ↔ executor agreement, property-tested over random programs
//! that deliberately mix well-formed and malformed instructions:
//!
//! * a program the static verifier passes (no Error-severity
//!   diagnostic) executes on a fresh, fault-free simulator of the same
//!   geometry without a runtime error — admission gating never lets a
//!   verified program fail at an engine;
//! * a program the simulator rejects carries an Error diagnostic whose
//!   stable [`Code`] matches the runtime error (via [`Code::of_runtime`])
//!   at the same instruction index — every runtime rejection was
//!   statically predictable, with the exact code and position an
//!   admission refusal reports.
//!
//! Cases are seeded and deterministic (the vendored proptest's
//! `TestRng`), so any failure reproduces bit-for-bit.

use memcim_bits::BitVec;
use memcim_crossbar::CrossbarBackend;
use memcim_mvp::{Instruction, MvpSimulator};
use memcim_verify::{first_error, verify_program, Code};
use proptest::prelude::*;

/// One instruction over a `rows × width` geometry, biased to stay
/// mostly in range so programs are a genuine mix: rows wander up to 2
/// past the array, store widths up to 2 off, scouting source lists can
/// be too short, can alias their destination, and can repeat a row.
fn instruction(rows: usize, width: usize) -> impl Strategy<Value = Instruction> {
    let row = 0..rows + 2;
    let data = (width.saturating_sub(2)..width + 3)
        .prop_flat_map(|w| proptest::collection::vec(any::<bool>(), w))
        .prop_map(|bits| bits.into_iter().collect::<BitVec>());
    prop_oneof![
        (row.clone(), data).prop_map(|(row, data)| Instruction::Store { row, data }),
        (proptest::collection::vec(0..rows + 2, 0..5), row.clone(), any::<bool>()).prop_map(
            |(srcs, dst, or)| if or {
                Instruction::Or { srcs, dst }
            } else {
                Instruction::And { srcs, dst }
            }
        ),
        (row.clone(), row.clone(), row.clone()).prop_map(|(a, b, dst)| Instruction::Xor {
            a,
            b,
            dst
        }),
        row.prop_map(|row| Instruction::Read { row }),
    ]
}

/// `(rows, width, program)` over small geometries.
fn geometry_and_program() -> impl Strategy<Value = (usize, usize, Vec<Instruction>)> {
    (4usize..10, 1usize..33).prop_flat_map(|(rows, width)| {
        proptest::collection::vec(instruction(rows, width), 1..12)
            .prop_map(move |program| (rows, width, program))
    })
}

/// The index of the first instruction the simulator rejects: the
/// shortest failing prefix, each tried on a fresh simulator so earlier
/// instructions cannot mask the probe.
fn first_failing_index<B: CrossbarBackend>(
    program: &[Instruction],
    fresh: impl Fn() -> MvpSimulator<B>,
) -> Option<usize> {
    (0..program.len()).find(|&i| fresh().run_program(&program[..=i]).is_err())
}

fn assert_agreement<B: CrossbarBackend>(
    rows: usize,
    width: usize,
    program: &[Instruction],
    fresh: impl Fn() -> MvpSimulator<B>,
) -> Result<(), TestCaseError> {
    let diagnostics = verify_program(program, rows, width);
    match fresh().run_program(program) {
        Ok(_) => {
            // Lints may remain; nothing of Error severity may.
            prop_assert!(
                first_error(&diagnostics).is_none(),
                "simulator ran a program the verifier flagged: {:?}",
                first_error(&diagnostics)
            );
        }
        Err(runtime) => {
            let flagged = first_error(&diagnostics);
            prop_assert!(
                flagged.is_some(),
                "simulator rejected ({runtime}) a program the verifier passed"
            );
            let flagged = flagged.expect("just asserted");
            prop_assert_eq!(
                Some(flagged.code),
                Code::of_runtime(&runtime),
                "static code {} vs runtime error {}",
                flagged.code,
                runtime
            );
            let failing = first_failing_index(program, fresh)
                .expect("the whole program failed, some prefix must");
            prop_assert_eq!(
                flagged.index,
                failing,
                "static diagnostic and runtime rejection disagree on the instruction"
            );
        }
    }
    Ok(())
}

proptest! {
    /// Monolithic arrays: the geometry of `MvpSimulator::new`.
    #[test]
    fn verifier_and_monolithic_simulator_agree(
        (rows, width, program) in geometry_and_program()
    ) {
        assert_agreement(rows, width, &program, || MvpSimulator::new(rows, width))?;
    }

    /// Banked arrays: same program, same verdicts — banking changes the
    /// cost, never the admission outcome.
    #[test]
    fn verifier_and_banked_simulator_agree(
        (rows, width, program) in geometry_and_program(),
        split in any::<bool>(),
    ) {
        // Split the width into banks where it divides evenly.
        let (banks, bank_cols) =
            if split && width.is_multiple_of(2) { (2, width / 2) } else { (width, 1) };
        assert_agreement(rows, width, &program, || {
            MvpSimulator::banked(rows, banks, bank_cols)
        })?;
    }
}
