//! Static program and automaton analysis for the memcim workspace.
//!
//! Tenant-submitted work arrives as one of two domain IRs: MVP
//! macro-instruction programs ([`memcim_mvp::Instruction`]) and
//! compiled homogeneous automata
//! ([`memcim_automata::HomogeneousAutomaton`]). This crate analyzes
//! both *without executing them*:
//!
//! * [`program::verify_program`] — an abstract interpreter that tracks
//!   per-row state against a crossbar geometry and reports typed
//!   [`Diagnostic`]s: the Error-severity subset mirrors the
//!   simulator's dynamic rejection conditions exactly (so the serve
//!   layer can refuse a doomed program at admission time, before it
//!   occupies queue or engine capacity), and the Lint subset flags
//!   legal-but-suspect shapes (reads of never-written rows, dead
//!   stores, output-free programs).
//! * [`cost::CostModel`] — a static [`OpLedger`] bound (operation
//!   counts, host transfers, energy, busy time) computed straight off
//!   the program, pinned differentially `≥` the executed ledger.
//! * [`automaton::AutomatonReport`] — forward reachability and
//!   backward liveness over compiled automata, the analysis side of
//!   [`HomogeneousAutomaton::strip`].
//!
//! The `memcim-lint` binary runs all of it offline over the built-in
//! workload plans and a synthetic rule corpus; CI smoke-runs it.
//!
//! [`OpLedger`]: memcim_crossbar::OpLedger
//! [`HomogeneousAutomaton::strip`]: memcim_automata::HomogeneousAutomaton::strip

#![deny(missing_docs)]

pub mod automaton;
pub mod cost;
pub mod program;

pub use automaton::AutomatonReport;
pub use cost::{CostBound, CostModel};
pub use program::{first_error, verify_program, Code, Diagnostic, Severity};
