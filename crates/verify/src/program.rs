//! Abstract interpretation of MVP instruction sequences.
//!
//! [`verify_program`] walks a program once, tracking an abstract
//! per-row state (never written / written / written-but-unused) against
//! a crossbar geometry, and reports every problem it can prove without
//! executing anything.
//!
//! The Error-severity checks mirror the dynamic admission checks of
//! `MvpSimulator::run_program` *exactly* — same conditions, same
//! per-instruction order — which gives the two guarantees the serve
//! layer's admission gate and the agreement proptests rely on:
//!
//! * a program with no [`Severity::Error`] diagnostic executes on a
//!   fresh, fault-free simulator of the same geometry without an error;
//! * a program the simulator rejects carries an Error diagnostic whose
//!   [`Code`] matches the runtime [`MvpError`] (via
//!   [`Code::of_runtime`]) at the same instruction index.
//!
//! Everything beyond the dynamic checks — reads of never-written rows,
//! dead stores, programs that produce no output — executes fine and is
//! reported at [`Severity::Lint`].

use core::fmt;
use memcim_crossbar::CrossbarError;
use memcim_mvp::{Instruction, MvpError};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The simulator would reject the program at this instruction.
    Error,
    /// Legal but almost certainly not what the author meant.
    Lint,
}

/// Stable machine-readable diagnostic codes.
///
/// The `E-*` codes correspond one-to-one to the simulator's dynamic
/// rejection conditions; the `L-*` codes are static-only lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// An instruction references a row outside the array
    /// (runtime: [`MvpError::RowOutOfRange`]).
    RowOutOfRange,
    /// A `Store`'s data width differs from the array width
    /// (runtime: [`CrossbarError::WidthMismatch`]).
    StoreWidthMismatch,
    /// A scouting operation names fewer than two source rows
    /// (runtime: [`MvpError::InvalidOperands`]).
    ScoutingArity,
    /// A scouting destination appears among its sources
    /// (runtime: [`MvpError::InvalidOperands`]).
    DestAliasesSource,
    /// Both `Xor` operands are the same row
    /// (runtime: [`MvpError::InvalidOperands`]).
    XorOperandsEqual,
    /// A scouting source row is listed twice
    /// (runtime: [`CrossbarError::InvalidRowSelection`]).
    DuplicateSources,
    /// A row is read (or used as a scouting source) before any store —
    /// it reads as all-zero.
    ReadBeforeStore,
    /// A stored value is overwritten before any use.
    DeadStore,
    /// The program contains no `Read`: it produces no output.
    NoOutput,
}

impl Code {
    /// The stable textual form of the code (what the wire protocol and
    /// `memcim-lint` print).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::RowOutOfRange => "E-ROW-RANGE",
            Code::StoreWidthMismatch => "E-STORE-WIDTH",
            Code::ScoutingArity => "E-SCOUT-ARITY",
            Code::DestAliasesSource => "E-DST-ALIAS",
            Code::XorOperandsEqual => "E-XOR-EQUAL",
            Code::DuplicateSources => "E-SRC-DUP",
            Code::ReadBeforeStore => "L-READ-UNWRITTEN",
            Code::DeadStore => "L-DEAD-STORE",
            Code::NoOutput => "L-NO-OUTPUT",
        }
    }

    /// The severity class of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::RowOutOfRange
            | Code::StoreWidthMismatch
            | Code::ScoutingArity
            | Code::DestAliasesSource
            | Code::XorOperandsEqual
            | Code::DuplicateSources => Severity::Error,
            Code::ReadBeforeStore | Code::DeadStore | Code::NoOutput => Severity::Lint,
        }
    }

    /// The code a runtime rejection corresponds to, if it is one the
    /// verifier predicts.
    ///
    /// `InvalidOperands` is disambiguated by the simulator's constraint
    /// strings (constants in `simulator.rs`); `BadInput` and the
    /// physical crossbar failures (endurance, spares) are not static
    /// program properties, so they map to `None`.
    pub fn of_runtime(err: &MvpError) -> Option<Code> {
        match err {
            MvpError::RowOutOfRange { .. } => Some(Code::RowOutOfRange),
            MvpError::InvalidOperands { constraint } => match *constraint {
                "scouting needs at least two source rows" => Some(Code::ScoutingArity),
                "destination must differ from the sources" => Some(Code::DestAliasesSource),
                "xor operands must be distinct rows" => Some(Code::XorOperandsEqual),
                _ => None,
            },
            MvpError::Crossbar(CrossbarError::WidthMismatch { .. }) => {
                Some(Code::StoreWidthMismatch)
            }
            MvpError::Crossbar(CrossbarError::InvalidRowSelection { .. }) => {
                Some(Code::DuplicateSources)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the static verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What was found.
    pub code: Code,
    /// Index of the offending instruction ([`Code::NoOutput`] carries
    /// the program length — it is a whole-program property).
    pub index: usize,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// The severity of this diagnostic (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] instruction {}: {}", self.code, self.index, self.message)
    }
}

/// The first Error-severity diagnostic, if any — the one the simulator
/// would trip over, and the one an admission refusal carries.
pub fn first_error(diagnostics: &[Diagnostic]) -> Option<&Diagnostic> {
    diagnostics.iter().find(|d| d.severity() == Severity::Error)
}

/// Abstract per-row state during interpretation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RowState {
    Unwritten,
    Written { at: usize, used: bool },
}

/// Statically verifies a program against a `rows × width` crossbar
/// geometry, returning every diagnostic sorted by instruction index.
///
/// Instructions that carry an Error do not advance the abstract row
/// state (execution would have stopped there); scanning continues so a
/// lint run reports everything at once.
pub fn verify_program(program: &[Instruction], rows: usize, width: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut state = vec![RowState::Unwritten; rows];
    let mut has_output = false;

    for (index, instr) in program.iter().enumerate() {
        // Mirror of `check_rows`: bounds on every touched row first.
        if let Some(row) = instr.touched_rows().into_iter().find(|&r| r >= rows) {
            diags.push(Diagnostic {
                code: Code::RowOutOfRange,
                index,
                message: format!("row {row} outside the {rows}-row array"),
            });
            continue;
        }
        match instr {
            Instruction::Store { row, data } => {
                if data.len() != width {
                    diags.push(Diagnostic {
                        code: Code::StoreWidthMismatch,
                        index,
                        message: format!(
                            "stored data is {} bits wide, the array {width}",
                            data.len()
                        ),
                    });
                    continue;
                }
                write_row(&mut state, &mut diags, *row, index);
            }
            Instruction::Or { srcs, dst } | Instruction::And { srcs, dst } => {
                // Mirror of `validate_sources` then `validate_selection`.
                if srcs.len() < 2 {
                    diags.push(Diagnostic {
                        code: Code::ScoutingArity,
                        index,
                        message: format!(
                            "scouting needs at least two source rows, got {}",
                            srcs.len()
                        ),
                    });
                    continue;
                }
                if srcs.contains(dst) {
                    diags.push(Diagnostic {
                        code: Code::DestAliasesSource,
                        index,
                        message: format!("destination row {dst} is also a source"),
                    });
                    continue;
                }
                if let Some(dup) =
                    srcs.iter().enumerate().find_map(|(i, r)| srcs[..i].contains(r).then_some(*r))
                {
                    diags.push(Diagnostic {
                        code: Code::DuplicateSources,
                        index,
                        message: format!("source row {dup} is listed more than once"),
                    });
                    continue;
                }
                for &src in srcs {
                    use_row(&mut state, &mut diags, src, index);
                }
                write_row(&mut state, &mut diags, *dst, index);
            }
            Instruction::Xor { a, b, dst } => {
                // The simulator checks operand distinctness before
                // `validate_sources` — keep the same precedence.
                if a == b {
                    diags.push(Diagnostic {
                        code: Code::XorOperandsEqual,
                        index,
                        message: format!("both xor operands are row {a}"),
                    });
                    continue;
                }
                if dst == a || dst == b {
                    diags.push(Diagnostic {
                        code: Code::DestAliasesSource,
                        index,
                        message: format!("destination row {dst} is also a source"),
                    });
                    continue;
                }
                use_row(&mut state, &mut diags, *a, index);
                use_row(&mut state, &mut diags, *b, index);
                write_row(&mut state, &mut diags, *dst, index);
            }
            Instruction::Read { row } => {
                use_row(&mut state, &mut diags, *row, index);
                has_output = true;
            }
        }
    }

    if !has_output {
        diags.push(Diagnostic {
            code: Code::NoOutput,
            index: program.len(),
            message: "program contains no Read: it produces no output".into(),
        });
    }
    // Dead-store lints point at the earlier store; restore index order.
    diags.sort_by_key(|d| d.index);
    diags
}

fn use_row(state: &mut [RowState], diags: &mut Vec<Diagnostic>, row: usize, index: usize) {
    match state[row] {
        RowState::Unwritten => diags.push(Diagnostic {
            code: Code::ReadBeforeStore,
            index,
            message: format!("row {row} is used before any store (it reads as all-zero)"),
        }),
        RowState::Written { at, .. } => state[row] = RowState::Written { at, used: true },
    }
}

fn write_row(state: &mut [RowState], diags: &mut Vec<Diagnostic>, row: usize, index: usize) {
    if let RowState::Written { at, used: false } = state[row] {
        diags.push(Diagnostic {
            code: Code::DeadStore,
            index: at,
            message: format!("the value written to row {row} here is overwritten unused"),
        });
    }
    state[row] = RowState::Written { at: index, used: false };
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_bits::BitVec;

    fn store(row: usize, width: usize) -> Instruction {
        Instruction::Store { row, data: BitVec::new(width) }
    }

    /// A clean `(r0 | r1) & r2 → read` program.
    fn clean_program(width: usize) -> Vec<Instruction> {
        vec![
            store(0, width),
            store(1, width),
            store(2, width),
            Instruction::Or { srcs: vec![0, 1], dst: 3 },
            Instruction::And { srcs: vec![3, 2], dst: 4 },
            Instruction::Read { row: 4 },
        ]
    }

    #[test]
    fn a_clean_program_has_no_diagnostics() {
        assert!(verify_program(&clean_program(16), 8, 16).is_empty());
    }

    #[test]
    fn every_error_condition_is_caught_with_its_code() {
        let w = 8;
        let cases: Vec<(Instruction, Code)> = vec![
            (Instruction::Read { row: 99 }, Code::RowOutOfRange),
            (store(0, w + 1), Code::StoreWidthMismatch),
            (Instruction::Or { srcs: vec![0], dst: 3 }, Code::ScoutingArity),
            (Instruction::And { srcs: vec![0, 3], dst: 3 }, Code::DestAliasesSource),
            (Instruction::Xor { a: 1, b: 1, dst: 3 }, Code::XorOperandsEqual),
            (Instruction::Or { srcs: vec![0, 0], dst: 3 }, Code::DuplicateSources),
            (Instruction::Xor { a: 1, b: 2, dst: 2 }, Code::DestAliasesSource),
        ];
        for (instr, code) in cases {
            let program = vec![
                store(0, w),
                store(1, w),
                store(2, w),
                instr.clone(),
                Instruction::Read { row: 0 },
            ];
            let diags = verify_program(&program, 8, w);
            let err = first_error(&diags).unwrap_or_else(|| panic!("no error for {instr:?}"));
            assert_eq!(err.code, code, "instruction {instr:?}");
            assert_eq!(err.index, 3, "instruction {instr:?}");
        }
    }

    #[test]
    fn row_bounds_take_precedence_like_the_simulator() {
        // Bad row AND bad width: the simulator's check_rows fires first.
        let program = vec![store(99, 3)];
        let diags = verify_program(&program, 8, 8);
        assert_eq!(first_error(&diags).expect("error").code, Code::RowOutOfRange);
    }

    #[test]
    fn lints_cover_unwritten_reads_dead_stores_and_missing_outputs() {
        let w = 4;
        // Read of a never-written row.
        let diags = verify_program(&[Instruction::Read { row: 2 }], 8, w);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::ReadBeforeStore);
        assert_eq!(diags[0].severity(), Severity::Lint);

        // Store overwritten unused: the lint points at the dead store.
        let program = vec![store(0, w), store(0, w), Instruction::Read { row: 0 }];
        let diags = verify_program(&program, 8, w);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DeadStore);
        assert_eq!(diags[0].index, 0);

        // No Read at all.
        let diags = verify_program(&[store(0, w)], 8, w);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::NoOutput);
        assert_eq!(diags[0].index, 1);
    }

    #[test]
    fn scouting_counts_as_a_use_not_a_read() {
        // The OR uses rows 0/1 and writes 2; without a Read the program
        // still has no output, and nothing is a dead store (row 2 is
        // simply never used — that is not flagged).
        let w = 4;
        let program = vec![store(0, w), store(1, w), Instruction::Or { srcs: vec![0, 1], dst: 2 }];
        let diags = verify_program(&program, 8, w);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::NoOutput);
    }

    #[test]
    fn runtime_error_mapping_covers_the_admission_conditions() {
        assert_eq!(
            Code::of_runtime(&MvpError::RowOutOfRange { row: 9, rows: 8 }),
            Some(Code::RowOutOfRange)
        );
        assert_eq!(
            Code::of_runtime(&MvpError::Crossbar(CrossbarError::WidthMismatch {
                got: 3,
                expected: 4
            })),
            Some(Code::StoreWidthMismatch)
        );
        assert_eq!(Code::of_runtime(&MvpError::BadInput { reason: "x".into() }), None);
    }

    #[test]
    fn diagnostics_render_code_index_and_message() {
        let program = vec![Instruction::Read { row: 99 }];
        let diags = verify_program(&program, 8, 8);
        let rendered = diags[0].to_string();
        assert!(rendered.contains("E-ROW-RANGE"), "{rendered}");
        assert!(rendered.contains("instruction 0"), "{rendered}");
    }
}
