//! Static cost bounds: an [`OpLedger`] prediction straight off a program.
//!
//! The bound is computed from the instruction list and the array
//! geometry alone — no execution. It over-approximates exactly where
//! the dynamic cost model is data-dependent: row programming pays only
//! for cells that actually change state, so the bound charges every
//! store and write-back as if all `width` cells flipped, and charges
//! busy time as if banks ran serially (the banked substrate takes the
//! max over banks per operation). Everything else — scouting and read
//! counts, their energies and latencies — is exact.
//!
//! The invariant `bound ≥ executed ledger` is pinned differentially
//! against `MvpSimulator` for fuzzed programs on both monolithic and
//! banked substrates (see the crate's tests and
//! `tests/verify_static.rs` at the workspace root).

use memcim_crossbar::{CellTechnology, OpLedger};
use memcim_mvp::Instruction;
use memcim_units::{Joules, Seconds};

/// The geometry + technology a bound is computed against.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    rows: usize,
    width: usize,
    banks: usize,
    tech: CellTechnology,
}

impl CostModel {
    /// A monolithic `rows × width` RRAM array (the geometry of
    /// [`MvpSimulator::new`](memcim_mvp::MvpSimulator::new)).
    pub fn new(rows: usize, width: usize) -> Self {
        Self { rows, width, banks: 1, tech: CellTechnology::rram_1t1r() }
    }

    /// A banked array of `banks × bank_cols` columns (the geometry of
    /// [`MvpSimulator::banked`](memcim_mvp::MvpSimulator::banked)).
    pub fn banked(rows: usize, banks: usize, bank_cols: usize) -> Self {
        Self { rows, width: banks * bank_cols, banks, tech: CellTechnology::rram_1t1r() }
    }

    /// Overrides the cell technology (defaults to the paper's 1T1R RRAM).
    #[must_use]
    pub fn with_technology(mut self, tech: CellTechnology) -> Self {
        self.tech = tech;
        self
    }

    /// Computes the static cost bound of `program`.
    ///
    /// The bound is sound for programs that execute without an
    /// admission error on a fault-free array of this geometry (a
    /// rejected program stops early and trivially stays below it; a
    /// fault-injected or ECC substrate does physical work this logical
    /// model does not see).
    pub fn bound(&self, program: &[Instruction]) -> CostBound {
        let banks = self.banks as u64;
        let scout_energy =
            Joules::new(self.tech.analytic_cycle_energy(self.rows).as_joules() * self.width as f64);
        let scout_latency = self.tech.read_latency(self.rows);
        let program_energy = Joules::new(self.tech.program_energy.as_joules() * self.width as f64);
        let program_latency = self.tech.program_latency;

        let mut b = CostBound::default();
        for instr in program {
            match instr {
                Instruction::Store { .. } => {
                    b.host_writes += 1;
                    b.programs += banks;
                    b.bits_programmed += self.width as u64;
                    b.energy += program_energy;
                    b.busy += program_latency;
                }
                Instruction::Or { .. } | Instruction::And { .. } | Instruction::Xor { .. } => {
                    b.scouting_ops += banks;
                    b.programs += banks;
                    b.bits_programmed += self.width as u64;
                    b.energy += scout_energy + program_energy;
                    b.busy += scout_latency + program_latency;
                }
                Instruction::Read { .. } => {
                    b.host_reads += 1;
                    b.reads += banks;
                    b.energy += scout_energy;
                    b.busy += scout_latency;
                }
            }
        }
        b
    }
}

/// An upper bound on the [`OpLedger`] a program can accumulate, plus
/// the host-transfer counts the ledger does not track.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBound {
    /// Read operations (exact: banks × `Read` instructions).
    pub reads: u64,
    /// Scouting operations (exact: banks × logic instructions).
    pub scouting_ops: u64,
    /// Program operations (upper bound — unchanged rows record none).
    pub programs: u64,
    /// Cells re-programmed (upper bound — only state changes count).
    pub bits_programmed: u64,
    /// Host → array transfers (`Store` instructions).
    pub host_writes: u64,
    /// Array → host transfers (`Read` instructions).
    pub host_reads: u64,
    /// Dynamic energy upper bound.
    pub energy: Joules,
    /// Busy-time upper bound (serial over banks and operations).
    pub busy: Seconds,
}

impl CostBound {
    /// `true` when this bound dominates an executed ledger
    /// component-wise. Energy and busy time tolerate a 1e-9 relative
    /// slack for float summation order.
    pub fn covers(&self, actual: &OpLedger) -> bool {
        const TOL: f64 = 1.0 + 1e-9;
        self.reads >= actual.reads()
            && self.scouting_ops >= actual.scouting_ops()
            && self.programs >= actual.programs()
            && self.bits_programmed >= actual.bits_programmed()
            && self.energy.as_joules() * TOL >= actual.energy().as_joules()
            && self.busy.as_seconds() * TOL >= actual.busy_time().as_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_bits::BitVec;
    use memcim_mvp::MvpSimulator;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn dense_program(width: usize) -> Vec<Instruction> {
        let ones = BitVec::from_indices(width, &(0..width).collect::<Vec<_>>());
        vec![
            Instruction::Store { row: 0, data: ones.clone() },
            Instruction::Store { row: 1, data: ones },
            Instruction::Or { srcs: vec![0, 1], dst: 2 },
            Instruction::Xor { a: 0, b: 1, dst: 3 },
            Instruction::Read { row: 2 },
        ]
    }

    #[test]
    fn bound_covers_a_monolithic_run_and_counts_are_exact() {
        let (rows, width) = (8, 64);
        let program = dense_program(width);
        let bound = CostModel::new(rows, width).bound(&program);
        let mut mvp = MvpSimulator::new(rows, width);
        mvp.run_program(&program).expect("runs");
        let actual = mvp.ledger();
        assert!(bound.covers(&actual), "bound {bound:?} vs actual {actual:?}");
        assert_eq!(bound.reads, actual.reads());
        assert_eq!(bound.scouting_ops, actual.scouting_ops());
        assert_eq!(bound.host_writes, 2);
        assert_eq!(bound.host_reads, 1);
    }

    #[test]
    fn bound_covers_a_banked_run() {
        let (rows, banks, bank_cols) = (8, 4, 16);
        let program = dense_program(banks * bank_cols);
        let bound = CostModel::banked(rows, banks, bank_cols).bound(&program);
        let mut mvp = MvpSimulator::banked(rows, banks, bank_cols);
        mvp.run_program(&program).expect("runs");
        let actual = mvp.ledger();
        assert!(bound.covers(&actual), "bound {bound:?} vs actual {actual:?}");
        assert_eq!(bound.scouting_ops, actual.scouting_ops(), "one scout op per bank");
    }

    #[test]
    fn bound_is_tight_on_energy_for_all_ones_stores() {
        // Storing all-ones into a zeroed array flips every cell: the
        // store part of the bound is met with equality, so the slack
        // comes only from the over-approximated write-backs.
        let (rows, width) = (8, 32);
        let ones = BitVec::from_indices(width, &(0..width).collect::<Vec<_>>());
        let program = vec![Instruction::Store { row: 0, data: ones }];
        let bound = CostModel::new(rows, width).bound(&program);
        let mut mvp = MvpSimulator::new(rows, width);
        mvp.run_program(&program).expect("runs");
        assert_eq!(bound.bits_programmed, mvp.ledger().bits_programmed());
        assert!((bound.energy.as_joules() - mvp.ledger().energy().as_joules()).abs() < 1e-18);
    }

    #[test]
    fn fuzzed_valid_programs_never_exceed_their_bound() {
        let mut rng = SmallRng::seed_from_u64(2018);
        for case in 0..60 {
            let rows = rng.gen_range(4..12);
            let width = rng.gen_range(1..40);
            let banked = rng.gen_bool(0.5);
            let program = random_valid_program(&mut rng, rows, width);
            let (bound, actual) = if banked {
                let bound = CostModel::banked(rows, width, 1).bound(&program);
                let mut mvp = MvpSimulator::banked(rows, width, 1);
                mvp.run_program(&program).expect("valid program");
                (bound, mvp.ledger())
            } else {
                let bound = CostModel::new(rows, width).bound(&program);
                let mut mvp = MvpSimulator::new(rows, width);
                mvp.run_program(&program).expect("valid program");
                (bound, mvp.ledger())
            };
            assert!(bound.covers(&actual), "case {case}: {bound:?} vs {actual:?}");
        }
    }

    /// A random program that touches only in-range rows with the right
    /// widths and valid operand shapes.
    pub(crate) fn random_valid_program(
        rng: &mut SmallRng,
        rows: usize,
        width: usize,
    ) -> Vec<Instruction> {
        let len = rng.gen_range(1..20);
        (0..len)
            .map(|_| match rng.gen_range(0..4) {
                0 => Instruction::Store {
                    row: rng.gen_range(0..rows),
                    data: (0..width).map(|_| rng.gen_bool(0.5)).collect(),
                },
                1 => {
                    let mut picks: Vec<usize> = (0..rows).collect();
                    for i in (1..picks.len()).rev() {
                        picks.swap(i, rng.gen_range(0..=i));
                    }
                    let n = rng.gen_range(2..=(rows - 1).max(2));
                    let dst = picks[n.min(picks.len() - 1)];
                    let srcs = picks[..n.min(picks.len() - 1)].to_vec();
                    if rng.gen_bool(0.5) {
                        Instruction::Or { srcs, dst }
                    } else {
                        Instruction::And { srcs, dst }
                    }
                }
                2 => {
                    let a = rng.gen_range(0..rows);
                    let b = (a + 1 + rng.gen_range(0..rows - 1)) % rows;
                    let mut dst = rng.gen_range(0..rows);
                    while dst == a || dst == b {
                        dst = (dst + 1) % rows;
                    }
                    Instruction::Xor { a, b, dst }
                }
                _ => Instruction::Read { row: rng.gen_range(0..rows) },
            })
            .collect()
    }
}
