//! Reachability and liveness analysis of homogeneous automata.
//!
//! An STE that can never become active (unreachable from every start
//! state) or can never contribute to a report (no path to an accept
//! state) occupies an AP column and routing-matrix rows for nothing.
//! [`AutomatonReport`] finds both sets through the automaton's public
//! graph view; the rewriting pass that actually removes them is
//! [`HomogeneousAutomaton::strip`], and the two agree by construction
//! (`strip` drops exactly [`AutomatonReport::removable`] states).

use memcim_automata::{HomogeneousAutomaton, StartKind};

/// The result of analyzing one [`HomogeneousAutomaton`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutomatonReport {
    reachable: Vec<bool>,
    live: Vec<bool>,
}

impl AutomatonReport {
    /// Runs forward reachability (from start states) and backward
    /// liveness (to accept states) over the automaton's edge relation.
    pub fn analyze(h: &HomogeneousAutomaton) -> Self {
        let n = h.state_count();
        // Forward: states reachable from some start state (start states
        // themselves are reachable by the empty path).
        let mut reachable = vec![false; n];
        let mut stack: Vec<usize> =
            (0..n).filter(|&s| h.start_kind(s) != StartKind::None).collect();
        for &s in &stack {
            reachable[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &q in h.successors(s) {
                if !reachable[q] {
                    reachable[q] = true;
                    stack.push(q);
                }
            }
        }
        // Backward: states from which an accept state is reachable
        // (accept states are live by the empty path).
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for p in 0..n {
            for &q in h.successors(p) {
                preds[q].push(p);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&s| h.is_accept(s)).collect();
        for &s in &stack {
            live[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &preds[s] {
                if !live[p] {
                    live[p] = true;
                    stack.push(p);
                }
            }
        }
        Self { reachable, live }
    }

    /// Number of states analyzed.
    pub fn state_count(&self) -> usize {
        self.reachable.len()
    }

    /// Whether a state can become active on some input.
    pub fn is_reachable(&self, state: usize) -> bool {
        self.reachable[state]
    }

    /// Whether a state can contribute to some future report event.
    pub fn is_live(&self, state: usize) -> bool {
        self.live[state]
    }

    /// Whether [`HomogeneousAutomaton::strip`] keeps this state.
    pub fn keeps(&self, state: usize) -> bool {
        self.reachable[state] && self.live[state]
    }

    /// States no input can ever activate.
    pub fn unreachable(&self) -> Vec<usize> {
        (0..self.state_count()).filter(|&s| !self.reachable[s]).collect()
    }

    /// Reachable states that can never reach an accept state.
    pub fn dead(&self) -> Vec<usize> {
        (0..self.state_count()).filter(|&s| self.reachable[s] && !self.live[s]).collect()
    }

    /// How many STEs stripping would remove.
    pub fn removable(&self) -> usize {
        (0..self.state_count()).filter(|&s| !self.keeps(s)).count()
    }

    /// `true` when every state is both reachable and live.
    pub fn is_minimal(&self) -> bool {
        self.removable() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_automata::Regex;

    fn homog(pattern: &str) -> HomogeneousAutomaton {
        HomogeneousAutomaton::from_nfa(&Regex::parse(pattern).expect("parses").compile())
    }

    #[test]
    fn a_linear_pattern_is_already_minimal() {
        let h = homog("abc");
        let report = AutomatonReport::analyze(&h);
        assert!(report.is_minimal());
        assert!(report.unreachable().is_empty());
        assert!(report.dead().is_empty());
    }

    #[test]
    fn analysis_agrees_with_strip() {
        for pattern in ["a(b|c)*d", "(ab)+c", "a.b", "[abc]*x"] {
            let h = homog(pattern);
            let report = AutomatonReport::analyze(&h);
            let (stripped, remap) = h.strip();
            assert_eq!(
                h.state_count() - stripped.state_count(),
                report.removable(),
                "pattern {pattern}"
            );
            for (s, mapped) in remap.iter().enumerate() {
                assert_eq!(mapped.is_some(), report.keeps(s), "pattern {pattern} state {s}");
            }
        }
    }

    #[test]
    fn dead_states_are_found() {
        // `a(b|c)` where the automaton also carries a branch that never
        // accepts is hard to build from a regex (the compiler is tight),
        // so synthesize one: states on a path that leaves the accept
        // cone are dead.
        use memcim_automata::{Nfa, SymbolClass};
        let mut nfa = Nfa::new();
        let s0 = nfa.add_state();
        let ok = nfa.add_state();
        let dead_end = nfa.add_state();
        nfa.add_start(s0);
        nfa.set_accept(ok, true);
        nfa.add_transition(s0, SymbolClass::of(b'a'), ok);
        nfa.add_transition(s0, SymbolClass::of(b'z'), dead_end);
        nfa.add_transition(dead_end, SymbolClass::of(b'z'), dead_end);
        let h = HomogeneousAutomaton::from_nfa(&nfa);
        let report = AutomatonReport::analyze(&h);
        assert!(!report.is_minimal());
        assert!(!report.dead().is_empty(), "the z-loop is reachable but never accepts");
    }
}
