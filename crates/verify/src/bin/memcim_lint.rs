//! `memcim-lint`: offline static checks for the built-in workloads.
//!
//! Verifies every built-in MVP plan shape (bitmap queries, sharded
//! queries, k-mer filters, the ripple-carry adder step, BFS frontier
//! expansion) against its target geometry, prints each plan's static
//! cost bound, and analyzes the synthetic rule corpus's compiled
//! automata for unreachable/dead STEs — asserting that the stripped
//! automaton stays run-equivalent on sampled traffic.
//!
//! Exit status: `0` when no Error-severity diagnostic (and no
//! equivalence violation) is found, `1` otherwise. CI smoke-runs this
//! binary.

use memcim_automata::{rules, PatternSet};
use memcim_mvp::workloads::{bitmap::BitmapTable, kmer::ShiftedBaseIndex};
use memcim_mvp::{Instruction, ShardMap};
use memcim_verify::{AutomatonReport, CostModel, Severity};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fixed seed: the lint corpus is deterministic.
const SEED: u64 = 2018;

struct Lint {
    verbose: bool,
    errors: usize,
    lints: usize,
}

impl Lint {
    fn check(&mut self, name: &str, program: &[Instruction], rows: usize, width: usize) {
        let diagnostics = memcim_verify::verify_program(program, rows, width);
        let bound = CostModel::new(rows, width).bound(program);
        for d in &diagnostics {
            match d.severity() {
                Severity::Error => self.errors += 1,
                Severity::Lint => self.lints += 1,
            }
            println!("{name}: {d}");
        }
        let verdict =
            if memcim_verify::first_error(&diagnostics).is_some() { "FAIL" } else { "ok" };
        if self.verbose || verdict == "FAIL" {
            println!(
                "{name}: {verdict} — {} instructions, {} diagnostics, bound {} scouting / {} programs / {:.3e} J / {:.3e} s",
                program.len(),
                diagnostics.len(),
                bound.scouting_ops,
                bound.programs,
                bound.energy.as_joules(),
                bound.busy.as_seconds(),
            );
        }
    }
}

fn main() {
    let mut verbose = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            other => {
                eprintln!("usage: memcim-lint [--verbose]   (unknown argument {other:?})");
                std::process::exit(2);
            }
        }
    }
    let mut lint = Lint { verbose, errors: 0, lints: 0 };

    check_bitmap_plans(&mut lint);
    check_kmer_plans(&mut lint);
    check_adder_step(&mut lint);
    check_bfs_expansion(&mut lint);
    let equivalence_ok = check_rule_corpus(&mut lint);

    println!(
        "memcim-lint: {} error(s), {} lint(s), strip equivalence {}",
        lint.errors,
        lint.lints,
        if equivalence_ok { "ok" } else { "VIOLATED" }
    );
    if lint.errors > 0 || !equivalence_ok {
        std::process::exit(1);
    }
}

/// Bitmap query plans, whole-table and sharded, over a deterministic
/// 2048-record table (the `perf_report` workload's shape).
fn check_bitmap_plans(lint: &mut Lint) {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let records = 2048;
    let col1: Vec<u8> = (0..records).map(|_| rng.gen_range(0..16)).collect();
    let col2: Vec<u8> = (0..records).map(|_| rng.gen_range(0..16)).collect();
    let table = BitmapTable::new(col1, col2, 16).expect("deterministic columns are well-formed");
    let queries: [(&[u8], &[u8]); 3] = [(&[1, 3, 5], &[0, 2]), (&[7], &[7]), (&[0, 1, 2, 3], &[4])];
    for (i, (s1, s2)) in queries.iter().enumerate() {
        let plan = table.query_plan(s1, s2);
        lint.check(&format!("bitmap_query[{i}]"), &plan, 32, records);
    }
    let map = ShardMap::new(records, 4).expect("valid geometry");
    for (i, range) in map.ranges().enumerate() {
        let plan = table.shard_query_plan(&[1, 3], &[0, 2], range, 512).expect("plan compiles");
        lint.check(&format!("bitmap_shard[{i}]"), &plan, 16, 512);
    }
}

/// k-mer filter plans over a deterministic genome with planted motifs.
fn check_kmer_plans(lint: &mut Lint) {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let bases = [b'A', b'C', b'G', b'T'];
    let mut genome: Vec<u8> = (0..700).map(|_| bases[rng.gen_range(0..4usize)]).collect();
    for at in [50usize, 340, 650] {
        genome[at..at + 5].copy_from_slice(b"GATTA");
    }
    let index = ShiftedBaseIndex::build(&genome, 5).expect("clean genome");
    let positions = index.positions();
    let full = index.shard_find_plan(b"GATTA", 0..positions, positions).expect("plan compiles");
    lint.check("kmer_full", &full, 8, positions);
    let map = ShardMap::new(positions, 3).expect("valid geometry");
    for (i, range) in map.ranges().enumerate() {
        let plan = index.shard_find_plan(b"GATTA", range, 256).expect("plan compiles");
        lint.check(&format!("kmer_shard[{i}]"), &plan, 8, 256);
    }
}

/// One ripple-carry step of the in-memory adder (`arith.rs`): the
/// 5-scouting-op inner program plus carry setup.
fn check_adder_step(lint: &mut Lint) {
    let width = 16;
    let zeros = || memcim_bits::BitVec::new(width);
    let program = vec![
        Instruction::Store { row: 6, data: zeros() }, // carry-in = 0
        Instruction::Store { row: 0, data: zeros() }, // aᵢ
        Instruction::Store { row: 1, data: zeros() }, // bᵢ
        Instruction::Xor { a: 0, b: 1, dst: 2 },      // t
        Instruction::Xor { a: 2, b: 6, dst: 3 },      // sᵢ
        Instruction::And { srcs: vec![0, 1], dst: 4 }, // g
        Instruction::And { srcs: vec![6, 2], dst: 5 }, // p
        Instruction::Or { srcs: vec![4, 5], dst: 7 }, // c'
        Instruction::Read { row: 3 },
        Instruction::Read { row: 7 },
    ];
    lint.check("adder_step", &program, 8, width);
}

/// One BFS frontier-expansion chunk (`workloads::bfs`): stores plus a
/// multi-way OR.
fn check_bfs_expansion(lint: &mut Lint) {
    let n = 64;
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut program: Vec<Instruction> = (0..4)
        .map(|i| Instruction::Store { row: i, data: (0..n).map(|_| rng.gen_bool(0.1)).collect() })
        .collect();
    program.push(Instruction::Or { srcs: vec![0, 1, 2, 3], dst: 4 });
    program.push(Instruction::Read { row: 4 });
    lint.check("bfs_expansion", &program, 8, n);
}

/// The synthetic DPI rule corpus: compile, analyze the full machine
/// (the regex compiler emits trim automata, so this should be
/// minimal), then specialize to an enabled-rule subset — disabling
/// rules leaves their exclusive states dead — and verify that the
/// stripped subset machine stays run-equivalent on sampled traffic.
/// Returns `false` on an equivalence violation.
fn check_rule_corpus(lint: &mut Lint) -> bool {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let patterns = rules::synthetic_rules(&mut rng, 24);
    let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
    let set = PatternSet::compile(&refs).expect("generated rules parse");
    let (homog, owner) = set.to_homogeneous();
    let full = AutomatonReport::analyze(&homog);
    println!(
        "rule_corpus: {} patterns, {} STEs ({} unreachable, {} dead){}",
        set.len(),
        homog.state_count(),
        full.unreachable().len(),
        full.dead().len(),
        if full.is_minimal() { " — minimal" } else { "" },
    );
    if !full.is_minimal() {
        lint.lints += full.removable();
    }
    // Enable every other rule, as a deployment toggling rules off would.
    let enabled = |pattern: usize| pattern.is_multiple_of(2);
    let subset = homog.retain_accepts(|s| owner.get(&s).is_none_or(|&p| enabled(p)));
    let report = AutomatonReport::analyze(&subset);
    let (stripped, _remap) = subset.clone().strip();
    println!(
        "rule_corpus: 12/24 rules enabled → {} dead STEs, {} → {} after strip",
        report.dead().len(),
        subset.state_count(),
        stripped.state_count(),
    );
    let mut ok = stripped.state_count() < subset.state_count();
    if !ok {
        println!("rule_corpus: disabling half the rules stripped nothing");
    }
    for plant in [0usize, 8, 32] {
        let traffic = rules::synthetic_traffic(&mut rng, set.patterns(), 2000, plant);
        if stripped.run(&traffic) != subset.run(&traffic) {
            println!("rule_corpus: strip() changed the run on {plant}-plant traffic");
            ok = false;
        }
    }
    ok
}
