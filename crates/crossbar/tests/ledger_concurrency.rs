//! Ledger accounting under concurrency: the invariants a serving layer
//! leans on when multiple workers report interleaved `OpLedger` deltas.
//!
//! The contract under test:
//!
//! * **Partition** — cutting one array's activity into segments with
//!   [`OpLedger::delta_since`] and re-folding them serially
//!   ([`OpLedger::merge_serial`]) reconstructs the total, wherever the
//!   cuts fall (counts exactly; energy/busy to float tolerance).
//! * **Order independence** — folding per-worker deltas with
//!   [`OpLedger::merge_parallel`] gives the same aggregate in any
//!   arrival order: counts and energy sum, busy time is the max.
//! * **Threaded end-to-end** — real worker threads driving real
//!   crossbars and reporting deltas through a channel account exactly
//!   the same totals as a deterministic single-threaded replay.

use memcim_bits::BitVec;
use memcim_crossbar::{Crossbar, OpLedger, ScoutingKind};
use memcim_units::{approx_eq, RelTol};
use proptest::prelude::*;

/// One array operation a synthetic worker may perform.
#[derive(Debug, Clone, Copy)]
enum Op {
    Program(u8),
    Read(u8),
    Scout(ScoutingKind),
}

const ROWS: usize = 4;
const COLS: usize = 64;

fn apply(xbar: &mut Crossbar, op: Op, salt: usize) {
    match op {
        Op::Program(row) => {
            let row = row as usize % ROWS;
            let data = BitVec::from_indices(COLS, &[salt % COLS, (salt * 7 + 3) % COLS]);
            xbar.program_row(row, &data).expect("program");
        }
        Op::Read(row) => {
            xbar.read_row(row as usize % ROWS).expect("read");
        }
        Op::Scout(kind) => {
            xbar.scouting(kind, &[0, 1]).expect("scout");
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Program),
        any::<u8>().prop_map(Op::Read),
        Just(Op::Scout(ScoutingKind::Or)),
        Just(Op::Scout(ScoutingKind::And)),
        Just(Op::Scout(ScoutingKind::Xor)),
    ]
}

fn counts(l: &OpLedger) -> (u64, u64, u64, u64) {
    (l.reads(), l.scouting_ops(), l.programs(), l.bits_programmed())
}

fn assert_float_close(a: &OpLedger, b: &OpLedger) -> Result<(), TestCaseError> {
    let tol = RelTol::new(1e-9);
    prop_assert!(approx_eq(a.energy().as_joules(), b.energy().as_joules(), tol));
    prop_assert!(approx_eq(a.busy_time().as_seconds(), b.busy_time().as_seconds(), tol));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Segment deltas re-folded serially reconstruct the total delta,
    /// for any placement of the snapshot cuts.
    #[test]
    fn segment_deltas_partition_the_total(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        cuts in proptest::collection::vec(0usize..16, 0..4),
    ) {
        let mut xbar = Crossbar::rram(ROWS, COLS);
        let fresh = *xbar.ledger();
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (ops.len() + 1)).collect();
        cuts.sort_unstable();
        let mut snapshots = vec![fresh];
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut xbar, op, i);
            if cuts.contains(&(i + 1)) {
                snapshots.push(*xbar.ledger());
            }
        }
        snapshots.push(*xbar.ledger());

        let total = xbar.ledger().delta_since(&fresh);
        let mut refolded = OpLedger::new();
        for pair in snapshots.windows(2) {
            refolded.merge_serial(&pair[1].delta_since(&pair[0]));
        }
        prop_assert_eq!(counts(&refolded), counts(&total));
        assert_float_close(&refolded, &total)?;
        // A delta against the fresh snapshot is the ledger itself.
        prop_assert_eq!(total, *xbar.ledger());
    }

    /// Folding worker deltas with `merge_parallel` is order-independent:
    /// counts and energy sum over workers, busy time is the max.
    #[test]
    fn parallel_merge_is_order_independent(
        workers in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..12),
            1..5,
        ),
    ) {
        let deltas: Vec<OpLedger> = workers
            .iter()
            .enumerate()
            .map(|(w, ops)| {
                let mut xbar = Crossbar::rram(ROWS, COLS);
                let before = *xbar.ledger();
                for (i, &op) in ops.iter().enumerate() {
                    apply(&mut xbar, op, w * 31 + i);
                }
                xbar.ledger().delta_since(&before)
            })
            .collect();

        let fold = |order: &[usize]| {
            let mut agg = OpLedger::new();
            for &i in order {
                agg.merge_parallel(&deltas[i]);
            }
            agg
        };
        let forward: Vec<usize> = (0..deltas.len()).collect();
        let reverse: Vec<usize> = forward.iter().rev().copied().collect();
        let a = fold(&forward);
        let b = fold(&reverse);
        prop_assert_eq!(counts(&a), counts(&b));
        assert_float_close(&a, &b)?;

        // The aggregate is what the model says: sums and a max.
        let reads: u64 = deltas.iter().map(OpLedger::reads).sum();
        prop_assert_eq!(a.reads(), reads);
        let busy = deltas
            .iter()
            .map(|d| d.busy_time().as_seconds())
            .fold(0.0f64, f64::max);
        prop_assert_eq!(a.busy_time().as_seconds(), busy);
    }
}

/// Real threads, real crossbars, interleaved delta reports through a
/// channel: per-worker serial refolds and the cross-worker parallel
/// aggregate both match a deterministic single-threaded replay.
#[test]
fn threaded_workers_account_exactly() {
    use std::sync::mpsc;
    use std::thread;

    const WORKERS: usize = 8;
    const SEGMENTS: usize = 5;
    const OPS_PER_SEGMENT: usize = 6;

    // The deterministic op schedule for one worker.
    fn schedule(worker: usize) -> Vec<Op> {
        (0..SEGMENTS * OPS_PER_SEGMENT)
            .map(|i| match (worker + i) % 4 {
                0 => Op::Program((i % ROWS) as u8),
                1 => Op::Read((i % ROWS) as u8),
                2 => Op::Scout(ScoutingKind::Or),
                _ => Op::Scout(ScoutingKind::And),
            })
            .collect()
    }

    let (tx, rx) = mpsc::channel::<(usize, OpLedger)>();
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let tx = tx.clone();
            thread::spawn(move || {
                let mut xbar = Crossbar::rram(ROWS, COLS);
                let mut last = *xbar.ledger();
                for (i, &op) in schedule(w).iter().enumerate() {
                    apply(&mut xbar, op, w * 131 + i);
                    if (i + 1) % OPS_PER_SEGMENT == 0 {
                        let now = *xbar.ledger();
                        tx.send((w, now.delta_since(&last))).expect("report");
                        last = now;
                    }
                }
            })
        })
        .collect();
    drop(tx);

    // Fold deltas in arrival order — the interleaving is whatever the
    // scheduler produced.
    let mut per_worker = vec![OpLedger::new(); WORKERS];
    for (w, delta) in rx {
        per_worker[w].merge_serial(&delta);
    }
    for handle in handles {
        handle.join().expect("worker finishes");
    }

    // Replay each worker single-threaded and compare exactly: a
    // worker's serial refold sums floats in segment order, which the
    // arrival-order fold preserves per worker.
    let tol = RelTol::new(1e-9);
    let mut aggregate = OpLedger::new();
    for (w, folded) in per_worker.iter().enumerate() {
        let mut xbar = Crossbar::rram(ROWS, COLS);
        let before = *xbar.ledger();
        for (i, &op) in schedule(w).iter().enumerate() {
            apply(&mut xbar, op, w * 131 + i);
        }
        let expected = xbar.ledger().delta_since(&before);
        assert_eq!(
            (folded.reads(), folded.scouting_ops(), folded.programs(), folded.bits_programmed()),
            (
                expected.reads(),
                expected.scouting_ops(),
                expected.programs(),
                expected.bits_programmed()
            ),
            "worker {w} counts"
        );
        assert!(
            approx_eq(folded.energy().as_joules(), expected.energy().as_joules(), tol),
            "worker {w} energy"
        );
        assert!(
            approx_eq(folded.busy_time().as_seconds(), expected.busy_time().as_seconds(), tol),
            "worker {w} busy time"
        );
        aggregate.merge_parallel(folded);
    }

    // Across workers: energy sums, busy is the slowest worker.
    let total_reads: u64 = per_worker.iter().map(OpLedger::reads).sum();
    assert_eq!(aggregate.reads(), total_reads);
    let slowest = per_worker.iter().map(|l| l.busy_time().as_seconds()).fold(0.0f64, f64::max);
    assert_eq!(aggregate.busy_time().as_seconds(), slowest);
}
