//! Property tests for the SEC-DED Hamming codec in isolation: for every
//! data width 1..=128, any single flipped codeword bit round-trips back
//! to the original data, and any double flip is detected — never
//! miscorrected into plausible-looking wrong data.

use memcim_bits::BitVec;
use memcim_crossbar::{EccOutcome, HammingCode};
use proptest::prelude::*;

/// Deterministically fills a width-`k` data vector from case entropy.
fn data_from_bits(k: usize, bits: &[bool]) -> BitVec {
    (0..k).map(|i| bits[i % bits.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → flip any single bit → decode restores the exact data
    /// and reports the flipped position, across all widths 1..=128.
    #[test]
    fn single_flip_round_trips(
        k in 1usize..=128,
        flip_entropy in any::<u64>(),
        bits in proptest::collection::vec(any::<bool>(), 1..160),
    ) {
        let code = HammingCode::new(k);
        let data = data_from_bits(k, &bits);
        let clean = code.encode(&data);
        prop_assert_eq!(clean.len(), code.total_bits());
        let flip = (flip_entropy % code.total_bits() as u64) as usize;
        let mut word = clean.clone();
        word.set(flip, !word.get(flip));
        prop_assert_eq!(code.decode(&mut word), EccOutcome::Corrected { bit: flip });
        prop_assert_eq!(&word, &clean, "correction restores the codeword");
        prop_assert_eq!(code.extract_data(&word), data);
    }

    /// A clean codeword decodes clean and untouched.
    #[test]
    fn clean_codeword_decodes_clean(
        k in 1usize..=128,
        bits in proptest::collection::vec(any::<bool>(), 1..160),
    ) {
        let code = HammingCode::new(k);
        let data = data_from_bits(k, &bits);
        let mut word = code.encode(&data);
        prop_assert_eq!(code.decode(&mut word), EccOutcome::Clean);
        prop_assert_eq!(code.extract_data(&word), data);
    }

    /// encode → flip any two distinct bits → decode reports
    /// `Uncorrectable` and leaves the word as received (no guessing).
    #[test]
    fn double_flip_is_detected_not_miscorrected(
        k in 1usize..=128,
        a_entropy in any::<u64>(),
        b_entropy in any::<u64>(),
        bits in proptest::collection::vec(any::<bool>(), 1..160),
    ) {
        let code = HammingCode::new(k);
        let data = data_from_bits(k, &bits);
        let clean = code.encode(&data);
        let n = code.total_bits() as u64;
        let a = (a_entropy % n) as usize;
        // Pick a distinct second position.
        let b = ((a as u64 + 1 + b_entropy % (n - 1).max(1)) % n) as usize;
        prop_assert_ne!(a, b);
        let mut word = clean.clone();
        word.set(a, !word.get(a));
        word.set(b, !word.get(b));
        let received = word.clone();
        prop_assert_eq!(code.decode(&mut word), EccOutcome::Uncorrectable);
        prop_assert_eq!(word, received, "the decoder must not touch an uncorrectable word");
    }

    /// Parity overhead stays logarithmic: p + 1 extra columns with
    /// 2^p ≥ k + p + 1 (the Hamming bound), and widest_data_for is the
    /// exact inverse of total_bits_for.
    #[test]
    fn geometry_respects_the_hamming_bound(k in 1usize..=128) {
        let code = HammingCode::new(k);
        let p = code.parity_bits();
        prop_assert!(1u64 << p >= (k + p + 1) as u64);
        prop_assert!(p == 2 || (1u64 << (p - 1)) < (k + p) as u64);
        let cols = code.total_bits();
        prop_assert_eq!(HammingCode::widest_data_for(cols), Some(k));
    }
}

/// All widths 1..=128 really are exercised end to end (not just
/// sampled): every width encodes, corrects a deterministic flip and
/// detects a deterministic double flip.
#[test]
fn every_width_1_to_128_corrects_and_detects() {
    for k in 1..=128usize {
        let code = HammingCode::new(k);
        let data = BitVec::from_indices(k, &(0..k).step_by(3).collect::<Vec<_>>());
        let clean = code.encode(&data);
        for flip in [0, k / 2, code.total_bits() - 1] {
            let mut word = clean.clone();
            word.set(flip, !word.get(flip));
            assert_eq!(
                code.decode(&mut word),
                EccOutcome::Corrected { bit: flip },
                "k = {k}, flip = {flip}"
            );
            assert_eq!(code.extract_data(&word), data, "k = {k}, flip = {flip}");
        }
        let mut word = clean;
        word.set(0, !word.get(0));
        let last = code.total_bits() - 1;
        word.set(last, !word.get(last));
        assert_eq!(code.decode(&mut word), EccOutcome::Uncorrectable, "k = {k}");
    }
}
