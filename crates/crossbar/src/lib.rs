//! 1T1R resistive crossbar arrays with scouting logic.
//!
//! This crate implements Section III of the paper (the storage/compute
//! fabric of the Memristive Vector Processor) and the bit-line experiment
//! of Section IV.D (Fig. 9):
//!
//! * [`CellTechnology`] — calibrated per-cell models for RRAM 1T1R,
//!   8T/6T SRAM and 1T1C DRAM bit cells: layout area, bit-line
//!   capacitance, discharge-path resistance, programming cost and
//!   leakage. These constants are the *only* place where technology
//!   numbers live; everything downstream (AP backends, MVP architecture
//!   model) derives its figures from here.
//! * [`BitlineCircuit`] — builds the paper's Fig. 9 discharge experiment
//!   as a `memcim-spice` netlist (lumped or with every cell explicit) and
//!   measures discharge delay and cycle energy; [`DischargeReport`] holds
//!   the result. The analytic shortcuts
//!   [`CellTechnology::analytic_discharge_time`] and
//!   [`CellTechnology::analytic_cycle_energy`] are validated against the
//!   transient simulation by integration tests.
//! * [`Crossbar`] — the array itself: programming (with endurance wear
//!   and stuck-at faults), normal reads, and **scouting logic** reads
//!   (Fig. 3): multi-row activation whose aggregated bit-line current is
//!   compared against per-gate sense-amplifier references to compute
//!   OR / AND / XOR across rows in a single memory cycle.
//! * [`ScoutingKind`]/[`SenseThresholds`] — the reference-current
//!   placement of Fig. 3b, including the two-reference XOR window.
//!
//! # Banked execution
//!
//! The MVP's 2 GB crossbar is physically *millions of subarrays*
//! operating column-parallel. [`BankedCrossbar`] models that
//! organization: a logical row is striped over equally-wide banks, every
//! operation fans out to all banks in the same memory cycle, and the
//! stripe/gather plumbing is word-parallel
//! ([`memcim_bits::BitVec::extract_range_into`] /
//! [`memcim_bits::BitVec::or_shifted`]) with reusable scratch — no
//! per-bit loops, no per-call allocations.
//!
//! The [`CrossbarBackend`] trait abstracts over both substrates
//! (programming, reads, scouting with and without write-back, geometry,
//! ledger aggregation), so code written against the trait — notably the
//! MVP simulator in `memcim-mvp` — runs bit-identically on either. Cost
//! aggregation follows the paper's parallel-subarray model: **energy
//! sums over banks** (every bank spends its joules) while **busy time is
//! the maximum over banks** (the wall clock is one bank cycle, not the
//! sum) — see [`OpLedger::merge_parallel`].
//!
//! # Fault tolerance
//!
//! The paper flags endurance wear-out and stuck cells as the defining
//! drawback of memristive substrates (Sections III.C, IV.C); two repair
//! mechanisms make the stack *survive* them rather than merely model
//! them:
//!
//! * [`EccCrossbar`] wraps any backend with a SEC-DED [`HammingCode`]
//!   per row: parity columns ride next to the data, reads transparently
//!   correct single-bit upsets (counted in
//!   [`OpLedger::corrected_errors`]), and multi-bit corruption surfaces
//!   as [`CrossbarError::Uncorrectable`] instead of silent wrong data.
//! * [`Crossbar::with_spare_rows`] reserves spare physical rows: a row
//!   whose stuck-cell population crosses a threshold is transparently
//!   retired onto a spare (the remap is visible through
//!   [`CrossbarBackend::remap_table`]); once every spare is consumed
//!   the array reports [`CrossbarError::ExhaustedSpares`] so a serving
//!   layer can retire the whole engine from its pool.
//!
//! # Examples
//!
//! ```
//! use memcim_bits::BitVec;
//! use memcim_crossbar::{Crossbar, ScoutingKind};
//!
//! # fn main() -> Result<(), memcim_crossbar::CrossbarError> {
//! let mut xbar = Crossbar::rram(8, 64);
//! xbar.program_row(0, &BitVec::from_indices(64, &[0, 1, 2]))?;
//! xbar.program_row(1, &BitVec::from_indices(64, &[2, 3]))?;
//! let or = xbar.scouting(ScoutingKind::Or, &[0, 1])?;
//! assert_eq!(or.ones().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
//! let and = xbar.scouting(ScoutingKind::And, &[0, 1])?;
//! assert_eq!(and.ones().collect::<Vec<_>>(), vec![2]);
//! println!("energy so far: {}", xbar.ledger().energy());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod array;
mod backend;
mod bank;
mod bitline;
mod ecc;
mod error;
mod faults;
mod ledger;
mod sense;
mod technology;

pub use array::Crossbar;
pub use backend::{CrossbarBackend, RemapEntry};
pub use bank::BankedCrossbar;
pub use bitline::{BitlineCircuit, DischargeReport};
pub use ecc::{EccCrossbar, EccOutcome, HammingCode};
pub use error::CrossbarError;
pub use faults::FaultMap;
pub use ledger::OpLedger;
pub use sense::{ScoutingKind, SenseThresholds};
pub use technology::CellTechnology;
