//! Per-array energy/latency/operation bookkeeping.

use memcim_units::{Joules, Seconds};

/// Running totals of array activity: operation counts, energy and
/// cumulative busy time.
///
/// The MVP evaluation (paper Fig. 4) and the AP chip-level comparison
/// both reduce to these totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpLedger {
    reads: u64,
    scouting_ops: u64,
    programs: u64,
    bits_programmed: u64,
    energy: Joules,
    busy: Seconds,
}

impl OpLedger {
    /// A fresh ledger with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read operation over `columns` bit lines.
    pub(crate) fn record_read(&mut self, energy: Joules, latency: Seconds) {
        self.reads += 1;
        self.energy += energy;
        self.busy += latency;
    }

    /// Records a scouting (multi-row logic) operation.
    pub(crate) fn record_scouting(&mut self, energy: Joules, latency: Seconds) {
        self.scouting_ops += 1;
        self.energy += energy;
        self.busy += latency;
    }

    /// Records a programming operation touching `bits` cells.
    pub(crate) fn record_program(&mut self, bits: u64, energy: Joules, latency: Seconds) {
        self.programs += 1;
        self.bits_programmed += bits;
        self.energy += energy;
        self.busy += latency;
    }

    /// Number of plain read operations.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of scouting logic operations.
    pub fn scouting_ops(&self) -> u64 {
        self.scouting_ops
    }

    /// Number of program operations (row or bit granularity).
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Total cells actually re-programmed (state changes only).
    pub fn bits_programmed(&self) -> u64 {
        self.bits_programmed
    }

    /// Total dynamic energy.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total busy time (operations are serialized per array).
    pub fn busy_time(&self) -> Seconds {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut l = OpLedger::new();
        l.record_read(Joules::from_femtojoules(2.0), Seconds::from_picoseconds(350.0));
        l.record_scouting(Joules::from_femtojoules(3.0), Seconds::from_picoseconds(350.0));
        l.record_program(64, Joules::from_picojoules(128.0), Seconds::from_nanoseconds(10.0));
        assert_eq!(l.reads(), 1);
        assert_eq!(l.scouting_ops(), 1);
        assert_eq!(l.programs(), 1);
        assert_eq!(l.bits_programmed(), 64);
        assert!((l.energy().as_picojoules() - 128.005).abs() < 1e-9);
        assert!(l.busy_time().as_nanoseconds() > 10.0);
    }
}
