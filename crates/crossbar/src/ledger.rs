//! Per-array energy/latency/operation bookkeeping.

use memcim_units::{Joules, Seconds};

/// Running totals of array activity: operation counts, energy and
/// cumulative busy time.
///
/// The MVP evaluation (paper Fig. 4) and the AP chip-level comparison
/// both reduce to these totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpLedger {
    reads: u64,
    scouting_ops: u64,
    programs: u64,
    bits_programmed: u64,
    corrected_errors: u64,
    energy: Joules,
    busy: Seconds,
}

impl OpLedger {
    /// A fresh ledger with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read operation over `columns` bit lines.
    pub(crate) fn record_read(&mut self, energy: Joules, latency: Seconds) {
        self.reads += 1;
        self.energy += energy;
        self.busy += latency;
    }

    /// Records a scouting (multi-row logic) operation.
    pub(crate) fn record_scouting(&mut self, energy: Joules, latency: Seconds) {
        self.scouting_ops += 1;
        self.energy += energy;
        self.busy += latency;
    }

    /// Records a programming operation touching `bits` cells.
    pub(crate) fn record_program(&mut self, bits: u64, energy: Joules, latency: Seconds) {
        self.programs += 1;
        self.bits_programmed += bits;
        self.energy += energy;
        self.busy += latency;
    }

    /// Records `count` single-bit upsets corrected by an ECC decode
    /// (see [`EccCrossbar`](crate::EccCrossbar)). Corrections ride on
    /// the read that exposed them, so no extra energy or latency is
    /// booked here — only the reliability event count.
    pub(crate) fn record_corrected(&mut self, count: u64) {
        self.corrected_errors += count;
    }

    /// Number of plain read operations.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of scouting logic operations.
    pub fn scouting_ops(&self) -> u64 {
        self.scouting_ops
    }

    /// Number of program operations (row or bit granularity).
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Total cells actually re-programmed (state changes only).
    pub fn bits_programmed(&self) -> u64 {
        self.bits_programmed
    }

    /// Single-bit upsets corrected by ECC decodes on this substrate.
    pub fn corrected_errors(&self) -> u64 {
        self.corrected_errors
    }

    /// Total dynamic energy.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total busy time (operations are serialized per array).
    pub fn busy_time(&self) -> Seconds {
        self.busy
    }

    /// Folds another array's ledger into this one under the *parallel*
    /// execution model used by [`BankedCrossbar`](crate::BankedCrossbar):
    /// operation counts and energy add up (every bank really spends its
    /// joules), while busy time takes the maximum (banks run in the same
    /// memory cycles, so the wall clock is the slowest bank, not the sum).
    pub fn merge_parallel(&mut self, other: &OpLedger) {
        self.reads += other.reads;
        self.scouting_ops += other.scouting_ops;
        self.programs += other.programs;
        self.bits_programmed += other.bits_programmed;
        self.corrected_errors += other.corrected_errors;
        self.energy += other.energy;
        self.busy = self.busy.max(other.busy);
    }

    /// Folds another ledger into this one under the *serial* execution
    /// model: everything adds up, busy time included — the two
    /// activities occupy the engine back to back. This is how a serving
    /// layer accounts one client's successive bursts (each burst's delta
    /// is itself a [`merge_parallel`](Self::merge_parallel) over banks,
    /// but the client's bursts occupy engine time one after another).
    pub fn merge_serial(&mut self, other: &OpLedger) {
        self.reads += other.reads;
        self.scouting_ops += other.scouting_ops;
        self.programs += other.programs;
        self.bits_programmed += other.bits_programmed;
        self.corrected_errors += other.corrected_errors;
        self.energy += other.energy;
        self.busy += other.busy;
    }

    /// The activity recorded since `earlier` was captured: all counters,
    /// energy and busy time subtract component-wise. `earlier` must be a
    /// previous snapshot of the *same* ledger (counters only grow).
    #[must_use]
    pub fn delta_since(&self, earlier: &OpLedger) -> OpLedger {
        OpLedger {
            reads: self.reads - earlier.reads,
            scouting_ops: self.scouting_ops - earlier.scouting_ops,
            programs: self.programs - earlier.programs,
            bits_programmed: self.bits_programmed - earlier.bits_programmed,
            corrected_errors: self.corrected_errors - earlier.corrected_errors,
            energy: self.energy - earlier.energy,
            busy: self.busy - earlier.busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut l = OpLedger::new();
        l.record_read(Joules::from_femtojoules(2.0), Seconds::from_picoseconds(350.0));
        l.record_scouting(Joules::from_femtojoules(3.0), Seconds::from_picoseconds(350.0));
        l.record_program(64, Joules::from_picojoules(128.0), Seconds::from_nanoseconds(10.0));
        assert_eq!(l.reads(), 1);
        assert_eq!(l.scouting_ops(), 1);
        assert_eq!(l.programs(), 1);
        assert_eq!(l.bits_programmed(), 64);
        assert!((l.energy().as_picojoules() - 128.005).abs() < 1e-9);
        assert!(l.busy_time().as_nanoseconds() > 10.0);
    }

    #[test]
    fn parallel_merge_sums_energy_and_maxes_busy_time() {
        let mut a = OpLedger::new();
        a.record_read(Joules::from_femtojoules(2.0), Seconds::from_nanoseconds(3.0));
        let mut b = OpLedger::new();
        b.record_scouting(Joules::from_femtojoules(5.0), Seconds::from_nanoseconds(7.0));
        b.record_program(8, Joules::from_femtojoules(1.0), Seconds::from_nanoseconds(1.0));
        a.merge_parallel(&b);
        assert_eq!(a.reads(), 1);
        assert_eq!(a.scouting_ops(), 1);
        assert_eq!(a.programs(), 1);
        assert_eq!(a.bits_programmed(), 8);
        assert!((a.energy().as_femtojoules() - 8.0).abs() < 1e-9);
        assert!((a.busy_time().as_nanoseconds() - 8.0).abs() < 1e-9, "max(3, 7+1), not the sum");
    }

    #[test]
    fn serial_merge_sums_everything_including_busy_time() {
        let mut a = OpLedger::new();
        a.record_read(Joules::from_femtojoules(2.0), Seconds::from_nanoseconds(3.0));
        let mut b = OpLedger::new();
        b.record_scouting(Joules::from_femtojoules(5.0), Seconds::from_nanoseconds(7.0));
        a.merge_serial(&b);
        assert_eq!(a.reads(), 1);
        assert_eq!(a.scouting_ops(), 1);
        assert!((a.energy().as_femtojoules() - 7.0).abs() < 1e-9);
        assert!((a.busy_time().as_nanoseconds() - 10.0).abs() < 1e-9, "3+7: back to back");
    }

    #[test]
    fn delta_since_isolates_new_activity() {
        let mut l = OpLedger::new();
        l.record_read(Joules::from_femtojoules(2.0), Seconds::from_nanoseconds(1.0));
        let snapshot = l;
        l.record_scouting(Joules::from_femtojoules(3.0), Seconds::from_nanoseconds(2.0));
        let d = l.delta_since(&snapshot);
        assert_eq!(d.reads(), 0);
        assert_eq!(d.scouting_ops(), 1);
        assert!((d.energy().as_femtojoules() - 3.0).abs() < 1e-9);
        assert!((d.busy_time().as_nanoseconds() - 2.0).abs() < 1e-9);
    }
}
