//! SEC-DED Hamming protection for crossbar rows.
//!
//! The paper treats imperfect memristive substrates as a first-class
//! concern: endurance wear-out and stuck-at cells are the dominant
//! failure signatures of resistive memories (Sections III.C and IV.C).
//! This module makes the execution stack *survive* them instead of
//! merely observing them:
//!
//! * [`HammingCode`] — a systematic single-error-correcting,
//!   double-error-detecting (SEC-DED) Hamming code over a row's data
//!   width. Parity is computed with the same word-parallel boolean
//!   primitives the scouting-logic model rests on (masked AND +
//!   population count), so the encoder costs `p` masked row scans.
//! * [`EccCrossbar`] — a wrapper over any [`CrossbarBackend`] that
//!   stores each logical row as a codeword (data columns first, then
//!   `p` Hamming parity columns, then one overall-parity column).
//!   Reads decode and transparently correct single-bit upsets,
//!   surfacing the count through [`OpLedger::corrected_errors`];
//!   double-bit errors are *detected* and surface as
//!   [`CrossbarError::Uncorrectable`] rather than silently
//!   miscorrecting.
//!
//! Scouting on an ECC substrate is the honest, conservative model: the
//! array cannot correct a bit-line *during* a multi-row scouting cycle
//! (the logic happens inside the sense amplifier, before any decoder
//! sees individual operands), so [`EccCrossbar::scouting`] performs one
//! protected read per operand row and combines the corrected operands.
//! The reliability tax is visible in the ledger — `k` reads instead of
//! one scouting cycle — which is exactly the trade-off a yield/cost
//! sweep should expose.

use crate::{BankedCrossbar, Crossbar, CrossbarBackend, CrossbarError, OpLedger, ScoutingKind};
use memcim_bits::BitVec;

/// Outcome of decoding one SEC-DED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// The codeword was consistent; nothing was touched.
    Clean,
    /// Exactly one bit was flipped back.
    Corrected {
        /// The codeword column that was corrected (data, Hamming parity
        /// or the overall-parity column).
        bit: usize,
    },
    /// Two (or an even number of) bit errors: detected, **not**
    /// miscorrected. The codeword is left as received.
    Uncorrectable,
}

/// A systematic SEC-DED Hamming code over `data_bits` columns.
///
/// Layout of a codeword (width [`total_bits`](Self::total_bits)):
///
/// ```text
/// [ data 0..k | Hamming parity 0..p | overall parity ]
/// ```
///
/// Data bits keep their natural column order (so a stuck cell at data
/// column `c` of the underlying array corrupts exactly logical bit `c`);
/// the classic power-of-two interleaving exists only in the *position
/// numbering* used to compute the syndrome.
///
/// # Examples
///
/// ```
/// use memcim_bits::BitVec;
/// use memcim_crossbar::{EccOutcome, HammingCode};
///
/// let code = HammingCode::new(64);
/// let data = BitVec::from_indices(64, &[3, 17, 40]);
/// let mut word = code.encode(&data);
/// // Flip any single bit — data or parity — and the decoder repairs it.
/// word.set(17, false);
/// assert_eq!(code.decode(&mut word), EccOutcome::Corrected { bit: 17 });
/// assert_eq!(code.extract_data(&word), data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HammingCode {
    data_bits: usize,
    parity_bits: usize,
    /// `data_masks[j]`: the data columns whose Hamming position number
    /// has bit `j` set — the encoder's scouting masks.
    data_masks: Vec<BitVec>,
    /// Hamming position number (1-based) of each data column.
    data_pos: Vec<u32>,
    /// Hamming position number → data column (None for parity/unused).
    pos_to_data: Vec<Option<usize>>,
}

impl HammingCode {
    /// Builds the code for `data_bits` data columns.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is zero.
    pub fn new(data_bits: usize) -> Self {
        assert!(data_bits > 0, "an ECC code needs at least one data bit");
        // Walk Hamming positions 1, 2, 3, …: powers of two are parity
        // slots, everything else hosts the next data column.
        let mut data_pos = Vec::with_capacity(data_bits);
        let mut parity_bits = 0usize;
        let mut pos = 1u32;
        while data_pos.len() < data_bits {
            if pos.is_power_of_two() {
                parity_bits += 1;
            } else {
                data_pos.push(pos);
            }
            pos += 1;
        }
        let max_pos = pos - 1;
        let mut pos_to_data = vec![None; max_pos as usize + 1];
        for (col, &p) in data_pos.iter().enumerate() {
            pos_to_data[p as usize] = Some(col);
        }
        let data_masks = (0..parity_bits)
            .map(|j| {
                let mut mask = BitVec::new(data_bits);
                for (col, &p) in data_pos.iter().enumerate() {
                    if p >> j & 1 == 1 {
                        mask.set(col, true);
                    }
                }
                mask
            })
            .collect();
        Self { data_bits, parity_bits, data_masks, data_pos, pos_to_data }
    }

    /// Data columns protected by the code.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Hamming parity columns (excluding the overall-parity column).
    pub fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    /// Codeword width: data + Hamming parity + one overall-parity bit.
    pub fn total_bits(&self) -> usize {
        self.data_bits + self.parity_bits + 1
    }

    /// Hamming parity bits needed for `data_bits` data columns: the
    /// smallest `p` with `2^p ≥ k + p + 1` (closed form — no code
    /// construction).
    fn parity_bits_for(data_bits: usize) -> usize {
        let mut p = 2;
        while (1usize << p) < data_bits + p + 1 {
            p += 1;
        }
        p
    }

    /// Codeword width the code would need for `data_bits` data columns
    /// (allocation-free; geometry planning calls this per worker or
    /// per Monte-Carlo trial).
    pub fn total_bits_for(data_bits: usize) -> usize {
        data_bits + Self::parity_bits_for(data_bits) + 1
    }

    /// The widest data row whose codeword fits in `columns` columns, if
    /// any (`columns` must be at least 4: one data bit needs two
    /// Hamming parity bits plus the overall bit).
    pub fn widest_data_for(columns: usize) -> Option<usize> {
        if columns < 4 {
            return None;
        }
        // total_bits grows monotonically with k, so walk down from the
        // upper bound (k ≤ columns - 3).
        let mut k = columns - 3;
        while Self::total_bits_for(k) > columns {
            k -= 1;
        }
        Some(k)
    }

    /// Parity of `data & mask` — a masked row scan, the word-parallel
    /// sibling of a scouting AND followed by a population count.
    fn masked_parity(data: &BitVec, mask: &BitVec) -> bool {
        data.as_words()
            .iter()
            .zip(mask.as_words())
            .fold(0u32, |acc, (d, m)| acc ^ ((d & m).count_ones() & 1))
            & 1
            == 1
    }

    /// Encodes `data` into `out` (cleared first; `out` may be wider
    /// than the codeword — extra columns stay zero).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not `data_bits` wide or `out` is narrower
    /// than [`total_bits`](Self::total_bits).
    pub fn encode_into(&self, data: &BitVec, out: &mut BitVec) {
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        assert!(out.len() >= self.total_bits(), "output narrower than the codeword");
        out.clear();
        out.or_shifted(data, 0);
        let mut overall = data.count_ones() % 2 == 1;
        for (j, mask) in self.data_masks.iter().enumerate() {
            let parity = Self::masked_parity(data, mask);
            out.set(self.data_bits + j, parity);
            overall ^= parity;
        }
        out.set(self.data_bits + self.parity_bits, overall);
    }

    /// Encodes `data` into a fresh codeword.
    pub fn encode(&self, data: &BitVec) -> BitVec {
        let mut out = BitVec::new(self.total_bits());
        self.encode_into(data, &mut out);
        out
    }

    /// Decodes (and, for single-bit errors, repairs in place) a
    /// received codeword. `word` may be wider than the codeword; only
    /// the first [`total_bits`](Self::total_bits) columns participate.
    ///
    /// # Panics
    ///
    /// Panics if `word` is narrower than the codeword.
    pub fn decode(&self, word: &mut BitVec) -> EccOutcome {
        assert!(word.len() >= self.total_bits(), "received word narrower than the codeword");
        // Syndrome: recomputed parity vs stored parity, word-parallel
        // per parity mask (the masks are data_bits wide, so the zip
        // naturally excludes the parity columns and any padding).
        let mut syndrome = 0u32;
        for (j, mask) in self.data_masks.iter().enumerate() {
            if Self::masked_parity(word, mask) != word.get(self.data_bits + j) {
                syndrome |= 1 << j;
            }
        }
        // Overall parity over every bit below the overall column —
        // word-parallel: whole words, then the masked partial word.
        let n = self.data_bits + self.parity_bits;
        let words = word.as_words();
        let mut ones = 0u32;
        for w in &words[..n / 64] {
            ones ^= w.count_ones() & 1;
        }
        if !n.is_multiple_of(64) {
            ones ^= (words[n / 64] & ((1u64 << (n % 64)) - 1)).count_ones() & 1;
        }
        let overall_mismatch = (ones & 1 == 1) != word.get(n);
        match (syndrome, overall_mismatch) {
            (0, false) => EccOutcome::Clean,
            (0, true) => {
                // The overall-parity bit itself flipped.
                let bit = self.data_bits + self.parity_bits;
                word.set(bit, !word.get(bit));
                EccOutcome::Corrected { bit }
            }
            (s, true) => {
                let col = if s.is_power_of_two() {
                    // A Hamming parity column (position 2^j).
                    Some(self.data_bits + s.trailing_zeros() as usize)
                } else {
                    self.pos_to_data.get(s as usize).copied().flatten()
                };
                match col {
                    Some(bit) => {
                        word.set(bit, !word.get(bit));
                        EccOutcome::Corrected { bit }
                    }
                    // Syndrome points outside the codeword: at least a
                    // triple error. Detected, not miscorrected.
                    None => EccOutcome::Uncorrectable,
                }
            }
            // Non-zero syndrome with consistent overall parity: an even
            // number of flips. Detected, not miscorrected.
            (_, false) => EccOutcome::Uncorrectable,
        }
    }

    /// Copies the data columns out of a codeword.
    pub fn extract_data(&self, word: &BitVec) -> BitVec {
        let mut out = BitVec::new(self.data_bits);
        word.extract_range_into(0, self.data_bits, &mut out);
        out
    }
}

/// A fault-tolerant view over any crossbar substrate: rows are stored
/// as SEC-DED codewords, reads transparently correct single-bit upsets,
/// and multi-bit corruption surfaces as an error instead of silent
/// wrong data.
///
/// The wrapper implements [`CrossbarBackend`], so an
/// `MvpSimulator<EccCrossbar<BankedCrossbar>>` runs unchanged programs
/// on a protected, banked substrate.
///
/// # Examples
///
/// A stuck-at fault that would silently corrupt a raw read is corrected
/// and counted:
///
/// ```
/// use memcim_bits::BitVec;
/// use memcim_crossbar::{CrossbarBackend, EccCrossbar};
///
/// # fn main() -> Result<(), memcim_crossbar::CrossbarError> {
/// let mut ecc = EccCrossbar::rram(4, 64);
/// ecc.inner_mut().faults_mut().inject_stuck_at(0, 9, true);
/// ecc.program_row(0, &BitVec::new(64))?; // wants all-zero
/// let row = ecc.read_row(0)?;
/// assert_eq!(row.count_ones(), 0, "the stuck-at-1 was corrected");
/// assert_eq!(ecc.corrected_errors(), 1);
/// assert_eq!(ecc.ledger_totals().corrected_errors(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EccCrossbar<B: CrossbarBackend = Crossbar> {
    inner: B,
    code: HammingCode,
    /// Reliability events, merged into [`ledger_parts`] as an extra
    /// (zero-latency) part.
    ///
    /// [`ledger_parts`]: CrossbarBackend::ledger_parts
    ecc_ledger: OpLedger,
    uncorrectable: u64,
    /// Reusable codeword scratch, `inner.cols()` wide.
    scratch: BitVec,
}

impl EccCrossbar<Crossbar> {
    /// A protected monolithic RRAM array exposing `data_cols` logical
    /// columns (the underlying array is `total_bits` wide).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn rram(rows: usize, data_cols: usize) -> Self {
        let code = HammingCode::new(data_cols);
        let inner = Crossbar::rram(rows, code.total_bits());
        Self::from_parts(inner, code)
    }
}

impl EccCrossbar<BankedCrossbar> {
    /// A protected banked RRAM substrate: `bank_count × bank_cols`
    /// physical columns, of which the widest codeword-aligned prefix
    /// serves as data + parity (trailing columns stay unused).
    ///
    /// # Panics
    ///
    /// Panics if the banked geometry is too narrow to host even a
    /// one-bit codeword (fewer than 4 columns total).
    pub fn banked_rram(rows: usize, bank_count: usize, bank_cols: usize) -> Self {
        Self::over(BankedCrossbar::rram(rows, bank_count, bank_cols))
            .expect("banked geometry must fit at least a 1-bit codeword")
    }
}

impl<B: CrossbarBackend> EccCrossbar<B> {
    /// Wraps `inner`, using as many of its columns as data as the code
    /// permits (`widest_data_for(inner.cols())`).
    ///
    /// # Errors
    ///
    /// [`CrossbarError::WidthMismatch`] when `inner` has fewer than 4
    /// columns (no codeword fits).
    pub fn over(inner: B) -> Result<Self, CrossbarError> {
        let data = HammingCode::widest_data_for(inner.cols())
            .ok_or(CrossbarError::WidthMismatch { got: inner.cols(), expected: 4 })?;
        Ok(Self::from_parts(inner, HammingCode::new(data)))
    }

    /// Wraps `inner` with an explicit data width.
    ///
    /// # Errors
    ///
    /// [`CrossbarError::WidthMismatch`] when the codeword for
    /// `data_cols` does not fit in `inner.cols()` columns.
    pub fn with_data_width(inner: B, data_cols: usize) -> Result<Self, CrossbarError> {
        let code = HammingCode::new(data_cols);
        if code.total_bits() > inner.cols() {
            return Err(CrossbarError::WidthMismatch {
                got: inner.cols(),
                expected: code.total_bits(),
            });
        }
        Ok(Self::from_parts(inner, code))
    }

    fn from_parts(inner: B, code: HammingCode) -> Self {
        let width = inner.cols();
        Self {
            inner,
            code,
            ecc_ledger: OpLedger::new(),
            uncorrectable: 0,
            scratch: BitVec::new(width),
        }
    }

    /// The code protecting each row.
    pub fn code(&self) -> &HammingCode {
        &self.code
    }

    /// The raw substrate (fault injection, inspection).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// The raw substrate.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Single-bit upsets corrected so far.
    pub fn corrected_errors(&self) -> u64 {
        self.ecc_ledger.corrected_errors()
    }

    /// Reads that hit a detected-but-uncorrectable codeword.
    pub fn uncorrectable_errors(&self) -> u64 {
        self.uncorrectable
    }

    /// Columns the protection costs on top of the data width (Hamming
    /// parity + overall parity + any unused alignment columns).
    pub fn overhead_cols(&self) -> usize {
        self.inner.cols() - self.code.data_bits()
    }

    /// One protected read: inner read, decode, count, extract.
    fn read_decoded(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        let mut word = self.inner.read_row(row)?;
        match self.code.decode(&mut word) {
            EccOutcome::Clean => {}
            EccOutcome::Corrected { .. } => self.ecc_ledger.record_corrected(1),
            EccOutcome::Uncorrectable => {
                self.uncorrectable += 1;
                return Err(CrossbarError::Uncorrectable { row });
            }
        }
        Ok(self.code.extract_data(&word))
    }
}

impl<B: CrossbarBackend> CrossbarBackend for EccCrossbar<B> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.code.data_bits()
    }

    fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        if values.len() != self.code.data_bits() {
            return Err(CrossbarError::WidthMismatch {
                got: values.len(),
                expected: self.code.data_bits(),
            });
        }
        self.code.encode_into(values, &mut self.scratch);
        self.inner.program_row(row, &self.scratch)
    }

    fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        self.read_decoded(row)
    }

    fn scouting(&mut self, kind: ScoutingKind, rows: &[usize]) -> Result<BitVec, CrossbarError> {
        kind.validate_selection(rows)?;
        // The array cannot correct operands mid-cycle, so a protected
        // scouting op is one corrected read per operand row combined in
        // the periphery — k reads instead of one cycle: the ECC tax.
        let mut acc = self.read_decoded(rows[0])?;
        for &row in &rows[1..] {
            let operand = self.read_decoded(row)?;
            match kind {
                ScoutingKind::Or | ScoutingKind::Nor => acc.or_assign(&operand),
                ScoutingKind::And | ScoutingKind::Nand => acc.and_assign(&operand),
                ScoutingKind::Xor | ScoutingKind::Xnor => acc.xor_assign(&operand),
            }
        }
        match kind {
            ScoutingKind::Nor | ScoutingKind::Nand | ScoutingKind::Xnor => Ok(acc.not()),
            _ => Ok(acc),
        }
    }

    fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError> {
        let result = self.scouting(kind, rows)?;
        self.program_row(dest, &result)?;
        Ok(result)
    }

    fn ledger_parts(&self) -> Vec<OpLedger> {
        let mut parts = self.inner.ledger_parts();
        parts.push(self.ecc_ledger);
        parts
    }

    fn remap_table(&self) -> Vec<crate::RemapEntry> {
        self.inner.remap_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_geometry_matches_hamming_bounds() {
        // (k, p) classics: k=1→p=2, k=4→p=3, k=11→p=4, k=26→p=5, k=57→p=6, k=64→p=7.
        for (k, p) in [(1, 2), (4, 3), (11, 4), (26, 5), (57, 6), (64, 7), (120, 7), (128, 8)] {
            let code = HammingCode::new(k);
            assert_eq!(code.parity_bits(), p, "k = {k}");
            assert_eq!(code.total_bits(), k + p + 1);
            // The closed-form planner agrees with the constructed code.
            assert_eq!(HammingCode::total_bits_for(k), code.total_bits(), "k = {k}");
        }
    }

    #[test]
    fn widest_data_inverts_total_bits() {
        for cols in 4..200 {
            let k = HammingCode::widest_data_for(cols).expect("cols >= 4 fits");
            assert!(HammingCode::total_bits_for(k) <= cols);
            assert!(HammingCode::total_bits_for(k + 1) > cols);
        }
        assert_eq!(HammingCode::widest_data_for(3), None);
    }

    #[test]
    fn clean_round_trip() {
        let code = HammingCode::new(33);
        let data = BitVec::from_indices(33, &[0, 7, 20, 32]);
        let mut word = code.encode(&data);
        assert_eq!(code.decode(&mut word), EccOutcome::Clean);
        assert_eq!(code.extract_data(&word), data);
    }

    #[test]
    fn every_single_flip_is_corrected_small_widths_exhaustively() {
        for k in 1..=16usize {
            let code = HammingCode::new(k);
            let data = BitVec::from_indices(k, &(0..k).step_by(2).collect::<Vec<_>>());
            let clean = code.encode(&data);
            for flip in 0..code.total_bits() {
                let mut word = clean.clone();
                word.set(flip, !word.get(flip));
                assert_eq!(code.decode(&mut word), EccOutcome::Corrected { bit: flip });
                assert_eq!(code.extract_data(&word), data, "k = {k}, flip = {flip}");
            }
        }
    }

    #[test]
    fn double_flips_are_detected_not_miscorrected_small_widths() {
        for k in [1usize, 5, 8, 12] {
            let code = HammingCode::new(k);
            let data = BitVec::from_indices(k, &[0]);
            let clean = code.encode(&data);
            for a in 0..code.total_bits() {
                for b in a + 1..code.total_bits() {
                    let mut word = clean.clone();
                    word.set(a, !word.get(a));
                    word.set(b, !word.get(b));
                    assert_eq!(
                        code.decode(&mut word),
                        EccOutcome::Uncorrectable,
                        "k = {k}, flips = ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn ecc_read_write_round_trips_through_the_backend_trait() {
        let mut ecc = EccCrossbar::rram(4, 96);
        assert_eq!(ecc.cols(), 96);
        assert_eq!(ecc.rows(), 4);
        let data = BitVec::from_indices(96, &[0, 50, 95]);
        ecc.program_row(2, &data).expect("program");
        assert_eq!(ecc.read_row(2).expect("read"), data);
        assert_eq!(ecc.corrected_errors(), 0);
    }

    #[test]
    fn single_stuck_cell_is_transparent_and_counted() {
        let mut ecc = EccCrossbar::rram(2, 64);
        ecc.inner_mut().faults_mut().inject_stuck_at(0, 30, false);
        let data = BitVec::from_indices(64, &[29, 30, 31]);
        ecc.program_row(0, &data).expect("program");
        assert_eq!(ecc.read_row(0).expect("read"), data, "stuck-at-0 corrected");
        assert_eq!(ecc.corrected_errors(), 1);
        // The correction surfaces through the aggregated ledger too.
        assert_eq!(ecc.ledger_totals().corrected_errors(), 1);
    }

    #[test]
    fn stuck_parity_column_is_also_corrected() {
        let mut ecc = EccCrossbar::rram(2, 32);
        // First parity column lives right after the data columns.
        ecc.inner_mut().faults_mut().inject_stuck_at(0, 32, true);
        let data = BitVec::from_indices(32, &[1]);
        ecc.program_row(0, &data).expect("program");
        assert_eq!(ecc.read_row(0).expect("read"), data);
    }

    #[test]
    fn double_fault_in_one_row_surfaces_as_uncorrectable() {
        let mut ecc = EccCrossbar::rram(2, 64);
        ecc.inner_mut().faults_mut().inject_stuck_at(0, 3, true);
        ecc.inner_mut().faults_mut().inject_stuck_at(0, 40, true);
        ecc.program_row(0, &BitVec::new(64)).expect("program");
        let err = ecc.read_row(0).expect_err("two upsets exceed SEC");
        assert_eq!(err, CrossbarError::Uncorrectable { row: 0 });
        assert!(err.is_fault_fatal());
        assert_eq!(ecc.uncorrectable_errors(), 1);
    }

    #[test]
    fn protected_scouting_matches_boolean_reference_under_faults() {
        let mut ecc = EccCrossbar::rram(4, 80);
        // One stuck cell in each operand row: correctable per read.
        ecc.inner_mut().faults_mut().inject_stuck_at(0, 10, true);
        ecc.inner_mut().faults_mut().inject_stuck_at(1, 60, false);
        let a = BitVec::from_indices(80, &(0..80).step_by(3).collect::<Vec<_>>());
        let b = BitVec::from_indices(80, &(0..80).step_by(5).collect::<Vec<_>>());
        ecc.program_row(0, &a).expect("r0");
        ecc.program_row(1, &b).expect("r1");
        assert_eq!(ecc.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
        assert_eq!(ecc.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
        assert_eq!(ecc.scouting(ScoutingKind::Xor, &[0, 1]).expect("xor"), a.xor(&b));
        assert_eq!(ecc.scouting(ScoutingKind::Nand, &[0, 1]).expect("nand"), a.and(&b).not());
        let result = ecc.scouting_write(ScoutingKind::Nor, &[0, 1], 3).expect("nor→3");
        assert_eq!(result, a.or(&b).not());
        assert_eq!(ecc.read_row(3).expect("read-back"), result);
    }

    #[test]
    fn protected_scouting_rejects_invalid_selections() {
        let mut ecc = EccCrossbar::rram(4, 32);
        assert!(matches!(
            ecc.scouting(ScoutingKind::Or, &[0]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
        assert!(matches!(
            ecc.scouting(ScoutingKind::Or, &[1, 1]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
        assert!(matches!(
            ecc.scouting(ScoutingKind::Xnor, &[0, 1, 2]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
    }

    #[test]
    fn banked_substrate_can_be_protected_too() {
        let mut ecc = EccCrossbar::banked_rram(4, 3, 32);
        // 96 physical columns; the codeword (k + p + 1) must fit.
        let k = ecc.cols();
        assert!(HammingCode::total_bits_for(k) <= 96);
        let data = BitVec::from_indices(k, &[0, k / 2, k - 1]);
        ecc.program_row(1, &data).expect("program");
        // A stuck cell in the middle bank is corrected transparently.
        ecc.inner_mut().bank_mut(1).expect("bank").faults_mut().inject_stuck_at(1, 5, true);
        let read = ecc.read_row(1).expect("read");
        assert_eq!(read, data, "stuck cell in bank 1 corrected");
        assert_eq!(ecc.corrected_errors(), 1);
    }

    #[test]
    fn width_mismatches_are_rejected() {
        let mut ecc = EccCrossbar::rram(2, 32);
        assert!(matches!(
            ecc.program_row(0, &BitVec::new(31)),
            Err(CrossbarError::WidthMismatch { got: 31, expected: 32 })
        ));
        let narrow = Crossbar::rram(2, 3);
        assert!(EccCrossbar::over(narrow).is_err());
        let exact = Crossbar::rram(2, HammingCode::total_bits_for(16));
        assert!(EccCrossbar::with_data_width(exact, 17).is_err());
    }
}
