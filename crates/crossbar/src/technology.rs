//! Per-cell technology models and the calibration constants of Fig. 9.
//!
//! Every technology-dependent number in the workspace originates here.
//! The RRAM and SRAM constants are calibrated so that the *analytic*
//! bit-line model reproduces the paper's Fig. 9 HSPICE targets:
//!
//! | quantity                    | paper (HSPICE) | analytic model |
//! |-----------------------------|----------------|----------------|
//! | RRAM discharge (0.4→0.1 V)  | 104 ps         | ≈103 ps        |
//! | SRAM discharge              | 161 ps         | ≈159 ps        |
//! | RRAM cycle energy           | 2.09 fJ        | ≈2.09 fJ       |
//! | SRAM cycle energy           | 5.16 fJ        | ≈5.16 fJ       |
//!
//! and the transient simulation in [`crate::BitlineCircuit`] is checked
//! against both (see `tests/fig9_calibration.rs` at the workspace root).

use memcim_spice::MosfetParams;
use memcim_units::{Farads, Joules, Ohms, Seconds, SquareMicrometers, Volts, Watts};

/// A bit-cell technology: everything the array, AP and MVP models need to
/// cost an operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTechnology {
    /// Technology name for reports.
    pub name: &'static str,
    /// Feature size F in nanometres.
    pub feature_nm: f64,
    /// Cell layout area in F².
    pub cell_area_f2: f64,
    /// Per-cell bit-line capacitance (junction + wire share).
    pub cell_bitline_cap: Farads,
    /// Discharge-path resistance when the selected cell conducts
    /// (access device(s) plus storage element).
    pub discharge_resistance: Ohms,
    /// Bit-line precharge voltage.
    pub precharge: Volts,
    /// Sense threshold: the bit line must fall to this level to read 1.
    pub sense_level: Volts,
    /// Energy to program one bit (SET or RESET average).
    pub program_energy: Joules,
    /// Latency to program one bit.
    pub program_latency: Seconds,
    /// Word-line-to-sense latency overhead on top of the discharge time
    /// (decoder + SA resolution).
    pub peripheral_latency: Seconds,
    /// Static leakage per cell.
    pub leakage_per_cell: Watts,
    /// Whether the cell retains state without power.
    pub non_volatile: bool,
    /// Access-transistor model used by the explicit transient netlist.
    pub access_transistor: MosfetParams,
    /// Number of series transistors in the discharge path (1 for 1T1R,
    /// 2 for the 8T SRAM read port).
    pub series_transistors: u32,
}

impl CellTechnology {
    /// The paper's 1T1R RRAM cell (Fig. 8b) at 32 nm.
    ///
    /// Discharge path: one access NMOS (≈3.28 kΩ in deep triode) in
    /// series with the 1 kΩ ON-state memristor. Per-cell bit-line load:
    /// 45 aF drain junction + 23 aF wire share.
    pub fn rram_1t1r() -> Self {
        Self {
            name: "RRAM-1T1R",
            feature_nm: 32.0,
            cell_area_f2: 12.0,
            cell_bitline_cap: Farads::from_attofarads(45.0 + 23.0),
            discharge_resistance: Ohms::new(3280.0 + 1000.0),
            precharge: Volts::new(0.4),
            sense_level: Volts::new(0.1),
            program_energy: Joules::from_picojoules(2.0),
            program_latency: Seconds::from_nanoseconds(10.0),
            peripheral_latency: Seconds::from_picoseconds(250.0),
            leakage_per_cell: Watts::new(0.0),
            non_volatile: true,
            access_transistor: MosfetParams::ptm32_access_nmos(),
            series_transistors: 1,
        }
    }

    /// The 8T SRAM cell of the Cache Automaton comparison (Fig. 8c) at
    /// 32 nm.
    ///
    /// Discharge path: two read-port NMOS in series (≈1.33 kΩ each; the
    /// read port is drawn ≈2.5× wider than the RRAM access device, which
    /// is why its parasitic load is proportionally larger). Per-cell
    /// bit-line load: 145 aF transistor parasitics + 23 aF wire share.
    pub fn sram_8t() -> Self {
        Self {
            name: "SRAM-8T",
            feature_nm: 32.0,
            cell_area_f2: 250.0,
            cell_bitline_cap: Farads::from_attofarads(145.0 + 23.0),
            discharge_resistance: Ohms::new(2.0 * 1333.0),
            precharge: Volts::new(0.4),
            sense_level: Volts::new(0.1),
            program_energy: Joules::from_femtojoules(150.0),
            program_latency: Seconds::from_picoseconds(300.0),
            peripheral_latency: Seconds::from_picoseconds(250.0),
            leakage_per_cell: Watts::new(15.0e-9),
            non_volatile: false,
            access_transistor: MosfetParams::ptm32_readport_nmos(),
            series_transistors: 2,
        }
    }

    /// A 6T SRAM cell (cache storage baseline for the MVP model).
    pub fn sram_6t() -> Self {
        Self {
            name: "SRAM-6T",
            cell_area_f2: 160.0,
            program_energy: Joules::from_femtojoules(100.0),
            leakage_per_cell: Watts::new(10.0e-9),
            ..Self::sram_8t()
        }
    }

    /// A 1T1C DRAM cell (the Micron AP substrate and the MVP DRAM model).
    pub fn dram_1t1c() -> Self {
        Self {
            name: "DRAM-1T1C",
            feature_nm: 32.0,
            cell_area_f2: 8.0,
            cell_bitline_cap: Farads::from_attofarads(90.0),
            discharge_resistance: Ohms::new(8000.0),
            precharge: Volts::new(0.5),
            sense_level: Volts::new(0.25),
            program_energy: Joules::from_femtojoules(500.0),
            program_latency: Seconds::from_nanoseconds(10.0),
            peripheral_latency: Seconds::from_nanoseconds(2.0),
            leakage_per_cell: Watts::new(1.0e-9), // refresh-equivalent
            non_volatile: false,
            access_transistor: MosfetParams::ptm32_access_nmos(),
            series_transistors: 1,
        }
    }

    /// Total bit-line capacitance for `n_cells` on one column.
    pub fn bitline_capacitance(&self, n_cells: usize) -> Farads {
        Farads::new(self.cell_bitline_cap.as_farads() * n_cells as f64)
    }

    /// First-order RC estimate of the discharge time from `precharge` to
    /// `sense_level` with one conducting cell:
    /// `t = R·C·ln(V_pre / V_sense)`.
    pub fn analytic_discharge_time(&self, n_cells: usize) -> Seconds {
        let tau = self.discharge_resistance * self.bitline_capacitance(n_cells);
        tau * (self.precharge.as_volts() / self.sense_level.as_volts()).ln()
    }

    /// First-order estimate of one evaluate-and-recharge cycle's energy:
    /// the precharge supply re-delivers `C·V_pre·(V_pre − V_sense)`.
    pub fn analytic_cycle_energy(&self, n_cells: usize) -> Joules {
        let c = self.bitline_capacitance(n_cells).as_farads();
        let swing = self.precharge.as_volts() - self.sense_level.as_volts();
        Joules::new(c * self.precharge.as_volts() * swing)
    }

    /// One read/evaluate cycle's latency: discharge plus peripheral
    /// overhead.
    pub fn read_latency(&self, n_cells: usize) -> Seconds {
        self.analytic_discharge_time(n_cells) + self.peripheral_latency
    }

    /// Cell area in square micrometres.
    pub fn cell_area(&self) -> SquareMicrometers {
        let f_um = self.feature_nm * 1.0e-3;
        SquareMicrometers::new(self.cell_area_f2 * f_um * f_um)
    }

    /// Layout area of a `rows × cols` array including a peripheral
    /// overhead factor (decoders, sense amplifiers, drivers): 30 %.
    pub fn array_area(&self, rows: usize, cols: usize) -> SquareMicrometers {
        self.cell_area() * (rows as f64 * cols as f64) * 1.3
    }

    /// Static power of `cells` bit cells.
    pub fn static_power(&self, cells: usize) -> Watts {
        self.leakage_per_cell * cells as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_units::{approx_eq, RelTol};

    #[test]
    fn rram_discharge_calibration_hits_paper_target() {
        let t = CellTechnology::rram_1t1r().analytic_discharge_time(256);
        assert!(
            approx_eq(t.as_picoseconds(), 104.0, RelTol::new(0.05)),
            "t = {} ps",
            t.as_picoseconds()
        );
    }

    #[test]
    fn sram_discharge_calibration_hits_paper_target() {
        let t = CellTechnology::sram_8t().analytic_discharge_time(256);
        assert!(
            approx_eq(t.as_picoseconds(), 161.0, RelTol::new(0.05)),
            "t = {} ps",
            t.as_picoseconds()
        );
    }

    #[test]
    fn cycle_energy_calibration_hits_paper_targets() {
        let e_rram = CellTechnology::rram_1t1r().analytic_cycle_energy(256);
        let e_sram = CellTechnology::sram_8t().analytic_cycle_energy(256);
        assert!(approx_eq(e_rram.as_femtojoules(), 2.09, RelTol::new(0.05)), "{e_rram}");
        assert!(approx_eq(e_sram.as_femtojoules(), 5.16, RelTol::new(0.05)), "{e_sram}");
    }

    #[test]
    fn headline_ratios_match_the_paper() {
        // "The discharge time through RRAM is 35 % less than SRAM" and
        // "the energy is 59 % less".
        let rram = CellTechnology::rram_1t1r();
        let sram = CellTechnology::sram_8t();
        let delay_saving = 1.0
            - rram.analytic_discharge_time(256).as_seconds()
                / sram.analytic_discharge_time(256).as_seconds();
        let energy_saving = 1.0
            - rram.analytic_cycle_energy(256).as_joules()
                / sram.analytic_cycle_energy(256).as_joules();
        assert!((0.30..0.40).contains(&delay_saving), "delay saving {delay_saving}");
        assert!((0.55..0.63).contains(&energy_saving), "energy saving {energy_saving}");
    }

    #[test]
    fn rram_cell_is_an_order_of_magnitude_denser_than_8t_sram() {
        let rram = CellTechnology::rram_1t1r().cell_area();
        let sram = CellTechnology::sram_8t().cell_area();
        assert!(sram.as_square_micrometers() / rram.as_square_micrometers() > 10.0);
    }

    #[test]
    fn rram_has_zero_standby_power() {
        let rram = CellTechnology::rram_1t1r();
        assert!(rram.non_volatile);
        assert_eq!(rram.static_power(1 << 20).as_watts(), 0.0);
        let sram = CellTechnology::sram_8t();
        assert!(sram.static_power(1 << 20).as_watts() > 0.0);
    }

    #[test]
    fn discharge_time_scales_linearly_with_cells() {
        let tech = CellTechnology::rram_1t1r();
        let t128 = tech.analytic_discharge_time(128).as_seconds();
        let t256 = tech.analytic_discharge_time(256).as_seconds();
        assert!(approx_eq(t256 / t128, 2.0, RelTol::new(1e-9)));
    }

    #[test]
    fn array_area_includes_peripherals() {
        let tech = CellTechnology::rram_1t1r();
        let a = tech.array_area(256, 256);
        let cells_only = tech.cell_area() * (256.0 * 256.0);
        assert!(a.as_square_micrometers() > cells_only.as_square_micrometers());
    }
}
