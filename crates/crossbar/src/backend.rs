//! The [`CrossbarBackend`] trait: one interface over monolithic and
//! banked crossbar substrates.
//!
//! The paper's MVP owns a 2 GB crossbar that is physically *millions of
//! subarrays* operating column-parallel; functionally, though, the host
//! sees a single logical array. This trait captures exactly that host
//! view — row programming, row reads, scouting logic with and without
//! write-back, geometry and aggregated cost accounting — so that
//! everything built on top (the MVP simulator and its workloads) runs
//! unchanged on a [`Crossbar`] or a [`BankedCrossbar`].
//!
//! The two implementations differ only in their cost aggregation:
//!
//! * [`Crossbar`] reports its own [`OpLedger`] verbatim.
//! * [`BankedCrossbar`] **sums** operation counts and energy over banks
//!   (every bank really spends its joules) but takes the **maximum**
//!   busy time (banks operate in the same memory cycles, so wall clock
//!   is the slowest bank, not the sum) — see
//!   [`OpLedger::merge_parallel`].

use crate::{BankedCrossbar, Crossbar, CrossbarError, OpLedger, ScoutingKind};
use memcim_bits::BitVec;

/// One non-identity entry of a substrate's spare-row remap table: the
/// logical row that was retired, the physical (spare) row now backing
/// it, and — for banked substrates — which bank performed the repair
/// (0 for a monolithic array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapEntry {
    /// Bank that holds the remap (0 on a monolithic array).
    pub bank: usize,
    /// The host-visible row that was retired.
    pub logical: usize,
    /// The spare physical row now serving it.
    pub physical: usize,
}

/// A logical crossbar substrate: the host-visible row/column interface
/// shared by [`Crossbar`] and [`BankedCrossbar`].
///
/// # Examples
///
/// Generic code runs identically on both substrates:
///
/// ```
/// use memcim_bits::BitVec;
/// use memcim_crossbar::{BankedCrossbar, Crossbar, CrossbarBackend, ScoutingKind};
///
/// fn and_of_two_rows<B: CrossbarBackend>(xbar: &mut B) -> BitVec {
///     let w = xbar.cols();
///     xbar.program_row(0, &BitVec::from_indices(w, &[1, 2])).unwrap();
///     xbar.program_row(1, &BitVec::from_indices(w, &[2, 3])).unwrap();
///     xbar.scouting(ScoutingKind::And, &[0, 1]).unwrap()
/// }
///
/// let mono = and_of_two_rows(&mut Crossbar::rram(4, 96));
/// let banked = and_of_two_rows(&mut BankedCrossbar::rram(4, 3, 32));
/// assert_eq!(mono, banked);
/// assert_eq!(mono.ones().collect::<Vec<_>>(), vec![2]);
/// ```
pub trait CrossbarBackend {
    /// Number of addressable rows.
    fn rows(&self) -> usize;

    /// Logical row width in columns.
    fn cols(&self) -> usize;

    /// Programs a logical row in one parallel programming cycle,
    /// returning the number of cells whose state changed.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] /
    /// [`CrossbarError::WidthMismatch`] for invalid arguments.
    fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError>;

    /// Reads a logical row back (one memory cycle; faults and
    /// variability apply).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for an invalid row.
    fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError>;

    /// A scouting logic operation over the full logical width in one
    /// memory cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidRowSelection`] /
    /// [`CrossbarError::OutOfBounds`] exactly as [`Crossbar::scouting`].
    fn scouting(&mut self, kind: ScoutingKind, rows: &[usize]) -> Result<BitVec, CrossbarError>;

    /// Scouting with write-back of the result into row `dest` — the
    /// MVP's in-memory macro-instruction.
    ///
    /// # Errors
    ///
    /// Combines the error conditions of [`scouting`](Self::scouting)
    /// and [`program_row`](Self::program_row).
    fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError>;

    /// Aggregated activity totals for the whole substrate. For a banked
    /// substrate, energy and operation counts sum over banks while busy
    /// time is the wall-clock maximum over banks.
    fn ledger_totals(&self) -> OpLedger {
        let mut total = OpLedger::new();
        for part in self.ledger_parts() {
            total.merge_parallel(&part);
        }
        total
    }

    /// The per-subarray ledgers backing
    /// [`ledger_totals`](Self::ledger_totals): a single entry for a
    /// monolithic array, one
    /// entry per bank (in bank order) for a banked one. Interval
    /// accounting must diff these part-wise and re-aggregate
    /// ([`OpLedger::delta_since`] is only monotone per part — the
    /// max-over-banks busy time of the *aggregate* is not), which is
    /// exactly what `MvpSimulator::run_batch` does.
    fn ledger_parts(&self) -> Vec<OpLedger>;

    /// The substrate's spare-row remap table: every logical row
    /// currently served by a spare physical row, or empty for
    /// substrates without spare-row repair (the default).
    fn remap_table(&self) -> Vec<RemapEntry> {
        Vec::new()
    }
}

/// Boxed backends delegate verbatim, so heterogeneous engine pools
/// (raw, banked, ECC-protected) can share one
/// `MvpSimulator<Box<dyn CrossbarBackend + Send>>` worker type.
impl<T: CrossbarBackend + ?Sized> CrossbarBackend for Box<T> {
    fn rows(&self) -> usize {
        (**self).rows()
    }

    fn cols(&self) -> usize {
        (**self).cols()
    }

    fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        (**self).program_row(row, values)
    }

    fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        (**self).read_row(row)
    }

    fn scouting(&mut self, kind: ScoutingKind, rows: &[usize]) -> Result<BitVec, CrossbarError> {
        (**self).scouting(kind, rows)
    }

    fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError> {
        (**self).scouting_write(kind, rows, dest)
    }

    fn ledger_totals(&self) -> OpLedger {
        (**self).ledger_totals()
    }

    fn ledger_parts(&self) -> Vec<OpLedger> {
        (**self).ledger_parts()
    }

    fn remap_table(&self) -> Vec<RemapEntry> {
        (**self).remap_table()
    }
}

impl CrossbarBackend for Crossbar {
    fn rows(&self) -> usize {
        Crossbar::rows(self)
    }

    fn cols(&self) -> usize {
        Crossbar::cols(self)
    }

    fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        Crossbar::program_row(self, row, values)
    }

    fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        Crossbar::read_row(self, row)
    }

    fn scouting(&mut self, kind: ScoutingKind, rows: &[usize]) -> Result<BitVec, CrossbarError> {
        Crossbar::scouting(self, kind, rows)
    }

    fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError> {
        Crossbar::scouting_write(self, kind, rows, dest)
    }

    fn ledger_totals(&self) -> OpLedger {
        *self.ledger()
    }

    fn ledger_parts(&self) -> Vec<OpLedger> {
        vec![*self.ledger()]
    }

    fn remap_table(&self) -> Vec<RemapEntry> {
        Crossbar::remap_table(self)
    }
}

impl CrossbarBackend for BankedCrossbar {
    fn rows(&self) -> usize {
        BankedCrossbar::rows(self)
    }

    fn cols(&self) -> usize {
        BankedCrossbar::cols(self)
    }

    fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        BankedCrossbar::program_row(self, row, values)
    }

    fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        BankedCrossbar::read_row(self, row)
    }

    fn scouting(&mut self, kind: ScoutingKind, rows: &[usize]) -> Result<BitVec, CrossbarError> {
        BankedCrossbar::scouting(self, kind, rows)
    }

    fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError> {
        BankedCrossbar::scouting_write(self, kind, rows, dest)
    }

    fn ledger_totals(&self) -> OpLedger {
        BankedCrossbar::ledger_totals(self)
    }

    fn ledger_parts(&self) -> Vec<OpLedger> {
        self.bank_ledgers()
    }

    fn remap_table(&self) -> Vec<RemapEntry> {
        BankedCrossbar::remap_table(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<B: CrossbarBackend>(xbar: &mut B) -> (BitVec, BitVec, OpLedger) {
        let w = xbar.cols();
        let a = BitVec::from_indices(w, &(0..w).step_by(2).collect::<Vec<_>>());
        let b = BitVec::from_indices(w, &(0..w).step_by(3).collect::<Vec<_>>());
        xbar.program_row(0, &a).expect("r0");
        xbar.program_row(1, &b).expect("r1");
        let or = xbar.scouting_write(ScoutingKind::Or, &[0, 1], 2).expect("or");
        let back = xbar.read_row(2).expect("read");
        (or, back, xbar.ledger_totals())
    }

    #[test]
    fn monolithic_and_banked_agree_through_the_trait() {
        let (or_m, back_m, ledger_m) = exercise(&mut Crossbar::rram(4, 192));
        let (or_b, back_b, ledger_b) = exercise(&mut BankedCrossbar::rram(4, 3, 64));
        assert_eq!(or_m, or_b);
        assert_eq!(back_m, back_b);
        assert_eq!(ledger_m.scouting_ops(), 1);
        // Each bank performs its own scouting op: counts sum over banks.
        assert_eq!(ledger_b.scouting_ops(), 3);
        // Wall clock is per-bank (max), so the banked run is no slower.
        assert!(ledger_b.busy_time().as_seconds() <= ledger_m.busy_time().as_seconds() + 1e-18);
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut backends: Vec<Box<dyn CrossbarBackend>> =
            vec![Box::new(Crossbar::rram(2, 64)), Box::new(BankedCrossbar::rram(2, 2, 32))];
        for xbar in &mut backends {
            let w = xbar.cols();
            xbar.program_row(0, &BitVec::from_indices(w, &[5])).expect("program");
            assert_eq!(xbar.read_row(0).expect("read").ones().collect::<Vec<_>>(), vec![5]);
        }
    }
}
