//! Error type for crossbar operations.

use core::fmt;
use memcim_device::DeviceError;

/// Errors produced by crossbar construction and array operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrossbarError {
    /// A row or column index was outside the array.
    OutOfBounds {
        /// The offending row index.
        row: usize,
        /// The offending column index (0 for row-level operations).
        col: usize,
        /// Array dimensions.
        rows: usize,
        /// Array dimensions.
        cols: usize,
    },
    /// A scouting operation was requested over an invalid row selection.
    InvalidRowSelection {
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A row vector's length did not match the column count.
    WidthMismatch {
        /// Supplied vector length.
        got: usize,
        /// Expected column count.
        expected: usize,
    },
    /// A device wore out during programming.
    Endurance(DeviceError),
    /// An ECC-protected read found more faulty bits than the code can
    /// correct (a double-bit — or worse — error in one codeword).
    Uncorrectable {
        /// The logical row whose codeword failed to decode.
        row: usize,
    },
    /// A row crossed its fault-retirement threshold but every reserved
    /// spare row is already in use — the array can no longer repair
    /// itself and should be retired from service.
    ExhaustedSpares {
        /// The logical row that needed (and was denied) a remap.
        row: usize,
        /// How many spare rows the array reserved in total.
        spares: usize,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::OutOfBounds { row, col, rows, cols } => {
                write!(f, "cell ({row}, {col}) outside {rows}×{cols} array")
            }
            CrossbarError::InvalidRowSelection { constraint } => {
                write!(f, "invalid scouting row selection: {constraint}")
            }
            CrossbarError::WidthMismatch { got, expected } => {
                write!(f, "row vector length {got} does not match column count {expected}")
            }
            CrossbarError::Endurance(e) => write!(f, "endurance failure: {e}"),
            CrossbarError::Uncorrectable { row } => {
                write!(f, "uncorrectable multi-bit error in row {row}")
            }
            CrossbarError::ExhaustedSpares { row, spares } => {
                write!(f, "row {row} needs retirement but all {spares} spare rows are in use")
            }
        }
    }
}

impl CrossbarError {
    /// `true` for the errors that mean the *substrate itself* has lost
    /// its ability to execute reliably (uncorrectable data, no spares
    /// left) — as opposed to a malformed request. A serving layer
    /// reacts to these by retiring the whole engine from its pool.
    pub fn is_fault_fatal(&self) -> bool {
        matches!(self, CrossbarError::Uncorrectable { .. } | CrossbarError::ExhaustedSpares { .. })
    }
}

impl std::error::Error for CrossbarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrossbarError::Endurance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for CrossbarError {
    fn from(e: DeviceError) -> Self {
        CrossbarError::Endurance(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = CrossbarError::Endurance(DeviceError::EnduranceExhausted { cycles: 7 });
        assert!(e.to_string().contains("endurance"));
        assert!(e.source().is_some());
        let o = CrossbarError::OutOfBounds { row: 9, col: 0, rows: 4, cols: 4 };
        assert!(o.to_string().contains("(9, 0)"));
        assert!(o.source().is_none());
    }
}
