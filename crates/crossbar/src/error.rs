//! Error type for crossbar operations.

use core::fmt;
use memcim_device::DeviceError;

/// Errors produced by crossbar construction and array operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrossbarError {
    /// A row or column index was outside the array.
    OutOfBounds {
        /// The offending row index.
        row: usize,
        /// The offending column index (0 for row-level operations).
        col: usize,
        /// Array dimensions.
        rows: usize,
        /// Array dimensions.
        cols: usize,
    },
    /// A scouting operation was requested over an invalid row selection.
    InvalidRowSelection {
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A row vector's length did not match the column count.
    WidthMismatch {
        /// Supplied vector length.
        got: usize,
        /// Expected column count.
        expected: usize,
    },
    /// A device wore out during programming.
    Endurance(DeviceError),
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::OutOfBounds { row, col, rows, cols } => {
                write!(f, "cell ({row}, {col}) outside {rows}×{cols} array")
            }
            CrossbarError::InvalidRowSelection { constraint } => {
                write!(f, "invalid scouting row selection: {constraint}")
            }
            CrossbarError::WidthMismatch { got, expected } => {
                write!(f, "row vector length {got} does not match column count {expected}")
            }
            CrossbarError::Endurance(e) => write!(f, "endurance failure: {e}"),
        }
    }
}

impl std::error::Error for CrossbarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrossbarError::Endurance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for CrossbarError {
    fn from(e: DeviceError) -> Self {
        CrossbarError::Endurance(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = CrossbarError::Endurance(DeviceError::EnduranceExhausted { cycles: 7 });
        assert!(e.to_string().contains("endurance"));
        assert!(e.source().is_some());
        let o = CrossbarError::OutOfBounds { row: 9, col: 0, rows: 4, cols: 4 };
        assert!(o.to_string().contains("(9, 0)"));
        assert!(o.source().is_none());
    }
}
