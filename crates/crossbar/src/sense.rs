//! Sense-amplifier reference placement for scouting logic (Fig. 3b).

use crate::CrossbarError;
use memcim_units::{Amps, Ohms, Volts};

/// The logic function realized by a multi-row scouting read.
///
/// The complemented gates (`Nor`, `Nand`, `Xnor`) come for free: the
/// sense amplifier of the paper's Fig. 8 already produces an inverted
/// output, so complementation is an output-mux setting, not extra
/// references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoutingKind {
    /// Output 1 when *any* activated cell stores 1.
    Or,
    /// Output 1 when *all* activated cells store 1.
    And,
    /// Output 1 when *exactly one* of two activated cells stores 1
    /// (two-reference window detection; defined for exactly two rows).
    Xor,
    /// Complement of [`Or`](ScoutingKind::Or).
    Nor,
    /// Complement of [`And`](ScoutingKind::And).
    Nand,
    /// Complement of [`Xor`](ScoutingKind::Xor) (two rows).
    Xnor,
}

impl ScoutingKind {
    /// The underlying reference placement (complemented gates share
    /// their base gate's references).
    pub(crate) fn base(self) -> ScoutingKind {
        match self {
            ScoutingKind::Nor => ScoutingKind::Or,
            ScoutingKind::Nand => ScoutingKind::And,
            ScoutingKind::Xnor => ScoutingKind::Xor,
            other => other,
        }
    }

    /// Whether the SA output is taken inverted.
    pub(crate) fn inverted(self) -> bool {
        matches!(self, ScoutingKind::Nor | ScoutingKind::Nand | ScoutingKind::Xnor)
    }

    /// Whether the gate is only defined over exactly two rows.
    pub fn is_window_gate(self) -> bool {
        matches!(self.base(), ScoutingKind::Xor)
    }

    /// Validates a row selection for this gate — the single source of
    /// the scouting selection policy (at least two rows, window gates
    /// over exactly two, rows distinct), shared by every substrate so
    /// raw and protected arrays accept exactly the same programs.
    /// Bounds checking stays with the substrate (it knows its
    /// geometry).
    ///
    /// # Errors
    ///
    /// [`CrossbarError::InvalidRowSelection`] naming the violated
    /// constraint.
    pub fn validate_selection(self, rows: &[usize]) -> Result<(), CrossbarError> {
        if rows.len() < 2 {
            return Err(CrossbarError::InvalidRowSelection {
                constraint: "at least two rows must be activated",
            });
        }
        if self.is_window_gate() && rows.len() != 2 {
            return Err(CrossbarError::InvalidRowSelection {
                constraint: "xor/xnor are defined over exactly two rows",
            });
        }
        for (i, &r) in rows.iter().enumerate() {
            if rows[..i].contains(&r) {
                return Err(CrossbarError::InvalidRowSelection {
                    constraint: "rows must be distinct",
                });
            }
        }
        Ok(())
    }
}

/// Sense-amplifier reference current(s) for one scouting gate.
///
/// A plain comparison gate (`OR`, `AND`) carries one reference: the output
/// is 1 when the bit-line current exceeds it. The `XOR` gate carries a
/// window `(low, high)`: the output is 1 when the current falls strictly
/// inside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseThresholds {
    low: Amps,
    high: Option<Amps>,
    inverted: bool,
}

impl SenseThresholds {
    /// Computes the reference placement of the paper's Fig. 3b for `kind`
    /// over `k_rows` simultaneously activated rows, a read voltage `vr`,
    /// and the cell resistance states.
    ///
    /// Current levels (per Fig. 3b, with `RH ≫ RL`):
    /// all-zero ⇒ `k·Vr/RH ≈ 0`; exactly one 1 ⇒ `≈Vr/RL`;
    /// all ones ⇒ `k·Vr/RL`.
    ///
    /// * `OR`: single reference at the geometric mean of `k·Vr/RH` and
    ///   `Vr/RL` (decades apart — geometric centring maximizes margin).
    /// * `AND`: single reference midway between `(k−1)·Vr/RL` and
    ///   `k·Vr/RL`.
    /// * `XOR` (k = 2): window between the `OR` reference and the
    ///   midpoint of `Vr/RL` and `2·Vr/RL`.
    ///
    /// # Panics
    ///
    /// Panics if `k_rows < 2`, if `kind` is `Xor` and `k_rows != 2`, or
    /// if `r_low >= r_high`.
    pub fn for_gate(
        kind: ScoutingKind,
        k_rows: usize,
        vr: Volts,
        r_low: Ohms,
        r_high: Ohms,
    ) -> Self {
        assert!(k_rows >= 2, "scouting activates at least two rows");
        assert!(
            !kind.is_window_gate() || k_rows == 2,
            "xor scouting is defined for exactly two rows"
        );
        assert!(r_low.as_ohms() < r_high.as_ohms(), "r_low must be below r_high");
        let i_one_cell = (vr / r_low).as_amps();
        let i_all_zero = k_rows as f64 * (vr / r_high).as_amps();
        let inverted = kind.inverted();
        match kind.base() {
            ScoutingKind::Or => {
                Self { low: Amps::new((i_all_zero * i_one_cell).sqrt()), high: None, inverted }
            }
            ScoutingKind::And => {
                let k = k_rows as f64;
                Self { low: Amps::new((k - 0.5) * i_one_cell), high: None, inverted }
            }
            ScoutingKind::Xor => {
                let or_ref = (i_all_zero * i_one_cell).sqrt();
                Self { low: Amps::new(or_ref), high: Some(Amps::new(1.5 * i_one_cell)), inverted }
            }
            _ => unreachable!("base() never returns a complemented gate"),
        }
    }

    /// The sense decision for a measured bit-line current.
    pub fn sense(&self, current: Amps) -> bool {
        let raw = match self.high {
            None => current.as_amps() > self.low.as_amps(),
            Some(high) => {
                current.as_amps() > self.low.as_amps() && current.as_amps() < high.as_amps()
            }
        };
        raw ^ self.inverted
    }

    /// The lower reference.
    pub fn low(&self) -> Amps {
        self.low
    }

    /// The upper reference, present only for window (XOR) gates.
    pub fn high(&self) -> Option<Amps> {
        self.high
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VR: Volts = Volts::new(0.1);

    fn rl() -> Ohms {
        Ohms::from_kilohms(1.0)
    }

    fn rh() -> Ohms {
        Ohms::from_megohms(100.0)
    }

    /// Bit-line current for a given multiset of activated cell states.
    fn current(states: &[bool]) -> Amps {
        Amps::new(states.iter().map(|&s| (VR / if s { rl() } else { rh() }).as_amps()).sum())
    }

    #[test]
    fn or_truth_table_from_fig3() {
        let t = SenseThresholds::for_gate(ScoutingKind::Or, 2, VR, rl(), rh());
        assert!(!t.sense(current(&[false, false])));
        assert!(t.sense(current(&[true, false])));
        assert!(t.sense(current(&[false, true])));
        assert!(t.sense(current(&[true, true])));
    }

    #[test]
    fn and_truth_table_from_fig3() {
        let t = SenseThresholds::for_gate(ScoutingKind::And, 2, VR, rl(), rh());
        assert!(!t.sense(current(&[false, false])));
        assert!(!t.sense(current(&[true, false])));
        assert!(!t.sense(current(&[false, true])));
        assert!(t.sense(current(&[true, true])));
    }

    #[test]
    fn xor_window_truth_table_from_fig3() {
        let t = SenseThresholds::for_gate(ScoutingKind::Xor, 2, VR, rl(), rh());
        assert!(!t.sense(current(&[false, false])));
        assert!(t.sense(current(&[true, false])));
        assert!(t.sense(current(&[false, true])));
        assert!(!t.sense(current(&[true, true])));
        assert!(t.high().is_some());
    }

    #[test]
    fn multi_row_or_and_generalize() {
        for k in [3usize, 4, 8] {
            let or = SenseThresholds::for_gate(ScoutingKind::Or, k, VR, rl(), rh());
            let and = SenseThresholds::for_gate(ScoutingKind::And, k, VR, rl(), rh());
            let all_zero = vec![false; k];
            let mut one_hot = vec![false; k];
            one_hot[k / 2] = true;
            let all_one = vec![true; k];
            let mut one_missing = vec![true; k];
            one_missing[0] = false;
            assert!(!or.sense(current(&all_zero)), "k={k}");
            assert!(or.sense(current(&one_hot)), "k={k}");
            assert!(and.sense(current(&all_one)), "k={k}");
            assert!(!and.sense(current(&one_missing)), "k={k}");
        }
    }

    #[test]
    fn margins_tolerate_moderate_resistance_variation() {
        // ±20 % on RL must not flip any decision (design decision D2).
        let t_and = SenseThresholds::for_gate(ScoutingKind::And, 2, VR, rl(), rh());
        let i_both_low = Amps::new(2.0 * (VR / (rl() * 1.2)).as_amps());
        let i_one_high = Amps::new((VR / (rl() * 0.8)).as_amps());
        assert!(t_and.sense(i_both_low), "slow corner must still read 1");
        assert!(!t_and.sense(i_one_high), "fast corner must still read 0");
    }

    #[test]
    fn complemented_gates_invert_their_base() {
        for (kind, base) in [
            (ScoutingKind::Nor, ScoutingKind::Or),
            (ScoutingKind::Nand, ScoutingKind::And),
            (ScoutingKind::Xnor, ScoutingKind::Xor),
        ] {
            let t = SenseThresholds::for_gate(kind, 2, VR, rl(), rh());
            let b = SenseThresholds::for_gate(base, 2, VR, rl(), rh());
            for states in [[false, false], [false, true], [true, false], [true, true]] {
                let i = current(&states);
                assert_eq!(t.sense(i), !b.sense(i), "{kind:?} on {states:?}");
            }
            // Same references — complementation is free.
            assert_eq!(t.low(), b.low());
            assert_eq!(t.high(), b.high());
        }
    }

    #[test]
    #[should_panic(expected = "exactly two rows")]
    fn xnor_rejects_three_rows() {
        let _ = SenseThresholds::for_gate(ScoutingKind::Xnor, 3, VR, rl(), rh());
    }

    #[test]
    #[should_panic(expected = "exactly two rows")]
    fn xor_rejects_three_rows() {
        let _ = SenseThresholds::for_gate(ScoutingKind::Xor, 3, VR, rl(), rh());
    }

    #[test]
    #[should_panic(expected = "at least two rows")]
    fn single_row_scouting_is_rejected() {
        let _ = SenseThresholds::for_gate(ScoutingKind::Or, 1, VR, rl(), rh());
    }
}
