//! The crossbar array: programming, reads and scouting logic.

use crate::{
    CellTechnology, CrossbarError, FaultMap, OpLedger, RemapEntry, ScoutingKind, SenseThresholds,
};
use memcim_bits::{BitMatrix, BitVec};
use memcim_device::{DeviceSample, EnduranceModel, SwitchParams, VariabilityModel, WearState};
use memcim_units::{Amps, Joules, Ohms, SquareMicrometers, Volts, Watts};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A `rows × cols` one-transistor-one-memristor crossbar array.
///
/// The array tracks logical cell states, per-cell resistance samples
/// (when a [`VariabilityModel`] is attached), endurance wear, stuck-at
/// faults and an [`OpLedger`] of energy/latency totals. Reads and
/// scouting operations sense *physical* bit-line currents — with
/// variability or faults attached, what you read is what the silicon
/// would give you, not what you wrote.
///
/// See the [crate-level example](crate) for typical use.
pub struct Crossbar {
    rows: usize,
    cols: usize,
    bits: BitMatrix,
    tech: CellTechnology,
    device: SwitchParams,
    read_voltage: Volts,
    variability: Option<(VariabilityModel, Vec<DeviceSample>)>,
    endurance: Option<EnduranceModel>,
    wear: Vec<WearState>,
    faults: FaultMap,
    ledger: OpLedger,
    endurance_failures: u64,
    spare: Option<SparePool>,
    retired_rows: u64,
    rng: SmallRng,
}

/// Spare-row repair bookkeeping: the last `reserved` physical rows are
/// withheld from the host; logical rows whose stuck-cell population
/// reaches `threshold` are transparently remapped onto them.
#[derive(Debug, Clone)]
struct SparePool {
    reserved: usize,
    used: usize,
    threshold: usize,
    /// Logical row → physical row (identity until a retirement).
    remap: Vec<usize>,
}

impl std::fmt::Debug for Crossbar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Crossbar")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("tech", &self.tech.name)
            .field("ones", &self.bits.count_ones())
            .field("faults", &self.faults.len())
            .finish()
    }
}

impl Crossbar {
    /// Creates an RRAM 1T1R crossbar with the paper's Fig. 9 device
    /// parameters and a 0.1 V read voltage (Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn rram(rows: usize, cols: usize) -> Self {
        Self::with_technology(CellTechnology::rram_1t1r(), SwitchParams::paper_fig9(), rows, cols)
    }

    /// Creates a crossbar over an explicit technology and device model.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_technology(
        tech: CellTechnology,
        device: SwitchParams,
        rows: usize,
        cols: usize,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        Self {
            rows,
            cols,
            bits: BitMatrix::new(rows, cols),
            tech,
            device,
            read_voltage: Volts::from_millivolts(100.0),
            variability: None,
            endurance: None,
            wear: vec![WearState::new(); rows * cols],
            faults: FaultMap::new(),
            ledger: OpLedger::new(),
            endurance_failures: 0,
            spare: None,
            retired_rows: 0,
            rng: SmallRng::seed_from_u64(0x5EED),
        }
    }

    /// Attaches device-to-device variability, sampling every cell's
    /// resistance pair with the given seed (builder-style).
    #[must_use]
    pub fn with_variability(mut self, model: VariabilityModel, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let samples = (0..self.rows * self.cols)
            .map(|_| model.sample_device(self.device.r_low, self.device.r_high, &mut rng))
            .collect();
        self.variability = Some((model, samples));
        self.rng = rng;
        self
    }

    /// Attaches an endurance budget per cell (builder-style). Worn-out
    /// cells become stuck at their final value; see
    /// [`endurance_failures`](Self::endurance_failures).
    #[must_use]
    pub fn with_endurance(mut self, model: EnduranceModel) -> Self {
        self.endurance = Some(model);
        self
    }

    /// Reserves the last `spares` physical rows as repair spares
    /// (builder-style): the host sees `rows − spares` logical rows, and
    /// any logical row accumulating `threshold` or more stuck cells is
    /// transparently retired — its best-known contents are re-programmed
    /// into a fresh spare and the remap table
    /// ([`remap_table`](Self::remap_table)) is updated. Once every spare
    /// is in use, the next retirement surfaces as
    /// [`CrossbarError::ExhaustedSpares`].
    ///
    /// # Panics
    ///
    /// Panics if `spares` does not leave at least one logical row, or if
    /// `threshold` is zero.
    #[must_use]
    pub fn with_spare_rows(mut self, spares: usize, threshold: usize) -> Self {
        assert!(spares < self.rows, "spare rows must leave at least one logical row");
        assert!(threshold > 0, "fault threshold must be at least one stuck cell");
        self.spare = Some(SparePool {
            reserved: spares,
            used: 0,
            threshold,
            remap: (0..self.rows - spares).collect(),
        });
        self
    }

    /// Number of host-addressable rows (physical rows minus any
    /// reserved spares).
    pub fn rows(&self) -> usize {
        match &self.spare {
            Some(pool) => self.rows - pool.reserved,
            None => self.rows,
        }
    }

    /// The physical row currently backing a logical row.
    fn phys(&self, row: usize) -> usize {
        match &self.spare {
            Some(pool) => pool.remap[row],
            None => row,
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The technology model in use.
    pub fn technology(&self) -> &CellTechnology {
        &self.tech
    }

    /// The activity ledger.
    pub fn ledger(&self) -> &OpLedger {
        &self.ledger
    }

    /// The fault map (mutable, for fault-injection campaigns). Fault
    /// coordinates are *physical*: with spare rows configured, run
    /// [`audit`](Self::audit) after an injection campaign to apply the
    /// retirement policy (in-band wear-out retires rows automatically).
    pub fn faults_mut(&mut self) -> &mut FaultMap {
        &mut self.faults
    }

    /// The fault map.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Count of cells that wore out during programming.
    pub fn endurance_failures(&self) -> u64 {
        self.endurance_failures
    }

    /// Spare rows reserved at construction (0 when repair is off).
    pub fn spare_rows(&self) -> usize {
        self.spare.as_ref().map_or(0, |p| p.reserved)
    }

    /// Spare rows not yet consumed by a retirement.
    pub fn spares_remaining(&self) -> usize {
        self.spare.as_ref().map_or(0, |p| p.reserved - p.used)
    }

    /// The stuck-cell count at which a row is retired, if repair is on.
    pub fn fault_threshold(&self) -> Option<usize> {
        self.spare.as_ref().map(|p| p.threshold)
    }

    /// Logical rows retired onto spares so far.
    pub fn retired_rows(&self) -> u64 {
        self.retired_rows
    }

    /// The non-identity entries of the logical→physical remap table
    /// (empty when repair is off or nothing has been retired).
    pub fn remap_table(&self) -> Vec<RemapEntry> {
        match &self.spare {
            Some(pool) => pool
                .remap
                .iter()
                .enumerate()
                .filter(|&(logical, &physical)| logical != physical)
                .map(|(logical, &physical)| RemapEntry { bank: 0, logical, physical })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Sweeps every logical row against the retirement policy —
    /// the hook to run after an external fault-injection campaign (the
    /// in-band path retires rows as programming wears them out).
    /// Returns how many rows were retired.
    ///
    /// # Errors
    ///
    /// [`CrossbarError::ExhaustedSpares`] as soon as a row needs
    /// retirement with no spare left.
    pub fn audit(&mut self) -> Result<u64, CrossbarError> {
        let mut retired = 0;
        for row in 0..self.rows() {
            if self.maybe_retire(row)? {
                retired += 1;
            }
        }
        Ok(retired)
    }

    /// Retires `logical` onto fresh spares for as long as its backing
    /// physical row holds `threshold`+ stuck cells. Copies the
    /// best-known row contents into each replacement (a real repair
    /// write, paid through the ledger).
    fn maybe_retire(&mut self, logical: usize) -> Result<bool, CrossbarError> {
        let mut retired_any = false;
        loop {
            let Some(pool) = &self.spare else { return Ok(retired_any) };
            let pr = pool.remap[logical];
            if self.faults.row_fault_count(pr) < pool.threshold {
                return Ok(retired_any);
            }
            if pool.used >= pool.reserved {
                return Err(CrossbarError::ExhaustedSpares { row: logical, spares: pool.reserved });
            }
            let target = (self.rows - pool.reserved) + pool.used;
            let data = self.bits.row(pr).clone();
            self.program_physical_row(target, &data);
            let pool = self.spare.as_mut().expect("checked above");
            pool.remap[logical] = target;
            pool.used += 1;
            self.retired_rows += 1;
            retired_any = true;
        }
    }

    /// The *logical* (programmed) value of a cell — a model query, free
    /// of charge and energy.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid indices.
    pub fn get(&self, row: usize, col: usize) -> Result<bool, CrossbarError> {
        self.check(row, col)?;
        Ok(self.bits.get(self.phys(row), col))
    }

    /// Layout area of the array.
    pub fn area(&self) -> SquareMicrometers {
        self.tech.array_area(self.rows, self.cols)
    }

    /// Static (leakage) power of the array.
    pub fn static_power(&self) -> Watts {
        self.tech.static_power(self.rows * self.cols)
    }

    fn check(&self, row: usize, col: usize) -> Result<(), CrossbarError> {
        if row >= self.rows() || col >= self.cols {
            return Err(CrossbarError::OutOfBounds {
                row,
                col,
                rows: self.rows(),
                cols: self.cols,
            });
        }
        Ok(())
    }

    fn cell_index(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// The physical resistance a cell presents at read time, including
    /// faults, variability and endurance window-closure.
    fn cell_resistance(&self, row: usize, col: usize) -> Ohms {
        let observed = self.faults.observed(row, col, self.bits.get(row, col));
        let (r_low, r_high) = match &self.variability {
            Some((_, samples)) => {
                let s = samples[self.cell_index(row, col)];
                (s.r_low, s.r_high)
            }
            None => (self.device.r_low, self.device.r_high),
        };
        if observed {
            r_low
        } else if let Some(model) = &self.endurance {
            model.effective_r_off(r_low, r_high, &self.wear[self.cell_index(row, col)])
        } else {
            r_high
        }
    }

    // ------------------------------------------------------------------
    // Programming
    // ------------------------------------------------------------------

    /// Programs one cell. A no-op (same value) costs nothing; a state
    /// change consumes one endurance cycle and the technology's
    /// programming energy.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid indices and
    /// [`CrossbarError::Endurance`] when the cell's budget is exhausted —
    /// the wear-out write itself completes, after which the cell is
    /// stuck. With spare rows configured
    /// ([`with_spare_rows`](Self::with_spare_rows)), a wear-out that
    /// pushes the row over its fault threshold retires it onto a spare
    /// instead — the write then reports `Ok` (the row is healthy again)
    /// unless no spare is left
    /// ([`CrossbarError::ExhaustedSpares`]).
    pub fn program_bit(
        &mut self,
        row: usize,
        col: usize,
        value: bool,
    ) -> Result<(), CrossbarError> {
        self.check(row, col)?;
        let pr = self.phys(row);
        if self.faults.stuck_value(pr, col).is_some() {
            // Stuck cells silently ignore writes (the programming pulse
            // is still spent — there is no way to know it failed without
            // a verify read).
            self.ledger.record_program(1, self.tech.program_energy, self.tech.program_latency);
            return Ok(());
        }
        if self.bits.get(pr, col) == value {
            return Ok(());
        }
        self.ledger.record_program(1, self.tech.program_energy, self.tech.program_latency);
        let idx = self.cell_index(pr, col);
        let result = match self.endurance {
            Some(model) => model.record_cycle(&mut self.wear[idx]),
            None => Ok(()),
        };
        self.bits.set(pr, col, value);
        // Fresh cycle-to-cycle resistance sample on each re-program.
        if let Some((model, samples)) = &mut self.variability {
            samples[idx] = model.sample_cycle(&samples[idx], &mut self.rng);
        }
        if let Err(e) = result {
            self.endurance_failures += 1;
            self.faults.inject_stuck_at(pr, col, value);
            if self.maybe_retire(row)? {
                // The worn cell now lives on a retired physical row; the
                // logical row was repaired onto a spare with this write's
                // value in place.
                return Ok(());
            }
            return Err(CrossbarError::Endurance(e));
        }
        Ok(())
    }

    /// Programs a whole row in one parallel operation. Cells that wear
    /// out are recorded as stuck (see
    /// [`endurance_failures`](Self::endurance_failures)) without aborting
    /// the row; returns the number of cells whose state changed.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] /
    /// [`CrossbarError::WidthMismatch`] for invalid arguments, and —
    /// with spare rows configured — [`CrossbarError::ExhaustedSpares`]
    /// when the row crossed its fault threshold with no spare left.
    pub fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        self.check(row, 0)?;
        if values.len() != self.cols {
            return Err(CrossbarError::WidthMismatch { got: values.len(), expected: self.cols });
        }
        let changed = self.program_physical_row(self.phys(row), values);
        self.maybe_retire(row)?;
        Ok(changed)
    }

    /// The raw row-programming cycle on a *physical* row: no remap, no
    /// retirement — shared by host writes and spare-repair copies.
    fn program_physical_row(&mut self, row: usize, values: &BitVec) -> u64 {
        let mut changed = 0u64;
        for col in 0..self.cols {
            let value = values.get(col);
            if self.faults.stuck_value(row, col).is_some() || self.bits.get(row, col) == value {
                continue;
            }
            changed += 1;
            let idx = self.cell_index(row, col);
            let worn = match self.endurance {
                Some(model) => model.record_cycle(&mut self.wear[idx]).is_err(),
                None => false,
            };
            self.bits.set(row, col, value);
            if let Some((model, samples)) = &mut self.variability {
                samples[idx] = model.sample_cycle(&samples[idx], &mut self.rng);
            }
            if worn {
                self.endurance_failures += 1;
                self.faults.inject_stuck_at(row, col, value);
            }
        }
        if changed > 0 {
            self.ledger.record_program(
                changed,
                Joules::new(self.tech.program_energy.as_joules() * changed as f64),
                self.tech.program_latency,
            );
        }
        changed
    }

    /// Loads a full bit matrix (e.g. an STE configuration).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::WidthMismatch`] if the matrix shape
    /// differs from the array.
    pub fn load(&mut self, data: &BitMatrix) -> Result<u64, CrossbarError> {
        if data.rows() != self.rows() || data.cols() != self.cols {
            return Err(CrossbarError::WidthMismatch {
                got: data.rows() * data.cols(),
                expected: self.rows() * self.cols,
            });
        }
        let mut changed = 0;
        for r in 0..self.rows() {
            changed += self.program_row(r, data.row(r))?;
        }
        Ok(changed)
    }

    // ------------------------------------------------------------------
    // Sensing
    // ------------------------------------------------------------------

    /// Bit-line current of one column with the given rows activated.
    fn column_current(&self, rows: &[usize], col: usize) -> Amps {
        Amps::new(
            rows.iter()
                .map(|&r| (self.read_voltage / self.cell_resistance(r, col)).as_amps())
                .sum(),
        )
    }

    /// Reads one cell through the sense amplifier (physical read: faults
    /// and variability apply).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid indices.
    pub fn read_bit(&mut self, row: usize, col: usize) -> Result<bool, CrossbarError> {
        self.check(row, col)?;
        let i = self.column_current(&[self.phys(row)], col);
        let ref_current = Amps::new(
            ((self.read_voltage / self.device.r_low).as_amps()
                * (self.read_voltage / self.device.r_high).as_amps())
            .sqrt(),
        );
        self.ledger.record_read(
            self.tech.analytic_cycle_energy(self.rows),
            self.tech.read_latency(self.rows),
        );
        Ok(i.as_amps() > ref_current.as_amps())
    }

    /// Reads a whole row, all columns sensed in parallel (one memory
    /// cycle).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for an invalid row.
    pub fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        self.check(row, 0)?;
        let pr = self.phys(row);
        let mut out = BitVec::new(self.cols);
        let ref_current = ((self.read_voltage / self.device.r_low).as_amps()
            * (self.read_voltage / self.device.r_high).as_amps())
        .sqrt();
        for col in 0..self.cols {
            if self.column_current(&[pr], col).as_amps() > ref_current {
                out.set(col, true);
            }
        }
        self.ledger.record_read(
            Joules::new(self.tech.analytic_cycle_energy(self.rows).as_joules() * self.cols as f64),
            self.tech.read_latency(self.rows),
        );
        Ok(out)
    }

    /// A scouting logic operation (Fig. 3): activates the selected rows
    /// simultaneously and senses each column against the gate's
    /// reference(s), computing the row-wise logic function across all
    /// columns in a single memory cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidRowSelection`] if fewer than two
    /// rows are given, rows repeat, or `Xor` is requested with more than
    /// two rows; [`CrossbarError::OutOfBounds`] for invalid rows.
    pub fn scouting(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
    ) -> Result<BitVec, CrossbarError> {
        kind.validate_selection(rows)?;
        for &r in rows {
            self.check(r, 0)?;
        }
        let thresholds = SenseThresholds::for_gate(
            kind,
            rows.len(),
            self.read_voltage,
            self.device.r_low,
            self.device.r_high,
        );
        // Activation drives the *physical* word lines backing the
        // selected logical rows. The remap is identity until the first
        // retirement, so the healthy-lifetime hot path stays
        // allocation-free on the borrowed selection.
        let phys_storage;
        let active: &[usize] = if self.spare.as_ref().is_some_and(|pool| pool.used > 0) {
            phys_storage = rows.iter().map(|&r| self.phys(r)).collect::<Vec<_>>();
            &phys_storage
        } else {
            rows
        };
        let mut out = BitVec::new(self.cols);
        for col in 0..self.cols {
            if thresholds.sense(self.column_current(active, col)) {
                out.set(col, true);
            }
        }
        self.ledger.record_scouting(
            Joules::new(self.tech.analytic_cycle_energy(self.rows).as_joules() * self.cols as f64),
            self.tech.read_latency(self.rows),
        );
        Ok(out)
    }

    /// Scouting with write-back: computes `kind` over `rows` and programs
    /// the result into `dest` — the MVP's in-memory macro-instruction.
    ///
    /// # Errors
    ///
    /// Combines the error conditions of [`scouting`](Self::scouting) and
    /// [`program_row`](Self::program_row).
    pub fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError> {
        let result = self.scouting(kind, rows)?;
        self.program_row(dest, &result)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> Crossbar {
        Crossbar::rram(8, 64)
    }

    #[test]
    fn program_then_read_round_trips() {
        let mut x = array();
        x.program_bit(2, 7, true).expect("program");
        assert!(x.read_bit(2, 7).expect("read"));
        assert!(!x.read_bit(2, 8).expect("read"));
    }

    #[test]
    fn scouting_matches_boolean_reference() {
        let mut x = array();
        let a = BitVec::from_indices(64, &[0, 5, 10, 63]);
        let b = BitVec::from_indices(64, &[5, 10, 20]);
        x.program_row(0, &a).expect("row 0");
        x.program_row(1, &b).expect("row 1");
        assert_eq!(x.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
        assert_eq!(x.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
        assert_eq!(x.scouting(ScoutingKind::Xor, &[0, 1]).expect("xor"), a.xor(&b));
    }

    #[test]
    fn complemented_gates_at_array_level() {
        let mut x = array();
        let a = BitVec::from_indices(64, &[0, 5, 10]);
        let b = BitVec::from_indices(64, &[5, 20]);
        x.program_row(0, &a).expect("r0");
        x.program_row(1, &b).expect("r1");
        assert_eq!(x.scouting(ScoutingKind::Nor, &[0, 1]).expect("nor"), a.or(&b).not());
        assert_eq!(x.scouting(ScoutingKind::Nand, &[0, 1]).expect("nand"), a.and(&b).not());
        assert_eq!(x.scouting(ScoutingKind::Xnor, &[0, 1]).expect("xnor"), a.xor(&b).not());
        assert!(x.scouting(ScoutingKind::Xnor, &[0, 1, 2]).is_err());
    }

    #[test]
    fn multi_row_or_and() {
        let mut x = array();
        let rows = [
            BitVec::from_indices(64, &[0, 1, 2, 3]),
            BitVec::from_indices(64, &[1, 2, 3, 4]),
            BitVec::from_indices(64, &[2, 3, 4, 5]),
        ];
        for (i, r) in rows.iter().enumerate() {
            x.program_row(i, r).expect("program");
        }
        let or = x.scouting(ScoutingKind::Or, &[0, 1, 2]).expect("or");
        let and = x.scouting(ScoutingKind::And, &[0, 1, 2]).expect("and");
        assert_eq!(or.ones().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(and.ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn scouting_write_back_lands_in_destination() {
        let mut x = array();
        x.program_row(0, &BitVec::from_indices(64, &[1, 2])).expect("r0");
        x.program_row(1, &BitVec::from_indices(64, &[2, 3])).expect("r1");
        let r = x.scouting_write(ScoutingKind::And, &[0, 1], 7).expect("write");
        assert_eq!(r.ones().collect::<Vec<_>>(), vec![2]);
        assert!(x.get(7, 2).expect("dest"));
        assert!(!x.get(7, 1).expect("dest"));
    }

    #[test]
    fn invalid_selections_are_rejected() {
        let mut x = array();
        assert!(matches!(
            x.scouting(ScoutingKind::Or, &[0]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
        assert!(matches!(
            x.scouting(ScoutingKind::Or, &[0, 0]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
        assert!(matches!(
            x.scouting(ScoutingKind::Xor, &[0, 1, 2]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
        assert!(matches!(
            x.scouting(ScoutingKind::Or, &[0, 99]),
            Err(CrossbarError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn ledger_accounts_for_operations() {
        let mut x = array();
        x.program_row(0, &BitVec::from_indices(64, &[0, 1])).expect("program");
        let _ = x.read_row(0).expect("read");
        let _ = x.scouting(ScoutingKind::Or, &[0, 1]).expect("scout");
        assert_eq!(x.ledger().programs(), 1);
        assert_eq!(x.ledger().bits_programmed(), 2);
        assert_eq!(x.ledger().reads(), 1);
        assert_eq!(x.ledger().scouting_ops(), 1);
        assert!(x.ledger().energy().as_joules() > 0.0);
    }

    #[test]
    fn reprogramming_same_value_is_free() {
        let mut x = array();
        x.program_bit(0, 0, true).expect("first");
        let e1 = x.ledger().energy();
        x.program_bit(0, 0, true).expect("no-op");
        assert_eq!(x.ledger().energy(), e1);
    }

    #[test]
    fn stuck_at_fault_defeats_programming() {
        let mut x = array();
        x.faults_mut().inject_stuck_at(0, 3, false);
        x.program_bit(0, 3, true).expect("write is accepted");
        assert!(!x.read_bit(0, 3).expect("read"), "stuck-at-0 wins");
        // Scouting sees the fault too.
        x.program_row(1, &BitVec::from_indices(64, &[3])).expect("r1");
        let or = x.scouting(ScoutingKind::Or, &[0, 1]).expect("or");
        assert!(or.get(3), "row 1 carries the 1");
        let and = x.scouting(ScoutingKind::And, &[0, 1]).expect("and");
        assert!(!and.get(3), "stuck row 0 kills the AND");
    }

    #[test]
    fn endurance_exhaustion_sticks_cells() {
        let mut x = Crossbar::rram(2, 4).with_endurance(EnduranceModel::new(3));
        // Toggle one bit until its 3-cycle budget is gone.
        x.program_bit(0, 0, true).expect("cycle 1");
        x.program_bit(0, 0, false).expect("cycle 2");
        let err = x.program_bit(0, 0, true).expect_err("cycle 3 exhausts");
        assert!(matches!(err, CrossbarError::Endurance(_)));
        assert_eq!(x.endurance_failures(), 1);
        // The final write completed; the cell is now stuck at `true`.
        assert!(x.read_bit(0, 0).expect("read"));
        x.program_bit(0, 0, false).expect("silently ignored");
        assert!(x.read_bit(0, 0).expect("read"), "stuck");
    }

    #[test]
    fn row_programming_survives_wearout_without_abort() {
        let mut x = Crossbar::rram(1, 8).with_endurance(EnduranceModel::new(2));
        let ones = BitVec::from_indices(8, &(0..8).collect::<Vec<_>>());
        let zeros = BitVec::new(8);
        x.program_row(0, &ones).expect("cycle 1 each");
        let changed = x.program_row(0, &zeros).expect("cycle 2 wears out every cell");
        assert_eq!(changed, 8);
        assert_eq!(x.endurance_failures(), 8);
        // All cells stuck at 0 now.
        let changed_after = x.program_row(0, &ones).expect("ignored");
        assert_eq!(changed_after, 0);
    }

    #[test]
    fn variability_with_typical_spread_preserves_logic() {
        let mut x = Crossbar::rram(4, 128).with_variability(VariabilityModel::typical(), 42);
        let a = BitVec::from_indices(128, &(0..128).step_by(3).collect::<Vec<_>>());
        let b = BitVec::from_indices(128, &(0..128).step_by(5).collect::<Vec<_>>());
        x.program_row(0, &a).expect("r0");
        x.program_row(1, &b).expect("r1");
        assert_eq!(x.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
        assert_eq!(x.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
    }

    #[test]
    fn area_and_static_power_reflect_technology() {
        let rram = Crossbar::rram(256, 256);
        let sram = Crossbar::with_technology(
            CellTechnology::sram_8t(),
            SwitchParams::paper_fig9(),
            256,
            256,
        );
        assert!(sram.area().as_square_micrometers() > 10.0 * rram.area().as_square_micrometers());
        assert_eq!(rram.static_power().as_watts(), 0.0);
        assert!(sram.static_power().as_watts() > 0.0);
    }

    #[test]
    fn spare_rows_shrink_the_host_view() {
        let x = Crossbar::rram(8, 16).with_spare_rows(3, 1);
        assert_eq!(x.rows(), 5);
        assert_eq!(x.spare_rows(), 3);
        assert_eq!(x.spares_remaining(), 3);
        assert_eq!(x.fault_threshold(), Some(1));
        assert!(x.remap_table().is_empty());
    }

    #[test]
    fn wearout_retires_the_row_onto_a_spare_transparently() {
        let mut x =
            Crossbar::rram(4, 8).with_spare_rows(2, 1).with_endurance(EnduranceModel::new(2));
        let ones = BitVec::from_indices(8, &[0, 1, 2]);
        let zeros = BitVec::new(8);
        x.program_row(0, &ones).expect("cycle 1");
        // Cycle 2 wears out the three toggled cells → threshold crossed
        // → the row is copied onto physical row 2 (first spare).
        x.program_row(0, &zeros).expect("retired, not failed");
        assert_eq!(x.retired_rows(), 1);
        assert_eq!(x.spares_remaining(), 1);
        assert_eq!(x.remap_table(), vec![RemapEntry { bank: 0, logical: 0, physical: 2 }]);
        // The spare carries the intended contents and accepts writes.
        assert_eq!(x.read_row(0).expect("read").count_ones(), 0);
        x.program_row(0, &ones).expect("healthy spare takes the write");
        assert_eq!(x.read_row(0).expect("read"), ones);
    }

    #[test]
    fn exhausted_spares_surface_as_an_error() {
        let mut x =
            Crossbar::rram(3, 4).with_spare_rows(1, 1).with_endurance(EnduranceModel::new(2));
        let ones = BitVec::from_indices(4, &[0]);
        let zeros = BitVec::new(4);
        x.program_row(0, &ones).expect("cycle 1");
        x.program_row(0, &zeros).expect("first wear-out retires onto the spare");
        assert_eq!(x.spares_remaining(), 0);
        // Wear out the spare too: no repair candidate remains.
        x.program_row(0, &ones).expect("cycle 1 on the spare");
        let err = x.program_row(0, &zeros).expect_err("no spare left");
        assert_eq!(err, CrossbarError::ExhaustedSpares { row: 0, spares: 1 });
        assert!(err.is_fault_fatal());
    }

    #[test]
    fn audit_applies_the_policy_after_external_injection() {
        let mut x = Crossbar::rram(6, 8).with_spare_rows(2, 2);
        // One stuck cell in row 1 (below threshold), two in row 3.
        x.faults_mut().inject_stuck_at(1, 0, true);
        x.faults_mut().inject_stuck_at(3, 2, true);
        x.faults_mut().inject_stuck_at(3, 5, false);
        assert_eq!(x.audit().expect("spares available"), 1);
        assert_eq!(x.remap_table(), vec![RemapEntry { bank: 0, logical: 3, physical: 4 }]);
        // Row 3 now reads clean; row 1's single fault still shows.
        x.program_row(3, &BitVec::from_indices(8, &[2])).expect("program");
        assert_eq!(x.read_row(3).expect("read").ones().collect::<Vec<_>>(), vec![2]);
        assert_eq!(x.audit().expect("stable"), 0, "audit is idempotent");
    }

    #[test]
    fn scouting_follows_the_remap() {
        let mut x = Crossbar::rram(5, 8).with_spare_rows(1, 1);
        let a = BitVec::from_indices(8, &[0, 1]);
        let b = BitVec::from_indices(8, &[1, 2]);
        x.program_row(0, &a).expect("r0");
        x.program_row(1, &b).expect("r1");
        // Break physical row 0 badly and retire it.
        x.faults_mut().inject_stuck_at(0, 7, true);
        x.audit().expect("retire row 0");
        assert_eq!(x.remap_table().len(), 1);
        // Scouting must activate the spare, not the broken word line.
        assert_eq!(x.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
        assert_eq!(x.read_row(0).expect("read"), a);
    }

    #[test]
    fn out_of_bounds_uses_the_logical_row_count() {
        let mut x = Crossbar::rram(8, 4).with_spare_rows(3, 1);
        let err = x.read_row(5).expect_err("row 5 is a spare");
        assert!(matches!(err, CrossbarError::OutOfBounds { row: 5, rows: 5, .. }));
    }

    #[test]
    fn load_full_matrix() {
        let mut x = Crossbar::rram(3, 16);
        let mut m = BitMatrix::new(3, 16);
        m.set(0, 0, true);
        m.set(1, 8, true);
        m.set(2, 15, true);
        let changed = x.load(&m).expect("load");
        assert_eq!(changed, 3);
        assert!(x.get(2, 15).expect("get"));
        let bad = BitMatrix::new(2, 16);
        assert!(x.load(&bad).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Scouting over an ideal array is exactly boolean logic for any
        /// row contents (the Fig. 3 claim).
        #[test]
        fn scouting_equals_boolean_ops(
            a_bits in proptest::collection::vec(any::<bool>(), 64),
            b_bits in proptest::collection::vec(any::<bool>(), 64),
        ) {
            let mut x = Crossbar::rram(2, 64);
            let a = BitVec::from_bools(&a_bits);
            let b = BitVec::from_bools(&b_bits);
            x.program_row(0, &a).expect("r0");
            x.program_row(1, &b).expect("r1");
            prop_assert_eq!(x.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
            prop_assert_eq!(x.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
            prop_assert_eq!(x.scouting(ScoutingKind::Xor, &[0, 1]).expect("xor"), a.xor(&b));
        }
    }
}
