//! The crossbar array: programming, reads and scouting logic.

use crate::{CellTechnology, CrossbarError, FaultMap, OpLedger, ScoutingKind, SenseThresholds};
use memcim_bits::{BitMatrix, BitVec};
use memcim_device::{DeviceSample, EnduranceModel, SwitchParams, VariabilityModel, WearState};
use memcim_units::{Amps, Joules, Ohms, SquareMicrometers, Volts, Watts};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A `rows × cols` one-transistor-one-memristor crossbar array.
///
/// The array tracks logical cell states, per-cell resistance samples
/// (when a [`VariabilityModel`] is attached), endurance wear, stuck-at
/// faults and an [`OpLedger`] of energy/latency totals. Reads and
/// scouting operations sense *physical* bit-line currents — with
/// variability or faults attached, what you read is what the silicon
/// would give you, not what you wrote.
///
/// See the [crate-level example](crate) for typical use.
pub struct Crossbar {
    rows: usize,
    cols: usize,
    bits: BitMatrix,
    tech: CellTechnology,
    device: SwitchParams,
    read_voltage: Volts,
    variability: Option<(VariabilityModel, Vec<DeviceSample>)>,
    endurance: Option<EnduranceModel>,
    wear: Vec<WearState>,
    faults: FaultMap,
    ledger: OpLedger,
    endurance_failures: u64,
    rng: SmallRng,
}

impl std::fmt::Debug for Crossbar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Crossbar")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("tech", &self.tech.name)
            .field("ones", &self.bits.count_ones())
            .field("faults", &self.faults.len())
            .finish()
    }
}

impl Crossbar {
    /// Creates an RRAM 1T1R crossbar with the paper's Fig. 9 device
    /// parameters and a 0.1 V read voltage (Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn rram(rows: usize, cols: usize) -> Self {
        Self::with_technology(CellTechnology::rram_1t1r(), SwitchParams::paper_fig9(), rows, cols)
    }

    /// Creates a crossbar over an explicit technology and device model.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_technology(
        tech: CellTechnology,
        device: SwitchParams,
        rows: usize,
        cols: usize,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        Self {
            rows,
            cols,
            bits: BitMatrix::new(rows, cols),
            tech,
            device,
            read_voltage: Volts::from_millivolts(100.0),
            variability: None,
            endurance: None,
            wear: vec![WearState::new(); rows * cols],
            faults: FaultMap::new(),
            ledger: OpLedger::new(),
            endurance_failures: 0,
            rng: SmallRng::seed_from_u64(0x5EED),
        }
    }

    /// Attaches device-to-device variability, sampling every cell's
    /// resistance pair with the given seed (builder-style).
    #[must_use]
    pub fn with_variability(mut self, model: VariabilityModel, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let samples = (0..self.rows * self.cols)
            .map(|_| model.sample_device(self.device.r_low, self.device.r_high, &mut rng))
            .collect();
        self.variability = Some((model, samples));
        self.rng = rng;
        self
    }

    /// Attaches an endurance budget per cell (builder-style). Worn-out
    /// cells become stuck at their final value; see
    /// [`endurance_failures`](Self::endurance_failures).
    #[must_use]
    pub fn with_endurance(mut self, model: EnduranceModel) -> Self {
        self.endurance = Some(model);
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The technology model in use.
    pub fn technology(&self) -> &CellTechnology {
        &self.tech
    }

    /// The activity ledger.
    pub fn ledger(&self) -> &OpLedger {
        &self.ledger
    }

    /// The fault map (mutable, for fault-injection campaigns).
    pub fn faults_mut(&mut self) -> &mut FaultMap {
        &mut self.faults
    }

    /// The fault map.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Count of cells that wore out during programming.
    pub fn endurance_failures(&self) -> u64 {
        self.endurance_failures
    }

    /// The *logical* (programmed) value of a cell — a model query, free
    /// of charge and energy.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid indices.
    pub fn get(&self, row: usize, col: usize) -> Result<bool, CrossbarError> {
        self.check(row, col)?;
        Ok(self.bits.get(row, col))
    }

    /// Layout area of the array.
    pub fn area(&self) -> SquareMicrometers {
        self.tech.array_area(self.rows, self.cols)
    }

    /// Static (leakage) power of the array.
    pub fn static_power(&self) -> Watts {
        self.tech.static_power(self.rows * self.cols)
    }

    fn check(&self, row: usize, col: usize) -> Result<(), CrossbarError> {
        if row >= self.rows || col >= self.cols {
            return Err(CrossbarError::OutOfBounds { row, col, rows: self.rows, cols: self.cols });
        }
        Ok(())
    }

    fn cell_index(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// The physical resistance a cell presents at read time, including
    /// faults, variability and endurance window-closure.
    fn cell_resistance(&self, row: usize, col: usize) -> Ohms {
        let observed = self.faults.observed(row, col, self.bits.get(row, col));
        let (r_low, r_high) = match &self.variability {
            Some((_, samples)) => {
                let s = samples[self.cell_index(row, col)];
                (s.r_low, s.r_high)
            }
            None => (self.device.r_low, self.device.r_high),
        };
        if observed {
            r_low
        } else if let Some(model) = &self.endurance {
            model.effective_r_off(r_low, r_high, &self.wear[self.cell_index(row, col)])
        } else {
            r_high
        }
    }

    // ------------------------------------------------------------------
    // Programming
    // ------------------------------------------------------------------

    /// Programs one cell. A no-op (same value) costs nothing; a state
    /// change consumes one endurance cycle and the technology's
    /// programming energy.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid indices and
    /// [`CrossbarError::Endurance`] when the cell's budget is exhausted —
    /// the wear-out write itself completes, after which the cell is stuck.
    pub fn program_bit(
        &mut self,
        row: usize,
        col: usize,
        value: bool,
    ) -> Result<(), CrossbarError> {
        self.check(row, col)?;
        if self.faults.stuck_value(row, col).is_some() {
            // Stuck cells silently ignore writes (the programming pulse
            // is still spent — there is no way to know it failed without
            // a verify read).
            self.ledger.record_program(1, self.tech.program_energy, self.tech.program_latency);
            return Ok(());
        }
        if self.bits.get(row, col) == value {
            return Ok(());
        }
        self.ledger.record_program(1, self.tech.program_energy, self.tech.program_latency);
        let idx = self.cell_index(row, col);
        let result = match self.endurance {
            Some(model) => model.record_cycle(&mut self.wear[idx]),
            None => Ok(()),
        };
        self.bits.set(row, col, value);
        // Fresh cycle-to-cycle resistance sample on each re-program.
        if let Some((model, samples)) = &mut self.variability {
            samples[idx] = model.sample_cycle(&samples[idx], &mut self.rng);
        }
        if let Err(e) = result {
            self.endurance_failures += 1;
            self.faults.inject_stuck_at(row, col, value);
            return Err(CrossbarError::Endurance(e));
        }
        Ok(())
    }

    /// Programs a whole row in one parallel operation. Cells that wear
    /// out are recorded as stuck (see
    /// [`endurance_failures`](Self::endurance_failures)) without aborting
    /// the row; returns the number of cells whose state changed.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] /
    /// [`CrossbarError::WidthMismatch`] for invalid arguments.
    pub fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        self.check(row, 0)?;
        if values.len() != self.cols {
            return Err(CrossbarError::WidthMismatch { got: values.len(), expected: self.cols });
        }
        let mut changed = 0u64;
        for col in 0..self.cols {
            let value = values.get(col);
            if self.faults.stuck_value(row, col).is_some() || self.bits.get(row, col) == value {
                continue;
            }
            changed += 1;
            let idx = self.cell_index(row, col);
            let worn = match self.endurance {
                Some(model) => model.record_cycle(&mut self.wear[idx]).is_err(),
                None => false,
            };
            self.bits.set(row, col, value);
            if let Some((model, samples)) = &mut self.variability {
                samples[idx] = model.sample_cycle(&samples[idx], &mut self.rng);
            }
            if worn {
                self.endurance_failures += 1;
                self.faults.inject_stuck_at(row, col, value);
            }
        }
        if changed > 0 {
            self.ledger.record_program(
                changed,
                Joules::new(self.tech.program_energy.as_joules() * changed as f64),
                self.tech.program_latency,
            );
        }
        Ok(changed)
    }

    /// Loads a full bit matrix (e.g. an STE configuration).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::WidthMismatch`] if the matrix shape
    /// differs from the array.
    pub fn load(&mut self, data: &BitMatrix) -> Result<u64, CrossbarError> {
        if data.rows() != self.rows || data.cols() != self.cols {
            return Err(CrossbarError::WidthMismatch {
                got: data.rows() * data.cols(),
                expected: self.rows * self.cols,
            });
        }
        let mut changed = 0;
        for r in 0..self.rows {
            changed += self.program_row(r, data.row(r))?;
        }
        Ok(changed)
    }

    // ------------------------------------------------------------------
    // Sensing
    // ------------------------------------------------------------------

    /// Bit-line current of one column with the given rows activated.
    fn column_current(&self, rows: &[usize], col: usize) -> Amps {
        Amps::new(
            rows.iter()
                .map(|&r| (self.read_voltage / self.cell_resistance(r, col)).as_amps())
                .sum(),
        )
    }

    /// Reads one cell through the sense amplifier (physical read: faults
    /// and variability apply).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for invalid indices.
    pub fn read_bit(&mut self, row: usize, col: usize) -> Result<bool, CrossbarError> {
        self.check(row, col)?;
        let i = self.column_current(&[row], col);
        let ref_current = Amps::new(
            ((self.read_voltage / self.device.r_low).as_amps()
                * (self.read_voltage / self.device.r_high).as_amps())
            .sqrt(),
        );
        self.ledger.record_read(
            self.tech.analytic_cycle_energy(self.rows),
            self.tech.read_latency(self.rows),
        );
        Ok(i.as_amps() > ref_current.as_amps())
    }

    /// Reads a whole row, all columns sensed in parallel (one memory
    /// cycle).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for an invalid row.
    pub fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        self.check(row, 0)?;
        let mut out = BitVec::new(self.cols);
        let ref_current = ((self.read_voltage / self.device.r_low).as_amps()
            * (self.read_voltage / self.device.r_high).as_amps())
        .sqrt();
        for col in 0..self.cols {
            if self.column_current(&[row], col).as_amps() > ref_current {
                out.set(col, true);
            }
        }
        self.ledger.record_read(
            Joules::new(self.tech.analytic_cycle_energy(self.rows).as_joules() * self.cols as f64),
            self.tech.read_latency(self.rows),
        );
        Ok(out)
    }

    /// A scouting logic operation (Fig. 3): activates the selected rows
    /// simultaneously and senses each column against the gate's
    /// reference(s), computing the row-wise logic function across all
    /// columns in a single memory cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidRowSelection`] if fewer than two
    /// rows are given, rows repeat, or `Xor` is requested with more than
    /// two rows; [`CrossbarError::OutOfBounds`] for invalid rows.
    pub fn scouting(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
    ) -> Result<BitVec, CrossbarError> {
        if rows.len() < 2 {
            return Err(CrossbarError::InvalidRowSelection {
                constraint: "at least two rows must be activated",
            });
        }
        if kind.is_window_gate() && rows.len() != 2 {
            return Err(CrossbarError::InvalidRowSelection {
                constraint: "xor/xnor are defined over exactly two rows",
            });
        }
        for (i, &r) in rows.iter().enumerate() {
            self.check(r, 0)?;
            if rows[..i].contains(&r) {
                return Err(CrossbarError::InvalidRowSelection {
                    constraint: "rows must be distinct",
                });
            }
        }
        let thresholds = SenseThresholds::for_gate(
            kind,
            rows.len(),
            self.read_voltage,
            self.device.r_low,
            self.device.r_high,
        );
        let mut out = BitVec::new(self.cols);
        for col in 0..self.cols {
            if thresholds.sense(self.column_current(rows, col)) {
                out.set(col, true);
            }
        }
        self.ledger.record_scouting(
            Joules::new(self.tech.analytic_cycle_energy(self.rows).as_joules() * self.cols as f64),
            self.tech.read_latency(self.rows),
        );
        Ok(out)
    }

    /// Scouting with write-back: computes `kind` over `rows` and programs
    /// the result into `dest` — the MVP's in-memory macro-instruction.
    ///
    /// # Errors
    ///
    /// Combines the error conditions of [`scouting`](Self::scouting) and
    /// [`program_row`](Self::program_row).
    pub fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError> {
        let result = self.scouting(kind, rows)?;
        self.program_row(dest, &result)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> Crossbar {
        Crossbar::rram(8, 64)
    }

    #[test]
    fn program_then_read_round_trips() {
        let mut x = array();
        x.program_bit(2, 7, true).expect("program");
        assert!(x.read_bit(2, 7).expect("read"));
        assert!(!x.read_bit(2, 8).expect("read"));
    }

    #[test]
    fn scouting_matches_boolean_reference() {
        let mut x = array();
        let a = BitVec::from_indices(64, &[0, 5, 10, 63]);
        let b = BitVec::from_indices(64, &[5, 10, 20]);
        x.program_row(0, &a).expect("row 0");
        x.program_row(1, &b).expect("row 1");
        assert_eq!(x.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
        assert_eq!(x.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
        assert_eq!(x.scouting(ScoutingKind::Xor, &[0, 1]).expect("xor"), a.xor(&b));
    }

    #[test]
    fn complemented_gates_at_array_level() {
        let mut x = array();
        let a = BitVec::from_indices(64, &[0, 5, 10]);
        let b = BitVec::from_indices(64, &[5, 20]);
        x.program_row(0, &a).expect("r0");
        x.program_row(1, &b).expect("r1");
        assert_eq!(x.scouting(ScoutingKind::Nor, &[0, 1]).expect("nor"), a.or(&b).not());
        assert_eq!(x.scouting(ScoutingKind::Nand, &[0, 1]).expect("nand"), a.and(&b).not());
        assert_eq!(x.scouting(ScoutingKind::Xnor, &[0, 1]).expect("xnor"), a.xor(&b).not());
        assert!(x.scouting(ScoutingKind::Xnor, &[0, 1, 2]).is_err());
    }

    #[test]
    fn multi_row_or_and() {
        let mut x = array();
        let rows = [
            BitVec::from_indices(64, &[0, 1, 2, 3]),
            BitVec::from_indices(64, &[1, 2, 3, 4]),
            BitVec::from_indices(64, &[2, 3, 4, 5]),
        ];
        for (i, r) in rows.iter().enumerate() {
            x.program_row(i, r).expect("program");
        }
        let or = x.scouting(ScoutingKind::Or, &[0, 1, 2]).expect("or");
        let and = x.scouting(ScoutingKind::And, &[0, 1, 2]).expect("and");
        assert_eq!(or.ones().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(and.ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn scouting_write_back_lands_in_destination() {
        let mut x = array();
        x.program_row(0, &BitVec::from_indices(64, &[1, 2])).expect("r0");
        x.program_row(1, &BitVec::from_indices(64, &[2, 3])).expect("r1");
        let r = x.scouting_write(ScoutingKind::And, &[0, 1], 7).expect("write");
        assert_eq!(r.ones().collect::<Vec<_>>(), vec![2]);
        assert!(x.get(7, 2).expect("dest"));
        assert!(!x.get(7, 1).expect("dest"));
    }

    #[test]
    fn invalid_selections_are_rejected() {
        let mut x = array();
        assert!(matches!(
            x.scouting(ScoutingKind::Or, &[0]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
        assert!(matches!(
            x.scouting(ScoutingKind::Or, &[0, 0]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
        assert!(matches!(
            x.scouting(ScoutingKind::Xor, &[0, 1, 2]),
            Err(CrossbarError::InvalidRowSelection { .. })
        ));
        assert!(matches!(
            x.scouting(ScoutingKind::Or, &[0, 99]),
            Err(CrossbarError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn ledger_accounts_for_operations() {
        let mut x = array();
        x.program_row(0, &BitVec::from_indices(64, &[0, 1])).expect("program");
        let _ = x.read_row(0).expect("read");
        let _ = x.scouting(ScoutingKind::Or, &[0, 1]).expect("scout");
        assert_eq!(x.ledger().programs(), 1);
        assert_eq!(x.ledger().bits_programmed(), 2);
        assert_eq!(x.ledger().reads(), 1);
        assert_eq!(x.ledger().scouting_ops(), 1);
        assert!(x.ledger().energy().as_joules() > 0.0);
    }

    #[test]
    fn reprogramming_same_value_is_free() {
        let mut x = array();
        x.program_bit(0, 0, true).expect("first");
        let e1 = x.ledger().energy();
        x.program_bit(0, 0, true).expect("no-op");
        assert_eq!(x.ledger().energy(), e1);
    }

    #[test]
    fn stuck_at_fault_defeats_programming() {
        let mut x = array();
        x.faults_mut().inject_stuck_at(0, 3, false);
        x.program_bit(0, 3, true).expect("write is accepted");
        assert!(!x.read_bit(0, 3).expect("read"), "stuck-at-0 wins");
        // Scouting sees the fault too.
        x.program_row(1, &BitVec::from_indices(64, &[3])).expect("r1");
        let or = x.scouting(ScoutingKind::Or, &[0, 1]).expect("or");
        assert!(or.get(3), "row 1 carries the 1");
        let and = x.scouting(ScoutingKind::And, &[0, 1]).expect("and");
        assert!(!and.get(3), "stuck row 0 kills the AND");
    }

    #[test]
    fn endurance_exhaustion_sticks_cells() {
        let mut x = Crossbar::rram(2, 4).with_endurance(EnduranceModel::new(3));
        // Toggle one bit until its 3-cycle budget is gone.
        x.program_bit(0, 0, true).expect("cycle 1");
        x.program_bit(0, 0, false).expect("cycle 2");
        let err = x.program_bit(0, 0, true).expect_err("cycle 3 exhausts");
        assert!(matches!(err, CrossbarError::Endurance(_)));
        assert_eq!(x.endurance_failures(), 1);
        // The final write completed; the cell is now stuck at `true`.
        assert!(x.read_bit(0, 0).expect("read"));
        x.program_bit(0, 0, false).expect("silently ignored");
        assert!(x.read_bit(0, 0).expect("read"), "stuck");
    }

    #[test]
    fn row_programming_survives_wearout_without_abort() {
        let mut x = Crossbar::rram(1, 8).with_endurance(EnduranceModel::new(2));
        let ones = BitVec::from_indices(8, &(0..8).collect::<Vec<_>>());
        let zeros = BitVec::new(8);
        x.program_row(0, &ones).expect("cycle 1 each");
        let changed = x.program_row(0, &zeros).expect("cycle 2 wears out every cell");
        assert_eq!(changed, 8);
        assert_eq!(x.endurance_failures(), 8);
        // All cells stuck at 0 now.
        let changed_after = x.program_row(0, &ones).expect("ignored");
        assert_eq!(changed_after, 0);
    }

    #[test]
    fn variability_with_typical_spread_preserves_logic() {
        let mut x = Crossbar::rram(4, 128).with_variability(VariabilityModel::typical(), 42);
        let a = BitVec::from_indices(128, &(0..128).step_by(3).collect::<Vec<_>>());
        let b = BitVec::from_indices(128, &(0..128).step_by(5).collect::<Vec<_>>());
        x.program_row(0, &a).expect("r0");
        x.program_row(1, &b).expect("r1");
        assert_eq!(x.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
        assert_eq!(x.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
    }

    #[test]
    fn area_and_static_power_reflect_technology() {
        let rram = Crossbar::rram(256, 256);
        let sram = Crossbar::with_technology(
            CellTechnology::sram_8t(),
            SwitchParams::paper_fig9(),
            256,
            256,
        );
        assert!(sram.area().as_square_micrometers() > 10.0 * rram.area().as_square_micrometers());
        assert_eq!(rram.static_power().as_watts(), 0.0);
        assert!(sram.static_power().as_watts() > 0.0);
    }

    #[test]
    fn load_full_matrix() {
        let mut x = Crossbar::rram(3, 16);
        let mut m = BitMatrix::new(3, 16);
        m.set(0, 0, true);
        m.set(1, 8, true);
        m.set(2, 15, true);
        let changed = x.load(&m).expect("load");
        assert_eq!(changed, 3);
        assert!(x.get(2, 15).expect("get"));
        let bad = BitMatrix::new(2, 16);
        assert!(x.load(&bad).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Scouting over an ideal array is exactly boolean logic for any
        /// row contents (the Fig. 3 claim).
        #[test]
        fn scouting_equals_boolean_ops(
            a_bits in proptest::collection::vec(any::<bool>(), 64),
            b_bits in proptest::collection::vec(any::<bool>(), 64),
        ) {
            let mut x = Crossbar::rram(2, 64);
            let a = BitVec::from_bools(&a_bits);
            let b = BitVec::from_bools(&b_bits);
            x.program_row(0, &a).expect("r0");
            x.program_row(1, &b).expect("r1");
            prop_assert_eq!(x.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
            prop_assert_eq!(x.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
            prop_assert_eq!(x.scouting(ScoutingKind::Xor, &[0, 1]).expect("xor"), a.xor(&b));
        }
    }
}
