//! The Fig. 9 bit-line discharge experiment as a transient netlist.

use crate::technology::CellTechnology;
use memcim_device::{BehavioralSwitch, MemristiveDevice, SwitchParams};
use memcim_spice::{Circuit, Edge, Integration, SpiceError, Trace, Transient, Waveform};
use memcim_units::{Farads, Joules, Ohms, Seconds, Volts};

/// Result of one evaluate-and-recharge bit-line cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DischargeReport {
    /// Time from word-line enable to the bit line crossing the sense
    /// level; `None` when the stored value keeps the line high (reads 0).
    pub discharge_time: Option<Seconds>,
    /// Energy delivered by the precharge supply over the full cycle —
    /// the paper's "energy consumed during the charge and discharge
    /// processes".
    pub cycle_energy: Joules,
    /// Energy delivered by the word-line driver (gate loading), reported
    /// separately because the paper's figure excludes it.
    pub wl_driver_energy: Joules,
    /// Bit-line voltage at the end of the evaluate window.
    pub bitline_after_evaluate: Volts,
}

impl DischargeReport {
    /// `true` when the sense amplifier would output logic 1.
    pub fn reads_one(&self) -> bool {
        self.discharge_time.is_some()
    }
}

/// Builder for the paper's Fig. 9 circuit: a bit line precharged to
/// 0.4 V, `n_cells` cells hanging off it, the shared word line enabled at
/// 1 ns, and a precharge pulse restoring the line after the evaluate
/// window.
///
/// Two fidelities are provided:
///
/// * [`lumped`](BitlineCircuit::lumped) — one explicit conducting cell,
///   with the remaining cells' bit-line loading lumped into a single
///   capacitor. Fast; used by tests and by the per-operation cost model.
/// * [`explicit`](BitlineCircuit::explicit) — every cell instantiated
///   (access transistor(s) plus storage element). This is the honest
///   256-cell reproduction; it is exercised at reduced cell counts by the
///   integration tests and at the full 256 by the `fig9_discharge` bench.
///
/// # Examples
///
/// ```
/// use memcim_crossbar::{BitlineCircuit, CellTechnology};
///
/// # fn main() -> Result<(), memcim_spice::SpiceError> {
/// let report = BitlineCircuit::lumped(CellTechnology::rram_1t1r(), 256).run()?;
/// assert!(report.reads_one());
/// let t = report.discharge_time.expect("discharges").as_picoseconds();
/// assert!((80.0..140.0).contains(&t), "t = {t} ps");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitlineCircuit {
    tech: CellTechnology,
    n_cells: usize,
    stored_one: bool,
    explicit: bool,
    dt: Seconds,
}

/// Word-line high level (VDD at 32 nm).
const V_WL: f64 = 1.0;
/// Word-line enable instant (the paper enables WL at 1 ns).
const T_WL_NS: f64 = 1.0;
/// Evaluate window length.
const T_EVAL_NS: f64 = 1.0;

impl BitlineCircuit {
    /// Creates the lumped variant (one explicit cell, rest as
    /// capacitance). The selected cell stores logic 1.
    pub fn lumped(tech: CellTechnology, n_cells: usize) -> Self {
        Self {
            tech,
            n_cells: n_cells.max(1),
            stored_one: true,
            explicit: false,
            dt: Seconds::from_picoseconds(0.5),
        }
    }

    /// Creates the fully explicit variant: every cell instantiated, cell
    /// 0 storing logic 1 and the rest logic 0 — exactly the paper's
    /// "slowest discharge" setup.
    pub fn explicit(tech: CellTechnology, n_cells: usize) -> Self {
        Self {
            tech,
            n_cells: n_cells.max(1),
            stored_one: true,
            explicit: true,
            dt: Seconds::from_picoseconds(2.0),
        }
    }

    /// Sets whether the selected cell stores logic 1 (default) or 0.
    /// With 0 stored the line must stay high and the SA reads 0.
    #[must_use]
    pub fn with_stored_bit(mut self, one: bool) -> Self {
        self.stored_one = one;
        self
    }

    /// Overrides the simulation timestep.
    #[must_use]
    pub fn with_timestep(mut self, dt: Seconds) -> Self {
        self.dt = dt;
        self
    }

    /// Builds and runs the transient, returning the measured report.
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`SpiceError`]) — these indicate a
    /// netlist bug, not a measurement outcome.
    pub fn run(&self) -> Result<DischargeReport, SpiceError> {
        self.run_with_trace().map(|(report, _)| report)
    }

    /// Like [`run`](Self::run) but also returns the full waveform trace
    /// (used by the CSV-export example and the bench plots).
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`SpiceError`]).
    pub fn run_with_trace(&self) -> Result<(DischargeReport, Trace), SpiceError> {
        let mut ckt = Circuit::new();
        self.build(&mut ckt)?;
        let t_stop = Seconds::from_nanoseconds(3.6);
        let trace = Transient::new(t_stop, self.dt)
            .with_integration(Integration::Trapezoidal)
            .run(&mut ckt)?;

        let wl_at = Seconds::from_nanoseconds(T_WL_NS);
        let discharge_time = trace
            .cross_time("bl", self.tech.sense_level, Edge::Falling, wl_at)
            .map(|t| t - wl_at)
            // A crossing after the evaluate window means the precharge
            // pulse ended the cycle first: the SA latched 0.
            .filter(|t| t.as_nanoseconds() <= T_EVAL_NS);
        let bitline_after_evaluate =
            Volts::new(trace.value_at("bl", Seconds::from_nanoseconds(T_WL_NS + T_EVAL_NS))?);
        let report = DischargeReport {
            discharge_time,
            cycle_energy: trace.delivered_energy("Vpre"),
            wl_driver_energy: trace.delivered_energy("Vwl"),
            bitline_after_evaluate,
        };
        Ok((report, trace))
    }

    /// Assembles the netlist into `ckt`.
    fn build(&self, ckt: &mut Circuit) -> Result<(), SpiceError> {
        let bl = ckt.node("bl");
        let wl = ckt.node("wl");
        let pre = ckt.node("pre");

        // Precharge supply and switch: recharge window after evaluate.
        ckt.add_vsource("Vpre", pre, Circuit::GROUND, Waveform::dc(self.tech.precharge))?;
        ckt.add_switch(
            "Spre",
            pre,
            bl,
            Ohms::new(100.0),
            Ohms::new(1.0e12),
            Waveform::pulse(
                Volts::ZERO,
                Volts::new(1.0),
                Seconds::from_nanoseconds(T_WL_NS + T_EVAL_NS + 0.2),
                Seconds::from_nanoseconds(1.0),
                Seconds::from_picoseconds(10.0),
            ),
            Volts::new(0.5),
        )?;

        // Word line: shared by all cells, enabled at 1 ns.
        ckt.add_vsource(
            "Vwl",
            wl,
            Circuit::GROUND,
            Waveform::pulse(
                Volts::ZERO,
                Volts::new(V_WL),
                Seconds::from_nanoseconds(T_WL_NS),
                Seconds::from_nanoseconds(T_EVAL_NS),
                Seconds::from_picoseconds(10.0),
            ),
        )?;

        let explicit_cells = if self.explicit { self.n_cells } else { 1 };

        // Bit-line capacitance not contributed by explicit devices: total
        // budget minus each explicit cell's own drain junction.
        let budget = self.tech.bitline_capacitance(self.n_cells).as_farads();
        let explicit_junctions = explicit_cells as f64 * self.tech.access_transistor.c_db;
        let lump = (budget - explicit_junctions).max(1.0e-18);
        ckt.add_capacitor("Cbl", bl, Circuit::GROUND, Farads::new(lump))?;
        ckt.set_initial_voltage(bl, self.tech.precharge);

        for cell in 0..explicit_cells {
            // Fig. 9a: the input vector is [1 0 0 … 0] — only the first
            // cell's word line is driven; the rest stay deselected (gate
            // grounded), loading the bit line with their junctions only.
            let selected = cell == 0;
            let stores_one = selected && self.stored_one;
            let gate = if selected { wl } else { Circuit::GROUND };
            self.build_cell(ckt, bl, gate, cell, stores_one)?;
        }
        Ok(())
    }

    fn build_cell(
        &self,
        ckt: &mut Circuit,
        bl: memcim_spice::Node,
        wl: memcim_spice::Node,
        index: usize,
        stores_one: bool,
    ) -> Result<(), SpiceError> {
        match self.tech.series_transistors {
            1 => {
                // 1T1R: BL — access NMOS — memristor — GND (Fig. 8b).
                let mid = ckt.node(&format!("m{index}"));
                ckt.add_nmos(&format!("Ma{index}"), bl, wl, mid, self.tech.access_transistor)?;
                let mut device = BehavioralSwitch::new(SwitchParams::paper_fig9());
                device.set_normalized_state(if stores_one { 1.0 } else { 0.0 });
                ckt.add_memristor(&format!("X{index}"), mid, Circuit::GROUND, Box::new(device))?;
            }
            _ => {
                // 8T SRAM read port: BL — M1(gate=WL) — M2(gate=data) — GND
                // (Fig. 8c). The stored datum drives the lower gate.
                let mid = ckt.node(&format!("m{index}"));
                let data = ckt.node(&format!("d{index}"));
                ckt.add_vsource(
                    &format!("Vd{index}"),
                    data,
                    Circuit::GROUND,
                    Waveform::dc(Volts::new(if stores_one { V_WL } else { 0.0 })),
                )?;
                ckt.set_initial_voltage(data, Volts::new(if stores_one { V_WL } else { 0.0 }));
                ckt.add_nmos(&format!("Ma{index}"), bl, wl, mid, self.tech.access_transistor)?;
                ckt.add_nmos(
                    &format!("Mb{index}"),
                    mid,
                    data,
                    Circuit::GROUND,
                    self.tech.access_transistor,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rram_lumped_discharge_is_in_the_100ps_class() {
        let report =
            BitlineCircuit::lumped(CellTechnology::rram_1t1r(), 256).run().expect("solver");
        let t = report.discharge_time.expect("stored 1 discharges").as_picoseconds();
        assert!((80.0..140.0).contains(&t), "t = {t} ps");
    }

    #[test]
    fn sram_is_slower_and_hungrier_than_rram() {
        // The Fig. 9 comparison at lumped fidelity.
        let rram = BitlineCircuit::lumped(CellTechnology::rram_1t1r(), 256).run().expect("rram");
        let sram = BitlineCircuit::lumped(CellTechnology::sram_8t(), 256).run().expect("sram");
        let t_r = rram.discharge_time.expect("rram discharges").as_picoseconds();
        let t_s = sram.discharge_time.expect("sram discharges").as_picoseconds();
        assert!(t_s > 1.2 * t_r, "rram {t_r} ps vs sram {t_s} ps");
        let e_r = rram.cycle_energy.as_femtojoules();
        let e_s = sram.cycle_energy.as_femtojoules();
        assert!(e_s > 2.0 * e_r, "rram {e_r} fJ vs sram {e_s} fJ");
    }

    #[test]
    fn stored_zero_keeps_the_line_high() {
        let report = BitlineCircuit::lumped(CellTechnology::rram_1t1r(), 256)
            .with_stored_bit(false)
            .run()
            .expect("solver");
        assert!(!report.reads_one());
        assert!(report.bitline_after_evaluate.as_volts() > 0.35);
    }

    #[test]
    fn explicit_small_array_matches_lumped_model() {
        // Cross-fidelity validation at 16 cells (fast enough for CI).
        let tech = CellTechnology::rram_1t1r();
        let lumped = BitlineCircuit::lumped(tech.clone(), 16).run().expect("lumped");
        let explicit = BitlineCircuit::explicit(tech, 16).run().expect("explicit");
        let t_l = lumped.discharge_time.expect("lumped").as_picoseconds();
        let t_e = explicit.discharge_time.expect("explicit").as_picoseconds();
        assert!((t_l - t_e).abs() / t_e < 0.25, "lumped {t_l} ps vs explicit {t_e} ps");
    }

    #[test]
    fn wl_energy_is_reported_separately_and_small() {
        let report =
            BitlineCircuit::lumped(CellTechnology::rram_1t1r(), 256).run().expect("solver");
        assert!(report.wl_driver_energy.as_femtojoules() < report.cycle_energy.as_femtojoules());
    }

    #[test]
    fn trace_contains_the_bitline_waveform() {
        let (_, trace) = BitlineCircuit::lumped(CellTechnology::rram_1t1r(), 64)
            .run_with_trace()
            .expect("solver");
        let (lo, hi) = trace.extrema("bl").expect("bl recorded");
        assert!(hi > 0.39 && lo < 0.1, "bl range [{lo}, {hi}]");
    }
}
