//! Multi-bank crossbar organization.
//!
//! The paper's MVP owns a 2 GB crossbar — physically millions of
//! subarrays, not one. A [`BankedCrossbar`] splits a logical row width
//! across equally-sized banks that operate column-parallel and
//! *simultaneously*: a scouting operation issues to every bank in the
//! same memory cycle, so latency is one bank cycle while energy is the
//! sum over banks. This is the structure behind the MVP model's
//! "massively parallel in-memory op" cost assumption (DESIGN.md §2).

use crate::{Crossbar, CrossbarError, ScoutingKind};
use memcim_bits::BitVec;
use memcim_units::{Joules, Seconds, SquareMicrometers, Watts};

/// A logical crossbar striped across multiple equally-wide banks.
///
/// Rows span all banks; operations fan out to every bank in parallel and
/// results are re-assembled in column order.
///
/// # Examples
///
/// ```
/// use memcim_bits::BitVec;
/// use memcim_crossbar::{BankedCrossbar, ScoutingKind};
///
/// # fn main() -> Result<(), memcim_crossbar::CrossbarError> {
/// // 4 banks × 256 columns = 1024-bit logical rows.
/// let mut banked = BankedCrossbar::rram(8, 4, 256);
/// banked.program_row(0, &BitVec::from_indices(1024, &[0, 500, 1023]))?;
/// banked.program_row(1, &BitVec::from_indices(1024, &[500]))?;
/// let and = banked.scouting(ScoutingKind::And, &[0, 1])?;
/// assert_eq!(and.ones().collect::<Vec<_>>(), vec![500]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BankedCrossbar {
    banks: Vec<Crossbar>,
    bank_cols: usize,
}

impl BankedCrossbar {
    /// Creates `bank_count` RRAM banks of `rows × bank_cols` each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn rram(rows: usize, bank_count: usize, bank_cols: usize) -> Self {
        assert!(bank_count > 0, "need at least one bank");
        Self {
            banks: (0..bank_count).map(|_| Crossbar::rram(rows, bank_cols)).collect(),
            bank_cols,
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Logical row width (columns across all banks).
    pub fn cols(&self) -> usize {
        self.banks.len() * self.bank_cols
    }

    /// Rows per bank (= logical rows).
    pub fn rows(&self) -> usize {
        self.banks[0].rows()
    }

    /// Borrows one bank (fault injection, inspection).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bank_mut(&mut self, index: usize) -> &mut Crossbar {
        &mut self.banks[index]
    }

    /// Splits a logical row vector into per-bank stripes.
    fn stripe(&self, values: &BitVec) -> Result<Vec<BitVec>, CrossbarError> {
        if values.len() != self.cols() {
            return Err(CrossbarError::WidthMismatch { got: values.len(), expected: self.cols() });
        }
        let mut stripes = vec![BitVec::new(self.bank_cols); self.banks.len()];
        for i in values.ones() {
            stripes[i / self.bank_cols].set(i % self.bank_cols, true);
        }
        Ok(stripes)
    }

    /// Re-assembles per-bank results into a logical row vector.
    fn gather(&self, parts: &[BitVec]) -> BitVec {
        let mut out = BitVec::new(self.cols());
        for (b, part) in parts.iter().enumerate() {
            for i in part.ones() {
                out.set(b * self.bank_cols + i, true);
            }
        }
        out
    }

    /// Programs a logical row across all banks (one parallel programming
    /// cycle). Returns the number of cells whose state changed.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::WidthMismatch`] /
    /// [`CrossbarError::OutOfBounds`] for invalid arguments.
    pub fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        let stripes = self.stripe(values)?;
        let mut changed = 0;
        for (bank, stripe) in self.banks.iter_mut().zip(stripes) {
            changed += bank.program_row(row, &stripe)?;
        }
        Ok(changed)
    }

    /// Reads a logical row (all banks sense in the same cycle).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for an invalid row.
    pub fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        let parts: Vec<BitVec> =
            self.banks.iter_mut().map(|b| b.read_row(row)).collect::<Result<_, _>>()?;
        Ok(self.gather(&parts))
    }

    /// A scouting operation across the full logical width in one bank
    /// cycle.
    ///
    /// # Errors
    ///
    /// Propagates the row-selection errors of [`Crossbar::scouting`].
    pub fn scouting(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
    ) -> Result<BitVec, CrossbarError> {
        let parts: Vec<BitVec> =
            self.banks.iter_mut().map(|b| b.scouting(kind, rows)).collect::<Result<_, _>>()?;
        Ok(self.gather(&parts))
    }

    /// Total dynamic energy across all banks.
    pub fn total_energy(&self) -> Joules {
        self.banks.iter().map(|b| b.ledger().energy()).sum()
    }

    /// Wall-clock busy time: banks run in parallel, so the maximum over
    /// banks (not the sum).
    pub fn parallel_busy_time(&self) -> Seconds {
        self.banks.iter().map(|b| b.ledger().busy_time()).fold(Seconds::ZERO, Seconds::max)
    }

    /// Total layout area.
    pub fn area(&self) -> SquareMicrometers {
        self.banks.iter().map(Crossbar::area).sum::<SquareMicrometers>()
    }

    /// Total static power.
    pub fn static_power(&self) -> Watts {
        Watts::new(self.banks.iter().map(|b| b.static_power().as_watts()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_and_gathering_round_trip() {
        let mut banked = BankedCrossbar::rram(4, 3, 64);
        assert_eq!(banked.cols(), 192);
        let data = BitVec::from_indices(192, &[0, 63, 64, 127, 128, 191]);
        banked.program_row(0, &data).expect("program");
        assert_eq!(banked.read_row(0).expect("read"), data);
    }

    #[test]
    fn scouting_spans_bank_boundaries() {
        let mut banked = BankedCrossbar::rram(4, 4, 32);
        let a = BitVec::from_indices(128, &(0..128).step_by(2).collect::<Vec<_>>());
        let b = BitVec::from_indices(128, &(0..128).step_by(3).collect::<Vec<_>>());
        banked.program_row(0, &a).expect("r0");
        banked.program_row(1, &b).expect("r1");
        assert_eq!(banked.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
        assert_eq!(banked.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
        assert_eq!(banked.scouting(ScoutingKind::Xor, &[0, 1]).expect("xor"), a.xor(&b));
    }

    #[test]
    fn latency_is_one_bank_cycle_energy_is_summed() {
        let mut one_bank = BankedCrossbar::rram(4, 1, 64);
        let mut four_banks = BankedCrossbar::rram(4, 4, 64);
        let narrow = BitVec::from_indices(64, &[1, 2]);
        let wide = BitVec::from_indices(256, &[1, 2, 65, 130, 200]);
        one_bank.program_row(0, &narrow).expect("p");
        one_bank.program_row(1, &narrow).expect("p");
        four_banks.program_row(0, &wide).expect("p");
        four_banks.program_row(1, &wide).expect("p");
        let _ = one_bank.scouting(ScoutingKind::Or, &[0, 1]).expect("or");
        let _ = four_banks.scouting(ScoutingKind::Or, &[0, 1]).expect("or");
        // Parallel banks: same wall-clock, ~4× the energy per op class.
        assert_eq!(
            one_bank.parallel_busy_time().as_seconds(),
            four_banks.parallel_busy_time().as_seconds()
        );
        assert!(four_banks.total_energy().as_joules() > 2.0 * one_bank.total_energy().as_joules());
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut banked = BankedCrossbar::rram(2, 2, 16);
        let wrong = BitVec::new(16);
        assert!(matches!(
            banked.program_row(0, &wrong),
            Err(CrossbarError::WidthMismatch { got: 16, expected: 32 })
        ));
    }

    #[test]
    fn per_bank_faults_stay_local() {
        let mut banked = BankedCrossbar::rram(2, 2, 16);
        banked.bank_mut(1).faults_mut().inject_stuck_at(0, 3, true);
        banked.program_row(0, &BitVec::new(32)).expect("zeros");
        let read = banked.read_row(0).expect("read");
        // Logical column 16 + 3 = 19 is the stuck one.
        assert_eq!(read.ones().collect::<Vec<_>>(), vec![19]);
    }

    #[test]
    fn area_and_power_aggregate() {
        let banked = BankedCrossbar::rram(8, 4, 64);
        let single = Crossbar::rram(8, 64);
        assert!(
            (banked.area().as_square_micrometers() - 4.0 * single.area().as_square_micrometers())
                .abs()
                < 1e-9
        );
        assert_eq!(banked.static_power().as_watts(), 0.0);
    }
}
