//! Multi-bank crossbar organization.
//!
//! The paper's MVP owns a 2 GB crossbar — physically millions of
//! subarrays, not one. A [`BankedCrossbar`] splits a logical row width
//! across equally-sized banks that operate column-parallel and
//! *simultaneously*: a scouting operation issues to every bank in the
//! same memory cycle, so latency is one bank cycle while energy is the
//! sum over banks. This is the structure behind the MVP model's
//! "massively parallel in-memory op" cost assumption (DESIGN.md §2).
//!
//! Striping a logical row into per-bank slices and gathering per-bank
//! results back into a logical row are word-parallel
//! ([`BitVec::extract_range_into`] / [`BitVec::or_shifted`]) — no
//! per-bit loops in either direction. Striping writes into per-instance
//! scratch (zero allocations per call); gathering ORs each bank's
//! result directly into the output vector, so the only allocations on a
//! banked operation are the ones its monolithic counterpart also makes
//! (the returned row, plus each bank's own result inside [`Crossbar`]).

use crate::{Crossbar, CrossbarError, OpLedger, RemapEntry, ScoutingKind};
use memcim_bits::BitVec;
use memcim_units::{Joules, Seconds, SquareMicrometers, Watts};

/// A logical crossbar striped across multiple equally-wide banks.
///
/// Rows span all banks; operations fan out to every bank in parallel and
/// results are re-assembled in column order.
///
/// # Examples
///
/// ```
/// use memcim_bits::BitVec;
/// use memcim_crossbar::{BankedCrossbar, ScoutingKind};
///
/// # fn main() -> Result<(), memcim_crossbar::CrossbarError> {
/// // 4 banks × 256 columns = 1024-bit logical rows.
/// let mut banked = BankedCrossbar::rram(8, 4, 256);
/// banked.program_row(0, &BitVec::from_indices(1024, &[0, 500, 1023]))?;
/// banked.program_row(1, &BitVec::from_indices(1024, &[500]))?;
/// let and = banked.scouting(ScoutingKind::And, &[0, 1])?;
/// assert_eq!(and.ones().collect::<Vec<_>>(), vec![500]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BankedCrossbar {
    banks: Vec<Crossbar>,
    bank_cols: usize,
    /// Per-bank stripe scratch (one `bank_cols`-wide vector per bank),
    /// allocated once and reused by every [`stripe`](Self::stripe) call.
    stripes: Vec<BitVec>,
}

impl BankedCrossbar {
    /// Creates `bank_count` RRAM banks of `rows × bank_cols` each.
    ///
    /// # Panics
    ///
    /// Panics if `rows`, `bank_count` or `bank_cols` is zero.
    pub fn rram(rows: usize, bank_count: usize, bank_cols: usize) -> Self {
        assert!(rows > 0, "banked crossbar needs at least one row");
        assert!(bank_count > 0, "banked crossbar needs at least one bank");
        assert!(bank_cols > 0, "banked crossbar needs a non-zero bank width");
        Self {
            banks: (0..bank_count).map(|_| Crossbar::rram(rows, bank_cols)).collect(),
            bank_cols,
            stripes: vec![BitVec::new(bank_cols); bank_count],
        }
    }

    /// Creates `bank_count` RRAM banks that each reserve `spares` spare
    /// rows under a stuck-cell retirement `threshold` (see
    /// [`Crossbar::with_spare_rows`]). The host sees `rows` logical
    /// rows; each bank holds `rows + spares` physical rows and repairs
    /// its slice of a degraded logical row independently.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or `threshold` is zero.
    pub fn rram_with_spares(
        rows: usize,
        bank_count: usize,
        bank_cols: usize,
        spares: usize,
        threshold: usize,
    ) -> Self {
        assert!(rows > 0, "banked crossbar needs at least one row");
        assert!(bank_count > 0, "banked crossbar needs at least one bank");
        assert!(bank_cols > 0, "banked crossbar needs a non-zero bank width");
        Self {
            banks: (0..bank_count)
                .map(|_| {
                    Crossbar::rram(rows + spares, bank_cols).with_spare_rows(spares, threshold)
                })
                .collect(),
            bank_cols,
            stripes: vec![BitVec::new(bank_cols); bank_count],
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Columns per bank.
    pub fn bank_cols(&self) -> usize {
        self.bank_cols
    }

    /// Logical row width (columns across all banks).
    pub fn cols(&self) -> usize {
        self.banks.len() * self.bank_cols
    }

    /// Rows per bank (= logical rows).
    pub fn rows(&self) -> usize {
        self.banks[0].rows()
    }

    /// Borrows one bank (fault injection, inspection), or `None` if
    /// `index` is out of range.
    pub fn bank_mut(&mut self, index: usize) -> Option<&mut Crossbar> {
        self.banks.get_mut(index)
    }

    /// Splits a logical row vector into the per-bank stripe scratch
    /// (`self.stripes`) — word-parallel, no allocation.
    fn stripe(&mut self, values: &BitVec) -> Result<(), CrossbarError> {
        if values.len() != self.cols() {
            return Err(CrossbarError::WidthMismatch { got: values.len(), expected: self.cols() });
        }
        for (b, stripe) in self.stripes.iter_mut().enumerate() {
            values.extract_range_into(b * self.bank_cols, self.bank_cols, stripe);
        }
        Ok(())
    }

    /// Re-assembles per-bank results into a logical row vector,
    /// word-parallel via [`BitVec::or_shifted`].
    fn gather(out: &mut BitVec, bank: usize, bank_cols: usize, part: &BitVec) {
        out.or_shifted(part, bank * bank_cols);
    }

    /// Programs a logical row across all banks (one parallel programming
    /// cycle). Returns the number of cells whose state changed.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::WidthMismatch`] /
    /// [`CrossbarError::OutOfBounds`] for invalid arguments.
    pub fn program_row(&mut self, row: usize, values: &BitVec) -> Result<u64, CrossbarError> {
        self.stripe(values)?;
        let mut changed = 0;
        for (bank, stripe) in self.banks.iter_mut().zip(&self.stripes) {
            changed += bank.program_row(row, stripe)?;
        }
        Ok(changed)
    }

    /// Reads a logical row (all banks sense in the same cycle).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for an invalid row.
    pub fn read_row(&mut self, row: usize) -> Result<BitVec, CrossbarError> {
        let mut out = BitVec::new(self.cols());
        for (b, bank) in self.banks.iter_mut().enumerate() {
            let part = bank.read_row(row)?;
            Self::gather(&mut out, b, self.bank_cols, &part);
        }
        Ok(out)
    }

    /// A scouting operation across the full logical width in one bank
    /// cycle.
    ///
    /// # Errors
    ///
    /// Propagates the row-selection errors of [`Crossbar::scouting`].
    pub fn scouting(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
    ) -> Result<BitVec, CrossbarError> {
        let mut out = BitVec::new(self.cols());
        for (b, bank) in self.banks.iter_mut().enumerate() {
            let part = bank.scouting(kind, rows)?;
            Self::gather(&mut out, b, self.bank_cols, &part);
        }
        Ok(out)
    }

    /// Scouting with write-back of the result into row `dest`: each bank
    /// computes its slice of the logic function and programs it back
    /// locally in the same parallel step, so the cross-bank result never
    /// leaves the memory.
    ///
    /// # Errors
    ///
    /// Combines the error conditions of [`Crossbar::scouting`] and
    /// [`Crossbar::program_row`].
    pub fn scouting_write(
        &mut self,
        kind: ScoutingKind,
        rows: &[usize],
        dest: usize,
    ) -> Result<BitVec, CrossbarError> {
        let mut out = BitVec::new(self.cols());
        for (b, bank) in self.banks.iter_mut().enumerate() {
            let part = bank.scouting_write(kind, rows, dest)?;
            Self::gather(&mut out, b, self.bank_cols, &part);
        }
        Ok(out)
    }

    /// Aggregated activity totals: operation counts and energy sum over
    /// banks, busy time is the maximum over banks (the banks operate in
    /// the same memory cycles — see [`OpLedger::merge_parallel`]).
    pub fn ledger_totals(&self) -> OpLedger {
        let mut total = OpLedger::new();
        for bank in &self.banks {
            total.merge_parallel(bank.ledger());
        }
        total
    }

    /// Snapshots of every bank's individual ledger, in bank order — the
    /// basis for interval accounting (per-bank deltas re-aggregated with
    /// [`OpLedger::merge_parallel`]; diffing
    /// [`ledger_totals`](Self::ledger_totals) directly would
    /// under-report busy time whenever new work lands in a bank that is
    /// not the busiest one).
    pub fn bank_ledgers(&self) -> Vec<OpLedger> {
        self.banks.iter().map(|b| *b.ledger()).collect()
    }

    /// Total dynamic energy across all banks.
    pub fn total_energy(&self) -> Joules {
        self.banks.iter().map(|b| b.ledger().energy()).sum()
    }

    /// Wall-clock busy time: banks run in parallel, so the maximum over
    /// banks (not the sum).
    pub fn parallel_busy_time(&self) -> Seconds {
        self.banks.iter().map(|b| b.ledger().busy_time()).fold(Seconds::ZERO, Seconds::max)
    }

    /// Total layout area.
    pub fn area(&self) -> SquareMicrometers {
        self.banks.iter().map(Crossbar::area).sum::<SquareMicrometers>()
    }

    /// Total static power.
    pub fn static_power(&self) -> Watts {
        Watts::new(self.banks.iter().map(|b| b.static_power().as_watts()).sum())
    }

    /// Spare rows still unused, summed over banks.
    pub fn spares_remaining(&self) -> usize {
        self.banks.iter().map(Crossbar::spares_remaining).sum()
    }

    /// Logical-row retirements performed, summed over banks (each bank
    /// repairs its slice of a logical row independently).
    pub fn retired_rows(&self) -> u64 {
        self.banks.iter().map(Crossbar::retired_rows).sum()
    }

    /// Every bank's non-identity remap entries, tagged with the bank
    /// index.
    pub fn remap_table(&self) -> Vec<RemapEntry> {
        self.banks
            .iter()
            .enumerate()
            .flat_map(|(bank, b)| {
                b.remap_table().into_iter().map(move |entry| RemapEntry { bank, ..entry })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_and_gathering_round_trip() {
        let mut banked = BankedCrossbar::rram(4, 3, 64);
        assert_eq!(banked.cols(), 192);
        let data = BitVec::from_indices(192, &[0, 63, 64, 127, 128, 191]);
        banked.program_row(0, &data).expect("program");
        assert_eq!(banked.read_row(0).expect("read"), data);
    }

    #[test]
    fn scouting_spans_bank_boundaries() {
        let mut banked = BankedCrossbar::rram(4, 4, 32);
        let a = BitVec::from_indices(128, &(0..128).step_by(2).collect::<Vec<_>>());
        let b = BitVec::from_indices(128, &(0..128).step_by(3).collect::<Vec<_>>());
        banked.program_row(0, &a).expect("r0");
        banked.program_row(1, &b).expect("r1");
        assert_eq!(banked.scouting(ScoutingKind::Or, &[0, 1]).expect("or"), a.or(&b));
        assert_eq!(banked.scouting(ScoutingKind::And, &[0, 1]).expect("and"), a.and(&b));
        assert_eq!(banked.scouting(ScoutingKind::Xor, &[0, 1]).expect("xor"), a.xor(&b));
    }

    #[test]
    fn scouting_write_back_spans_all_banks() {
        let mut banked = BankedCrossbar::rram(4, 3, 32);
        let a = BitVec::from_indices(96, &[0, 40, 95]);
        let b = BitVec::from_indices(96, &[0, 40, 50]);
        banked.program_row(0, &a).expect("r0");
        banked.program_row(1, &b).expect("r1");
        let and = banked.scouting_write(ScoutingKind::And, &[0, 1], 3).expect("write-back");
        assert_eq!(and.ones().collect::<Vec<_>>(), vec![0, 40]);
        assert_eq!(banked.read_row(3).expect("read"), and, "result landed in every bank");
    }

    #[test]
    fn latency_is_one_bank_cycle_energy_is_summed() {
        let mut one_bank = BankedCrossbar::rram(4, 1, 64);
        let mut four_banks = BankedCrossbar::rram(4, 4, 64);
        let narrow = BitVec::from_indices(64, &[1, 2]);
        let wide = BitVec::from_indices(256, &[1, 2, 65, 130, 200]);
        one_bank.program_row(0, &narrow).expect("p");
        one_bank.program_row(1, &narrow).expect("p");
        four_banks.program_row(0, &wide).expect("p");
        four_banks.program_row(1, &wide).expect("p");
        let _ = one_bank.scouting(ScoutingKind::Or, &[0, 1]).expect("or");
        let _ = four_banks.scouting(ScoutingKind::Or, &[0, 1]).expect("or");
        // Parallel banks: same wall-clock, ~4× the energy per op class.
        assert_eq!(
            one_bank.parallel_busy_time().as_seconds(),
            four_banks.parallel_busy_time().as_seconds()
        );
        assert!(four_banks.total_energy().as_joules() > 2.0 * one_bank.total_energy().as_joules());
        // ledger_totals agrees with the two dedicated aggregates.
        let totals = four_banks.ledger_totals();
        assert_eq!(totals.energy(), four_banks.total_energy());
        assert_eq!(totals.busy_time(), four_banks.parallel_busy_time());
        assert_eq!(totals.scouting_ops(), 4);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut banked = BankedCrossbar::rram(2, 2, 16);
        let wrong = BitVec::new(16);
        assert!(matches!(
            banked.program_row(0, &wrong),
            Err(CrossbarError::WidthMismatch { got: 16, expected: 32 })
        ));
    }

    #[test]
    fn per_bank_faults_stay_local() {
        let mut banked = BankedCrossbar::rram(2, 2, 16);
        banked.bank_mut(1).expect("bank 1 exists").faults_mut().inject_stuck_at(0, 3, true);
        banked.program_row(0, &BitVec::new(32)).expect("zeros");
        let read = banked.read_row(0).expect("read");
        // Logical column 16 + 3 = 19 is the stuck one.
        assert_eq!(read.ones().collect::<Vec<_>>(), vec![19]);
    }

    #[test]
    fn out_of_range_bank_is_none_not_a_panic() {
        let mut banked = BankedCrossbar::rram(2, 2, 16);
        assert!(banked.bank_mut(1).is_some());
        assert!(banked.bank_mut(2).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_are_rejected_with_a_clear_message() {
        let _ = BankedCrossbar::rram(0, 2, 16);
    }

    #[test]
    #[should_panic(expected = "non-zero bank width")]
    fn zero_bank_cols_are_rejected_with_a_clear_message() {
        let _ = BankedCrossbar::rram(2, 2, 0);
    }

    #[test]
    fn per_bank_spare_repair_keeps_the_logical_row_intact() {
        let mut banked = BankedCrossbar::rram_with_spares(4, 2, 16, 1, 1);
        assert_eq!(banked.rows(), 4, "spares are invisible to the host");
        assert_eq!(banked.spares_remaining(), 2);
        let data = BitVec::from_indices(32, &[3, 19]);
        banked.program_row(0, &data).expect("program");
        // Break row 0 in bank 1 only and retire it there.
        let bank1 = banked.bank_mut(1).expect("bank 1");
        bank1.faults_mut().inject_stuck_at(0, 0, true);
        bank1.audit().expect("retire");
        assert_eq!(banked.retired_rows(), 1);
        assert_eq!(banked.spares_remaining(), 1);
        let table = banked.remap_table();
        assert_eq!(table, vec![RemapEntry { bank: 1, logical: 0, physical: 4 }]);
        // Bank 0 is untouched; bank 1 serves row 0 from its spare.
        assert_eq!(banked.read_row(0).expect("read"), data);
    }

    #[test]
    fn area_and_power_aggregate() {
        let banked = BankedCrossbar::rram(8, 4, 64);
        let single = Crossbar::rram(8, 64);
        assert!(
            (banked.area().as_square_micrometers() - 4.0 * single.area().as_square_micrometers())
                .abs()
                < 1e-9
        );
        assert_eq!(banked.static_power().as_watts(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Per-bit reference for [`BankedCrossbar::stripe`].
    fn stripe_per_bit(values: &BitVec, bank_count: usize, bank_cols: usize) -> Vec<BitVec> {
        let mut stripes = vec![BitVec::new(bank_cols); bank_count];
        for i in values.ones() {
            stripes[i / bank_cols].set(i % bank_cols, true);
        }
        stripes
    }

    /// Per-bit reference for [`BankedCrossbar::gather`].
    fn gather_per_bit(parts: &[BitVec], bank_cols: usize) -> BitVec {
        let mut out = BitVec::new(parts.len() * bank_cols);
        for (b, part) in parts.iter().enumerate() {
            for i in part.ones() {
                out.set(b * bank_cols + i, true);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The word-parallel stripe/gather pair is bit-identical to the
        /// per-bit reference for arbitrary contents, bank counts and
        /// (non-power-of-two) bank widths, and round-trips.
        #[test]
        fn word_parallel_stripe_gather_matches_per_bit_reference(
            bank_count in 1usize..6,
            bank_cols in 1usize..150,
            bits in proptest::collection::vec(any::<bool>(), 1..900),
        ) {
            let cols = bank_count * bank_cols;
            let values: BitVec =
                (0..cols).map(|i| bits[i % bits.len()]).collect();
            let mut banked = BankedCrossbar::rram(1, bank_count, bank_cols);
            banked.stripe(&values).expect("widths match");
            let reference = stripe_per_bit(&values, bank_count, bank_cols);
            prop_assert_eq!(&banked.stripes, &reference);
            // Gathering the stripes reconstructs the logical row.
            let mut gathered = BitVec::new(cols);
            for (b, part) in banked.stripes.iter().enumerate() {
                BankedCrossbar::gather(&mut gathered, b, bank_cols, part);
            }
            prop_assert_eq!(&gathered, &values);
            prop_assert_eq!(gathered, gather_per_bit(&reference, bank_cols));
        }
    }
}
