//! Stuck-at fault injection for crossbar cells.

use std::collections::HashMap;

/// A map of stuck-at faults over array cells.
///
/// A stuck cell ignores programming and always reads its stuck value —
/// the dominant memristor failure signature (endurance wear-out leaves
/// filaments permanently formed or ruptured).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMap {
    stuck: HashMap<(usize, usize), bool>,
}

impl FaultMap {
    /// An empty fault map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects a stuck-at fault at `(row, col)`.
    pub fn inject_stuck_at(&mut self, row: usize, col: usize, value: bool) {
        self.stuck.insert((row, col), value);
    }

    /// Removes a fault, if present.
    pub fn clear(&mut self, row: usize, col: usize) {
        self.stuck.remove(&(row, col));
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.stuck.len()
    }

    /// `true` when no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.stuck.is_empty()
    }

    /// The stuck value at a cell, if faulty.
    pub fn stuck_value(&self, row: usize, col: usize) -> Option<bool> {
        self.stuck.get(&(row, col)).copied()
    }

    /// The value actually observed when reading a cell whose programmed
    /// value is `logical`.
    pub fn observed(&self, row: usize, col: usize, logical: bool) -> bool {
        self.stuck_value(row, col).unwrap_or(logical)
    }

    /// Iterates over `((row, col), stuck_value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &bool)> {
        self.stuck.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_cell_overrides_logical_value() {
        let mut f = FaultMap::new();
        f.inject_stuck_at(1, 2, true);
        assert!(f.observed(1, 2, false));
        assert!(f.observed(1, 2, true));
        assert!(!f.observed(0, 0, false));
    }

    #[test]
    fn clear_restores_normal_behaviour() {
        let mut f = FaultMap::new();
        f.inject_stuck_at(0, 0, false);
        assert!(!f.observed(0, 0, true));
        f.clear(0, 0);
        assert!(f.observed(0, 0, true));
        assert!(f.is_empty());
    }

    #[test]
    fn len_tracks_injections() {
        let mut f = FaultMap::new();
        f.inject_stuck_at(0, 0, true);
        f.inject_stuck_at(0, 1, false);
        f.inject_stuck_at(0, 0, false); // overwrite, not a new fault
        assert_eq!(f.len(), 2);
        assert_eq!(f.iter().count(), 2);
    }
}
