//! Stuck-at fault injection for crossbar cells.

use std::collections::HashMap;

/// A map of stuck-at faults over array cells.
///
/// A stuck cell ignores programming and always reads its stuck value —
/// the dominant memristor failure signature (endurance wear-out leaves
/// filaments permanently formed or ruptured).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMap {
    stuck: HashMap<(usize, usize), bool>,
    per_row: HashMap<usize, usize>,
}

impl FaultMap {
    /// An empty fault map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects a stuck-at fault at `(row, col)`.
    pub fn inject_stuck_at(&mut self, row: usize, col: usize, value: bool) {
        if self.stuck.insert((row, col), value).is_none() {
            *self.per_row.entry(row).or_insert(0) += 1;
        }
    }

    /// Removes a fault, if present.
    pub fn clear(&mut self, row: usize, col: usize) {
        if self.stuck.remove(&(row, col)).is_some() {
            match self.per_row.get_mut(&row) {
                Some(count) if *count > 1 => *count -= 1,
                _ => {
                    self.per_row.remove(&row);
                }
            }
        }
    }

    /// Number of stuck cells in one row — the quantity a spare-row
    /// retirement policy thresholds on.
    pub fn row_fault_count(&self, row: usize) -> usize {
        self.per_row.get(&row).copied().unwrap_or(0)
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.stuck.len()
    }

    /// `true` when no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.stuck.is_empty()
    }

    /// The stuck value at a cell, if faulty.
    pub fn stuck_value(&self, row: usize, col: usize) -> Option<bool> {
        self.stuck.get(&(row, col)).copied()
    }

    /// The value actually observed when reading a cell whose programmed
    /// value is `logical`.
    pub fn observed(&self, row: usize, col: usize, logical: bool) -> bool {
        self.stuck_value(row, col).unwrap_or(logical)
    }

    /// Iterates over `((row, col), stuck_value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &bool)> {
        self.stuck.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_cell_overrides_logical_value() {
        let mut f = FaultMap::new();
        f.inject_stuck_at(1, 2, true);
        assert!(f.observed(1, 2, false));
        assert!(f.observed(1, 2, true));
        assert!(!f.observed(0, 0, false));
    }

    #[test]
    fn clear_restores_normal_behaviour() {
        let mut f = FaultMap::new();
        f.inject_stuck_at(0, 0, false);
        assert!(!f.observed(0, 0, true));
        f.clear(0, 0);
        assert!(f.observed(0, 0, true));
        assert!(f.is_empty());
    }

    #[test]
    fn len_tracks_injections() {
        let mut f = FaultMap::new();
        f.inject_stuck_at(0, 0, true);
        f.inject_stuck_at(0, 1, false);
        f.inject_stuck_at(0, 0, false); // overwrite, not a new fault
        assert_eq!(f.len(), 2);
        assert_eq!(f.iter().count(), 2);
    }

    #[test]
    fn row_counts_track_injections_and_clears() {
        let mut f = FaultMap::new();
        assert_eq!(f.row_fault_count(3), 0);
        f.inject_stuck_at(3, 0, true);
        f.inject_stuck_at(3, 7, false);
        f.inject_stuck_at(3, 7, true); // overwrite: still two faults
        f.inject_stuck_at(5, 1, true);
        assert_eq!(f.row_fault_count(3), 2);
        assert_eq!(f.row_fault_count(5), 1);
        f.clear(3, 7);
        assert_eq!(f.row_fault_count(3), 1);
        f.clear(3, 0);
        f.clear(3, 0); // double clear is a no-op
        assert_eq!(f.row_fault_count(3), 0);
        assert_eq!(f.row_fault_count(5), 1);
    }
}
