//! Integration tests for the bulk boolean operations on [`BitVec`] and
//! [`BitMatrix`] — the substrate of the paper's Equations (1)–(4).
//!
//! These complement the in-crate unit and property tests with explicit
//! word-boundary cases (63/64/65/128/129 bits), `from_indices`
//! round-trips, popcount bookkeeping, and the out-of-range panic
//! contracts.

use memcim_bits::{BitMatrix, BitVec};

/// Lengths that straddle the packed `u64` word boundaries.
const BOUNDARY_LENS: [usize; 7] = [1, 63, 64, 65, 127, 128, 129];

/// A deterministic pseudo-random bool pattern (xorshift64*).
fn pattern(len: usize, mut seed: u64) -> Vec<bool> {
    seed |= 1;
    (0..len)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed & 1 == 1
        })
        .collect()
}

#[test]
fn and_or_xor_not_match_elementwise_reference_at_word_boundaries() {
    for len in BOUNDARY_LENS {
        let xs = pattern(len, 0xA11CE ^ len as u64);
        let ys = pattern(len, 0xB0B ^ len as u64);
        let a = BitVec::from_bools(&xs);
        let b = BitVec::from_bools(&ys);
        for i in 0..len {
            assert_eq!(a.and(&b).get(i), xs[i] && ys[i], "and, len {len}, bit {i}");
            assert_eq!(a.or(&b).get(i), xs[i] || ys[i], "or, len {len}, bit {i}");
            assert_eq!(a.xor(&b).get(i), xs[i] ^ ys[i], "xor, len {len}, bit {i}");
            assert_eq!(a.not().get(i), !xs[i], "not, len {len}, bit {i}");
        }
    }
}

#[test]
fn in_place_ops_agree_with_functional_ops() {
    let xs = pattern(130, 7);
    let ys = pattern(130, 9);
    let a = BitVec::from_bools(&xs);
    let b = BitVec::from_bools(&ys);

    let mut c = a.clone();
    c.and_assign(&b);
    assert_eq!(c, a.and(&b));

    let mut c = a.clone();
    c.or_assign(&b);
    assert_eq!(c, a.or(&b));

    let mut c = a.clone();
    c.xor_assign(&b);
    assert_eq!(c, a.xor(&b));
}

#[test]
fn from_indices_sets_exactly_the_listed_bits() {
    let v = BitVec::from_indices(129, &[0, 63, 64, 65, 128]);
    assert_eq!(v.ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128]);
    assert_eq!(v.count_ones(), 5);

    // Duplicates collapse; order is irrelevant.
    let dup = BitVec::from_indices(16, &[5, 3, 5, 3, 5]);
    assert_eq!(dup.ones().collect::<Vec<_>>(), vec![3, 5]);
    assert_eq!(dup.count_ones(), 2);

    // Empty index list means the zero vector.
    let zero = BitVec::from_indices(64, &[]);
    assert!(!zero.any());
    assert_eq!(zero.count_ones(), 0);
}

#[test]
fn popcount_is_exact_across_word_boundaries_and_after_not() {
    for len in BOUNDARY_LENS {
        let xs = pattern(len, 0xC0FFEE ^ len as u64);
        let v = BitVec::from_bools(&xs);
        let expected = xs.iter().filter(|&&x| x).count();
        assert_eq!(v.count_ones(), expected, "len {len}");
        // The complement must not leak set bits past `len` into the
        // padding of the last partial word.
        assert_eq!(v.not().count_ones(), len - expected, "not, len {len}");
        let mut all = BitVec::new(len);
        all.set_all();
        assert_eq!(all.count_ones(), len, "set_all, len {len}");
    }
}

#[test]
fn intersects_is_equation_four() {
    let a = BitVec::from_indices(100, &[3, 64, 99]);
    assert!(a.intersects(&BitVec::from_indices(100, &[99])));
    assert!(a.intersects(&BitVec::from_indices(100, &[64, 7])));
    assert!(!a.intersects(&BitVec::from_indices(100, &[2, 4, 65, 98])));
    assert!(!a.intersects(&BitVec::new(100)));
}

#[test]
fn matrix_vector_product_is_row_or_reduction() {
    // Equation (2) on a matrix that spans several words per row.
    let mut m = BitMatrix::new(3, 130);
    m.set(0, 0, true);
    m.set(0, 129, true);
    m.set(1, 64, true);
    m.set(2, 65, true);

    let x = BitVec::from_indices(3, &[0, 2]);
    let y = m.vector_product(&x);
    assert_eq!(y.ones().collect::<Vec<_>>(), vec![0, 65, 129]);

    // No active rows → zero output.
    assert!(!m.vector_product(&BitVec::new(3)).any());
}

#[test]
fn matrix_transpose_round_trips_and_preserves_popcount() {
    let mut m = BitMatrix::new(5, 70);
    for (r, c) in [(0, 0), (1, 69), (2, 64), (3, 1), (4, 33), (0, 69)] {
        m.set(r, c, true);
    }
    let t = m.transpose();
    assert_eq!(t.rows(), 70);
    assert_eq!(t.cols(), 5);
    assert_eq!(t.count_ones(), m.count_ones());
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            assert_eq!(m.get(r, c), t.get(c, r), "({r}, {c})");
        }
    }
}

#[test]
#[should_panic(expected = "out of bounds")]
fn bitvec_get_past_length_panics() {
    let v = BitVec::new(64);
    let _ = v.get(64);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn bitvec_set_past_length_panics() {
    let mut v = BitVec::new(10);
    v.set(10, true);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn from_indices_rejects_out_of_range_index() {
    let _ = BitVec::from_indices(8, &[0, 8]);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn binary_ops_reject_length_mismatch() {
    let a = BitVec::new(64);
    let b = BitVec::new(65);
    let _ = a.xor(&b);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn intersects_rejects_length_mismatch() {
    let a = BitVec::new(4);
    let b = BitVec::new(5);
    let _ = a.intersects(&b);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn matrix_get_past_rows_panics() {
    let m = BitMatrix::new(2, 8);
    let _ = m.get(2, 0);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn matrix_row_past_rows_panics() {
    let m = BitMatrix::new(2, 8);
    let _ = m.row(2);
}

#[test]
#[should_panic(expected = "row length mismatch")]
fn matrix_set_row_rejects_wrong_width() {
    let mut m = BitMatrix::new(2, 8);
    m.set_row(0, BitVec::new(9));
}

#[test]
#[should_panic(expected = "vector length must equal row count")]
fn vector_product_rejects_wrong_length() {
    let m = BitMatrix::new(3, 8);
    let _ = m.vector_product(&BitVec::new(4));
}

#[test]
fn extract_or_shifted_round_trip_at_word_boundaries() {
    // Slicing [start, start+len) out and ORing it back at the same
    // offset must reproduce exactly the in-range bits, for every
    // boundary-straddling (len, start) combination.
    for len in BOUNDARY_LENS {
        let xs = pattern(len, 0xF0E1 ^ len as u64);
        let v = BitVec::from_bools(&xs);
        for start in [0, 1, len / 2, len.saturating_sub(1)] {
            let slice_len = len - start;
            let mut slice = BitVec::new(slice_len.max(1));
            v.extract_range_into(start, slice_len, &mut slice);
            let mut back = BitVec::new(len);
            back.or_shifted(&slice, start);
            for (i, &expect) in xs.iter().enumerate() {
                let in_range = i >= start;
                assert_eq!(back.get(i), expect && in_range, "len {len}, start {start}, bit {i}");
            }
        }
    }
}

#[test]
fn first_one_and_into_product_agree_with_reference_at_word_boundaries() {
    for len in BOUNDARY_LENS {
        let xs = pattern(len, 0xD00D ^ len as u64);
        let v = BitVec::from_bools(&xs);
        assert_eq!(v.first_one(), xs.iter().position(|&b| b), "first_one, len {len}");

        // vector_product_into over a square pattern matrix equals the
        // allocating product even when the scratch starts dirty.
        let mut m = BitMatrix::new(len, len);
        for (r, row_seed) in (0..len).zip(100u64..) {
            for (c, &bit) in pattern(len, row_seed).iter().enumerate() {
                if bit {
                    m.set(r, c, true);
                }
            }
        }
        let mut scratch = BitVec::from_bools(&vec![true; len]);
        m.vector_product_into(&v, &mut scratch);
        assert_eq!(scratch, m.vector_product(&v), "product, len {len}");
    }
}
