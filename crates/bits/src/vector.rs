//! Fixed-length packed bit vector.

use core::fmt;

/// A fixed-length bit vector packed into `u64` words.
///
/// Operations that combine two vectors (`and`, `or`, `xor` and their
/// in-place forms) require equal lengths.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of the given length.
    pub fn new(len: usize) -> Self {
        Self { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Creates a vector with the listed bit positions set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut v = Self::new(len);
        for &i in indices {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector from boolean values.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of bounds (len {})", self.len);
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "bit index {index} out of bounds (len {})", self.len);
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets all bits (respecting the length).
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `true` if the intersection with `other` is non-empty — the paper's
    /// Equation (4), `A = a · cᵀ`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn intersects(&self, other: &BitVec) -> bool {
        self.check_len(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    fn check_len(&self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Bitwise AND into a new vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Bitwise OR into a new vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Bitwise XOR into a new vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Bitwise complement (respecting the length).
    pub fn not(&self) -> BitVec {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Iterator over indices of set bits, ascending.
    pub fn ones(&self) -> Ones<'_> {
        Ones { vec: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// The underlying words (little-endian bit order within each word).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the underlying words — the low-level escape
    /// hatch for fused word-parallel kernels (the AP symbol loop ORs
    /// routed follow words in place through this).
    ///
    /// Invariant: bits at and above `len()` must stay zero; `any()`,
    /// `count_ones()` and equality rely on a clean tail. Writers that
    /// only OR/AND words derived from equal-length `BitVec`s preserve
    /// the invariant automatically.
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Index of the lowest set bit, or `None` for an all-zero vector.
    pub fn first_one(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| i * 64 + self.words[i].trailing_zeros() as usize)
    }

    /// Copies the bit range `[start, start + len)` of `self` into bit
    /// positions `[0, len)` of `out`, clearing every other bit of `out`
    /// — the word-parallel replacement for a per-bit extraction loop
    /// (each output word is assembled from at most two input words by
    /// shift and OR).
    ///
    /// `out` may be longer than `len`; the surplus bits end up zero, so
    /// a single scratch vector sized for the largest slice can serve
    /// every extraction.
    ///
    /// # Panics
    ///
    /// Panics if `start + len > self.len()` or `len > out.len()`.
    pub fn extract_range_into(&self, start: usize, len: usize, out: &mut BitVec) {
        assert!(
            start + len <= self.len,
            "range {start}..{} out of bounds (len {})",
            start + len,
            self.len
        );
        assert!(len <= out.len, "range length {len} exceeds output length {}", out.len);
        let w0 = start / 64;
        let off = start % 64;
        let words_needed = len.div_ceil(64);
        for j in 0..out.words.len() {
            if j >= words_needed {
                out.words[j] = 0;
                continue;
            }
            let lo = self.words.get(w0 + j).copied().unwrap_or(0) >> off;
            let hi = if off == 0 {
                0
            } else {
                self.words.get(w0 + j + 1).copied().unwrap_or(0) << (64 - off)
            };
            out.words[j] = lo | hi;
        }
        // Clear bits at and above `len` in the last populated word.
        let tail = len % 64;
        if tail != 0 {
            out.words[words_needed - 1] &= (1u64 << tail) - 1;
        }
    }

    /// ORs `src` into `self` with every bit index shifted up by `shift`:
    /// `self[shift + i] |= src[i]`. Bits that would land at or beyond
    /// `self.len()` are discarded. Word-parallel: each source word is
    /// split across at most two destination words.
    pub fn or_shifted(&mut self, src: &BitVec, shift: usize) {
        let w0 = shift / 64;
        let off = shift % 64;
        let n_words = self.words.len();
        for (j, &sw) in src.words.iter().enumerate() {
            if sw == 0 || w0 + j >= n_words {
                continue;
            }
            self.words[w0 + j] |= sw << off;
            if off != 0 && w0 + j + 1 < n_words {
                self.words[w0 + j + 1] |= sw >> (64 - off);
            }
        }
        self.mask_tail();
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(128) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 128 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

/// Iterator over set-bit indices of a [`BitVec`] (see [`BitVec::ones`]).
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    vec: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vector_is_all_zero() {
        let v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.any());
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut v = BitVec::new(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    fn boolean_algebra() {
        let a = BitVec::from_indices(8, &[0, 1, 2]);
        let b = BitVec::from_indices(8, &[2, 3]);
        assert_eq!(a.and(&b).ones().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.or(&b).ones().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(a.xor(&b).ones().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(a.not().ones().collect::<Vec<_>>(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn not_masks_the_tail() {
        let v = BitVec::new(70);
        let inv = v.not();
        assert_eq!(inv.count_ones(), 70);
        assert_eq!(inv.as_words()[1] >> 6, 0, "tail bits must stay clear");
    }

    #[test]
    fn set_all_respects_length() {
        let mut v = BitVec::new(67);
        v.set_all();
        assert_eq!(v.count_ones(), 67);
    }

    #[test]
    fn intersects_is_equation_four() {
        let a = BitVec::from_indices(3, &[2]);
        let c = BitVec::from_indices(3, &[2]);
        assert!(a.intersects(&c));
        let a2 = BitVec::from_indices(3, &[0, 1]);
        assert!(!a2.intersects(&c));
    }

    #[test]
    fn ones_iterates_in_ascending_order() {
        let v = BitVec::from_indices(300, &[5, 64, 70, 255, 299]);
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![5, 64, 70, 255, 299]);
    }

    #[test]
    fn from_bools_and_collect() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn first_one_finds_the_lowest_bit() {
        assert_eq!(BitVec::new(200).first_one(), None);
        assert_eq!(BitVec::from_indices(200, &[77, 130]).first_one(), Some(77));
        assert_eq!(BitVec::from_indices(65, &[64]).first_one(), Some(64));
    }

    #[test]
    fn extract_range_crosses_word_boundaries() {
        let v = BitVec::from_indices(300, &[60, 63, 64, 65, 130, 190]);
        let mut out = BitVec::new(80);
        v.extract_range_into(60, 75, &mut out);
        assert_eq!(out.ones().collect::<Vec<_>>(), vec![0, 3, 4, 5, 70]);
        // Surplus bits of a longer scratch stay clear, and a second use
        // fully overwrites the first.
        v.extract_range_into(128, 4, &mut out);
        assert_eq!(out.ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn or_shifted_places_bits_and_discards_overflow() {
        let mut acc = BitVec::from_indices(100, &[0]);
        acc.or_shifted(&BitVec::from_indices(70, &[0, 1, 69]), 30);
        assert_eq!(acc.ones().collect::<Vec<_>>(), vec![0, 30, 31, 99]);
        // Bits shifted past the end are dropped, tail stays masked.
        let mut short = BitVec::new(66);
        short.or_shifted(&BitVec::from_indices(10, &[0, 5]), 64);
        assert_eq!(short.ones().collect::<Vec<_>>(), vec![64]);
        assert_eq!(short.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn extract_range_checks_source_bounds() {
        let v = BitVec::new(10);
        let mut out = BitVec::new(10);
        v.extract_range_into(5, 6, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let v = BitVec::new(8);
        let _ = v.get(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = BitVec::new(8);
        let b = BitVec::new(9);
        let _ = a.and(&b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn vec_pair() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
        (1usize..300).prop_flat_map(|n| {
            (
                proptest::collection::vec(any::<bool>(), n),
                proptest::collection::vec(any::<bool>(), n),
            )
        })
    }

    proptest! {
        /// Packed ops agree with element-wise reference semantics.
        #[test]
        fn ops_match_reference((xs, ys) in vec_pair()) {
            let a = BitVec::from_bools(&xs);
            let b = BitVec::from_bools(&ys);
            for i in 0..xs.len() {
                prop_assert_eq!(a.and(&b).get(i), xs[i] && ys[i]);
                prop_assert_eq!(a.or(&b).get(i), xs[i] || ys[i]);
                prop_assert_eq!(a.xor(&b).get(i), xs[i] ^ ys[i]);
                prop_assert_eq!(a.not().get(i), !xs[i]);
            }
            prop_assert_eq!(a.count_ones(), xs.iter().filter(|&&x| x).count());
            prop_assert_eq!(
                a.intersects(&b),
                xs.iter().zip(&ys).any(|(&x, &y)| x && y)
            );
        }

        /// De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b.
        #[test]
        fn de_morgan((xs, ys) in vec_pair()) {
            let a = BitVec::from_bools(&xs);
            let b = BitVec::from_bools(&ys);
            prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        }

        /// ones() inverts from_indices.
        #[test]
        fn ones_roundtrip(xs in proptest::collection::vec(any::<bool>(), 1..300)) {
            let v = BitVec::from_bools(&xs);
            let idx: Vec<usize> = v.ones().collect();
            let v2 = BitVec::from_indices(xs.len(), &idx);
            prop_assert_eq!(v, v2);
        }

        /// extract_range_into agrees with a per-bit reference and
        /// or_shifted is its inverse (extract then shift back re-ORs the
        /// same bits), for arbitrary offsets straddling word boundaries.
        #[test]
        fn extract_and_or_shifted_match_reference(
            xs in proptest::collection::vec(any::<bool>(), 1..300),
            start_frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0,
            out_extra in 0usize..70,
        ) {
            let v = BitVec::from_bools(&xs);
            let start = (start_frac * xs.len() as f64) as usize;
            let len = (len_frac * (xs.len() - start) as f64) as usize;
            let mut out = BitVec::new(len + out_extra);
            out.set_all(); // must be fully overwritten
            v.extract_range_into(start, len, &mut out);
            for i in 0..out.len() {
                let expect = i < len && xs[start + i];
                prop_assert_eq!(out.get(i), expect, "bit {}", i);
            }
            let mut back = BitVec::new(xs.len());
            back.or_shifted(&out, start);
            for (i, &x) in xs.iter().enumerate() {
                let expect = (start..start + len).contains(&i) && x;
                prop_assert_eq!(back.get(i), expect, "round-trip bit {}", i);
            }
        }

        /// first_one equals the first index reported by ones().
        #[test]
        fn first_one_matches_ones(xs in proptest::collection::vec(any::<bool>(), 1..300)) {
            let v = BitVec::from_bools(&xs);
            prop_assert_eq!(v.first_one(), v.ones().next());
        }
    }
}
