//! Row-major bit matrix with the boolean matrix–vector product.

use crate::BitVec;
use core::fmt;

/// A dense `rows × cols` bit matrix.
///
/// Rows are stored as [`BitVec`]s, so the boolean matrix–vector product
/// (`OR`-sum of `AND`-products — the paper's Equations (1) and (2)) runs
/// word-parallel over the columns.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![BitVec::new(cols); rows] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        self.data[row].get(col)
    }

    /// Sets the bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        self.data[row].set(col, value);
    }

    /// Borrows a whole row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &BitVec {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row]
    }

    /// Replaces a whole row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or the vector length differs from
    /// the column count.
    pub fn set_row(&mut self, row: usize, value: BitVec) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert_eq!(value.len(), self.cols, "row length mismatch");
        self.data[row] = value;
    }

    /// Boolean vector–matrix product `y = x · M`:
    /// `y[c] = OR over r of (x[r] AND M[r][c])`.
    ///
    /// With `x` the active vector and `M` the routing matrix this is the
    /// paper's Equation (2); with `x` a one-hot input vector and `M` the
    /// STE matrix it is Equation (1).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vector_product(&self, x: &BitVec) -> BitVec {
        let mut acc = BitVec::new(self.cols);
        self.vector_product_into(x, &mut acc);
        acc
    }

    /// Allocation-free form of [`vector_product`](Self::vector_product):
    /// overwrites `out` with `x · M`, reusing its storage. This is the
    /// inner loop of the AP engine's Equation (2), so callers stream
    /// symbols without a heap allocation per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn vector_product_into(&self, x: &BitVec, out: &mut BitVec) {
        assert_eq!(x.len(), self.rows, "vector length must equal row count");
        assert_eq!(out.len(), self.cols, "output length must equal column count");
        out.clear();
        for r in x.ones() {
            out.or_assign(&self.data[r]);
        }
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(BitVec::count_ones).sum()
    }

    /// The transpose, computed word-parallel over 64×64 bit tiles
    /// (Hacker's Delight §7-3) rather than bit by bit.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::new(self.cols, self.rows);
        let row_blocks = self.rows.div_ceil(64);
        let col_blocks = self.cols.div_ceil(64);
        let mut tile = [0u64; 64];
        for rb in 0..row_blocks {
            for cb in 0..col_blocks {
                // Gather the 64×64 tile at (rb, cb); missing rows/words
                // read as zero.
                let mut any = false;
                for (i, w) in tile.iter_mut().enumerate() {
                    *w = self
                        .data
                        .get(rb * 64 + i)
                        .and_then(|row| row.as_words().get(cb).copied())
                        .unwrap_or(0);
                    any |= *w != 0;
                }
                if !any {
                    continue;
                }
                transpose64(&mut tile);
                for (j, &w) in tile.iter().enumerate() {
                    if w == 0 {
                        continue;
                    }
                    if let Some(row) = t.data.get_mut(cb * 64 + j) {
                        row.as_words_mut()[rb] = w;
                    }
                }
            }
        }
        t
    }
}

/// In-place transpose of a 64×64 bit tile (rows as `u64` words, bit `c`
/// of word `r` ⇔ element `(r, c)`): swap progressively smaller
/// off-diagonal blocks, 32×32 down to 1×1.
fn transpose64(tile: &mut [u64; 64]) {
    let mut width = 32;
    let mut mask: u64 = 0x0000_0000_ffff_ffff;
    while width != 0 {
        let mut r = 0;
        while r < 64 {
            for i in r..r + width {
                let swap = (tile[i] >> width ^ tile[i + width]) & mask;
                tile[i] ^= swap << width;
                tile[i + width] ^= swap;
            }
            r += width * 2;
        }
        width /= 2;
        mask ^= mask << width;
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix[{}×{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(16) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(64) {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f)?;
        }
        if self.rows > 16 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Section IV.B example matrices.
    fn paper_r() -> BitMatrix {
        let mut r = BitMatrix::new(3, 3);
        r.set(0, 1, true); // S1 → S2
        r.set(0, 2, true); // S1 → S3
        r.set(1, 2, true); // S2 → S3
        r
    }

    #[test]
    fn equation_two_from_the_paper() {
        // a = [1 0 0] ⇒ f = a·R = [0 1 1].
        let f = paper_r().vector_product(&BitVec::from_indices(3, &[0]));
        assert_eq!(f.ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn product_with_empty_vector_is_zero() {
        let f = paper_r().vector_product(&BitVec::new(3));
        assert!(!f.any());
    }

    #[test]
    fn product_ors_multiple_rows() {
        let mut m = BitMatrix::new(2, 4);
        m.set(0, 0, true);
        m.set(1, 3, true);
        let y = m.vector_product(&BitVec::from_indices(2, &[0, 1]));
        assert_eq!(y.ones().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = paper_r();
        assert_eq!(m.transpose().transpose(), m);
        assert!(m.transpose().get(2, 1));
        assert!(!m.transpose().get(1, 2));
    }

    #[test]
    fn transpose_handles_non_square_tile_straddling_shapes() {
        // 70×130 exercises partial tiles on both axes.
        let mut m = BitMatrix::new(70, 130);
        let bits = [(0, 0), (0, 129), (63, 64), (64, 63), (69, 65), (1, 127)];
        for &(r, c) in &bits {
            m.set(r, c, true);
        }
        let t = m.transpose();
        assert_eq!(t.rows(), 130);
        assert_eq!(t.cols(), 70);
        assert_eq!(t.count_ones(), bits.len());
        for &(r, c) in &bits {
            assert!(t.get(c, r), "({r},{c}) must transpose to ({c},{r})");
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn vector_product_into_overwrites_dirty_scratch() {
        let m = paper_r();
        let mut out = BitVec::from_indices(3, &[0, 1, 2]);
        m.vector_product_into(&BitVec::from_indices(3, &[0]), &mut out);
        assert_eq!(out.ones().collect::<Vec<_>>(), vec![1, 2]);
        m.vector_product_into(&BitVec::new(3), &mut out);
        assert!(!out.any());
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn vector_product_into_checks_output_length() {
        let mut out = BitVec::new(4);
        paper_r().vector_product_into(&BitVec::new(3), &mut out);
    }

    #[test]
    fn set_row_replaces_contents() {
        let mut m = BitMatrix::new(2, 3);
        m.set_row(1, BitVec::from_indices(3, &[0, 2]));
        assert!(m.get(1, 0) && !m.get(1, 1) && m.get(1, 2));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn set_row_checks_width() {
        let mut m = BitMatrix::new(2, 3);
        m.set_row(0, BitVec::new(4));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_bounds_checked() {
        let m = BitMatrix::new(2, 3);
        let _ = m.row(2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// vector_product agrees with the naive double loop.
        #[test]
        fn product_matches_reference(
            rows in 1usize..40,
            cols in 1usize..90,
            seed in any::<u64>(),
        ) {
            let mut state = seed | 1;
            let mut next_bool = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 1 == 1
            };
            let mut m = BitMatrix::new(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if next_bool() {
                        m.set(r, c, true);
                    }
                }
            }
            let x: BitVec = (0..rows).map(|_| next_bool()).collect();
            let fast = m.vector_product(&x);
            for c in 0..cols {
                let expect = (0..rows).any(|r| x.get(r) && m.get(r, c));
                prop_assert_eq!(fast.get(c), expect, "col {}", c);
            }
            let mut reused = BitVec::from_indices(cols, &(0..cols).collect::<Vec<_>>());
            m.vector_product_into(&x, &mut reused);
            prop_assert_eq!(reused, fast);
        }

        /// The tiled word-level transpose agrees with the per-bit
        /// definition across tile-straddling shapes.
        #[test]
        fn transpose_matches_reference(
            rows in 1usize..150,
            cols in 1usize..150,
            seed in any::<u64>(),
        ) {
            let mut state = seed | 1;
            let mut next_bool = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 7 == 0
            };
            let mut m = BitMatrix::new(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if next_bool() {
                        m.set(r, c, true);
                    }
                }
            }
            let t = m.transpose();
            prop_assert_eq!(t.rows(), cols);
            prop_assert_eq!(t.cols(), rows);
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(t.get(c, r), m.get(r, c), "({}, {})", r, c);
                }
            }
        }
    }
}
