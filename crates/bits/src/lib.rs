//! Fixed-length bit vectors and bit matrices.
//!
//! The automata-processor model of the paper (Fig. 6) is built from three
//! bit-parallel primitives: the symbol/active/follow/accept **vectors**
//! (Eqs. 1–4), the STE configuration **matrix** `V` and the routing
//! **matrix** `R`. This crate provides the dense `u64`-packed
//! representations used by `memcim-crossbar`, `memcim-ap` and
//! `memcim-mvp`:
//!
//! * [`BitVec`] — a fixed-length bit vector with in-place boolean algebra,
//!   population count and set-bit iteration;
//! * [`BitMatrix`] — a row-major matrix of bits with the boolean
//!   matrix–vector product that implements the paper's Equations (1) and
//!   (2) (`OR` as addition, `AND` as multiplication).
//!
//! # Examples
//!
//! The paper's Section IV.B worked example, literally:
//!
//! ```
//! use memcim_bits::{BitMatrix, BitVec};
//!
//! // R: S2 reachable from S1; S3 reachable from S1 and S2.
//! let mut r = BitMatrix::new(3, 3);
//! r.set(0, 1, true);
//! r.set(0, 2, true);
//! r.set(1, 2, true);
//!
//! let a = BitVec::from_indices(3, &[0]);     // only S1 active
//! let f = r.vector_product(&a);              // Equation (2)
//! assert_eq!(f.ones().collect::<Vec<_>>(), vec![1, 2]);
//!
//! let s = BitVec::from_indices(3, &[0, 2]);  // symbol `b`: s = [1 0 1]
//! let next = f.and(&s);                      // Equation (3)
//! assert_eq!(next.ones().collect::<Vec<_>>(), vec![2]); // S3
//! ```

#![deny(missing_docs)]

mod matrix;
mod vector;

pub use matrix::BitMatrix;
pub use vector::{BitVec, Ones};
