//! Multi-stream AP execution: N independent input streams through one
//! compiled automaton.
//!
//! The Micron AP and the Cache Automaton both amortize one compiled
//! automaton across many concurrent inputs — the configuration cost is
//! paid once and the symbol pipeline is kept saturated. The
//! [`MultiStreamProcessor`] models that: a single `ApMatrices`/
//! [`Routing`] pair (and one follow scratch) shared by every stream,
//! with per-stream *lanes* holding only the stream state — active and
//! follow vectors, position, report events and accumulated energy.
//!
//! Per lane, the symbol step is **bit-for-bit identical** to
//! [`AutomataProcessor::feed`] — same accept events, same acceptance,
//! same `f64` energy accumulation order — property-tested in this
//! module. What the batch interface buys is throughput: the whole batch
//! runs inside one monomorphized kernel whose hot scalars stay in
//! registers and whose shared tables stay cache-resident across lanes,
//! instead of re-entering the public streaming API per stream and per
//! chunk.

use crate::engine::{ApReport, ApRun};
use crate::routing::FollowScratch;
use crate::{ApBackend, ApCosts, ApError, AutomataProcessor, Routing, RoutingKind};
use memcim_automata::{ApMatrices, HomogeneousAutomaton};
use memcim_bits::BitVec;
use memcim_units::Joules;

/// One stream's private state.
#[derive(Debug, Clone)]
struct Lane {
    active: BitVec,
    follow: BitVec,
    pos: u64,
    accept_events: Vec<(usize, usize)>,
    energy: f64,
    last_accepting: bool,
}

impl Lane {
    fn new(n: usize) -> Self {
        Self {
            active: BitVec::new(n),
            follow: BitVec::new(n),
            pos: 0,
            accept_events: Vec::new(),
            energy: 0.0,
            last_accepting: false,
        }
    }

    fn reset(&mut self) {
        self.active.clear();
        self.pos = 0;
        self.accept_events.clear();
        self.energy = 0.0;
        self.last_accepting = false;
    }
}

/// N independent input streams driven through one compiled automaton.
///
/// Obtain one from [`compile`](Self::compile) or instantiate it from an
/// already-compiled single-stream template with
/// [`AutomataProcessor::multi_stream`]. Streams are addressed by lane
/// index `0..streams()`; each lane is an independent stream with the
/// exact semantics of a dedicated [`AutomataProcessor`].
///
/// # Examples
///
/// ```
/// use memcim_ap::{ApBackend, MultiStreamProcessor, RoutingKind};
/// use memcim_automata::{HomogeneousAutomaton, Regex, StartKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let homog = HomogeneousAutomaton::from_nfa(&Regex::parse("ab")?.compile())
///     .with_start_kind(StartKind::AllInput);
/// let mut multi =
///     MultiStreamProcessor::compile(&homog, ApBackend::rram(), RoutingKind::Dense, 2)?;
/// let reports = multi.feed_many(&[&b"xxab"[..], b"abab"]);
/// assert_eq!(reports[0].cycles, 4);
/// let runs = multi.finish_all();
/// assert_eq!(runs[0].accept_events, vec![(3, runs[0].accept_events[0].1)]);
/// assert_eq!(runs[1].accept_events.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiStreamProcessor {
    matrices: ApMatrices,
    routing: Routing,
    backend: ApBackend,
    costs: ApCosts,
    ste_ones: Vec<u32>,
    revivable: bool,
    /// One scratch serves every lane: `follow_into` leaves no state
    /// behind in it, so lanes can share it without cross-talk.
    scratch: FollowScratch,
    lanes: Vec<Lane>,
    /// Monotonic lifetime totals across all lanes — never reset by
    /// per-lane [`finish`](Self::finish), so a billing layer can take
    /// watermark deltas without tracking individual stream lifecycles.
    total_cycles: u64,
    total_energy: f64,
}

/// The shared per-symbol kernel: one lane, one chunk, everything hot in
/// locals. Semantically identical to [`AutomataProcessor::feed`].
#[allow(clippy::too_many_arguments)]
fn feed_lane(
    lane: &mut Lane,
    chunk: &[u8],
    matrices: &ApMatrices,
    routing: &Routing,
    scratch: &mut FollowScratch,
    ste_ones: &[u32],
    revivable: bool,
    ste_energy: f64,
    routing_energy: f64,
) {
    let v = &matrices.v;
    let ai_words = matrices.all_input.as_words();
    let acc_words = matrices.accept.as_words();
    let mut energy = lane.energy;
    let mut pos = lane.pos;
    let mut last_accepting = lane.last_accepting;
    let mut active_any = lane.active.any();
    for (i, &byte) in chunk.iter().enumerate() {
        // Dead stream: bulk-charge STE discharge and stop cycling (see
        // `AutomataProcessor::feed`).
        if !active_any && !revivable && pos > 0 {
            for &b in &chunk[i..] {
                energy += ste_ones[b as usize] as f64 * ste_energy;
            }
            pos += (chunk.len() - i) as u64;
            last_accepting = false;
            break;
        }

        energy += ste_ones[byte as usize] as f64 * ste_energy;
        if active_any {
            routing.follow_into(&lane.active, &mut lane.follow, scratch);
            energy += lane.follow.count_ones() as f64 * routing_energy;
        } else {
            lane.follow.clear();
        }
        if pos == 0 {
            lane.follow.or_assign(&matrices.start_of_input);
        }

        last_accepting = false;
        let s_words = v.row(byte as usize).as_words();
        let mut any = 0u64;
        let f_words = lane.follow.as_words_mut();
        for wi in 0..f_words.len() {
            let w = (f_words[wi] | ai_words[wi]) & s_words[wi];
            f_words[wi] = w;
            any |= w;
            let mut live = w & acc_words[wi];
            while live != 0 {
                let state = wi * 64 + live.trailing_zeros() as usize;
                lane.accept_events.push((pos as usize, state));
                last_accepting = true;
                live &= live - 1;
            }
        }
        std::mem::swap(&mut lane.active, &mut lane.follow);
        active_any = any != 0;
        pos += 1;
    }
    lane.energy = energy;
    lane.pos = pos;
    lane.last_accepting = last_accepting;
}

impl MultiStreamProcessor {
    /// Maps an automaton onto a backend with `streams` independent
    /// stream lanes.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`AutomataProcessor::compile`].
    pub fn compile(
        automaton: &HomogeneousAutomaton,
        backend: ApBackend,
        routing: RoutingKind,
        streams: usize,
    ) -> Result<Self, ApError> {
        Ok(AutomataProcessor::compile(automaton, backend, routing)?.multi_stream(streams))
    }

    pub(crate) fn from_processor(ap: &AutomataProcessor, streams: usize) -> Self {
        let n = ap.matrices.state_count();
        Self {
            matrices: ap.matrices.clone(),
            routing: ap.routing.clone(),
            backend: ap.backend.clone(),
            costs: ap.costs,
            ste_ones: ap.ste_ones.clone(),
            revivable: ap.revivable,
            scratch: ap.routing.scratch(),
            lanes: (0..streams.max(1)).map(|_| Lane::new(n)).collect(),
            total_cycles: 0,
            total_energy: 0.0,
        }
    }

    /// Number of stream lanes.
    pub fn streams(&self) -> usize {
        self.lanes.len()
    }

    /// Number of STEs occupied (shared by every lane).
    pub fn state_count(&self) -> usize {
        self.matrices.state_count()
    }

    /// The backend in use.
    pub fn backend(&self) -> &ApBackend {
        &self.backend
    }

    /// The derived per-cycle cost model (shared by every lane).
    pub fn costs(&self) -> &ApCosts {
        &self.costs
    }

    /// Routing fabric resource usage — one fabric, however many lanes.
    pub fn routing_resources(&self) -> crate::RoutingResources {
        self.routing.resources()
    }

    /// One-time cost of programming the STE array and routing switches.
    /// Paid once for the whole processor: this is the multi-stream
    /// amortization of configuration.
    pub fn configuration_cost(&self) -> ApReport {
        let ste_bits = self.matrices.v.count_ones();
        let routing_bits = self.matrices.r.count_ones();
        let bits = (ste_bits + routing_bits) as f64;
        let rows = 256 + self.routing.resources().config_bits / self.state_count().max(1);
        ApReport {
            cycles: rows as u64,
            latency: self.costs.config_latency_per_row * rows as f64,
            energy: Joules::new(self.costs.config_energy_per_bit.as_joules() * bits),
        }
    }

    /// Grows the processor to at least `streams` lanes (new lanes start
    /// as fresh streams). Never shrinks — lane indices stay stable.
    pub fn ensure_streams(&mut self, streams: usize) {
        let n = self.matrices.state_count();
        while self.lanes.len() < streams {
            self.lanes.push(Lane::new(n));
        }
    }

    /// Streams one chunk through lane `stream`, continuing from that
    /// stream's current position. Returns the lane's cumulative cost
    /// report, exactly as [`AutomataProcessor::feed`] would.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::UnknownStream`] for an out-of-range lane.
    pub fn feed(&mut self, stream: usize, chunk: &[u8]) -> Result<ApReport, ApError> {
        let streams = self.lanes.len();
        let lane = self.lanes.get_mut(stream).ok_or(ApError::UnknownStream { stream, streams })?;
        let (e0, p0) = (lane.energy, lane.pos);
        feed_lane(
            lane,
            chunk,
            &self.matrices,
            &self.routing,
            &mut self.scratch,
            &self.ste_ones,
            self.revivable,
            self.costs.ste_energy_per_column.as_joules(),
            self.costs.routing_energy_per_column.as_joules(),
        );
        self.total_cycles += lane.pos - p0;
        self.total_energy += lane.energy - e0;
        Ok(Self::lane_report(&self.costs, &self.lanes[stream]))
    }

    /// Feeds `chunks[i]` to lane `i` — the batch interface. Lanes are
    /// grown on demand to `chunks.len()`, and the whole batch runs
    /// through one shared kernel. Returns each lane's cumulative
    /// report, in lane order.
    pub fn feed_many<C: AsRef<[u8]>>(&mut self, chunks: &[C]) -> Vec<ApReport> {
        self.ensure_streams(chunks.len());
        let ste_energy = self.costs.ste_energy_per_column.as_joules();
        let routing_energy = self.costs.routing_energy_per_column.as_joules();
        let mut reports = Vec::with_capacity(chunks.len());
        for (lane, chunk) in self.lanes.iter_mut().zip(chunks) {
            let (e0, p0) = (lane.energy, lane.pos);
            feed_lane(
                lane,
                chunk.as_ref(),
                &self.matrices,
                &self.routing,
                &mut self.scratch,
                &self.ste_ones,
                self.revivable,
                ste_energy,
                routing_energy,
            );
            self.total_cycles += lane.pos - p0;
            self.total_energy += lane.energy - e0;
            reports.push(Self::lane_report(&self.costs, lane));
        }
        reports
    }

    /// The cumulative cost report of one lane's stream so far.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::UnknownStream`] for an out-of-range lane.
    pub fn report(&self, stream: usize) -> Result<ApReport, ApError> {
        let lane = self
            .lanes
            .get(stream)
            .ok_or(ApError::UnknownStream { stream, streams: self.lanes.len() })?;
        Ok(Self::lane_report(&self.costs, lane))
    }

    /// Ends lane `stream`'s current stream: returns its cumulative
    /// [`ApRun`] and resets the lane for its next stream. Other lanes
    /// are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::UnknownStream`] for an out-of-range lane.
    pub fn finish(&mut self, stream: usize) -> Result<ApRun, ApError> {
        let streams = self.lanes.len();
        let costs = &self.costs;
        let lane = self.lanes.get_mut(stream).ok_or(ApError::UnknownStream { stream, streams })?;
        let run = ApRun {
            accepted: if lane.pos == 0 { self.matrices.accepts_empty } else { lane.last_accepting },
            accept_events: std::mem::take(&mut lane.accept_events),
            symbols: lane.pos,
            report: Self::lane_report(costs, lane),
        };
        lane.reset();
        Ok(run)
    }

    /// Ends every lane's stream, returning the runs in lane order.
    pub fn finish_all(&mut self) -> Vec<ApRun> {
        (0..self.lanes.len()).map(|l| self.finish(l).expect("lane index in range")).collect()
    }

    /// Monotonic lifetime totals over all lanes: cycles executed and
    /// energy dissipated since construction, never reset by
    /// [`finish`](Self::finish). Billing layers take watermark deltas
    /// of this instead of chasing per-stream cumulative reports.
    pub fn billing_report(&self) -> ApReport {
        ApReport {
            cycles: self.total_cycles,
            latency: self.costs.cycle_latency * self.total_cycles as f64,
            energy: Joules::new(self.total_energy),
        }
    }

    fn lane_report(costs: &ApCosts, lane: &Lane) -> ApReport {
        ApReport {
            cycles: lane.pos,
            latency: costs.cycle_latency * lane.pos as f64,
            energy: Joules::new(lane.energy),
        }
    }
}

impl AutomataProcessor {
    /// Instantiates a multi-stream processor from this compiled
    /// automaton: the matrices, routing fabric and cost model are
    /// shared by `streams` fresh lanes. The template keeps its own
    /// streaming state; the new processor starts clean.
    pub fn multi_stream(&self, streams: usize) -> MultiStreamProcessor {
        MultiStreamProcessor::from_processor(self, streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_automata::{Regex, StartKind};

    fn homog(pattern: &str) -> HomogeneousAutomaton {
        HomogeneousAutomaton::from_nfa(&Regex::parse(pattern).expect("parses").compile())
    }

    #[test]
    fn lanes_are_independent_streams() {
        let h = homog("ab").with_start_kind(StartKind::AllInput);
        let mut multi = MultiStreamProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense, 3)
            .expect("maps");
        let mut single =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("maps");
        let inputs: [&[u8]; 3] = [b"xxabxx", b"ababab", b"nomatch"];
        let reports = multi.feed_many(&inputs);
        for (l, input) in inputs.iter().enumerate() {
            single.reset();
            let expected = single.feed(input);
            assert_eq!(reports[l], expected, "lane {l} cumulative report");
            assert_eq!(multi.finish(l).expect("lane exists"), single.finish(), "lane {l} run");
        }
    }

    #[test]
    fn chunked_lane_feeds_interleave() {
        let h = homog("abc").with_start_kind(StartKind::AllInput);
        let mut multi = MultiStreamProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense, 2)
            .expect("maps");
        let mut single =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("maps");
        // Interleaved chunk feeds: lane state carries across batches.
        multi.feed_many(&[&b"ab"[..], b"a"]);
        multi.feed_many(&[&b"c"[..], b"bc"]);
        let runs = multi.finish_all();
        assert_eq!(runs[0], single.run(b"abc"));
        assert_eq!(runs[1], single.run(b"abc"));
    }

    #[test]
    fn unknown_stream_is_a_typed_error() {
        let h = homog("a");
        let mut multi = MultiStreamProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense, 2)
            .expect("maps");
        assert!(matches!(
            multi.feed(5, b"a"),
            Err(ApError::UnknownStream { stream: 5, streams: 2 })
        ));
        assert!(matches!(multi.finish(2), Err(ApError::UnknownStream { .. })));
        assert!(multi.report(1).is_ok());
    }

    #[test]
    fn ensure_streams_grows_and_feed_many_autovivifies() {
        let h = homog("a");
        let mut multi = MultiStreamProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense, 1)
            .expect("maps");
        assert_eq!(multi.streams(), 1);
        let reports = multi.feed_many(&[&b"a"[..], b"aa", b"aaa"]);
        assert_eq!(multi.streams(), 3);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[2].cycles, 3);
        multi.ensure_streams(2);
        assert_eq!(multi.streams(), 3, "never shrinks");
    }

    #[test]
    fn billing_totals_are_monotonic_across_finish() {
        let h = homog("ab").with_start_kind(StartKind::AllInput);
        let mut multi = MultiStreamProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense, 2)
            .expect("maps");
        multi.feed_many(&[&b"abab"[..], b"xxxx"]);
        let before = multi.billing_report();
        assert_eq!(before.cycles, 8);
        multi.finish_all();
        let after = multi.billing_report();
        assert_eq!(after, before, "finish does not reset billing totals");
        multi.feed(0, b"ab").expect("lane 0");
        assert_eq!(multi.billing_report().cycles, 10);
        assert!(multi.billing_report().energy.as_joules() > after.energy.as_joules());
    }

    #[test]
    fn configuration_cost_matches_single_stream_template() {
        let h = homog("(a|b)+c");
        let ap =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("maps");
        let multi = ap.multi_stream(8);
        assert_eq!(multi.configuration_cost(), ap.configuration_cost());
        assert_eq!(multi.state_count(), ap.state_count());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use memcim_automata::Regex;
    use proptest::prelude::*;

    fn pattern_strategy() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("[ab]".to_string()),
            Just(".".to_string()),
        ];
        leaf.prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
                inner.prop_map(|a| format!("({a})*")),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Multi-stream execution is bit-identical to N sequential
        /// single-stream runs: accept events, acceptance, per-stream
        /// cumulative reports and exact `f64` energy sums — across both
        /// fabrics, both start kinds, and arbitrary per-lane chunkings
        /// interleaved between lanes.
        #[test]
        fn multi_stream_equals_sequential_single_streams(
            pattern in pattern_strategy(),
            inputs in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'c', 0..16),
                1..6,
            ),
            cuts in proptest::collection::vec(0usize..16, 0..4),
            start_anchored in any::<bool>(),
        ) {
            let nfa = Regex::parse(&pattern).expect("generated").compile();
            let base = HomogeneousAutomaton::from_nfa(&nfa);
            if base.state_count() == 0 {
                return Ok(());
            }
            let start = if start_anchored {
                memcim_automata::StartKind::StartOfInput
            } else {
                memcim_automata::StartKind::AllInput
            };
            let h = base.with_start_kind(start);
            for kind in [
                RoutingKind::Dense,
                RoutingKind::Hierarchical { block: 8, max_global: 1 << 16 },
                RoutingKind::Hierarchical { block: 64, max_global: 1 << 16 },
            ] {
                let mut single = AutomataProcessor::compile(&h, ApBackend::rram(), kind)
                    .expect("maps");
                let mut multi = MultiStreamProcessor::compile(
                    &h, ApBackend::rram(), kind, inputs.len(),
                ).expect("maps");

                // Derive a per-lane chunking from the shared cut points,
                // offset per lane so lanes split differently.
                let rounds = cuts.len() + 1;
                let chunkings: Vec<Vec<&[u8]>> = inputs
                    .iter()
                    .enumerate()
                    .map(|(l, input)| {
                        let mut b: Vec<usize> =
                            cuts.iter().map(|&c| (c + l) % (input.len() + 1)).collect();
                        b.push(input.len());
                        b.sort_unstable();
                        let mut chunks: Vec<&[u8]> = Vec::new();
                        let mut prev = 0usize;
                        for &c in &b {
                            chunks.push(&input[prev..c]);
                            prev = c;
                        }
                        chunks.resize(rounds, &[]);
                        chunks
                    })
                    .collect();

                // Genuinely interleaved: round r sends every lane its
                // r-th chunk before any lane sees round r+1.
                for r in 0..rounds {
                    for (l, chunks) in chunkings.iter().enumerate() {
                        multi.feed(l, chunks[r]).expect("lane exists");
                    }
                }

                // Single-stream reference per lane, fed the same
                // chunking on a dedicated processor.
                let mut expected_energy_sum = 0.0f64;
                for (l, chunks) in chunkings.iter().enumerate() {
                    single.reset();
                    for chunk in chunks {
                        single.feed(chunk);
                    }
                    let expected = single.finish();
                    expected_energy_sum += expected.report.energy.as_joules();
                    let report = multi.report(l).expect("lane exists");
                    prop_assert_eq!(&report, &expected.report,
                        "pattern {} lane {} kind {:?} start {:?} cumulative report",
                        pattern.clone(), l, kind, start);
                    let run = multi.finish(l).expect("lane exists");
                    prop_assert_eq!(&run, &expected,
                        "pattern {} lane {} kind {:?} start {:?}",
                        pattern.clone(), l, kind, start);
                }
                // Lifetime energy equals the exact sum of lane deltas.
                let billing = multi.billing_report();
                prop_assert!(
                    (billing.energy.as_joules() - expected_energy_sum).abs()
                        <= expected_energy_sum.abs() * 1e-12 + f64::MIN_POSITIVE,
                    "billing energy {} vs sum {}",
                    billing.energy.as_joules(), expected_energy_sum,
                );
            }
        }

        /// `feed_many` batches equal the same feeds issued lane by lane.
        #[test]
        fn feed_many_equals_per_lane_feeds(
            pattern in pattern_strategy(),
            inputs in proptest::collection::vec(
                proptest::collection::vec(b'a'..=b'c', 0..12),
                1..5,
            ),
        ) {
            let nfa = Regex::parse(&pattern).expect("generated").compile();
            let base = HomogeneousAutomaton::from_nfa(&nfa)
                .with_start_kind(memcim_automata::StartKind::AllInput);
            if base.state_count() == 0 {
                return Ok(());
            }
            let kind = RoutingKind::Hierarchical { block: 64, max_global: 1 << 16 };
            let mut batched = MultiStreamProcessor::compile(
                &base, ApBackend::rram(), kind, inputs.len(),
            ).expect("maps");
            let mut lane_by_lane = batched.clone();
            let batch_reports = batched.feed_many(&inputs);
            for (l, input) in inputs.iter().enumerate() {
                let report = lane_by_lane.feed(l, input).expect("lane exists");
                prop_assert_eq!(&batch_reports[l], &report);
            }
            prop_assert_eq!(batched.finish_all(), lane_by_lane.finish_all());
            prop_assert_eq!(batched.billing_report(), lane_by_lane.billing_report());
        }
    }
}
