//! The cycle engine: Equations (1)–(4) with per-cycle cost accounting.

use crate::routing::FollowScratch;
use crate::{ApBackend, ApCosts, ApError, Routing, RoutingKind};
use memcim_automata::{ApMatrices, HomogeneousAutomaton};
use memcim_bits::BitVec;
use memcim_units::{Joules, Seconds};

/// A report event or run summary cost line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApReport {
    /// Symbol cycles executed.
    pub cycles: u64,
    /// Total pipeline latency.
    pub latency: Seconds,
    /// Total dynamic energy (STE + routing arrays, discharge-proportional).
    pub energy: Joules,
}

impl ApReport {
    /// Average energy per input symbol.
    pub fn energy_per_symbol(&self) -> Joules {
        if self.cycles == 0 {
            Joules::ZERO
        } else {
            Joules::new(self.energy.as_joules() / self.cycles as f64)
        }
    }
}

/// The outcome of one input run.
#[derive(Debug, Clone, PartialEq)]
pub struct ApRun {
    /// Anchored acceptance after the final symbol.
    pub accepted: bool,
    /// `(position, state)` report events — every accept-state activation.
    pub accept_events: Vec<(usize, usize)>,
    /// Input length processed.
    pub symbols: u64,
    /// Cost summary.
    pub report: ApReport,
}

/// A homogeneous automaton mapped onto AP hardware.
///
/// Construction programs the STE and routing arrays (a one-time
/// configuration cost, reported by
/// [`configuration_cost`](Self::configuration_cost)); each
/// [`run`](Self::run) then streams input symbols through the three-step
/// pipeline of the paper's Fig. 6, accumulating latency and energy from
/// the backend's calibrated cost model.
///
/// The symbol loop is allocation-free in steady state: the processor
/// owns double-buffered active/follow vectors and the routing scratch,
/// all reused across symbols and across [`run`](Self::run) calls.
/// Long-lived connections can stream incrementally through
/// [`reset`](Self::reset) / [`feed`](Self::feed) /
/// [`finish`](Self::finish) — feeding an input in chunks is equivalent
/// to one [`run`](Self::run) over the concatenation.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct AutomataProcessor {
    pub(crate) matrices: ApMatrices,
    pub(crate) routing: Routing,
    pub(crate) backend: ApBackend,
    pub(crate) costs: ApCosts,
    /// `ste_ones[b]` = number of STE columns that discharge on symbol
    /// `b` — the per-symbol STE energy is a table lookup instead of a
    /// popcount over the row.
    pub(crate) ste_ones: Vec<u32>,
    /// Whether an all-zero active vector can come back to life after
    /// position 0 (i.e. the automaton has `all_input` states). When
    /// false, a dead stream is charged STE discharge per symbol but
    /// skips routing, follow and accept work entirely.
    pub(crate) revivable: bool,
    /// Current active vector `a` (stream state).
    active: BitVec,
    /// Double buffer for the follow vector `f`; swapped with `active`
    /// each cycle instead of reallocated.
    follow: BitVec,
    scratch: FollowScratch,
    /// Symbols consumed since the last [`reset`](Self::reset).
    pos: u64,
    accept_events: Vec<(usize, usize)>,
    energy: f64,
    last_accepting: bool,
}

impl AutomataProcessor {
    /// Maps an automaton onto a backend with the chosen routing fabric.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::EmptyAutomaton`] for a stateless automaton,
    /// [`ApError::CapacityExceeded`] when the automaton exceeds the
    /// device's STE capacity, and [`ApError::RoutingInfeasible`] when
    /// hierarchical routing runs out of global wires.
    pub fn compile(
        automaton: &HomogeneousAutomaton,
        backend: ApBackend,
        routing: RoutingKind,
    ) -> Result<Self, ApError> {
        let n = automaton.state_count();
        if n == 0 {
            return Err(ApError::EmptyAutomaton);
        }
        if n > backend.capacity {
            return Err(ApError::CapacityExceeded { states: n, capacity: backend.capacity });
        }
        let matrices = automaton.to_matrices();
        let routing = Routing::compile(&matrices.r, routing)?;
        let costs = backend.costs(n, routing.resources().config_bits);
        let scratch = routing.scratch();
        let ste_ones = (0..256).map(|b| matrices.v.row(b).count_ones() as u32).collect();
        let revivable = matrices.all_input.any();
        Ok(Self {
            matrices,
            routing,
            backend,
            costs,
            ste_ones,
            revivable,
            active: BitVec::new(n),
            follow: BitVec::new(n),
            scratch,
            pos: 0,
            accept_events: Vec::new(),
            energy: 0.0,
            last_accepting: false,
        })
    }

    /// The backend in use.
    pub fn backend(&self) -> &ApBackend {
        &self.backend
    }

    /// Number of STEs occupied.
    pub fn state_count(&self) -> usize {
        self.matrices.state_count()
    }

    /// The derived per-cycle cost model.
    pub fn costs(&self) -> &ApCosts {
        &self.costs
    }

    /// Routing fabric resource usage.
    pub fn routing_resources(&self) -> crate::RoutingResources {
        self.routing.resources()
    }

    /// One-time cost of programming the STE array and routing switches.
    pub fn configuration_cost(&self) -> ApReport {
        let ste_bits = self.matrices.v.count_ones();
        let routing_bits = self.matrices.r.count_ones();
        let bits = (ste_bits + routing_bits) as f64;
        // Rows are programmed in parallel across columns: 256 STE rows
        // plus the routing rows.
        let rows = 256 + self.routing.resources().config_bits / self.state_count().max(1);
        ApReport {
            cycles: rows as u64,
            latency: self.costs.config_latency_per_row * rows as f64,
            energy: Joules::new(self.costs.config_energy_per_bit.as_joules() * bits),
        }
    }

    /// Streams an input through the processor.
    ///
    /// Equivalent to [`reset`](Self::reset), one [`feed`](Self::feed)
    /// of the whole input, then [`finish`](Self::finish).
    pub fn run(&mut self, input: &[u8]) -> ApRun {
        self.reset();
        self.feed(input);
        self.finish()
    }

    /// Clears the streaming state: active vector, position, accumulated
    /// report events and energy. The scratch buffers keep their storage.
    pub fn reset(&mut self) {
        self.active.clear();
        self.pos = 0;
        self.accept_events.clear();
        self.energy = 0.0;
        self.last_accepting = false;
    }

    /// Streams one chunk of input through the pipeline, continuing from
    /// the current stream position — the incremental interface for
    /// long-lived connections. Returns the cumulative cost report for
    /// the stream so far; report-event positions are absolute (relative
    /// to the last [`reset`](Self::reset)).
    ///
    /// Feeding a split input chunk by chunk and then calling
    /// [`finish`](Self::finish) yields exactly the [`ApRun`] of a
    /// one-shot [`run`](Self::run) over the concatenation.
    ///
    /// A *dead* stream — empty active vector past position 0 on an
    /// automaton with no `all_input` revival states — degrades to a
    /// per-symbol energy table lookup rather than a full pipeline
    /// cycle, with a report identical to the full loop's.
    ///
    /// # Examples
    ///
    /// ```
    /// use memcim_ap::{ApBackend, AutomataProcessor, RoutingKind};
    /// use memcim_automata::{HomogeneousAutomaton, Regex, StartKind};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let homog = HomogeneousAutomaton::from_nfa(&Regex::parse("ab")?.compile())
    ///     .with_start_kind(StartKind::AllInput);
    /// let mut ap = AutomataProcessor::compile(&homog, ApBackend::rram(), RoutingKind::Dense)?;
    /// let expected = ap.run(b"xabxab");
    ///
    /// ap.reset();
    /// ap.feed(b"xa"); // a chunk may end mid-match…
    /// let report = ap.feed(b"bxab"); // …active state carries across the boundary
    /// assert_eq!(report.cycles, 6, "reports are cumulative over the stream");
    /// assert_eq!(ap.finish(), expected, "chunked ≡ one-shot");
    /// # Ok(())
    /// # }
    /// ```
    pub fn feed(&mut self, chunk: &[u8]) -> ApReport {
        let ste_energy = self.costs.ste_energy_per_column.as_joules();
        let routing_energy = self.costs.routing_energy_per_column.as_joules();
        // Hot scalars live in locals for the duration of the chunk —
        // accumulating through `self` would force a reload/store per
        // symbol around every `&mut self`-field call.
        let ste_ones = &self.ste_ones;
        let v = &self.matrices.v;
        let ai_words = self.matrices.all_input.as_words();
        let acc_words = self.matrices.accept.as_words();
        let revivable = self.revivable;
        let mut energy = self.energy;
        let mut pos = self.pos;
        let mut last_accepting = self.last_accepting;
        // Tracked across cycles so the steady state never re-scans the
        // active vector: the fused pass below recomputes it for free.
        let mut active_any = self.active.any();
        for (i, &byte) in chunk.iter().enumerate() {
            // Dead stream: past position 0 with no active states and no
            // `all_input` revival, the active vector stays empty for the
            // rest of the stream. The STE array still discharges on
            // every symbol (the energy model is unchanged — a table
            // lookup per byte), but routing, follow and the accept scan
            // are skipped wholesale.
            if !active_any && !revivable && pos > 0 {
                for &b in &chunk[i..] {
                    energy += ste_ones[b as usize] as f64 * ste_energy;
                }
                pos += (chunk.len() - i) as u64;
                last_accepting = false;
                break;
            }

            // Step 1 — input symbol processing (Equation 1): one STE-array
            // evaluate. Discharge-proportional energy: columns whose bit
            // line falls are the ones that match the symbol, precounted
            // per symbol at compile time.
            energy += ste_ones[byte as usize] as f64 * ste_energy;

            // Step 2 — active state processing (Equations 2 and 3), into
            // the reused follow buffer. An empty active vector routes to
            // an empty follow vector with zero discharge, so the fabric
            // walk is skipped outright.
            if active_any {
                self.routing.follow_into(&self.active, &mut self.follow, &mut self.scratch);
                energy += self.follow.count_ones() as f64 * routing_energy;
            } else {
                self.follow.clear();
            }
            if pos == 0 {
                self.follow.or_assign(&self.matrices.start_of_input);
            }

            // Steps 2b and 3, fused into a single word pass:
            // `f = (f | all_input) & s` (Equation 3), its emptiness for
            // the next cycle's skip decisions, and output identification
            // (Equation 4) — a word-AND with the accept mask, iterating
            // ones only in live words.
            last_accepting = false;
            let s_words = v.row(byte as usize).as_words();
            let mut any = 0u64;
            let f_words = self.follow.as_words_mut();
            for wi in 0..f_words.len() {
                let w = (f_words[wi] | ai_words[wi]) & s_words[wi];
                f_words[wi] = w;
                any |= w;
                let mut live = w & acc_words[wi];
                while live != 0 {
                    let state = wi * 64 + live.trailing_zeros() as usize;
                    self.accept_events.push((pos as usize, state));
                    last_accepting = true;
                    live &= live - 1;
                }
            }
            std::mem::swap(&mut self.active, &mut self.follow);
            active_any = any != 0;
            pos += 1;
        }
        self.energy = energy;
        self.pos = pos;
        self.last_accepting = last_accepting;
        self.stream_report()
    }

    /// The cumulative cost report for the stream so far.
    fn stream_report(&self) -> ApReport {
        ApReport {
            cycles: self.pos,
            latency: self.costs.cycle_latency * self.pos as f64,
            energy: Joules::new(self.energy),
        }
    }

    /// Ends the stream: returns the cumulative [`ApRun`] since the last
    /// [`reset`](Self::reset) and resets the processor for the next
    /// stream.
    pub fn finish(&mut self) -> ApRun {
        let run = ApRun {
            accepted: if self.pos == 0 { self.matrices.accepts_empty } else { self.last_accepting },
            accept_events: std::mem::take(&mut self.accept_events),
            symbols: self.pos,
            report: self.stream_report(),
        };
        self.reset();
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcim_automata::{Regex, StartKind};

    fn homog(pattern: &str) -> HomogeneousAutomaton {
        HomogeneousAutomaton::from_nfa(&Regex::parse(pattern).expect("parses").compile())
    }

    #[test]
    fn engine_agrees_with_reference_interpreter() {
        let nfa = Regex::parse("(ab|ba)+c?").expect("parses").compile();
        let h = HomogeneousAutomaton::from_nfa(&nfa);
        let mut ap =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("maps");
        for input in [&b"ab"[..], b"abba", b"abbac", b"ba", b"", b"abc", b"cab"] {
            assert_eq!(ap.run(input).accepted, nfa.accepts(input), "input {input:?}");
        }
    }

    #[test]
    fn report_events_match_scanning_semantics() {
        let h = homog("ab").with_start_kind(StartKind::AllInput);
        let mut ap =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("maps");
        let run = ap.run(b"xabxab");
        let positions: Vec<usize> = run.accept_events.iter().map(|&(p, _)| p).collect();
        assert_eq!(positions, vec![2, 5]);
    }

    #[test]
    fn feeding_chunks_matches_one_shot_run() {
        let h = homog("ab").with_start_kind(StartKind::AllInput);
        let mut ap =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("maps");
        let expected = ap.run(b"xabxab");
        ap.reset();
        let mid = ap.feed(b"xa");
        assert_eq!(mid.cycles, 2);
        ap.feed(b"");
        let cumulative = ap.feed(b"bxab");
        assert_eq!(cumulative.cycles, 6);
        assert_eq!(cumulative, expected.report, "cumulative report equals one-shot");
        let streamed = ap.finish();
        assert_eq!(streamed, expected);
        // finish() resets: an immediately finished empty stream is the
        // empty-input run.
        assert_eq!(ap.finish(), ap.run(b""));
    }

    #[test]
    fn dead_stream_early_out_matches_full_pipeline() {
        // Anchored pattern: no `all_input` states, so once the active
        // vector empties past position 0 the stream is dead for good
        // and the bulk early-out engages.
        let h = homog("abc");
        for kind in
            [RoutingKind::Dense, RoutingKind::Hierarchical { block: 4, max_global: 1 << 16 }]
        {
            let mut ap = AutomataProcessor::compile(&h, ApBackend::rram(), kind).expect("maps");
            // Accepts at position 2, dead from position 3 onward.
            let input = b"abcxyzabcabc";
            let expected = ap.run(input);
            assert!(!expected.accepted, "death is permanent without all_input");
            let positions: Vec<usize> = expected.accept_events.iter().map(|&(p, _)| p).collect();
            assert_eq!(positions, vec![2], "the pre-death event survives");

            // Chunked across the death boundary, empty chunks included.
            ap.reset();
            ap.feed(b"abcx");
            ap.feed(&[]);
            let mid = ap.feed(b"yzabc");
            let idle = ap.feed(&[]);
            assert_eq!(idle, mid, "feed(&[]) is a no-op on a dead stream");
            let cumulative = ap.feed(b"abc");
            assert!(
                cumulative.energy.as_joules() > mid.energy.as_joules(),
                "dead symbols still pay STE discharge"
            );
            assert_eq!(ap.finish(), expected, "dead-stream-then-finish ≡ one-shot");

            // Symbol-at-a-time feeding (the dead check runs per call).
            ap.reset();
            for &b in input.iter() {
                ap.feed(std::slice::from_ref(&b));
            }
            assert_eq!(ap.finish(), expected, "per-symbol ≡ one-shot");
        }
    }

    #[test]
    fn costs_accumulate_per_symbol() {
        let h = homog("abc+");
        let mut ap =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("maps");
        let short = ap.run(b"abc");
        let long = ap.run(b"abcccccccc");
        assert_eq!(short.report.cycles, 3);
        assert_eq!(long.report.cycles, 10);
        assert!(long.report.latency.as_seconds() > short.report.latency.as_seconds());
        assert!(long.report.energy.as_joules() > short.report.energy.as_joules());
        assert!(short.report.energy_per_symbol().as_joules() > 0.0);
    }

    #[test]
    fn rram_outruns_sram_on_the_same_automaton() {
        let h = homog("(GET|POST) /[a-z]+");
        let input = b"GET /abcdefgh".repeat(8);
        let mut rram =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("maps");
        let mut sram =
            AutomataProcessor::compile(&h, ApBackend::sram(), RoutingKind::Dense).expect("maps");
        let rr = rram.run(&input);
        let sr = sram.run(&input);
        assert_eq!(rr.accepted, sr.accepted, "functionality is substrate-independent");
        assert!(rr.report.latency.as_seconds() < sr.report.latency.as_seconds());
        assert!(rr.report.energy.as_joules() < sr.report.energy.as_joules());
    }

    #[test]
    fn hierarchical_routing_preserves_behaviour() {
        let h = homog("a(b|c)*d{2,3}");
        let inputs: Vec<&[u8]> = vec![b"abd", b"abcdd", b"addd", b"abcbcbddd", b"ad"];
        let mut dense =
            AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense).expect("dense");
        let mut hier = AutomataProcessor::compile(
            &h,
            ApBackend::rram(),
            RoutingKind::Hierarchical { block: 4, max_global: 4096 },
        )
        .expect("hier");
        for input in inputs {
            assert_eq!(dense.run(input).accepted, hier.run(input).accepted, "{input:?}");
        }
        assert!(hier.routing_resources().config_bits <= dense.routing_resources().config_bits);
    }

    #[test]
    fn capacity_and_emptiness_are_enforced() {
        let h = homog("abc");
        let tiny = ApBackend { capacity: 1, ..ApBackend::rram() };
        assert!(matches!(
            AutomataProcessor::compile(&h, tiny, RoutingKind::Dense),
            Err(ApError::CapacityExceeded { .. })
        ));
        let empty = HomogeneousAutomaton::from_nfa(&{
            let mut n = memcim_automata::Nfa::new();
            let s = n.add_state();
            n.add_start(s);
            n
        });
        assert!(matches!(
            AutomataProcessor::compile(&empty, ApBackend::rram(), RoutingKind::Dense),
            Err(ApError::EmptyAutomaton)
        ));
    }

    #[test]
    fn configuration_cost_is_nonzero_and_backend_dependent() {
        let h = homog("(a|b|c|d)+x");
        let rram = AutomataProcessor::compile(&h, ApBackend::rram(), RoutingKind::Dense)
            .expect("maps")
            .configuration_cost();
        let sram = AutomataProcessor::compile(&h, ApBackend::sram(), RoutingKind::Dense)
            .expect("maps")
            .configuration_cost();
        assert!(rram.energy.as_joules() > 0.0);
        // The RRAM drawback: configuration is slower and hungrier.
        assert!(rram.energy.as_joules() > sram.energy.as_joules());
        assert!(rram.latency.as_seconds() > sram.latency.as_seconds());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use memcim_automata::Regex;
    use proptest::prelude::*;

    fn pattern_strategy() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("[ab]".to_string()),
            Just(".".to_string()),
        ];
        leaf.prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
                inner.prop_map(|a| format!("({a})*")),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The hardware engine (both routings, any backend) equals the
        /// reference NFA interpreter on random patterns and inputs.
        #[test]
        fn hardware_equals_reference(
            pattern in pattern_strategy(),
            input in proptest::collection::vec(b'a'..=b'c', 0..12),
        ) {
            let nfa = Regex::parse(&pattern).expect("generated").compile();
            let h = HomogeneousAutomaton::from_nfa(&nfa);
            if h.state_count() == 0 {
                // Language is {ε} or ∅ at the hardware level.
                return Ok(());
            }
            let expected = nfa.accepts(&input);
            for kind in [RoutingKind::Dense, RoutingKind::Hierarchical { block: 8, max_global: 1 << 16 }] {
                let mut ap = AutomataProcessor::compile(&h, ApBackend::rram(), kind)
                    .expect("maps");
                prop_assert_eq!(ap.run(&input).accepted, expected,
                    "pattern {} input {:?}", pattern.clone(), input.clone());
            }
        }

        /// Feeding any chunking of an input equals the one-shot run —
        /// events, acceptance and cost report alike — on both fabrics
        /// and both start kinds, with state correctly carried across
        /// chunk boundaries and across consecutive streams on one
        /// processor. The anchored (`StartOfInput`) variant drives the
        /// dead-stream early-out: most random inputs kill an anchored
        /// automaton mid-stream, so the bulk path must report exactly
        /// like the full pipeline across arbitrary cut points.
        #[test]
        fn chunked_feed_equals_one_shot_run(
            pattern in pattern_strategy(),
            input in proptest::collection::vec(b'a'..=b'c', 0..24),
            cuts in proptest::collection::vec(0usize..24, 0..5),
        ) {
            let nfa = Regex::parse(&pattern).expect("generated").compile();
            let base = HomogeneousAutomaton::from_nfa(&nfa);
            if base.state_count() == 0 {
                return Ok(());
            }
            let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (input.len() + 1)).collect();
            bounds.push(0);
            bounds.push(input.len());
            bounds.sort_unstable();
            for start in [
                memcim_automata::StartKind::StartOfInput,
                memcim_automata::StartKind::AllInput,
            ] {
                let h = base.clone().with_start_kind(start);
                for kind in [RoutingKind::Dense, RoutingKind::Hierarchical { block: 8, max_global: 1 << 16 }] {
                    let mut ap = AutomataProcessor::compile(&h, ApBackend::rram(), kind)
                        .expect("maps");
                    let expected = ap.run(&input);
                    for window in bounds.windows(2) {
                        ap.feed(&input[window[0]..window[1]]);
                    }
                    let streamed = ap.finish();
                    prop_assert_eq!(&streamed, &expected,
                        "pattern {} input {:?} cuts {:?} start {:?}", pattern.clone(),
                        input.clone(), bounds.clone(), start);
                }
            }
        }
    }
}
