//! Hardware backends: per-cycle cost models derived from cell technology.

use memcim_crossbar::CellTechnology;
use memcim_units::{Joules, Seconds, SquareMicrometers, Watts};

/// A hardware substrate for the automata processor.
///
/// Costs derive from the calibrated [`CellTechnology`] constants — the
/// same numbers the Fig. 9 experiment validates — so the chip-level
/// comparison in the `ap_kernel_compare` bench is anchored to the
/// transistor-level simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ApBackend {
    /// Backend name for reports (`RRAM-AP`, `SRAM-AP`, `SDRAM-AP`).
    pub name: &'static str,
    /// Bit-cell technology of the STE and switch arrays.
    pub tech: CellTechnology,
    /// STE capacity of one device.
    pub capacity: usize,
}

impl ApBackend {
    /// The paper's proposal: 1T1R RRAM STEs and switches.
    pub fn rram() -> Self {
        Self { name: "RRAM-AP", tech: CellTechnology::rram_1t1r(), capacity: 1 << 17 }
    }

    /// The Cache Automaton: 8T SRAM arrays repurposed from last-level
    /// cache.
    pub fn sram() -> Self {
        Self { name: "SRAM-AP", tech: CellTechnology::sram_8t(), capacity: 1 << 17 }
    }

    /// The Micron AP: SDRAM-based (coarse model; the paper also treats
    /// it as a black box and notes SRAM-AP beats it on throughput and
    /// energy).
    pub fn sdram() -> Self {
        Self { name: "SDRAM-AP", tech: CellTechnology::dram_1t1c(), capacity: 1 << 17 }
    }

    /// Derives the per-cycle cost set for an automaton of `n_states`
    /// with `routing_bits` switch cells.
    pub fn costs(&self, n_states: usize, routing_bits: usize) -> ApCosts {
        // The STE array has 2^W = 256 word lines; each column is one
        // vector dot product operator (Fig. 7a) of length 256.
        let ste_latency = self.tech.read_latency(256);
        let ste_energy_per_column = self.tech.analytic_cycle_energy(256);
        // The routing fabric evaluates its switch columns in the same
        // style (Fig. 7b); its word-line count is the state count (dense)
        // or block size (hierarchical) — approximated by the per-column
        // share of the routing bits.
        let routing_rows = (routing_bits / n_states.max(1)).max(1);
        let routing_latency = self.tech.read_latency(routing_rows);
        let routing_energy_per_column = self.tech.analytic_cycle_energy(routing_rows);
        ApCosts {
            cycle_latency: ste_latency + routing_latency,
            ste_energy_per_column,
            routing_energy_per_column,
            config_energy_per_bit: self.tech.program_energy,
            config_latency_per_row: self.tech.program_latency,
            static_power: self.tech.static_power(n_states * 256 + routing_bits),
            area: self.tech.array_area(256, n_states)
                + self.tech.cell_area() * routing_bits as f64 * 1.3,
        }
    }
}

/// Per-cycle and per-configuration costs of a mapped automaton.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApCosts {
    /// Latency of one symbol cycle (STE evaluate + routing traverse;
    /// the AND and accept reduction are hidden under the SA margin).
    pub cycle_latency: Seconds,
    /// Energy of one discharging STE column per cycle.
    pub ste_energy_per_column: Joules,
    /// Energy of one discharging routing column per cycle.
    pub routing_energy_per_column: Joules,
    /// Energy to program one configuration bit.
    pub config_energy_per_bit: Joules,
    /// Latency to program one configuration row.
    pub config_latency_per_row: Seconds,
    /// Static (leakage) power of the mapped arrays.
    pub static_power: Watts,
    /// Layout area of STE array plus routing switches.
    pub area: SquareMicrometers,
}

impl ApCosts {
    /// Symbol throughput in symbols per second.
    pub fn throughput(&self) -> f64 {
        1.0 / self.cycle_latency.as_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rram_cycle_is_faster_than_sram() {
        let n = 1024;
        let bits = n * n;
        let rram = ApBackend::rram().costs(n, bits);
        let sram = ApBackend::sram().costs(n, bits);
        assert!(rram.cycle_latency.as_seconds() < sram.cycle_latency.as_seconds());
        assert!(rram.throughput() > sram.throughput());
    }

    #[test]
    fn rram_column_energy_is_well_below_sram() {
        let rram = ApBackend::rram().costs(1024, 1024 * 1024);
        let sram = ApBackend::sram().costs(1024, 1024 * 1024);
        let saving =
            1.0 - rram.ste_energy_per_column.as_joules() / sram.ste_energy_per_column.as_joules();
        // The Fig. 9 operator-level saving (≈59 %) carries through.
        assert!((0.5..0.7).contains(&saving), "saving = {saving}");
    }

    #[test]
    fn rram_chip_is_denser_and_leakage_free() {
        let rram = ApBackend::rram().costs(4096, 4096 * 256);
        let sram = ApBackend::sram().costs(4096, 4096 * 256);
        assert!(rram.area.as_square_micrometers() < sram.area.as_square_micrometers() / 5.0);
        assert_eq!(rram.static_power.as_watts(), 0.0);
        assert!(sram.static_power.as_watts() > 0.0);
    }

    #[test]
    fn sdram_is_the_slowest_backend() {
        let n = 1024;
        let sdram = ApBackend::sdram().costs(n, n * n);
        let sram = ApBackend::sram().costs(n, n * n);
        assert!(sdram.cycle_latency.as_seconds() > sram.cycle_latency.as_seconds());
    }

    #[test]
    fn configuration_cost_reflects_nonvolatile_penalty() {
        // RRAM programming is slower and more energetic per bit — the
        // paper's acknowledged drawback ("longer and power-hungry
        // programming phase").
        let rram = ApBackend::rram().costs(256, 256 * 256);
        let sram = ApBackend::sram().costs(256, 256 * 256);
        assert!(rram.config_energy_per_bit.as_joules() > sram.config_energy_per_bit.as_joules());
        assert!(
            rram.config_latency_per_row.as_seconds() > sram.config_latency_per_row.as_seconds()
        );
    }
}
