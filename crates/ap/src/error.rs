//! Error type for automata-processor compilation.

use core::fmt;

/// Errors produced while mapping an automaton onto AP hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApError {
    /// The automaton needs more STEs than the device provides.
    CapacityExceeded {
        /// States required.
        states: usize,
        /// STEs available.
        capacity: usize,
    },
    /// The hierarchical routing fabric ran out of global wires.
    RoutingInfeasible {
        /// Global wires required.
        required: usize,
        /// Global wires available.
        available: usize,
    },
    /// The automaton has no states (nothing to map).
    EmptyAutomaton,
    /// A multi-stream operation addressed a stream lane that does not
    /// exist on the processor.
    UnknownStream {
        /// Lane index requested.
        stream: usize,
        /// Lanes available.
        streams: usize,
    },
}

impl fmt::Display for ApError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApError::CapacityExceeded { states, capacity } => {
                write!(f, "automaton needs {states} STEs but the device provides {capacity}")
            }
            ApError::RoutingInfeasible { required, available } => {
                write!(
                    f,
                    "hierarchical routing needs {required} global wires but only {available} exist"
                )
            }
            ApError::EmptyAutomaton => write!(f, "cannot map an automaton with no states"),
            ApError::UnknownStream { stream, streams } => {
                write!(f, "stream {stream} out of range: processor has {streams} lanes")
            }
        }
    }
}

impl std::error::Error for ApError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = ApError::RoutingInfeasible { required: 2000, available: 1024 };
        assert!(e.to_string().contains("2000"));
        assert!(e.to_string().contains("1024"));
    }
}
