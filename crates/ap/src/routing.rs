//! Routing-matrix organizations: dense crossbar vs two-level hierarchy.

use crate::ApError;
use memcim_bits::{BitMatrix, BitVec};

/// Routing fabric organization (design decision D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// A full `N×N` switch matrix. Always routable; `N²` configuration
    /// bits — the paper notes this "requires too much resource" at scale.
    Dense,
    /// The SRAM-AP organization \[27\]: states are grouped into blocks with
    /// full local switch matrices; transitions crossing blocks are routed
    /// over a bounded set of global wires.
    Hierarchical {
        /// States per block (256 in the Cache Automaton).
        block: usize,
        /// Global wires available for cross-block transitions.
        max_global: usize,
    },
}

impl RoutingKind {
    /// The Cache Automaton configuration: 256-state blocks, 1024 global
    /// wires.
    pub fn cache_automaton() -> Self {
        RoutingKind::Hierarchical { block: 256, max_global: 1024 }
    }
}

/// Configuration-bit and switch-resource accounting for a routing fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingResources {
    /// Total programmable configuration bits (switch cells).
    pub config_bits: usize,
    /// Global wires used (0 for dense).
    pub global_wires: usize,
    /// Number of local blocks (1 for dense).
    pub blocks: usize,
}

/// A compiled routing fabric: computes `f = a·R` and accounts resources.
#[derive(Debug, Clone)]
pub struct Routing {
    kind: RoutingKind,
    n: usize,
    /// Dense representation (kept for both kinds — for hierarchical it is
    /// the functional reference; hardware cost comes from `resources`).
    dense: BitMatrix,
    /// Hierarchical decomposition: per-block local matrices plus the
    /// global wire tables, used for the follow computation when
    /// hierarchical (to keep functional parity honest, the hierarchical
    /// path really routes through its own structures).
    hierarchical: Option<Hierarchical>,
    resources: RoutingResources,
}

#[derive(Debug, Clone)]
struct Hierarchical {
    block: usize,
    /// `local[b]` is the intra-block matrix of block `b` (block-local
    /// indices).
    local: Vec<BitMatrix>,
    /// Global wires: `(source state, dest state)` pairs crossing blocks.
    wires: Vec<(usize, usize)>,
}

impl Routing {
    /// Compiles a routing fabric from the transition matrix `r`
    /// (`r[p][q] = 1` iff `q` follows `p`).
    ///
    /// # Errors
    ///
    /// Returns [`ApError::RoutingInfeasible`] when a hierarchical fabric
    /// runs out of global wires.
    pub fn compile(r: &BitMatrix, kind: RoutingKind) -> Result<Self, ApError> {
        let n = r.rows();
        match kind {
            RoutingKind::Dense => Ok(Self {
                kind,
                n,
                dense: r.clone(),
                hierarchical: None,
                resources: RoutingResources { config_bits: n * n, global_wires: 0, blocks: 1 },
            }),
            RoutingKind::Hierarchical { block, max_global } => {
                let block = block.max(1);
                let blocks = n.div_ceil(block).max(1);
                let mut local = Vec::with_capacity(blocks);
                for b in 0..blocks {
                    let size = (n - b * block).min(block);
                    local.push(BitMatrix::new(size, size));
                }
                let mut wires = Vec::new();
                for p in 0..n {
                    for q in r.row(p).ones() {
                        let (bp, bq) = (p / block, q / block);
                        if bp == bq {
                            local[bp].set(p % block, q % block, true);
                        } else {
                            wires.push((p, q));
                        }
                    }
                }
                if wires.len() > max_global {
                    return Err(ApError::RoutingInfeasible {
                        required: wires.len(),
                        available: max_global,
                    });
                }
                let config_bits =
                    local.iter().map(|m| m.rows() * m.cols()).sum::<usize>() + wires.len() * 2; // each wire: source tap + dest driver
                let resources = RoutingResources { config_bits, global_wires: wires.len(), blocks };
                Ok(Self {
                    kind,
                    n,
                    dense: r.clone(),
                    hierarchical: Some(Hierarchical { block, local, wires }),
                    resources,
                })
            }
        }
    }

    /// The fabric organization.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// State count.
    pub fn state_count(&self) -> usize {
        self.n
    }

    /// Resource accounting.
    pub fn resources(&self) -> RoutingResources {
        self.resources
    }

    /// Computes the follow vector `f = a·R` (Equation 2) through the
    /// compiled fabric.
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` differs from the state count.
    pub fn follow(&self, active: &BitVec) -> BitVec {
        assert_eq!(active.len(), self.n, "active vector length mismatch");
        match &self.hierarchical {
            None => self.dense.vector_product(active),
            Some(h) => {
                let mut f = BitVec::new(self.n);
                // Local switches, block by block.
                for (b, m) in h.local.iter().enumerate() {
                    let base = b * h.block;
                    let size = m.rows();
                    let mut local_a = BitVec::new(size);
                    for i in 0..size {
                        if active.get(base + i) {
                            local_a.set(i, true);
                        }
                    }
                    if !local_a.any() {
                        continue;
                    }
                    let local_f = m.vector_product(&local_a);
                    for i in local_f.ones() {
                        f.set(base + i, true);
                    }
                }
                // Global wires.
                for &(p, q) in &h.wires {
                    if active.get(p) {
                        f.set(q, true);
                    }
                }
                f
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_matrix(n: usize) -> BitMatrix {
        let mut m = BitMatrix::new(n, n);
        for i in 0..n - 1 {
            m.set(i, i + 1, true);
        }
        m
    }

    #[test]
    fn dense_follow_equals_matrix_product() {
        let m = chain_matrix(10);
        let routing = Routing::compile(&m, RoutingKind::Dense).expect("dense");
        let a = BitVec::from_indices(10, &[0, 5]);
        assert_eq!(routing.follow(&a), m.vector_product(&a));
        assert_eq!(routing.resources().config_bits, 100);
    }

    #[test]
    fn hierarchical_matches_dense_within_blocks() {
        let m = chain_matrix(16);
        let kind = RoutingKind::Hierarchical { block: 4, max_global: 16 };
        let routing = Routing::compile(&m, kind).expect("routable");
        for start in 0..16 {
            let a = BitVec::from_indices(16, &[start]);
            assert_eq!(routing.follow(&a), m.vector_product(&a), "state {start}");
        }
        // Chain of 16 with block 4: 3 cross-block edges.
        assert_eq!(routing.resources().global_wires, 3);
        assert_eq!(routing.resources().blocks, 4);
    }

    #[test]
    fn hierarchical_uses_far_fewer_config_bits_for_local_automata() {
        // A 512-state automaton with only intra-block edges.
        let n = 512;
        let mut m = BitMatrix::new(n, n);
        for i in 0..n {
            let block_base = (i / 256) * 256;
            m.set(i, block_base + (i + 1) % 256, true);
        }
        let dense = Routing::compile(&m, RoutingKind::Dense).expect("dense");
        let hier = Routing::compile(&m, RoutingKind::cache_automaton()).expect("hier");
        assert!(hier.resources().config_bits * 2 <= dense.resources().config_bits);
        assert_eq!(hier.resources().global_wires, 0);
    }

    #[test]
    fn global_wire_budget_is_enforced() {
        // Bipartite all-cross edges blow the budget.
        let n = 64;
        let mut m = BitMatrix::new(n, n);
        for p in 0..32 {
            for q in 32..64 {
                m.set(p, q, true);
            }
        }
        let kind = RoutingKind::Hierarchical { block: 32, max_global: 100 };
        let err = Routing::compile(&m, kind).expect_err("1024 crossings > 100 wires");
        assert!(matches!(err, ApError::RoutingInfeasible { required: 1024, available: 100 }));
    }

    #[test]
    fn empty_active_vector_produces_empty_follow() {
        let m = chain_matrix(8);
        for kind in [RoutingKind::Dense, RoutingKind::Hierarchical { block: 4, max_global: 64 }] {
            let routing = Routing::compile(&m, kind).expect("routable");
            assert!(!routing.follow(&BitVec::new(8)).any());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Dense and hierarchical fabrics are functionally identical for
        /// any transition structure and active set (design decision D3).
        #[test]
        fn hierarchical_equals_dense(
            n in 2usize..80,
            edges in proptest::collection::vec((0usize..80, 0usize..80), 0..120),
            actives in proptest::collection::vec(0usize..80, 0..20),
            block in 2usize..40,
        ) {
            let mut m = BitMatrix::new(n, n);
            for (p, q) in edges {
                m.set(p % n, q % n, true);
            }
            let dense = Routing::compile(&m, RoutingKind::Dense).expect("dense");
            let hier = Routing::compile(
                &m,
                RoutingKind::Hierarchical { block, max_global: n * n },
            )
            .expect("unbounded wires");
            let idx: Vec<usize> = actives.iter().map(|&i| i % n).collect();
            let a = BitVec::from_indices(n, &idx);
            prop_assert_eq!(dense.follow(&a), hier.follow(&a));
        }
    }
}
