//! Routing-matrix organizations: dense crossbar vs two-level hierarchy.

use crate::ApError;
use memcim_bits::{BitMatrix, BitVec};

/// Routing fabric organization (design decision D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// A full `N×N` switch matrix. Always routable; `N²` configuration
    /// bits — the paper notes this "requires too much resource" at scale.
    Dense,
    /// The SRAM-AP organization \[27\]: states are grouped into blocks with
    /// full local switch matrices; transitions crossing blocks are routed
    /// over a bounded set of global wires.
    Hierarchical {
        /// States per block (256 in the Cache Automaton).
        block: usize,
        /// Global wires available for cross-block transitions.
        max_global: usize,
    },
}

impl RoutingKind {
    /// The Cache Automaton configuration: 256-state blocks, 1024 global
    /// wires.
    pub fn cache_automaton() -> Self {
        RoutingKind::Hierarchical { block: 256, max_global: 1024 }
    }
}

/// Configuration-bit and switch-resource accounting for a routing fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingResources {
    /// Total programmable configuration bits (switch cells).
    pub config_bits: usize,
    /// Global wires used (0 for dense).
    pub global_wires: usize,
    /// Number of local blocks (1 for dense).
    pub blocks: usize,
}

/// A compiled routing fabric: computes `f = a·R` and accounts resources.
#[derive(Debug, Clone)]
pub struct Routing {
    kind: RoutingKind,
    n: usize,
    /// Dense representation (kept for both kinds — for hierarchical it is
    /// the functional reference; hardware cost comes from `resources`).
    dense: BitMatrix,
    /// Hierarchical decomposition: per-block local matrices plus the
    /// global wire tables, used for the follow computation when
    /// hierarchical (to keep functional parity honest, the hierarchical
    /// path really routes through its own structures).
    hierarchical: Option<Hierarchical>,
    resources: RoutingResources,
}

#[derive(Debug, Clone)]
struct Hierarchical {
    block: usize,
    /// `local[b]` is the intra-block matrix of block `b` (block-local
    /// indices), zero-padded to `block × block` so one scratch pair
    /// serves every block including a short final one.
    local: Vec<BitMatrix>,
    /// Compiled skip list: only blocks that own at least one local
    /// switch appear, each carrying word-level occupancy masks so the
    /// follow kernel decides from `active.as_words()` alone — without
    /// extracting the block slice — whether the block product can be
    /// skipped this cycle.
    live_blocks: Vec<LiveBlock>,
    /// Cross-block wires, compiled to a CSR grouped by source *word* of
    /// the active vector: each entry carries the OR-mask of its source
    /// bits, so a single `AND` decides in O(1) whether any of the
    /// entry's wires fire before the per-wire list is walked.
    wire_words: Vec<WireWord>,
    /// Flat `(bit-in-source-word, dest state)` list indexed by
    /// [`WireWord::start`]`..`[`WireWord::end`].
    wire_dests: Vec<(u32, u32)>,
}

/// Skip-list entry for one block with local switches (see
/// [`Hierarchical`]): the block's span inside the active vector plus
/// the masks that select its bits from the first and last overlapping
/// words.
#[derive(Debug, Clone, Copy)]
struct LiveBlock {
    /// Index into `Hierarchical::local`.
    index: usize,
    /// First state of the block (`index * block`).
    base: usize,
    /// True (unpadded) block length.
    len: usize,
    /// First and last word of `active.as_words()` the block overlaps.
    word_start: usize,
    word_end: usize,
    /// Mask of the block's bits within `word_start` (when the block
    /// fits one word this already includes the tail cut).
    first_mask: u64,
    /// Mask of the block's bits within `word_end`.
    last_mask: u64,
}

/// One source word's worth of global wires (see [`Hierarchical`]).
#[derive(Debug, Clone, Copy)]
struct WireWord {
    /// Index into `active.as_words()`.
    word: usize,
    /// OR of `1 << bit` over the entry's source bits.
    mask: u64,
    /// Range into `wire_dests`.
    start: usize,
    end: usize,
}

/// Reusable scratch for [`Routing::follow_into`]: the block-local active
/// and follow slices. Obtain one from [`Routing::scratch`] and reuse it
/// across calls — the streaming engine allocates it once per processor,
/// never per symbol.
#[derive(Debug, Clone)]
pub struct FollowScratch {
    local_a: BitVec,
    local_f: BitVec,
}

impl Routing {
    /// Compiles a routing fabric from the transition matrix `r`
    /// (`r[p][q] = 1` iff `q` follows `p`).
    ///
    /// # Errors
    ///
    /// Returns [`ApError::RoutingInfeasible`] when a hierarchical fabric
    /// runs out of global wires.
    pub fn compile(r: &BitMatrix, kind: RoutingKind) -> Result<Self, ApError> {
        let n = r.rows();
        match kind {
            RoutingKind::Dense => Ok(Self {
                kind,
                n,
                dense: r.clone(),
                hierarchical: None,
                resources: RoutingResources { config_bits: n * n, global_wires: 0, blocks: 1 },
            }),
            RoutingKind::Hierarchical { block, max_global } => {
                let block = block.max(1);
                let blocks = n.div_ceil(block).max(1);
                // Local matrices are padded to block × block (the padding
                // rows/columns stay zero and contribute nothing to the
                // product); the hardware accounting below still charges
                // only the true switch-cell counts.
                let mut local = vec![BitMatrix::new(block, block); blocks];
                let mut has_local = vec![false; blocks];
                let mut wires = Vec::new();
                for p in 0..n {
                    for q in r.row(p).ones() {
                        let (bp, bq) = (p / block, q / block);
                        if bp == bq {
                            local[bp].set(p % block, q % block, true);
                            has_local[bp] = true;
                        } else {
                            wires.push((p, q));
                        }
                    }
                }
                // Skip list: blocks with no local switches vanish from
                // the follow loop at compile time; the rest carry the
                // word masks that gate their per-cycle occupancy check.
                let mut live_blocks = Vec::new();
                for (index, _) in has_local.iter().enumerate().filter(|&(_, live)| *live) {
                    let base = index * block;
                    let len = block.min(n - base);
                    let (word_start, word_end) = (base / 64, (base + len - 1) / 64);
                    let off = base % 64;
                    let first_mask = if word_start == word_end && off + len < 64 {
                        ((1u64 << len) - 1) << off
                    } else {
                        !0u64 << off
                    };
                    let end_bits = (base + len - 1) % 64 + 1;
                    let last_mask = if end_bits == 64 { !0 } else { (1u64 << end_bits) - 1 };
                    live_blocks.push(LiveBlock {
                        index,
                        base,
                        len,
                        word_start,
                        word_end,
                        first_mask,
                        last_mask,
                    });
                }
                if wires.len() > max_global {
                    return Err(ApError::RoutingInfeasible {
                        required: wires.len(),
                        available: max_global,
                    });
                }
                let local_cells = (0..blocks)
                    .map(|b| {
                        let size = (n - b * block).min(block);
                        size * size
                    })
                    .sum::<usize>();
                let config_bits = local_cells + wires.len() * 2; // each wire: source tap + dest driver
                let resources = RoutingResources { config_bits, global_wires: wires.len(), blocks };

                // Compile the wires into the per-source-word CSR. Sorting
                // by (word, bit) groups each word's wires contiguously.
                wires.sort_unstable();
                let mut wire_words: Vec<WireWord> = Vec::new();
                let mut wire_dests = Vec::with_capacity(wires.len());
                for &(p, q) in &wires {
                    let (word, bit) = (p / 64, (p % 64) as u32);
                    match wire_words.last_mut() {
                        Some(entry) if entry.word == word => {
                            entry.mask |= 1 << bit;
                            entry.end += 1;
                        }
                        _ => wire_words.push(WireWord {
                            word,
                            mask: 1 << bit,
                            start: wire_dests.len(),
                            end: wire_dests.len() + 1,
                        }),
                    }
                    wire_dests.push((bit, q as u32));
                }
                Ok(Self {
                    kind,
                    n,
                    dense: r.clone(),
                    hierarchical: Some(Hierarchical {
                        block,
                        local,
                        live_blocks,
                        wire_words,
                        wire_dests,
                    }),
                    resources,
                })
            }
        }
    }

    /// The fabric organization.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// State count.
    pub fn state_count(&self) -> usize {
        self.n
    }

    /// Resource accounting.
    pub fn resources(&self) -> RoutingResources {
        self.resources
    }

    /// Creates a reusable scratch sized for this fabric. One scratch
    /// serves any number of [`follow_into`](Self::follow_into) calls on
    /// the same routing (the engine allocates it once per processor).
    pub fn scratch(&self) -> FollowScratch {
        let block = self.hierarchical.as_ref().map_or(0, |h| h.block);
        FollowScratch { local_a: BitVec::new(block), local_f: BitVec::new(block) }
    }

    /// Computes the follow vector `f = a·R` (Equation 2) through the
    /// compiled fabric.
    ///
    /// Allocates the result (and, hierarchically, its scratch) on every
    /// call; hot paths should hold a [`FollowScratch`] and use
    /// [`follow_into`](Self::follow_into) instead.
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` differs from the state count.
    pub fn follow(&self, active: &BitVec) -> BitVec {
        let mut out = BitVec::new(self.n);
        self.follow_into(active, &mut out, &mut self.scratch());
        out
    }

    /// Allocation-free form of [`follow`](Self::follow): overwrites
    /// `out` with `a·R`, reusing `scratch` for the block-local slices.
    ///
    /// The hierarchical path is word-parallel end to end and driven by
    /// the compiled skip list: blocks with no local switches were
    /// dropped at compile time, the remaining blocks are occupancy-
    /// tested straight against `active.as_words()` through per-block
    /// word masks (an inactive block costs one or two masked loads —
    /// no slice extraction), live blocks are extracted by shift/mask
    /// ([`BitVec::extract_range_into`]) and their products land back in
    /// `out` via [`BitVec::or_shifted`], and global wires are walked
    /// through the per-source-word CSR so a silent source word costs a
    /// single `AND`.
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` or `out.len()` differs from the state
    /// count, or if `scratch` was built for a different fabric.
    pub fn follow_into(&self, active: &BitVec, out: &mut BitVec, scratch: &mut FollowScratch) {
        assert_eq!(active.len(), self.n, "active vector length mismatch");
        assert_eq!(out.len(), self.n, "output vector length mismatch");
        match &self.hierarchical {
            None => self.dense.vector_product_into(active, out),
            Some(h) => {
                assert_eq!(
                    scratch.local_a.len(),
                    h.block,
                    "scratch built for a different routing fabric"
                );
                out.clear();
                let words = active.as_words();
                let aligned = h.block % 64 == 0;
                // Local switches: only blocks on the compiled skip
                // list, and of those only blocks whose masked active
                // words are occupied this cycle.
                for lb in &h.live_blocks {
                    let mut live = words[lb.word_start] & lb.first_mask;
                    if lb.word_end > lb.word_start {
                        live |= words[lb.word_end] & lb.last_mask;
                        for &w in &words[lb.word_start + 1..lb.word_end] {
                            live |= w;
                        }
                    }
                    if live == 0 {
                        continue;
                    }
                    if aligned {
                        // Word-aligned blocks (the bench and serve
                        // configurations) need no slice extraction:
                        // iterate the masked active bits in place and
                        // OR each local row's words straight into the
                        // block's span of `out`. Rows of a short final
                        // block are zero past its true length, so the
                        // zip's span clamp is lossless.
                        let span = lb.word_end - lb.word_start + 1;
                        let out_words = out.as_words_mut();
                        let m = &h.local[lb.index];
                        for (off, &word) in words[lb.word_start..=lb.word_end].iter().enumerate() {
                            let wi = lb.word_start + off;
                            let mut lw = word;
                            if wi == lb.word_start {
                                lw &= lb.first_mask;
                            }
                            if wi == lb.word_end && lb.word_end > lb.word_start {
                                lw &= lb.last_mask;
                            }
                            while lw != 0 {
                                let local_state =
                                    (wi - lb.word_start) * 64 + lw.trailing_zeros() as usize;
                                let row = m.row(local_state).as_words();
                                for (ow, &rw) in
                                    out_words[lb.word_start..][..span].iter_mut().zip(row)
                                {
                                    *ow |= rw;
                                }
                                lw &= lw - 1;
                            }
                        }
                    } else {
                        active.extract_range_into(lb.base, lb.len, &mut scratch.local_a);
                        h.local[lb.index]
                            .vector_product_into(&scratch.local_a, &mut scratch.local_f);
                        out.or_shifted(&scratch.local_f, lb.base);
                    }
                }
                // Global wires, word by source word.
                for entry in &h.wire_words {
                    let live = words[entry.word] & entry.mask;
                    if live == 0 {
                        continue;
                    }
                    for &(bit, dest) in &h.wire_dests[entry.start..entry.end] {
                        if live >> bit & 1 == 1 {
                            out.set(dest as usize, true);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_matrix(n: usize) -> BitMatrix {
        let mut m = BitMatrix::new(n, n);
        for i in 0..n - 1 {
            m.set(i, i + 1, true);
        }
        m
    }

    #[test]
    fn dense_follow_equals_matrix_product() {
        let m = chain_matrix(10);
        let routing = Routing::compile(&m, RoutingKind::Dense).expect("dense");
        let a = BitVec::from_indices(10, &[0, 5]);
        assert_eq!(routing.follow(&a), m.vector_product(&a));
        assert_eq!(routing.resources().config_bits, 100);
    }

    #[test]
    fn hierarchical_matches_dense_within_blocks() {
        let m = chain_matrix(16);
        let kind = RoutingKind::Hierarchical { block: 4, max_global: 16 };
        let routing = Routing::compile(&m, kind).expect("routable");
        for start in 0..16 {
            let a = BitVec::from_indices(16, &[start]);
            assert_eq!(routing.follow(&a), m.vector_product(&a), "state {start}");
        }
        // Chain of 16 with block 4: 3 cross-block edges.
        assert_eq!(routing.resources().global_wires, 3);
        assert_eq!(routing.resources().blocks, 4);
    }

    #[test]
    fn hierarchical_uses_far_fewer_config_bits_for_local_automata() {
        // A 512-state automaton with only intra-block edges.
        let n = 512;
        let mut m = BitMatrix::new(n, n);
        for i in 0..n {
            let block_base = (i / 256) * 256;
            m.set(i, block_base + (i + 1) % 256, true);
        }
        let dense = Routing::compile(&m, RoutingKind::Dense).expect("dense");
        let hier = Routing::compile(&m, RoutingKind::cache_automaton()).expect("hier");
        assert!(hier.resources().config_bits * 2 <= dense.resources().config_bits);
        assert_eq!(hier.resources().global_wires, 0);
    }

    #[test]
    fn aligned_block_fast_path_matches_dense() {
        // 187 states mirrors the bench workload shape: word-aligned
        // blocks (64 and 256) with a short final block, scattered local
        // edges and cross-block wires.
        let n = 187;
        let mut m = BitMatrix::new(n, n);
        for i in 0..n {
            m.set(i, (i + 1) % n, true);
            m.set(i, (i * 7 + 3) % n, true);
        }
        let dense = Routing::compile(&m, RoutingKind::Dense).expect("dense");
        for block in [64, 256] {
            let hier =
                Routing::compile(&m, RoutingKind::Hierarchical { block, max_global: 1 << 16 })
                    .expect("hier");
            let mut out = BitVec::new(n);
            let mut scratch = hier.scratch();
            for seed in 0..32 {
                let idx: Vec<usize> = (0..n).filter(|i| (i * 31 + seed) % 13 == 0).collect();
                let a = BitVec::from_indices(n, &idx);
                hier.follow_into(&a, &mut out, &mut scratch);
                assert_eq!(out, dense.follow(&a), "block {block} seed {seed}");
            }
        }
    }

    #[test]
    fn global_wire_budget_is_enforced() {
        // Bipartite all-cross edges blow the budget.
        let n = 64;
        let mut m = BitMatrix::new(n, n);
        for p in 0..32 {
            for q in 32..64 {
                m.set(p, q, true);
            }
        }
        let kind = RoutingKind::Hierarchical { block: 32, max_global: 100 };
        let err = Routing::compile(&m, kind).expect_err("1024 crossings > 100 wires");
        assert!(matches!(err, ApError::RoutingInfeasible { required: 1024, available: 100 }));
    }

    #[test]
    fn empty_active_vector_produces_empty_follow() {
        let m = chain_matrix(8);
        for kind in [RoutingKind::Dense, RoutingKind::Hierarchical { block: 4, max_global: 64 }] {
            let routing = Routing::compile(&m, kind).expect("routable");
            assert!(!routing.follow(&BitVec::new(8)).any());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Dense and hierarchical fabrics are functionally identical for
        /// any transition structure and active set (design decision D3).
        #[test]
        fn hierarchical_equals_dense(
            n in 2usize..80,
            edges in proptest::collection::vec((0usize..80, 0usize..80), 0..120),
            actives in proptest::collection::vec(0usize..80, 0..20),
            block in prop_oneof![2usize..40, Just(64usize), Just(128usize)],
        ) {
            let mut m = BitMatrix::new(n, n);
            for (p, q) in edges {
                m.set(p % n, q % n, true);
            }
            let dense = Routing::compile(&m, RoutingKind::Dense).expect("dense");
            let hier = Routing::compile(
                &m,
                RoutingKind::Hierarchical { block, max_global: n * n },
            )
            .expect("unbounded wires");
            let idx: Vec<usize> = actives.iter().map(|&i| i % n).collect();
            let a = BitVec::from_indices(n, &idx);
            prop_assert_eq!(dense.follow(&a), hier.follow(&a));
        }

        /// The scratch-reusing `follow_into` equals the allocating
        /// `follow` on both fabrics — including when `out` and the
        /// scratch arrive dirty from a previous active set.
        #[test]
        fn follow_into_equals_follow(
            n in 2usize..80,
            edges in proptest::collection::vec((0usize..80, 0usize..80), 0..120),
            active_sets in proptest::collection::vec(
                proptest::collection::vec(0usize..80, 0..20),
                1..4,
            ),
            block in prop_oneof![2usize..40, Just(64usize), Just(128usize)],
        ) {
            let mut m = BitMatrix::new(n, n);
            for (p, q) in edges {
                m.set(p % n, q % n, true);
            }
            for kind in [
                RoutingKind::Dense,
                RoutingKind::Hierarchical { block, max_global: n * n },
            ] {
                let routing = Routing::compile(&m, kind).expect("routable");
                let mut out = BitVec::from_indices(n, &(0..n).collect::<Vec<_>>());
                let mut scratch = routing.scratch();
                for actives in &active_sets {
                    let idx: Vec<usize> = actives.iter().map(|&i| i % n).collect();
                    let a = BitVec::from_indices(n, &idx);
                    routing.follow_into(&a, &mut out, &mut scratch);
                    prop_assert_eq!(&out, &routing.follow(&a), "kind {:?}", kind);
                    prop_assert_eq!(&out, &m.vector_product(&a), "kind {:?} vs dense product", kind);
                }
            }
        }
    }
}
