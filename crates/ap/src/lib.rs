//! Hardware automata processors over memristive and CMOS substrates.
//!
//! This crate implements Section IV of the paper: the **generic automata
//! processor model** (Fig. 6) and its three hardware realizations —
//! RRAM-AP (the paper's proposal), SRAM-AP (the Cache Automaton \[27\])
//! and SDRAM-AP (the Micron AP \[25\]).
//!
//! The execution pipeline per input symbol is exactly the paper's three
//! steps:
//!
//! 1. *Input symbol processing* — the one-hot decoded symbol selects a
//!    word line of the STE array; every STE column performs a **vector
//!    dot product** with it (Equation 1), yielding the symbol vector `s`.
//! 2. *Active state processing* — the routing matrix computes the follow
//!    vector `f = a·R` (Equation 2, also dot products), then
//!    `a = f & s` (Equation 3).
//! 3. *Output identification* — `A = a·cᵀ` (Equation 4) raises report
//!    events.
//!
//! Functional behaviour is substrate-independent (differentially tested
//! against the reference NFA interpreter); what differs per backend is
//! **cost**: cycle latency, per-symbol energy and chip area, all derived
//! from the calibrated cell technologies in `memcim-crossbar` — i.e.
//! from the same constants the Fig. 9 experiment validates.
//!
//! Two routing-matrix organizations are provided (design decision D3):
//! dense `N×N` and the Cache-Automaton-style two-level hierarchy
//! ([`RoutingKind::Hierarchical`]) with bounded global wiring.
//!
//! # Examples
//!
//! ```
//! use memcim_ap::{ApBackend, AutomataProcessor, RoutingKind};
//! use memcim_automata::{HomogeneousAutomaton, Regex, StartKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nfa = Regex::parse("(GET|POST) /[a-z]+")?.compile();
//! let homog = HomogeneousAutomaton::from_nfa(&nfa).with_start_kind(StartKind::AllInput);
//! let mut ap = AutomataProcessor::compile(&homog, ApBackend::rram(), RoutingKind::Dense)?;
//! let run = ap.run(b"x GET /abc");
//! assert!(!run.accept_events.is_empty());
//! println!("{} symbols in {} at {}", run.symbols, run.report.latency, run.report.energy);
//! # Ok(())
//! # }
//! ```

mod backend;
mod engine;
mod error;
mod multi;
mod routing;

pub use backend::{ApBackend, ApCosts};
pub use engine::{ApReport, ApRun, AutomataProcessor};
pub use error::ApError;
pub use multi::MultiStreamProcessor;
pub use routing::{FollowScratch, Routing, RoutingKind, RoutingResources};
