//! Pins the tentpole perf contract: in steady state the symbol loop of
//! [`AutomataProcessor::run`] performs **zero heap allocations per input
//! symbol** — all scratch is owned by the processor and reused across
//! symbols and across `run` calls.
//!
//! This file holds exactly one test so no concurrent test can allocate
//! while the counter window is open.

use memcim_ap::{ApBackend, AutomataProcessor, RoutingKind};
use memcim_automata::{HomogeneousAutomaton, Regex, StartKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_symbol_loop_does_not_allocate() {
    let nfa = Regex::parse("(GET|POST) /[a-z]+").expect("parses").compile();
    let homog = HomogeneousAutomaton::from_nfa(&nfa).with_start_kind(StartKind::AllInput);
    // Traffic with no report events: every byte is outside the matched
    // alphabet, so the run's event vector stays empty and only the
    // per-symbol pipeline itself could allocate.
    let traffic = vec![b'#'; 4096];
    for kind in [RoutingKind::Dense, RoutingKind::Hierarchical { block: 16, max_global: 1 << 16 }] {
        let mut ap = AutomataProcessor::compile(&homog, ApBackend::rram(), kind).expect("maps");
        // Warm up: first run may size internal buffers.
        let warm = ap.run(&traffic);
        assert!(warm.accept_events.is_empty(), "traffic must be event-free");

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let run = ap.run(&traffic);
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(run.symbols, 4096);
        assert_eq!(
            after - before,
            0,
            "steady-state run over 4096 symbols allocated {} times ({kind:?})",
            after - before
        );

        // The incremental API shares the same scratch: chunked feeding
        // stays allocation-free too.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for chunk in traffic.chunks(64) {
            ap.feed(chunk);
        }
        let report = ap.finish().report;
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(report.cycles, 4096);
        assert_eq!(after - before, 0, "chunked feed allocated ({kind:?})");
    }
}
