//! # memcim — memristive computation-in-memory
//!
//! A from-scratch Rust reproduction of Yu, Du Nguyen, Xie, Taouil &
//! Hamdioui, *"Memristive Devices for Computation-In-Memory"*
//! (DATE 2018): the **Memristive Vector Processor** (MVP) and the
//! **RRAM Automata Processor** (RRAM-AP), together with every substrate
//! they stand on.
//!
//! ## Workspace map
//!
//! | crate | contents |
//! |---|---|
//! | [`memcim_units`] | typed physical quantities |
//! | [`memcim_bits`]  | bit vectors/matrices (Equations 1–4 substrate) |
//! | [`memcim_device`] | memristor models: Chua, linear ion drift, Stanford/ASU, two-state |
//! | [`memcim_spice`] | MNA transient circuit simulator (the HSPICE stand-in) |
//! | [`memcim_crossbar`] | 1T1R arrays, scouting logic, Fig. 9 bit line |
//! | [`memcim_automata`] | regex → NFA → homogeneous automata |
//! | [`memcim_ap`] | generic AP model + RRAM/SRAM/SDRAM backends |
//! | [`memcim_mvp`] | MVP simulator + Fig. 4 architecture model |
//! | [`memcim_verify`] | static program/automaton analysis: abstract interpreter, cost bounds, reachability/liveness |
//! | [`memcim_serve`] | concurrent multi-tenant query service over the banked engines, plus its framed-TCP network front door (`memcim_serve::net`) |
//!
//! ## Quick start
//!
//! Pattern matching on the RRAM automata processor:
//!
//! ```
//! use memcim::RegexAccelerator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
//! let mut accel = RegexAccelerator::rram(&["GET /[a-z]+", "EVIL.*\\.exe"])?;
//! let hits = accel.scan(b"GET /index EVILpayload.exe");
//! assert_eq!(hits.matched_patterns(), vec![0, 1]);
//! println!("scanned {} bytes: {}", hits.symbols, hits.report.energy);
//! # Ok(())
//! # }
//! ```
//!
//! Bulk bitwise compute inside the memory array:
//!
//! ```
//! use memcim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mvp = MvpSimulator::new(8, 256);
//! mvp.run_program(&[
//!     Instruction::Store { row: 0, data: BitVec::from_indices(256, &[1, 5]) },
//!     Instruction::Store { row: 1, data: BitVec::from_indices(256, &[5, 9]) },
//!     Instruction::And { srcs: vec![0, 1], dst: 2 },
//! ])?;
//! # Ok(())
//! # }
//! ```

pub use memcim_ap as ap;
pub use memcim_automata as automata;
pub use memcim_bits as bits;
pub use memcim_crossbar as crossbar;
pub use memcim_device as device;
pub use memcim_mvp as mvp;
pub use memcim_serve as serve;
pub use memcim_spice as spice;
pub use memcim_units as units;
pub use memcim_verify as verify;

mod accelerator;

pub use accelerator::{RegexAccelerator, ScanOutcome};

/// The most commonly used items across the workspace, importable in one
/// line.
pub mod prelude {
    pub use memcim_ap::{ApBackend, AutomataProcessor, RoutingKind};
    pub use memcim_automata::{
        Dfa, HomogeneousAutomaton, Nfa, PatternSet, Regex, StartKind, SymbolClass,
    };
    pub use memcim_bits::{BitMatrix, BitVec};
    pub use memcim_crossbar::{
        BankedCrossbar, BitlineCircuit, CellTechnology, Crossbar, CrossbarBackend, EccCrossbar,
        EccOutcome, FaultMap, HammingCode, OpLedger, RemapEntry, ScoutingKind,
    };
    pub use memcim_device::{
        BehavioralSwitch, HysteresisSweep, IdealMemristor, LinearIonDrift, MemristiveDevice,
        StanfordAsu, StanfordParams, SwitchParams, Vteam, VteamParams,
    };
    pub use memcim_mvp::{
        evaluate, BatchReport, BatchRequest, Instruction, MissRates, MvpSimulator, SystemConfig,
    };
    pub use memcim_serve::net::{NetClient, NetConfig, NetServer, TenantPolicy};
    pub use memcim_serve::{Job, JobOutput, ServeConfig, ServeError, Service, TenantUsage, Ticket};
    pub use memcim_spice::{Circuit, Edge, Integration, SolverKind, Transient, Waveform};
    pub use memcim_units::{
        Amps, Farads, Hertz, Joules, Ohms, Seconds, Siemens, SquareMicrometers, Volts, Watts,
    };
    pub use memcim_verify::{
        first_error, verify_program, AutomatonReport, Code, CostBound, CostModel, Diagnostic,
        Severity,
    };

    pub use crate::{RegexAccelerator, ScanOutcome};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_importable_and_usable() {
        use crate::prelude::*;
        let v = BitVec::from_indices(4, &[0, 3]);
        assert_eq!(v.count_ones(), 2);
        let _ = Crossbar::rram(2, 8);
    }
}
