//! High-level facade: regex rule sets on the RRAM automata processor.

use memcim_ap::{ApBackend, ApReport, AutomataProcessor, RoutingKind};
use memcim_automata::{PatternSet, StartKind};
use std::collections::HashMap;
use std::error::Error;

/// The result of scanning one input through a [`RegexAccelerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// `(end position, pattern index)` for every report event.
    pub matches: Vec<(usize, usize)>,
    /// Input length scanned.
    pub symbols: u64,
    /// Latency/energy summary from the hardware cost model.
    pub report: ApReport,
}

impl ScanOutcome {
    /// The distinct patterns that matched, ascending.
    pub fn matched_patterns(&self) -> Vec<usize> {
        let mut pats: Vec<usize> = self.matches.iter().map(|&(_, p)| p).collect();
        pats.sort_unstable();
        pats.dedup();
        pats
    }
}

/// A compiled multi-pattern scanner running on an automata-processor
/// backend — the end-to-end RRAM-AP pipeline of the paper's Section IV
/// behind one type.
///
/// Patterns are compiled to a union NFA, converted to a homogeneous
/// automaton with all-input (unanchored) start states, and mapped onto
/// the backend with hierarchical routing (falling back to dense when the
/// global-wire budget is exceeded).
///
/// See the [crate-level quick start](crate).
#[derive(Debug)]
pub struct RegexAccelerator {
    processor: AutomataProcessor,
    owner_of_state: HashMap<usize, usize>,
    pattern_count: usize,
}

impl RegexAccelerator {
    /// Compiles a rule set onto the RRAM backend.
    ///
    /// # Errors
    ///
    /// Propagates pattern-parse errors and hardware mapping failures.
    pub fn rram(patterns: &[&str]) -> Result<Self, Box<dyn Error + Send + Sync>> {
        Self::on_backend(patterns, ApBackend::rram())
    }

    /// Compiles a rule set onto an explicit backend.
    ///
    /// # Errors
    ///
    /// Propagates pattern-parse errors and hardware mapping failures.
    pub fn on_backend(
        patterns: &[&str],
        backend: ApBackend,
    ) -> Result<Self, Box<dyn Error + Send + Sync>> {
        let set = PatternSet::compile(patterns)?;
        let (homog, owner_of_state) = set.to_homogeneous();
        let homog = homog.with_start_kind(StartKind::AllInput);
        let processor = match AutomataProcessor::compile(
            &homog,
            backend.clone(),
            RoutingKind::cache_automaton(),
        ) {
            Ok(p) => p,
            // Dense fallback for rule sets too entangled for the
            // two-level fabric.
            Err(memcim_ap::ApError::RoutingInfeasible { .. }) => {
                AutomataProcessor::compile(&homog, backend, RoutingKind::Dense)?
            }
            Err(e) => return Err(e.into()),
        };
        Ok(Self { processor, owner_of_state, pattern_count: patterns.len() })
    }

    /// Number of compiled patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// STEs occupied on the device.
    pub fn state_count(&self) -> usize {
        self.processor.state_count()
    }

    /// The underlying processor (cost model, routing resources, …).
    pub fn processor(&self) -> &AutomataProcessor {
        &self.processor
    }

    /// Scans an input, attributing every report event to its pattern.
    pub fn scan(&mut self, input: &[u8]) -> ScanOutcome {
        let run = self.processor.run(input);
        let matches = run
            .accept_events
            .iter()
            .filter_map(|&(pos, state)| self.owner_of_state.get(&state).map(|&p| (pos, p)))
            .collect();
        ScanOutcome { matches, symbols: run.symbols, report: run.report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_rule_matching() {
        let mut accel = RegexAccelerator::rram(&["abc", "x+y"]).expect("compiles");
        let outcome = accel.scan(b"zzabczzxxxyzz");
        assert_eq!(accel.pattern_count(), 2);
        assert_eq!(outcome.matched_patterns(), vec![0, 1]);
        // abc ends at index 4; xxy ends at index 10.
        assert!(outcome.matches.contains(&(4, 0)));
        assert!(outcome.matches.contains(&(10, 1)));
        assert!(outcome.report.energy.as_joules() > 0.0);
    }

    #[test]
    fn no_match_produces_costs_but_no_events() {
        let mut accel = RegexAccelerator::rram(&["needle"]).expect("compiles");
        let outcome = accel.scan(b"haystack haystack");
        assert!(outcome.matches.is_empty());
        assert_eq!(outcome.symbols, 17);
        assert!(outcome.report.latency.as_seconds() > 0.0);
    }

    #[test]
    fn bad_pattern_surfaces_the_parse_error() {
        let err = RegexAccelerator::rram(&["a(b"]).expect_err("unbalanced");
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn backend_choice_changes_cost_not_semantics() {
        let input = b"GET /abc GET /def".repeat(4);
        let mut rram = RegexAccelerator::rram(&["GET /[a-z]+"]).expect("rram");
        let mut sram =
            RegexAccelerator::on_backend(&["GET /[a-z]+"], ApBackend::sram()).expect("sram");
        let r = rram.scan(&input);
        let s = sram.scan(&input);
        assert_eq!(r.matches, s.matches);
        assert!(r.report.energy.as_joules() < s.report.energy.as_joules());
    }
}
