//! Poison-tolerant locking for the service's internal bookkeeping.
//!
//! Every critical section in this crate is a short, panic-free sequence
//! of plain data-structure mutations — no tenant code and no engine
//! code ever runs while a bookkeeping lock is held. A poisoned mutex
//! therefore cannot mean the guarded state is half-mutated; it means
//! *some other part* of a thread panicked while a guard happened to be
//! alive on its stack (or the runtime unwound it for an unrelated
//! reason). Once a network listener keeps the process alive, turning
//! that into a panic in every subsequent client call would let one
//! crashed worker take the whole service down — so these helpers
//! recover the guard and keep serving. The per-call sites that *can*
//! surface an error to a caller do so as [`ServeError::Internal`]
//! instead (see `Service::try_start`).
//!
//! [`ServeError::Internal`]: crate::ServeError::Internal

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a panicking thread poisoned
/// it. Sound because no critical section in this crate can leave the
/// guarded state torn (see the module docs).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `condvar`, recovering the reacquired guard from poisoning
/// the same way [`lock`] does.
pub(crate) fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_from_a_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(41));
        let poisoner = {
            let mutex = Arc::clone(&mutex);
            std::thread::spawn(move || {
                let _guard = mutex.lock().expect("first lock");
                panic!("poison the lock");
            })
        };
        assert!(poisoner.join().is_err(), "the thread panicked");
        assert!(mutex.is_poisoned());
        *lock(&mutex) += 1;
        assert_eq!(*lock(&mutex), 42, "state stays usable after recovery");
    }
}
