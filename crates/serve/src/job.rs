//! Jobs, their results, and the ticket a client waits on.

use crate::{sync, ServeError};
use memcim_ap::ApReport;
use memcim_bits::BitVec;
use memcim_crossbar::OpLedger;
use memcim_mvp::{BatchRequest, Instruction};
use memcim_units::{Joules, Seconds};
use std::sync::{Arc, Condvar, Mutex};

/// Identifies a paying client of the service; all accounting is keyed
/// by this id.
pub type TenantId = u64;

/// Identifies an open AP streaming session.
pub type SessionId = u64;

/// One unit of work a tenant submits to the service.
///
/// Jobs are **independent**: each must load whatever rows it reads
/// (engine row state is not promised across job boundaries — jobs may
/// be reordered by coalescing and may execute on different workers'
/// engines). Within one job, instructions run in order as usual.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Job {
    /// A single MVP macro-instruction program. Programs of one tenant
    /// arriving in the same scheduling burst are coalesced into one
    /// [`BatchRequest`] execution.
    MvpProgram(Vec<Instruction>),
    /// A pre-assembled batch of MVP programs, executed as one unit.
    MvpBatch(BatchRequest),
    /// Streams one chunk of input through an open AP session.
    /// Chunks of one session must be serialized by the client: wait on
    /// each ticket before submitting the next chunk.
    ApFeed {
        /// The session opened via `Service::open_session`.
        session: SessionId,
        /// The input bytes to stream.
        chunk: Vec<u8>,
    },
    /// Ends an AP session's current stream, collecting its matches and
    /// cost; the session stays open for the next stream.
    ApFinish {
        /// The session to finish.
        session: SessionId,
    },
    /// Streams one chunk into **each** stream lane of an AP session in
    /// a single job: `chunks[i]` goes to lane `i`. Lanes are
    /// independent streams through one compiled automaton; the session
    /// grows lanes on demand to `chunks.len()`. Like [`Job::ApFeed`],
    /// jobs of one session must be serialized by the client.
    ApFeedMany {
        /// The session opened via `Service::open_session`.
        session: SessionId,
        /// `chunks[i]` is appended to stream lane `i`.
        chunks: Vec<Vec<u8>>,
    },
    /// Ends the current stream of **every** lane of an AP session,
    /// collecting per-lane matches; the session stays open with all its
    /// lanes reset for the next streams.
    ApFinishMany {
        /// The session to finish.
        session: SessionId,
    },
}

/// What one coalesced MVP burst cost; shared by every job that rode in
/// it (the per-tenant ledger accounts it exactly once).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstReport {
    /// Jobs coalesced into the burst.
    pub jobs: usize,
    /// Programs executed across those jobs.
    pub programs: usize,
    /// The burst's aggregate ledger delta (banked semantics: energy and
    /// counts sum over banks, busy time is the slowest bank).
    pub ledger: OpLedger,
}

/// The result of an MVP job.
#[derive(Debug, Clone, PartialEq)]
pub struct MvpOutput {
    /// `outputs[i]` holds the `Read` results of this job's `i`-th
    /// program, in program order (a [`Job::MvpProgram`] has exactly one
    /// entry).
    pub outputs: Vec<Vec<BitVec>>,
    /// The coalesced burst this job executed in.
    pub burst: BurstReport,
}

/// The result of finishing an AP session's stream: accept events mapped
/// back to pattern indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ApMatches {
    /// Anchored acceptance after the final symbol.
    pub accepted: bool,
    /// `(end position, pattern index)` for every report event.
    pub matches: Vec<(usize, usize)>,
    /// Symbols streamed since the session's last finish.
    pub symbols: u64,
    /// Cost summary for the whole stream.
    pub report: ApReport,
}

/// The cumulative state of a correlation session after a feed
/// (`Service::corr_feed`): how much the session's stream has absorbed
/// and cost so far, mirroring the cumulative [`ApReport`] of an AP feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrFeedReport {
    /// Stream-slots (streams × window steps) absorbed since the last
    /// finish — the billing unit of the session watermark.
    pub events: u64,
    /// Engine energy the session's feed programs have cost so far.
    pub energy: Joules,
    /// Engine busy time the session's feed programs have cost so far.
    pub busy: Seconds,
}

/// The result of finishing a correlation session's stream
/// (`Service::corr_finish`): the detected correlated set and the
/// evidence behind it. The session stays open for the next stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrOutcome {
    /// Bit `i` set when stream `i`'s co-activation score exceeded the
    /// session threshold.
    pub correlated: BitVec,
    /// The per-stream co-activation scores the detection thresholded.
    pub scores: Vec<u64>,
    /// Stream-slots absorbed over the finished stream.
    pub events: u64,
    /// The threshold the session was opened with.
    pub threshold: u64,
}

/// The result of a completed [`Job`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobOutput {
    /// Result of [`Job::MvpProgram`] / [`Job::MvpBatch`].
    Mvp(MvpOutput),
    /// Result of [`Job::ApFeed`]: the *cumulative* cost report for the
    /// session's stream so far.
    ApFeed(ApReport),
    /// Result of [`Job::ApFinish`].
    ApFinish(ApMatches),
    /// Result of [`Job::ApFeedMany`]: the *cumulative* per-lane cost
    /// reports, `reports[i]` for lane `i`.
    ApFeedMany(Vec<ApReport>),
    /// Result of [`Job::ApFinishMany`]: per-lane stream results,
    /// `matches[i]` for lane `i`.
    ApFinishMany(Vec<ApMatches>),
}

impl JobOutput {
    /// The MVP result, if this was an MVP job.
    pub fn into_mvp(self) -> Option<MvpOutput> {
        match self {
            JobOutput::Mvp(out) => Some(out),
            _ => None,
        }
    }

    /// The feed report, if this was an [`Job::ApFeed`].
    pub fn into_ap_feed(self) -> Option<ApReport> {
        match self {
            JobOutput::ApFeed(report) => Some(report),
            _ => None,
        }
    }

    /// The stream result, if this was an [`Job::ApFinish`].
    pub fn into_ap_finish(self) -> Option<ApMatches> {
        match self {
            JobOutput::ApFinish(run) => Some(run),
            _ => None,
        }
    }

    /// The per-lane feed reports, if this was an [`Job::ApFeedMany`].
    pub fn into_ap_feed_many(self) -> Option<Vec<ApReport>> {
        match self {
            JobOutput::ApFeedMany(reports) => Some(reports),
            _ => None,
        }
    }

    /// The per-lane stream results, if this was an
    /// [`Job::ApFinishMany`].
    pub fn into_ap_finish_many(self) -> Option<Vec<ApMatches>> {
        match self {
            JobOutput::ApFinishMany(runs) => Some(runs),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Slot {
    result: Mutex<Option<Result<JobOutput, ServeError>>>,
    ready: Condvar,
}

/// A claim on a submitted job's eventual result.
///
/// Obtained from `Service::submit`; [`wait`](Ticket::wait) blocks until
/// a worker fulfils (or fails) the job. Dropping a ticket abandons the
/// result without cancelling the job.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// Whatever the worker reported: the job's own failure, or
    /// [`ServeError::ShuttingDown`] when the service closed before the
    /// job ran.
    pub fn wait(self) -> Result<JobOutput, ServeError> {
        let mut guard = sync::lock(&self.slot.result);
        while guard.is_none() {
            guard = sync::wait(&self.slot.ready, guard);
        }
        guard.take().expect("checked above")
    }

    /// `true` once the result is available ([`wait`](Self::wait) will
    /// not block).
    pub fn is_ready(&self) -> bool {
        sync::lock(&self.slot.result).is_some()
    }
}

/// A claim on a scatter-gather job's eventual result: one
/// [`Ticket`] per shard sub-query, gathered by
/// [`wait`](ShardedTicket::wait).
///
/// Obtained from `Service::submit_sharded`. Sub-queries resolve
/// independently — a shard whose replicas are all dead fails with
/// [`ServeError::ShardUnavailable`] without disturbing the others — so
/// the gather surfaces the first failing shard's error, or merges every
/// partial when all succeed.
#[derive(Debug)]
pub struct ShardedTicket {
    parts: Vec<(usize, Ticket)>,
}

/// One shard's slice of a gathered scatter-gather answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPartial {
    /// The shard this partial covers.
    pub shard: usize,
    /// The shard-local program's `Read` outputs, in program order.
    pub outputs: Vec<BitVec>,
}

/// The gathered result of a scatter-gather submission.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutput {
    /// Per-shard partials, in the order the sub-queries were submitted.
    pub partials: Vec<ShardPartial>,
    /// The sub-query ledgers merged with parallel semantics (counts and
    /// energy sum over shards, busy time is the slowest shard) — shards
    /// execute on distinct workers' engines concurrently, exactly the
    /// banked-crossbar cost model one level up.
    pub ledger: OpLedger,
}

impl ShardedTicket {
    pub(crate) fn new(parts: Vec<(usize, Ticket)>) -> Self {
        Self { parts }
    }

    /// Number of shard sub-queries in flight.
    pub fn shard_count(&self) -> usize {
        self.parts.len()
    }

    /// Blocks until every sub-query resolves, then merges the partials.
    ///
    /// # Errors
    ///
    /// The first failing shard's error, in submission order — typically
    /// [`ServeError::ShardUnavailable`] when a shard's whole replica
    /// set is dead, or [`ServeError::ShuttingDown`] when the service
    /// closed mid-flight. (Remaining sub-queries still execute and are
    /// billed; only their outputs are discarded with the gather.)
    pub fn wait(self) -> Result<ShardedOutput, ServeError> {
        let mut partials = Vec::with_capacity(self.parts.len());
        let mut ledger: Option<OpLedger> = None;
        for (shard, ticket) in self.parts {
            let output = ticket.wait()?.into_mvp().ok_or_else(|| ServeError::Internal {
                message: format!("shard {shard} sub-query resolved to a non-MVP output"),
            })?;
            match &mut ledger {
                Some(total) => total.merge_parallel(&output.burst.ledger),
                None => ledger = Some(output.burst.ledger),
            }
            let outputs = output.outputs.into_iter().next().unwrap_or_default();
            partials.push(ShardPartial { shard, outputs });
        }
        Ok(ShardedOutput { partials, ledger: ledger.unwrap_or_default() })
    }
}

/// The worker-side half of a ticket. Fulfil it exactly once; dropping
/// it unfulfilled (queue closed, worker unwinding) fails the ticket
/// with [`ServeError::ShuttingDown`] so no client waits forever.
#[derive(Debug)]
pub(crate) struct Responder {
    slot: Arc<Slot>,
    sent: bool,
}

impl Responder {
    pub(crate) fn fulfil(mut self, result: Result<JobOutput, ServeError>) {
        self.deliver(result);
    }

    fn deliver(&mut self, result: Result<JobOutput, ServeError>) {
        if self.sent {
            return;
        }
        self.sent = true;
        *sync::lock(&self.slot.result) = Some(result);
        self.slot.ready.notify_all();
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        self.deliver(Err(ServeError::ShuttingDown));
    }
}

/// A linked ticket/responder pair for one job.
pub(crate) fn ticket_pair() -> (Ticket, Responder) {
    let slot = Arc::new(Slot { result: Mutex::new(None), ready: Condvar::new() });
    (Ticket { slot: Arc::clone(&slot) }, Responder { slot, sent: false })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fulfilled_ticket_yields_the_result() {
        let (ticket, responder) = ticket_pair();
        assert!(!ticket.is_ready());
        responder.fulfil(Ok(JobOutput::ApFeed(ApReport {
            cycles: 3,
            latency: memcim_units::Seconds::from_nanoseconds(1.0),
            energy: memcim_units::Joules::from_femtojoules(2.0),
        })));
        assert!(ticket.is_ready());
        let report = ticket.wait().expect("ok").into_ap_feed().expect("feed");
        assert_eq!(report.cycles, 3);
    }

    #[test]
    fn dropped_responder_fails_the_ticket() {
        let (ticket, responder) = ticket_pair();
        drop(responder);
        assert_eq!(ticket.wait(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn wait_blocks_until_a_worker_fulfils() {
        let (ticket, responder) = ticket_pair();
        let worker = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            responder.fulfil(Err(ServeError::UnknownSession { session: 5 }));
        });
        assert_eq!(ticket.wait(), Err(ServeError::UnknownSession { session: 5 }));
        worker.join().expect("joins");
    }
}
